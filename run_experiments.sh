#!/bin/bash
# Regenerates every table and figure of the paper into results/.
set -u
BIN=target/release
run() {
  echo "=== $1 (started $(date +%H:%M:%S)) ==="
  shift
  "$@"
}
run table1 $BIN/table1 --scale 1.0 > results/table1.txt 2>results/table1.log
run fig2   $BIN/fig2   --scale 1.0 > results/fig2.txt   2>results/fig2.log
run table2 $BIN/table2 --scale 1.0 > results/table2.txt 2>results/table2.log
run table3 $BIN/table3 --scale 1.0 > results/table3.txt 2>results/table3.log
run table7 $BIN/table7 --scale 1.0 --report results/table7.report.json > results/table7.txt 2>results/table7.log
run table6 $BIN/table6 --scale 0.35 --report results/table6.report.json > results/table6.txt 2>results/table6.log
run table5 $BIN/table5 --scale 0.5 --report results/table5.report.json > results/table5.txt 2>results/table5.log
run table4 $BIN/table4 --scale 1.0 > results/table4.txt 2>results/table4.log
echo "ALL EXPERIMENTS DONE $(date +%H:%M:%S)"
