//! Anonymise a generated dataset and export it as JSON — the pipeline that
//! produces the paper's publicly shareable demo data (§9).
//!
//! ```text
//! cargo run --release --example anonymise_dataset [-- output.json]
//! ```

use snaps::anonymise::{anonymise, AnonymiserConfig};
use snaps::datagen::{generate, DatasetProfile};
use snaps::model::Role;

fn main() {
    let out_path = std::env::args().nth(1);

    let data = generate(&DatasetProfile::ios().scaled(0.1), 42);
    let ds = &data.dataset;
    let (anon, report) = anonymise(ds, &AnonymiserConfig::default());

    println!("Anonymisation report for {}:", ds.name);
    println!("  female first names mapped : {}", report.female_first_names);
    println!("  male first names mapped   : {}", report.male_first_names);
    println!("  surnames mapped           : {}", report.surnames);
    println!("  frequent causes retained  : {}", report.frequent_causes);
    println!("  rare causes replaced      : {}", report.rare_causes);

    println!("\nBefore → after (first five deceased):");
    let before: Vec<_> = ds.records_with_role(Role::DeathDeceased).take(5).collect();
    let after: Vec<_> = anon.records_with_role(Role::DeathDeceased).take(5).collect();
    for (b, a) in before.iter().zip(&after) {
        println!(
            "  {} ({}, {})  →  {} ({}, {})",
            b.display_name(),
            b.event_year,
            b.cause_of_death.as_deref().unwrap_or("?"),
            a.display_name(),
            a.event_year,
            a.cause_of_death.as_deref().unwrap_or("?"),
        );
    }

    // Invariant check before export: the anonymised dataset is still a
    // valid dataset with identical structure.
    anon.validate().expect("anonymised dataset is structurally valid");
    assert_eq!(anon.len(), ds.len());

    if let Some(path) = out_path {
        let json = anon.to_json().expect("serialise");
        std::fs::write(&path, json).expect("write output file");
        println!("\nAnonymised dataset written to {path}");
    } else {
        println!("\n(pass an output path to export the anonymised dataset as JSON)");
    }
}
