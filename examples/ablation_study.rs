//! Run the ablation study programmatically — showing how the library's
//! [`snaps::core::Ablation`] switches expose each technique of the paper
//! (PROP-A/PROP-C, AMB, REL, REF) to downstream experimentation.
//!
//! ```text
//! cargo run --release --example ablation_study
//! ```

use snaps::core::SnapsConfig;
use snaps::datagen::{generate, DatasetProfile};
use snaps::eval::ablation::run_ablation;

fn main() {
    let data = generate(&DatasetProfile::ios().scaled(0.15), 42);
    println!("Ablation study on {} ({} records)\n", data.dataset.name, data.dataset.len());

    let rows = run_ablation(&data, &SnapsConfig::default());
    println!(
        "{:<28} {:>8} {:>8} {:>8}   {:>8} {:>8} {:>8}",
        "Variant", "Bp-Bp P", "R", "F*", "Bp-Dp P", "R", "F*"
    );
    for row in &rows {
        let (_, q1) = &row.per_role_pair[0];
        let (_, q2) = &row.per_role_pair[1];
        let (p1, r1, f1) = q1.percentages();
        let (p2, r2, f2) = q2.percentages();
        println!(
            "{:<28} {p1:>8.2} {r1:>8.2} {f1:>8.2}   {p2:>8.2} {r2:>8.2} {f2:>8.2}",
            row.variant
        );
    }
    println!(
        "\nReading: the full system should lead on F*; removing PROP costs \
         precision,\nremoving AMB costs recall among ambiguous names, removing REL \
         breaks partial\nmatch groups (Bp-Dp), and removing REF admits loosely \
         connected wrong links."
    );
}
