//! Quickstart: generate a small synthetic vital-records dataset, resolve it
//! with SNAPS, and inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use snaps::core::{resolve, PedigreeGraph, SnapsConfig};
use snaps::datagen::{generate, DatasetProfile};
use snaps::model::RoleCategory;

fn main() {
    // 1. Generate a small Isle-of-Skye-like dataset with ground truth.
    let profile = DatasetProfile::ios().scaled(0.1);
    let data = generate(&profile, 42);
    println!(
        "Generated {}: {} certificates, {} person records, {} simulated individuals",
        data.dataset.name,
        data.dataset.certificates.len(),
        data.dataset.len(),
        data.population.len(),
    );

    // 2. Run the offline SNAPS pipeline: blocking → dependency graph →
    //    bootstrap → iterative merging (PROP/AMB/REL) → refinement (REF).
    let cfg = SnapsConfig::default();
    let res = resolve(&data.dataset, &cfg);
    println!(
        "Resolved: |N_A|={} |N_R|={} links={} clusters={} (bootstrap={}, passes={})",
        res.stats.n_atomic,
        res.stats.n_relational,
        res.stats.final_links,
        res.clusters.len(),
        res.stats.bootstrap_links,
        res.stats.passes,
    );

    // 3. Score against the generator's ground truth.
    for (ca, cb, label) in [
        (RoleCategory::BirthParent, RoleCategory::BirthParent, "Bp-Bp"),
        (RoleCategory::BirthParent, RoleCategory::DeathParent, "Bp-Dp"),
    ] {
        let pred = res.matched_pairs(&data.dataset, ca, cb);
        let truth = data.truth.true_links(&data.dataset, ca, cb);
        let tp = pred.intersection(&truth).count() as f64;
        let p = 100.0 * tp / (pred.len() as f64).max(1.0);
        let r = 100.0 * tp / (truth.len() as f64).max(1.0);
        let f = 100.0 * tp / (pred.len() as f64 + truth.len() as f64 - tp).max(1.0);
        println!("{label}: P={p:.1}% R={r:.1}% F*={f:.1}%");
    }

    // 4. Build the pedigree graph and show the best-connected entity.
    let graph = PedigreeGraph::build(&data.dataset, &res);
    let busiest = graph
        .entities
        .iter()
        .max_by_key(|e| graph.neighbours(e.id).len())
        .expect("graph is non-empty");
    println!(
        "\nBest-connected entity: {} ({} records, {} relationships)",
        busiest.display_name(),
        busiest.records.len(),
        graph.neighbours(busiest.id).len(),
    );
    let pedigree = snaps::pedigree::extract(&graph, busiest.id, 2);
    print!("{}", snaps::pedigree::render_text(&pedigree, &graph));
}
