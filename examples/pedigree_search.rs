//! The SNAPS demo: search an anonymised dataset and explore a family
//! pedigree — the CLI equivalent of the paper's web interface (Figs. 5–8).
//!
//! The dataset is generated, resolved, **anonymised** (as the public SNAPS
//! site is), indexed, and then queried. The default query mirrors the
//! paper's running example (a search for "Douglas Macdonald" surfacing
//! "doyd macdougall"-style approximate matches, Fig. 6); pass your own:
//!
//! ```text
//! cargo run --release --example pedigree_search
//! cargo run --release --example pedigree_search -- jennifer johnson death
//! ```

use snaps::anonymise::{anonymise, AnonymiserConfig};
use snaps::core::{resolve, PedigreeGraph, SnapsConfig};
use snaps::datagen::{generate, DatasetProfile};
use snaps::pedigree::{extract, render_dot, render_text, render_tree, DEFAULT_GENERATIONS};
use snaps::query::{QueryRecord, SearchEngine, SearchKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (first, surname, kind) = match args.as_slice() {
        [] => ("douglas".to_string(), "macdonald".to_string(), SearchKind::Birth),
        [f, s] => (f.clone(), s.clone(), SearchKind::Birth),
        [f, s, k] => {
            (f.clone(), s.clone(), if k == "death" { SearchKind::Death } else { SearchKind::Birth })
        }
        _ => {
            eprintln!("usage: pedigree_search [first surname [birth|death]]");
            std::process::exit(2);
        }
    };

    // Offline phase (done once, server-side in the real deployment).
    eprintln!("[offline] generating and resolving the dataset…");
    let data = generate(&DatasetProfile::ios().scaled(0.15), 42);
    let (anon, report) = anonymise(&data.dataset, &AnonymiserConfig::default());
    eprintln!(
        "[offline] anonymised: {} female / {} male first names, {} surnames mapped; \
         {} frequent causes kept, {} rare causes replaced",
        report.female_first_names,
        report.male_first_names,
        report.surnames,
        report.frequent_causes,
        report.rare_causes,
    );
    let res = resolve(&anon, &SnapsConfig::default());
    let graph = PedigreeGraph::build(&anon, &res);
    let engine = SearchEngine::build(graph);

    // Online phase: query → ranked results (Fig. 6).
    let query = QueryRecord::new(&first, &surname, kind);
    println!(
        "\nQuery: forename='{}' surname='{}' search={} records",
        query.first_name,
        query.surname,
        match kind {
            SearchKind::Birth => "birth",
            SearchKind::Death => "death",
        }
    );
    let results = engine.query(&query, 10);
    if results.is_empty() {
        println!("No matching entities. (Names are anonymised — try e.g. 'jennifer johnson'.)");
        // Offer some real values to try.
        let sample: Vec<String> = engine
            .graph()
            .entities
            .iter()
            .filter(|e| e.has_birth_record)
            .take(5)
            .map(snaps::core::PedigreeEntity::display_name)
            .collect();
        println!("Entities that do exist: {}", sample.join(", "));
        return;
    }

    println!(
        "\n{:<4} {:<16} {:<16} {:<3} {:<6} {:<14} {:>6}",
        "#", "Forename", "Surname", "G", "Year", "Parish", "Score"
    );
    for (i, m) in results.iter().enumerate() {
        let e = engine.graph().entity(m.entity);
        let year = match kind {
            SearchKind::Birth => e.birth_year,
            SearchKind::Death => e.death_year,
        };
        println!(
            "{:<4} {:<16} {:<16} {:<3} {:<6} {:<14} {:>5.2}%",
            i + 1,
            e.first_names.first().map_or("?", String::as_str),
            e.surnames.first().map_or("?", String::as_str),
            e.gender,
            year.map_or_else(|| "?".into(), |y| y.to_string()),
            e.addresses.first().map_or("?", String::as_str),
            m.score_percent,
        );
    }

    // "Explore" the top hit: extract and render its pedigree (Figs. 7/8).
    let top = results[0].entity;
    let pedigree = extract(engine.graph(), top, DEFAULT_GENERATIONS);
    println!("\n=== Family pedigree (textual) ===");
    print!("{}", render_text(&pedigree, engine.graph()));
    println!("\n=== Family tree ===");
    print!("{}", render_tree(&pedigree, engine.graph()));
    println!("\n=== Graphviz DOT (pipe into `dot -Tpng`) ===");
    print!("{}", render_dot(&pedigree, engine.graph()));
}
