//! Comparison feature vectors for the supervised baseline.
//!
//! Magellan-style matchers operate on per-pair feature vectors; each
//! candidate record pair is described by its attribute similarities plus
//! presence indicators (a missing attribute is information, not a zero
//! similarity).

use snaps_core::attrs::{compare, AttrSims, AttrValues};
use snaps_core::similarity::NameFreqs;
use snaps_core::SnapsConfig;
use snaps_model::{Dataset, PersonRecord, RecordId};

/// Number of features produced per pair.
#[cfg(test)]
pub(crate) const FEATURE_DIM: usize = 13;

/// Human-readable feature names, index-aligned with the vectors.
#[cfg(test)]
pub(crate) const FEATURE_NAMES: [&str; FEATURE_DIM] = [
    "first_name_sim",
    "first_name_present",
    "surname_sim",
    "surname_present",
    "address_sim",
    "address_present",
    "occupation_sim",
    "occupation_present",
    "birth_year_sim",
    "birth_year_present",
    "gender_match",
    "event_year_gap",
    "disambiguation",
];

fn sim_pair(v: Option<f64>) -> (f64, f64) {
    match v {
        Some(s) => (s, 1.0),
        None => (0.0, 0.0),
    }
}

/// The feature vector of one record pair.
#[must_use]
pub(crate) fn pair_features(
    a: &PersonRecord,
    b: &PersonRecord,
    sims: &AttrSims,
    freqs: &NameFreqs,
) -> Vec<f64> {
    let (fn_sim, fn_p) = sim_pair(sims.first_name);
    let (sn_sim, sn_p) = sim_pair(sims.surname);
    let (ad_sim, ad_p) = sim_pair(sims.address);
    let (oc_sim, oc_p) = sim_pair(sims.occupation);
    let (by_sim, by_p) = sim_pair(sims.birth_year);
    let gender = if a.gender.compatible(b.gender) { 1.0 } else { 0.0 };
    // Event-year gap, squashed to (0,1] — 0 gap → 1.0, 40 years → ~0.2.
    let gap = f64::from((a.event_year - b.event_year).abs());
    let gap_feature = 1.0 / (1.0 + gap / 10.0);
    let disambiguation = freqs.disambiguation(a, b);
    vec![
        fn_sim,
        fn_p,
        sn_sim,
        sn_p,
        ad_sim,
        ad_p,
        oc_sim,
        oc_p,
        by_sim,
        by_p,
        gender,
        gap_feature,
        disambiguation,
    ]
}

/// Compute feature vectors for a list of candidate pairs.
#[must_use]
pub fn featurise_pairs(
    ds: &Dataset,
    pairs: &[(RecordId, RecordId)],
    cfg: &SnapsConfig,
) -> Vec<Vec<f64>> {
    let freqs = NameFreqs::build(ds);
    let views: Vec<AttrValues> = ds.records.iter().map(AttrValues::from_record).collect();
    pairs
        .iter()
        .map(|&(a, b)| {
            let sims = compare(&views[a.index()], &views[b.index()], cfg.geo_max_km);
            pair_features(ds.record(a), ds.record(b), &sims, &freqs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaps_model::{CertificateKind, Gender, Role};

    fn two_records() -> Dataset {
        let mut ds = Dataset::new("t");
        let c1 = ds.push_certificate(CertificateKind::Birth, 1880);
        let r1 = ds.push_record(c1, Role::BirthMother, Gender::Female);
        ds.record_mut(r1).first_name = Some("mary".into());
        ds.record_mut(r1).surname = Some("macleod".into());
        let c2 = ds.push_certificate(CertificateKind::Death, 1890);
        let r2 = ds.push_record(c2, Role::DeathMother, Gender::Female);
        ds.record_mut(r2).first_name = Some("mary".into());
        ds.record_mut(r2).surname = Some("macleod".into());
        ds
    }

    #[test]
    fn dimension_and_names_agree() {
        let ds = two_records();
        let fs = featurise_pairs(&ds, &[(RecordId(0), RecordId(1))], &SnapsConfig::default());
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].len(), FEATURE_DIM);
        assert_eq!(FEATURE_NAMES.len(), FEATURE_DIM);
    }

    #[test]
    fn identical_names_score_one_with_presence() {
        let ds = two_records();
        let fs = featurise_pairs(&ds, &[(RecordId(0), RecordId(1))], &SnapsConfig::default());
        let f = &fs[0];
        assert_eq!(f[0], 1.0, "first_name_sim");
        assert_eq!(f[1], 1.0, "first_name_present");
        assert_eq!(f[2], 1.0, "surname_sim");
        assert_eq!(f[10], 1.0, "gender_match");
    }

    #[test]
    fn missing_attribute_zero_presence() {
        let mut ds = two_records();
        ds.record_mut(RecordId(0)).first_name = None;
        let fs = featurise_pairs(&ds, &[(RecordId(0), RecordId(1))], &SnapsConfig::default());
        assert_eq!(fs[0][0], 0.0);
        assert_eq!(fs[0][1], 0.0, "presence indicator off");
    }

    #[test]
    fn year_gap_decreases_feature() {
        let ds = two_records();
        let f = featurise_pairs(&ds, &[(RecordId(0), RecordId(1))], &SnapsConfig::default());
        // Gap 10 years → 1/(1+1) = 0.5.
        assert!((f[0][11] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn features_in_unit_range() {
        let ds = two_records();
        let f = featurise_pairs(&ds, &[(RecordId(0), RecordId(1))], &SnapsConfig::default());
        for (i, v) in f[0].iter().enumerate() {
            assert!((0.0..=1.0).contains(v), "feature {i} = {v}");
        }
    }
}
