//! Rel-Cluster: Bhattacharya-Getoor-style iterative relational clustering.
//!
//! "A similar implementation to the method proposed by Bhattacharya and
//! Getoor that employs ambiguity of QID values in the ER process" (§10).
//! Clusters start as singletons; each round, candidate cluster pairs are
//! scored with an ambiguity-aware attribute similarity plus a relational
//! bonus (the Jaccard overlap of the clusters' neighbourhoods), and pairs
//! above the threshold merge greedily. Constraints are checked pairwise at
//! the record level — the method, unlike SNAPS, does not propagate link
//! decisions, handle changing values, or refine wrong links.

use std::collections::BTreeSet;

use snaps_blocking::candidate_pairs;
use snaps_core::attrs::{compare, AttrValues};
use snaps_core::entity::EntityInfo;
use snaps_core::similarity::{node_similarity, NameFreqs};
use snaps_core::SnapsConfig;
use snaps_graph::UnionFind;
use snaps_model::{Dataset, RecordId};

use crate::result::LinkResult;

/// Weight of the relational bonus in the combined score.
pub(crate) const RELATIONAL_WEIGHT: f64 = 0.2;
/// Maximum clustering rounds.
pub(crate) const MAX_ROUNDS: usize = 5;

/// Run the Rel-Cluster baseline.
#[must_use]
pub fn rel_cluster_link(ds: &Dataset, cfg: &SnapsConfig) -> LinkResult {
    let pairs = candidate_pairs(ds, cfg.lsh, cfg.year_tolerance);
    let freqs = NameFreqs::build(ds);
    let views: Vec<AttrValues> = ds.records.iter().map(AttrValues::from_record).collect();
    let infos: Vec<EntityInfo> = ds.records.iter().map(EntityInfo::from_record).collect();

    // Record-level pairwise constraints (no propagation).
    let valid_pairs: Vec<(RecordId, RecordId)> = pairs
        .into_iter()
        .filter(|&(a, b)| infos[a.index()].compatible(&infos[b.index()]))
        .collect();

    // Pre-compute each pair's attribute similarity (static: values never
    // propagate in this method).
    let attr_sims: Vec<f64> = valid_pairs
        .iter()
        .map(|&(a, b)| {
            let sims = compare(&views[a.index()], &views[b.index()], cfg.geo_max_km);
            node_similarity(&sims, ds.record(a), ds.record(b), &freqs, cfg).combined
        })
        .collect();

    // Certificate neighbourhoods of each record.
    let neighbours: Vec<Vec<RecordId>> = (0..ds.len())
        .map(|i| {
            ds.certificate_neighbours(RecordId::from_index(i)).into_iter().map(|(r, _)| r).collect()
        })
        .collect();

    let mut uf = UnionFind::new(ds.len());
    let mut links: Vec<(RecordId, RecordId)> = Vec::new();

    for _round in 0..MAX_ROUNDS {
        // Neighbour cluster sets per cluster root.
        let mut nbr_sets: std::collections::HashMap<usize, BTreeSet<usize>> =
            std::collections::HashMap::new();
        for (i, nbrs) in neighbours.iter().enumerate() {
            let root = uf.find(i);
            let entry = nbr_sets.entry(root).or_default();
            for &n in nbrs {
                entry.insert(uf.find(n.index()));
            }
        }

        // Score all still-unmerged candidate pairs.
        let mut candidates: Vec<(f64, RecordId, RecordId)> = Vec::new();
        for (k, &(a, b)) in valid_pairs.iter().enumerate() {
            if uf.same_set(a.index(), b.index()) {
                continue;
            }
            let (ra, rb) = (uf.find(a.index()), uf.find(b.index()));
            let rel = match (nbr_sets.get(&ra), nbr_sets.get(&rb)) {
                (Some(x), Some(y)) if !x.is_empty() || !y.is_empty() => {
                    let inter = x.intersection(y).count();
                    let union = x.len() + y.len() - inter;
                    if union == 0 {
                        0.0
                    } else {
                        inter as f64 / union as f64
                    }
                }
                _ => 0.0,
            };
            // Relational evidence boosts the attribute similarity; clamp so
            // the combined score stays a similarity.
            let combined = (attr_sims[k] + RELATIONAL_WEIGHT * rel).min(1.0);
            if combined >= cfg.t_merge {
                candidates.push((combined, a, b));
            }
        }
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by(|x, y| y.0.total_cmp(&x.0).then_with(|| (x.1, x.2).cmp(&(y.1, y.2))));
        let mut merged_any = false;
        for (_, a, b) in candidates {
            if uf.union(a.index(), b.index()) {
                links.push((a.min(b), a.max(b)));
                merged_any = true;
            }
        }
        if !merged_any {
            break;
        }
    }

    LinkResult::from_links(links, ds.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaps_datagen::{generate, DatasetProfile};
    use snaps_model::RoleCategory;

    #[test]
    fn produces_reasonable_links() {
        let data = generate(&DatasetProfile::ios().scaled(0.08), 42);
        let ds = &data.dataset;
        let result = rel_cluster_link(ds, &SnapsConfig::default());
        assert!(!result.links.is_empty());

        let cat = RoleCategory::BirthParent;
        let pred = result.matched_pairs(ds, cat, cat);
        let truth = data.truth.true_links(ds, cat, cat);
        let tp = pred.intersection(&truth).count() as f64;
        let p = tp / (pred.len() as f64).max(1.0);
        assert!(p > 0.4, "not random linking: precision {p}");
    }

    #[test]
    fn snaps_beats_rel_cluster() {
        let data = generate(&DatasetProfile::ios().scaled(0.08), 42);
        let ds = &data.dataset;
        let cfg = SnapsConfig::default();
        let cat = RoleCategory::BirthParent;
        let truth = data.truth.true_links(ds, cat, cat);
        let fstar = |pred: &std::collections::BTreeSet<_>| {
            let tp = pred.intersection(&truth).count() as f64;
            tp / (pred.len() as f64 + truth.len() as f64 - tp).max(1.0)
        };
        let rel = fstar(&rel_cluster_link(ds, &cfg).matched_pairs(ds, cat, cat));
        let snaps = {
            let res = snaps_core::resolve(ds, &cfg);
            fstar(&res.matched_pairs(ds, cat, cat))
        };
        assert!(snaps > rel, "SNAPS {snaps} vs Rel-Cluster {rel}");
    }

    #[test]
    fn respects_record_level_constraints() {
        let data = generate(&DatasetProfile::ios().scaled(0.05), 3);
        let ds = &data.dataset;
        let result = rel_cluster_link(ds, &SnapsConfig::default());
        for &(a, b) in &result.links {
            assert_ne!(ds.record(a).certificate, ds.record(b).certificate);
            assert!(ds.record(a).gender.compatible(ds.record(b).gender));
        }
    }

    #[test]
    fn empty_dataset() {
        let r = rel_cluster_link(&Dataset::new("e"), &SnapsConfig::default());
        assert!(r.links.is_empty());
    }
}
