//! The common output type of baseline linkers.

use std::collections::BTreeSet;

use snaps_graph::connected_components;
use snaps_model::{Dataset, RecordId, RoleCategory};

/// Output of a baseline linker: accepted links and the record clusters they
/// induce (connected components, singletons included).
#[derive(Debug, Clone)]
pub struct LinkResult {
    /// Accepted links.
    pub links: Vec<(RecordId, RecordId)>,
    /// Induced clusters, deterministic order.
    pub clusters: Vec<Vec<RecordId>>,
}

impl LinkResult {
    /// Build from links over a dataset of `n_records`.
    #[must_use]
    pub fn from_links(links: Vec<(RecordId, RecordId)>, n_records: usize) -> Self {
        let clusters =
            connected_components(n_records, links.iter().map(|&(a, b)| (a.index(), b.index())))
                .into_iter()
                .map(|c| c.into_iter().map(RecordId::from_index).collect())
                .collect();
        Self { links, clusters }
    }

    /// Predicted matching pairs between two role categories (transitive
    /// closure within clusters, different certificates only) — identical
    /// counting to `snaps_core::Resolution::matched_pairs` so baseline and
    /// SNAPS results are comparable.
    #[must_use]
    pub fn matched_pairs(
        &self,
        ds: &Dataset,
        cat_a: RoleCategory,
        cat_b: RoleCategory,
    ) -> BTreeSet<(RecordId, RecordId)> {
        let mut pairs = BTreeSet::new();
        for cluster in &self.clusters {
            for (i, &ra) in cluster.iter().enumerate() {
                for &rb in &cluster[i + 1..] {
                    let (a, b) = (ds.record(ra), ds.record(rb));
                    if a.certificate == b.certificate {
                        continue;
                    }
                    let (ca, cb) = (a.role.category(), b.role.category());
                    if (ca == cat_a && cb == cat_b) || (ca == cat_b && cb == cat_a) {
                        pairs.insert((ra.min(rb), ra.max(rb)));
                    }
                }
            }
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_from_links() {
        let links = vec![(RecordId(0), RecordId(1)), (RecordId(1), RecordId(2))];
        let r = LinkResult::from_links(links, 5);
        assert_eq!(r.clusters.len(), 3);
        assert_eq!(r.clusters[0], vec![RecordId(0), RecordId(1), RecordId(2)]);
        assert_eq!(r.clusters[1], vec![RecordId(3)]);
    }

    #[test]
    fn empty() {
        let r = LinkResult::from_links(Vec::new(), 0);
        assert!(r.clusters.is_empty());
    }
}
