//! Baseline entity-resolution systems (paper §10, "Baselines").
//!
//! Four comparators, mirroring the paper's evaluation:
//!
//! * [`attr_sim`] — **Attr-Sim**: traditional pairwise threshold linkage,
//!   no relationships, no constraints;
//! * [`dep_graph`] — **Dep-Graph**: Dong-et-al.-style propagation of values
//!   and constraints, but no disambiguation, no adaptive group merging, no
//!   refinement;
//! * [`rel_cluster`] — **Rel-Cluster**: Bhattacharya-Getoor-style iterative
//!   relational clustering with ambiguity, but no value/constraint
//!   propagation across decisions, no partial-match handling, no refinement;
//! * [`supervised`] — the Magellan substitute: four from-scratch classifiers
//!   (`snaps-ml`) over record-pair comparison vectors, trained per role pair
//!   or on all pairs, results averaged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr_sim;
pub mod dep_graph;
pub mod features;
pub mod rel_cluster;
pub mod result;
pub mod supervised;

pub use attr_sim::attr_sim_link;
pub use dep_graph::dep_graph_link;
pub use rel_cluster::rel_cluster_link;
pub use result::LinkResult;
pub use supervised::SupervisedLinker;
