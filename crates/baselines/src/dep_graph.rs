//! Dep-Graph: Dong et al.-style reference reconciliation.
//!
//! "An implementation similar to the collective ER approach proposed by
//! Dong et al. that propagates link decisions in the ER process, where we
//! apply the same set of temporal and link constraints as we employed in
//! SNAPS" (§10). Operationally: value and constraint propagation are ON,
//! but there is no disambiguation similarity (pure attribute similarity),
//! no adaptive group merging (nodes merge individually, exhaustively), and
//! no cluster refinement — exactly the three SNAPS novelties it lacks.

use snaps_core::config::SingletonMergePolicy;
use snaps_core::{resolve, SnapsConfig};
use snaps_model::Dataset;

use crate::result::LinkResult;

/// The Dep-Graph configuration derived from a SNAPS configuration: shares
/// thresholds, blocking, and the paper's temporal/link constraints;
/// disables AMB, REL, REF, the spouse-context veto (a SNAPS-specific form
/// of negative relationship evidence), and group-average merging — Dong et
/// al. merge nodes individually and exhaustively.
#[must_use]
pub(crate) fn dep_graph_config(base: &SnapsConfig) -> SnapsConfig {
    let mut cfg = base.clone();
    cfg.ablation.amb = false;
    cfg.ablation.rel = false;
    cfg.ablation.refine = false;
    cfg.ablation.prop = true;
    cfg.spouse_veto = false;
    cfg.group_merging = false;
    cfg.singleton_margin = 0.0;
    cfg.singleton_policy = SingletonMergePolicy::Always;
    cfg
}

/// Run the Dep-Graph baseline.
#[must_use]
pub fn dep_graph_link(ds: &Dataset, base: &SnapsConfig) -> LinkResult {
    let cfg = dep_graph_config(base);
    let res = resolve(ds, &cfg);
    LinkResult { links: res.links.clone(), clusters: res.clusters }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaps_datagen::{generate, DatasetProfile};
    use snaps_model::RoleCategory;

    #[test]
    fn config_disables_the_three_novelties() {
        let cfg = dep_graph_config(&SnapsConfig::default());
        assert!(cfg.ablation.prop);
        assert!(!cfg.ablation.amb);
        assert!(!cfg.ablation.rel);
        assert!(!cfg.ablation.refine);
        assert_eq!(cfg.singleton_policy, SingletonMergePolicy::Always);
        assert!(!cfg.spouse_veto);
        assert!(!cfg.group_merging);
        assert_eq!(cfg.t_merge, SnapsConfig::default().t_merge, "thresholds shared");
    }

    #[test]
    fn produces_links_and_respects_constraints() {
        let data = generate(&DatasetProfile::ios().scaled(0.06), 11);
        let ds = &data.dataset;
        let result = dep_graph_link(ds, &SnapsConfig::default());
        assert!(!result.links.is_empty());
        // Constraints hold: no cluster has two records of one certificate.
        for cluster in &result.clusters {
            for (i, &a) in cluster.iter().enumerate() {
                for &b in &cluster[i + 1..] {
                    assert_ne!(
                        ds.record(a).certificate,
                        ds.record(b).certificate,
                        "same-certificate records in one cluster"
                    );
                }
            }
        }
    }

    #[test]
    fn quality_between_attr_sim_and_snaps() {
        let data = generate(&DatasetProfile::ios().scaled(0.08), 42);
        let ds = &data.dataset;
        let cfg = SnapsConfig::default();
        let cat = RoleCategory::BirthParent;
        let truth = data.truth.true_links(ds, cat, cat);

        let fstar = |pred: &std::collections::BTreeSet<_>| {
            let tp = pred.intersection(&truth).count() as f64;
            tp / (pred.len() as f64 + truth.len() as f64 - tp).max(1.0)
        };

        let dep = fstar(&dep_graph_link(ds, &cfg).matched_pairs(ds, cat, cat));
        let attr = fstar(&crate::attr_sim_link(ds, &cfg).matched_pairs(ds, cat, cat));
        let snaps = {
            let res = snaps_core::resolve(ds, &cfg);
            fstar(&res.matched_pairs(ds, cat, cat))
        };
        // Full Table-4 orderings (SNAPS > Dep-Graph > Attr-Sim on F*) are
        // scale-dependent — ambiguity and namesake collisions only bite at
        // profile scale, where the Table 4 binary measures them. The
        // scale-free sanity conditions checked here: all systems produce
        // non-trivial linkage, and SNAPS is within a whisker of the best
        // even on a fixture too small for its precision machinery to pay.
        assert!(attr > 0.3 && dep > 0.3 && snaps > 0.3, "{attr} {dep} {snaps}");
        assert!(snaps + 0.08 >= dep, "SNAPS {snaps} vs Dep-Graph {dep}");
        assert!(snaps + 0.08 >= attr, "SNAPS {snaps} vs Attr-Sim {attr}");
    }
}
