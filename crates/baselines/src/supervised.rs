//! The supervised baseline (Magellan substitute).
//!
//! The paper runs Magellan with "a SVM, a random forest, a logistic
//! regression, and a decision tree" and averages their linkage quality,
//! training in two regimes: (a) only on record pairs of the role pair being
//! tested, and (b) on pairs of all role pair types (§10). Both regimes are
//! implemented here over `snaps-ml` classifiers and the shared comparison
//! features.

use snaps_blocking::candidate_pairs;
use snaps_core::SnapsConfig;
use snaps_model::{Dataset, RecordId, RoleCategory};

use snaps_ml::{Classifier, DecisionTree, LinearSvm, LogisticRegression, RandomForest};

use crate::features::featurise_pairs;
use crate::result::LinkResult;

/// Cap on labelled training pairs per classifier fit. Magellan-style
/// matchers train on labelled *samples*, not the full candidate space; a
/// deterministic stride subsample keeps full-profile runs tractable without
/// changing the class balance.
pub(crate) const MAX_TRAINING_PAIRS: usize = 120_000;

/// Training regime (paper §10: "we trained Magellan in two different ways").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainingRegime {
    /// Train only on candidate pairs whose roles fall in the tested role
    /// pair — the favourable setting.
    PerRolePair(RoleCategory, RoleCategory),
    /// Train on candidate pairs of all role pair types — the realistic
    /// setting with mixed, partially relevant training data.
    AllPairs,
}

/// The four classifiers the paper selects from Magellan.
#[must_use]
pub fn paper_classifiers() -> Vec<Box<dyn Classifier>> {
    vec![
        Box::new(LinearSvm::default()),
        Box::new(RandomForest::default()),
        Box::new(LogisticRegression::default()),
        Box::new(DecisionTree::default()),
    ]
}

/// A supervised pairwise linker: one classifier over comparison features.
pub struct SupervisedLinker {
    classifier: Box<dyn Classifier>,
}

impl std::fmt::Debug for SupervisedLinker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SupervisedLinker").field("classifier", &self.classifier.name()).finish()
    }
}

/// Split of candidate pairs into train and evaluation halves.
#[derive(Debug, Clone)]
pub(crate) struct PairSplit {
    /// Pairs (with labels) the classifier may train on.
    pub train: Vec<(RecordId, RecordId)>,
    /// Training labels.
    pub train_labels: Vec<bool>,
    /// Pairs the classifier is evaluated on.
    pub eval: Vec<(RecordId, RecordId)>,
}

/// Deterministically split candidate pairs for a regime: even-indexed pairs
/// (after sorting) are eligible for training, odd-indexed pairs form the
/// evaluation set. Under [`TrainingRegime::PerRolePair`] the training side
/// is further restricted to pairs of the tested categories.
#[must_use]
pub(crate) fn split_pairs(
    ds: &Dataset,
    pairs: &[(RecordId, RecordId)],
    regime: TrainingRegime,
    is_match: &dyn Fn(RecordId, RecordId) -> bool,
) -> PairSplit {
    let in_regime = |a: RecordId, b: RecordId| match regime {
        TrainingRegime::AllPairs => true,
        TrainingRegime::PerRolePair(ca, cb) => {
            let (ra, rb) = (ds.record(a).role.category(), ds.record(b).role.category());
            (ra == ca && rb == cb) || (ra == cb && rb == ca)
        }
    };
    let mut split = PairSplit { train: Vec::new(), train_labels: Vec::new(), eval: Vec::new() };
    for (i, &(a, b)) in pairs.iter().enumerate() {
        if i % 2 == 0 {
            if in_regime(a, b) {
                split.train.push((a, b));
                split.train_labels.push(is_match(a, b));
            }
        } else {
            split.eval.push((a, b));
        }
    }
    split
}

impl SupervisedLinker {
    /// Wrap a classifier.
    #[must_use]
    pub fn new(classifier: Box<dyn Classifier>) -> Self {
        Self { classifier }
    }

    /// Classifier name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.classifier.name()
    }

    /// Train on labelled pairs and link the evaluation pairs.
    ///
    /// Returns the predicted links among `split.eval` as a [`LinkResult`]
    /// (connected components over predicted matches, like every baseline).
    pub(crate) fn train_and_link(
        &mut self,
        ds: &Dataset,
        split: &PairSplit,
        cfg: &SnapsConfig,
    ) -> LinkResult {
        assert!(!split.train.is_empty(), "empty training set");
        // Deterministic stride subsample beyond the cap (keeps ordering-
        // independent class balance).
        let (train_pairs, train_labels): (Vec<_>, Vec<_>) =
            if split.train.len() > MAX_TRAINING_PAIRS {
                let stride = split.train.len().div_ceil(MAX_TRAINING_PAIRS);
                split
                    .train
                    .iter()
                    .zip(&split.train_labels)
                    .step_by(stride)
                    .map(|(&p, &l)| (p, l))
                    .unzip()
            } else {
                (split.train.clone(), split.train_labels.clone())
            };
        let x_train = featurise_pairs(ds, &train_pairs, cfg);
        self.classifier.fit(&x_train, &train_labels);

        let x_eval = featurise_pairs(ds, &split.eval, cfg);
        let predictions = self.classifier.predict_batch(&x_eval);
        let links: Vec<(RecordId, RecordId)> = split
            .eval
            .iter()
            .zip(&predictions)
            .filter(|(_, &p)| p)
            .map(|(&(a, b), _)| (a.min(b), a.max(b)))
            .collect();
        LinkResult::from_links(links, ds.len())
    }
}

/// Convenience: run one classifier end-to-end under a regime, returning the
/// link result over the evaluation half and the evaluation pairs themselves
/// (callers restrict ground truth to those pairs when scoring).
pub fn supervised_link(
    ds: &Dataset,
    cfg: &SnapsConfig,
    classifier: Box<dyn Classifier>,
    regime: TrainingRegime,
    is_match: &dyn Fn(RecordId, RecordId) -> bool,
) -> (LinkResult, Vec<(RecordId, RecordId)>) {
    let pairs = candidate_pairs(ds, cfg.lsh, cfg.year_tolerance);
    let split = split_pairs(ds, &pairs, regime, is_match);
    let mut linker = SupervisedLinker::new(classifier);
    let result = linker.train_and_link(ds, &split, cfg);
    (result, split.eval)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaps_datagen::{generate, DatasetProfile};

    #[test]
    fn split_is_deterministic_and_disjoint() {
        let data = generate(&DatasetProfile::ios().scaled(0.04), 5);
        let ds = &data.dataset;
        let cfg = SnapsConfig::default();
        let pairs = candidate_pairs(ds, cfg.lsh, cfg.year_tolerance);
        let truth = &data.truth;
        let is_match = |a: RecordId, b: RecordId| truth.is_match(a, b);
        let s1 = split_pairs(ds, &pairs, TrainingRegime::AllPairs, &is_match);
        let s2 = split_pairs(ds, &pairs, TrainingRegime::AllPairs, &is_match);
        assert_eq!(s1.train, s2.train);
        assert_eq!(s1.eval, s2.eval);
        assert_eq!(s1.train.len() + s1.eval.len(), pairs.len());
        for p in &s1.train {
            assert!(!s1.eval.contains(p));
        }
    }

    #[test]
    fn per_role_pair_restricts_training() {
        let data = generate(&DatasetProfile::ios().scaled(0.1), 42);
        let ds = &data.dataset;
        let cfg = SnapsConfig::default();
        let pairs = candidate_pairs(ds, cfg.lsh, cfg.year_tolerance);
        let truth = &data.truth;
        let is_match = |a: RecordId, b: RecordId| truth.is_match(a, b);
        let regime =
            TrainingRegime::PerRolePair(RoleCategory::BirthParent, RoleCategory::BirthParent);
        let s = split_pairs(ds, &pairs, regime, &is_match);
        for &(a, b) in &s.train {
            assert_eq!(ds.record(a).role.category(), RoleCategory::BirthParent);
            assert_eq!(ds.record(b).role.category(), RoleCategory::BirthParent);
        }
        let all = split_pairs(ds, &pairs, TrainingRegime::AllPairs, &is_match);
        assert!(s.train.len() <= all.train.len());
        assert!(!s.train.is_empty());
    }

    #[test]
    fn classifiers_learn_the_linkage_task() {
        let data = generate(&DatasetProfile::ios().scaled(0.06), 42);
        let ds = &data.dataset;
        let cfg = SnapsConfig::default();
        let truth = data.truth.clone();
        let is_match = move |a: RecordId, b: RecordId| truth.is_match(a, b);

        let (result, eval_pairs) = supervised_link(
            ds,
            &cfg,
            Box::new(RandomForest::default()),
            TrainingRegime::AllPairs,
            &is_match,
        );
        // Accuracy over evaluation pairs must beat the trivial
        // all-non-match classifier.
        let predicted: std::collections::BTreeSet<_> = result.links.iter().copied().collect();
        let (mut tp, mut fp, mut fn_) = (0.0, 0.0, 0.0);
        for &(a, b) in &eval_pairs {
            let truth_label = data.truth.is_match(a, b);
            let pred = predicted.contains(&(a.min(b), a.max(b)));
            match (pred, truth_label) {
                (true, true) => tp += 1.0,
                (true, false) => fp += 1.0,
                (false, true) => fn_ += 1.0,
                _ => {}
            }
        }
        let f1_star = tp / (tp + fp + fn_);
        // Pairwise supervised matching on ambiguous person data is hard —
        // the paper's Magellan averages F* 0.46–0.60 at full scale; on this
        // small fixture we only require clearly-better-than-nothing.
        assert!(f1_star > 0.25, "random forest F* {f1_star}");
    }

    #[test]
    fn four_paper_classifiers() {
        let cs = paper_classifiers();
        let names: Vec<&str> = cs.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec!["linear-svm", "random-forest", "logistic-regression", "decision-tree"]
        );
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_panics() {
        let ds = Dataset::new("e");
        let split = PairSplit { train: vec![], train_labels: vec![], eval: vec![] };
        let mut l = SupervisedLinker::new(Box::new(DecisionTree::default()));
        let _ = l.train_and_link(&ds, &split, &SnapsConfig::default());
    }
}
