//! Attr-Sim: traditional pairwise threshold linkage.
//!
//! "Basic pairwise similarity based linking to obtain a baseline similar to
//! traditional record linkage" (§10): candidate pairs from the same LSH
//! blocking, record-level attribute similarity, a single threshold, no
//! relationships, no constraints, no disambiguation. Its signature failure
//! mode on person data is terrible precision — every namesake pair links.

use snaps_blocking::candidate_pairs;
use snaps_core::attrs::{compare, AttrValues};
use snaps_core::similarity::atomic_similarity;
use snaps_core::SnapsConfig;
use snaps_model::Dataset;

use crate::result::LinkResult;

/// Run Attr-Sim with the given configuration (its `t_merge` is the pairwise
/// threshold; blocking settings are shared with SNAPS for a fair runtime
/// comparison).
#[must_use]
pub fn attr_sim_link(ds: &Dataset, cfg: &SnapsConfig) -> LinkResult {
    let pairs = candidate_pairs(ds, cfg.lsh, cfg.year_tolerance);
    let views: Vec<AttrValues> = ds.records.iter().map(AttrValues::from_record).collect();

    let links = pairs
        .into_iter()
        .filter(|&(a, b)| {
            let sims = compare(&views[a.index()], &views[b.index()], cfg.geo_max_km);
            atomic_similarity(&sims, cfg) >= cfg.t_merge
        })
        .collect();
    LinkResult::from_links(links, ds.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaps_datagen::{generate, DatasetProfile};
    use snaps_model::RoleCategory;

    #[test]
    fn links_namesakes_that_snaps_would_not() {
        let data = generate(&DatasetProfile::ios().scaled(0.08), 42);
        let ds = &data.dataset;
        let cfg = SnapsConfig::default();
        let result = attr_sim_link(ds, &cfg);
        assert!(!result.links.is_empty());

        let cat = RoleCategory::BirthParent;
        let pred = result.matched_pairs(ds, cat, cat);
        let truth = data.truth.true_links(ds, cat, cat);
        let tp = pred.intersection(&truth).count() as f64;
        let recall = tp / truth.len() as f64;
        let precision = tp / (pred.len() as f64).max(1.0);
        assert!(recall > 0.5, "recall {recall}");
        // The paper's shape — decent recall, poor precision — emerges at
        // full profile scale (measured by the Table 4 binary); the
        // scale-free invariant is that Attr-Sim is never *more* precise
        // than SNAPS on the same data.
        let snaps = snaps_core::resolve(ds, &cfg);
        let spred = snaps.matched_pairs(ds, cat, cat);
        let stp = spred.intersection(&truth).count() as f64;
        let sprecision = stp / (spred.len() as f64).max(1.0);
        assert!(precision <= sprecision, "Attr-Sim {precision} vs SNAPS {sprecision}");
    }

    #[test]
    fn higher_threshold_fewer_links() {
        let data = generate(&DatasetProfile::ios().scaled(0.05), 7);
        let lo = SnapsConfig { t_merge: 0.7, ..SnapsConfig::default() };
        let hi = SnapsConfig { t_merge: 0.95, ..SnapsConfig::default() };
        let n_lo = attr_sim_link(&data.dataset, &lo).links.len();
        let n_hi = attr_sim_link(&data.dataset, &hi).links.len();
        assert!(n_hi <= n_lo);
    }

    #[test]
    fn empty_dataset() {
        let r = attr_sim_link(&Dataset::new("e"), &SnapsConfig::default());
        assert!(r.links.is_empty());
        assert!(r.clusters.is_empty());
    }
}
