//! Property-based invariants of the resolution pipeline: whatever the
//! population looks like, the resolver must never violate its own
//! constraints.

use proptest::prelude::*;
use snaps_core::{resolve, PedigreeGraph, SnapsConfig};
use snaps_datagen::{generate, DatasetProfile};
use snaps_model::{Relationship, Role};

/// Small random populations: seed and modest scale vary.
fn small_inputs() -> impl Strategy<Value = (u64, f64)> {
    (0u64..500, prop_oneof![Just(0.02), Just(0.03), Just(0.05)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Clusters partition the record set.
    #[test]
    fn clusters_partition_records((seed, scale) in small_inputs()) {
        let data = generate(&DatasetProfile::ios().scaled(scale), seed);
        let res = resolve(&data.dataset, &SnapsConfig::default());
        let mut seen = vec![false; data.dataset.len()];
        for cluster in &res.clusters {
            for &r in cluster {
                prop_assert!(!seen[r.index()], "record in two clusters");
                seen[r.index()] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Under the default configuration, no entity may contain two records of
    /// the same certificate, two birth records, or two death records; all
    /// recorded genders must be compatible.
    #[test]
    fn link_constraints_hold_in_every_cluster((seed, scale) in small_inputs()) {
        let data = generate(&DatasetProfile::ios().scaled(scale), seed);
        let ds = &data.dataset;
        let res = resolve(ds, &SnapsConfig::default());
        for cluster in &res.clusters {
            let mut births = 0;
            let mut deaths = 0;
            let mut certs = std::collections::BTreeSet::new();
            let mut genders = std::collections::BTreeSet::new();
            for &r in cluster {
                let rec = ds.record(r);
                births += usize::from(rec.role == Role::BirthBaby);
                deaths += usize::from(rec.role == Role::DeathDeceased);
                prop_assert!(certs.insert(rec.certificate), "two records of one certificate");
                if rec.gender != snaps_model::Gender::Unknown {
                    genders.insert(rec.gender);
                }
            }
            prop_assert!(births <= 1, "{births} birth records in one entity");
            prop_assert!(deaths <= 1, "{deaths} death records in one entity");
            prop_assert!(genders.len() <= 1, "conflicting genders in one entity");
        }
    }

    /// Temporal sanity: an entity with a death record has no
    /// presence-requiring record after the death year (+1 for the
    /// posthumous-father slack).
    #[test]
    fn no_activity_after_death((seed, scale) in small_inputs()) {
        let data = generate(&DatasetProfile::ios().scaled(scale), seed);
        let ds = &data.dataset;
        let res = resolve(ds, &SnapsConfig::default());
        for cluster in &res.clusters {
            let death = cluster
                .iter()
                .map(|&r| ds.record(r))
                .find(|r| r.role == Role::DeathDeceased)
                .map(|r| r.event_year);
            let Some(dy) = death else { continue };
            for &r in cluster {
                let rec = ds.record(r);
                if snaps_core::constraints::requires_alive(rec.role) {
                    prop_assert!(
                        rec.event_year <= dy + 1,
                        "{:?} in {} after death {dy}",
                        rec.role,
                        rec.event_year
                    );
                }
            }
        }
    }

    /// The pedigree graph is structurally sound: the record→entity map is
    /// total and consistent with the clusters; edges reference live
    /// entities and never loop. (Global pedigree *acyclicity* is not
    /// asserted: a namesake grandson wrongly merged with his grandfather
    /// produces a parental cycle, and neither this system nor the paper's
    /// enforces cross-generation consistency — such errors are measured as
    /// precision loss, not prevented structurally.)
    #[test]
    fn pedigree_graph_is_sound((seed, scale) in small_inputs()) {
        let data = generate(&DatasetProfile::ios().scaled(scale), seed);
        let ds = &data.dataset;
        let res = resolve(ds, &SnapsConfig::default());
        let graph = PedigreeGraph::build(ds, &res);
        // Total mapping, consistent with entities' record lists.
        for (i, &e) in graph.record_entity.iter().enumerate() {
            prop_assert!(e.index() < graph.len());
            prop_assert!(graph
                .entity(e)
                .records
                .contains(&snaps_model::RecordId::from_index(i)));
        }
        for &(a, b, rel) in &graph.edges {
            prop_assert!(a.index() < graph.len() && b.index() < graph.len());
            prop_assert!(a != b, "self edge");
            // Parental edges respect implied gender: a MotherOf source is
            // never recorded male, a FatherOf source never female.
            let g = graph.entity(a).gender;
            match rel {
                Relationship::MotherOf => {
                    prop_assert!(g != snaps_model::Gender::Male, "male mother")
                }
                Relationship::FatherOf => {
                    prop_assert!(g != snaps_model::Gender::Female, "female father")
                }
                _ => {}
            }
        }
    }

    /// Determinism across repeated runs of the identical input.
    #[test]
    fn resolution_is_deterministic(seed in 0u64..200) {
        let data = generate(&DatasetProfile::ios().scaled(0.02), seed);
        let a = resolve(&data.dataset, &SnapsConfig::default());
        let b = resolve(&data.dataset, &SnapsConfig::default());
        prop_assert_eq!(a.clusters, b.clusters);
        prop_assert_eq!(a.links, b.links);
    }

    /// Links only ever connect records of one cluster, and every
    /// multi-record cluster is connected by its links.
    #[test]
    fn links_are_consistent_with_clusters((seed, scale) in small_inputs()) {
        let data = generate(&DatasetProfile::ios().scaled(scale), seed);
        let res = resolve(&data.dataset, &SnapsConfig::default());
        let idx = res.record_cluster_index(data.dataset.len());
        for &(a, b) in &res.links {
            prop_assert_eq!(idx[a.index()], idx[b.index()], "link across clusters");
        }
        // Connectivity: within each cluster, union-find over its links
        // reaches every member.
        for cluster in res.clusters.iter().filter(|c| c.len() > 1) {
            let pos: std::collections::BTreeMap<_, _> =
                cluster.iter().enumerate().map(|(i, &r)| (r, i)).collect();
            let mut uf = snaps_graph::UnionFind::new(cluster.len());
            for &(a, b) in &res.links {
                if let (Some(&x), Some(&y)) = (pos.get(&a), pos.get(&b)) {
                    uf.union(x, y);
                }
            }
            prop_assert_eq!(uf.set_count(), 1, "cluster not connected by its links");
        }
    }
}
