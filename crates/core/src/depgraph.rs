//! Dependency-graph generation (paper §4.1, Fig. 3).
//!
//! Candidate record pairs from blocking become *relational nodes*. The
//! sufficiently similar QID value pairs behind each node are its *atomic
//! nodes* (shared between relational nodes, counted for the paper's
//! `|N_A|`). Relational nodes between the same two certificates form a
//! *group*: the group's members are exactly the nodes connected by the
//! certificates' relationship structure — if the baby of birth certificate
//! `B` is the deceased of death certificate `D`, then `(Bm, Dm)`, `(Bf, Df)`
//! … all live in group `(B, D)`.

use std::collections::{BTreeMap, BTreeSet};

use snaps_model::{CertificateId, Dataset, RecordId};

use crate::attrs::{compare, AttrSims, AttrValues};
use crate::config::SnapsConfig;

/// Index of a relational node in [`DependencyGraph::nodes`].
pub type NodeId = usize;
/// Index of a group in [`DependencyGraph::groups`].
pub type GroupId = usize;

/// A relational node: a candidate pair of records that may co-refer.
#[derive(Debug, Clone)]
pub struct RelationalNode {
    /// First record (lower id).
    pub a: RecordId,
    /// Second record (higher id).
    pub b: RecordId,
    /// Cached record-vs-record attribute similarities (the node's atomic
    /// nodes before any value propagation).
    pub base_sims: AttrSims,
    /// The certificate-pair group this node belongs to.
    pub group: GroupId,
}

/// A group of relational nodes between one pair of certificates.
#[derive(Debug, Clone)]
pub(crate) struct Group {
    /// Member node ids.
    pub nodes: Vec<NodeId>,
}

/// The dependency graph: relational nodes, their groups, and atomic-node
/// statistics.
#[derive(Debug)]
pub struct DependencyGraph {
    /// All relational nodes.
    pub nodes: Vec<RelationalNode>,
    /// All certificate-pair groups.
    pub(crate) groups: Vec<Group>,
    /// Distinct atomic nodes (`|N_A|`): unique (attribute, value-pair)
    /// combinations that cleared their inclusion threshold.
    pub atomic_count: usize,
}

impl DependencyGraph {
    /// Build the graph from blocking's candidate pairs.
    ///
    /// Pairs are expected pre-filtered for role/gender compatibility (see
    /// [`snaps_blocking::candidate_pairs`]); each is compared once and the
    /// per-attribute similarities cached on its node.
    #[must_use]
    pub fn build(ds: &Dataset, pairs: &[(RecordId, RecordId)], cfg: &SnapsConfig) -> Self {
        let mut nodes = Vec::with_capacity(pairs.len());
        let mut groups: Vec<Group> = Vec::new();
        let mut group_index: BTreeMap<(CertificateId, CertificateId), GroupId> = BTreeMap::new();
        let mut atomics: BTreeSet<(u8, u64)> = BTreeSet::new();

        // Pre-extract every record's value view once.
        let views: Vec<AttrValues> = ds.records.iter().map(AttrValues::from_record).collect();

        for &(a, b) in pairs {
            let (a, b) = (a.min(b), a.max(b));
            let base_sims = compare(&views[a.index()], &views[b.index()], cfg.geo_max_km);

            let ra = ds.record(a);
            let rb = ds.record(b);
            let key = (ra.certificate.min(rb.certificate), ra.certificate.max(rb.certificate));
            let group = *group_index.entry(key).or_insert_with(|| {
                groups.push(Group { nodes: Vec::new() });
                groups.len() - 1
            });
            let node_id = nodes.len();
            groups[group].nodes.push(node_id);

            count_atomics(&mut atomics, ds, a, b, &base_sims, cfg);
            nodes.push(RelationalNode { a, b, base_sims, group });
        }

        Self { nodes, groups, atomic_count: atomics.len() }
    }

    /// Number of relational nodes (`|N_R|`).
    #[must_use]
    pub fn relational_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges in the dependency graph: one edge per atomic node
    /// attached to a relational node (comparable attribute) plus the
    /// relationship edges connecting the nodes of each group (Fig. 3).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        let atomic_edges: usize = self
            .nodes
            .iter()
            .map(|n| {
                let s = &n.base_sims;
                [s.first_name, s.surname, s.address, s.occupation, s.birth_year]
                    .iter()
                    .filter(|v| v.is_some())
                    .count()
            })
            .sum();
        let relationship_edges: usize =
            self.groups.iter().map(|g| g.nodes.len() * (g.nodes.len() - 1) / 2).sum();
        atomic_edges + relationship_edges
    }
}

/// Record the distinct atomic nodes a relational node introduces.
///
/// Atomic nodes are value *pairs*; we key them by a hash of
/// `(attribute, min(value), max(value))` to keep the set compact.
fn count_atomics(
    atomics: &mut BTreeSet<(u8, u64)>,
    ds: &Dataset,
    a: RecordId,
    b: RecordId,
    sims: &AttrSims,
    cfg: &SnapsConfig,
) {
    use snaps_blocking::minhash::splitmix64;
    let (ra, rb) = (ds.record(a), ds.record(b));
    let mut hash_pair = |tag: u8, va: &str, vb: &str| {
        let (x, y) = if va <= vb { (va, vb) } else { (vb, va) };
        let mut h = splitmix64(u64::from(tag) ^ 0x5eed);
        for byte in x.as_bytes() {
            h = splitmix64(h ^ u64::from(*byte));
        }
        h = splitmix64(h ^ 0xff);
        for byte in y.as_bytes() {
            h = splitmix64(h ^ u64::from(*byte));
        }
        atomics.insert((tag, h));
    };

    if let (Some(s), Some(va), Some(vb)) = (sims.first_name, &ra.first_name, &rb.first_name) {
        if s >= cfg.t_atomic {
            hash_pair(0, va, vb);
        }
    }
    if let (Some(s), Some(va), Some(vb)) = (sims.surname, &ra.surname, &rb.surname) {
        if s >= cfg.t_atomic {
            hash_pair(1, va, vb);
        }
    }
    if let (Some(s), Some(va), Some(vb)) = (sims.address, &ra.address, &rb.address) {
        // Extra attributes use a looser inclusion threshold: they only
        // corroborate, so weak evidence still forms a (low-similarity) node.
        if s >= 0.5 {
            hash_pair(2, va, vb);
        }
    }
    if let (Some(s), Some(va), Some(vb)) = (sims.occupation, &ra.occupation, &rb.occupation) {
        if s >= 0.5 {
            hash_pair(3, va, vb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaps_model::{CertificateKind, Gender, Role};

    /// Birth certificate B and death certificate D of the same family, plus
    /// an unrelated death certificate D2.
    fn fixture() -> Dataset {
        let mut ds = Dataset::new("t");
        let b = ds.push_certificate(CertificateKind::Birth, 1880);
        for (role, f, s) in [
            (Role::BirthBaby, "flora", "macrae"),
            (Role::BirthMother, "mary", "macrae"),
            (Role::BirthFather, "john", "macrae"),
        ] {
            let g = role.implied_gender().unwrap_or(Gender::Female);
            let r = ds.push_record(b, role, g);
            ds.record_mut(r).first_name = Some(f.into());
            ds.record_mut(r).surname = Some(s.into());
        }
        let d = ds.push_certificate(CertificateKind::Death, 1885);
        for (role, f, s) in [
            (Role::DeathDeceased, "flora", "macrae"),
            (Role::DeathMother, "mary", "macrae"),
            (Role::DeathFather, "john", "macrae"),
        ] {
            let g = role.implied_gender().unwrap_or(Gender::Female);
            let r = ds.push_record(d, role, g);
            ds.record_mut(r).first_name = Some(f.into());
            ds.record_mut(r).surname = Some(s.into());
        }
        let d2 = ds.push_certificate(CertificateKind::Death, 1899);
        let r = ds.push_record(d2, Role::DeathDeceased, Gender::Male);
        ds.record_mut(r).first_name = Some("john".into());
        ds.record_mut(r).surname = Some("macrae".into());
        ds
    }

    #[test]
    fn groups_are_per_certificate_pair() {
        let ds = fixture();
        // Candidate pairs: the B↔D family nodes and Bf↔Dd2.
        let pairs = vec![
            (RecordId(0), RecordId(3)), // Bb-Dd
            (RecordId(1), RecordId(4)), // Bm-Dm
            (RecordId(2), RecordId(5)), // Bf-Df
            (RecordId(2), RecordId(6)), // Bf-Dd2
        ];
        let dg = DependencyGraph::build(&ds, &pairs, &SnapsConfig::default());
        assert_eq!(dg.relational_count(), 4);
        assert_eq!(dg.groups.len(), 2);
        let g0 = &dg.groups[dg.nodes[0].group];
        assert_eq!(g0.nodes.len(), 3, "family nodes share the (B,D) group");
        let g1 = &dg.groups[dg.nodes[3].group];
        assert_eq!(g1.nodes.len(), 1);
    }

    #[test]
    fn base_sims_cached() {
        let ds = fixture();
        let pairs = vec![(RecordId(1), RecordId(4))];
        let dg = DependencyGraph::build(&ds, &pairs, &SnapsConfig::default());
        let sims = dg.nodes[0].base_sims;
        assert_eq!(sims.first_name, Some(1.0));
        assert_eq!(sims.surname, Some(1.0));
    }

    #[test]
    fn atomic_nodes_deduplicated() {
        let ds = fixture();
        // Two nodes sharing the same surname value pair (macrae, macrae) and
        // the same first-name pair (john, john).
        let pairs = vec![(RecordId(2), RecordId(5)), (RecordId(2), RecordId(6))];
        let dg = DependencyGraph::build(&ds, &pairs, &SnapsConfig::default());
        // Distinct atomic nodes: (john,john) and (macrae,macrae) — shared by
        // both relational nodes.
        assert_eq!(dg.atomic_count, 2);
    }

    #[test]
    fn dissimilar_values_create_no_atomic_nodes() {
        let ds = fixture();
        let pairs = vec![(RecordId(0), RecordId(6))]; // flora vs john
        let dg = DependencyGraph::build(&ds, &pairs, &SnapsConfig::default());
        assert_eq!(dg.atomic_count, 1, "only the surname pair survives t_a");
    }

    #[test]
    fn node_records_normalised_order() {
        let ds = fixture();
        let pairs = vec![(RecordId(4), RecordId(1))];
        let dg = DependencyGraph::build(&ds, &pairs, &SnapsConfig::default());
        assert!(dg.nodes[0].a < dg.nodes[0].b);
    }

    #[test]
    fn empty_pairs_empty_graph() {
        let ds = fixture();
        let dg = DependencyGraph::build(&ds, &[], &SnapsConfig::default());
        assert_eq!(dg.relational_count(), 0);
        assert_eq!(dg.groups.len(), 0);
        assert_eq!(dg.atomic_count, 0);
    }
}
