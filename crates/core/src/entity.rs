//! Entity store: record clusters with propagated values and constraints.
//!
//! Every record starts as a singleton entity. Merging a relational node
//! unions the two records' entities and fuses their summaries: accumulated
//! QID values (the substrate of **PROP-A**) and constraint state — birth-year
//! interval, death year, role cardinalities, source certificates (the
//! substrate of **PROP-C**).
//!
//! The accepted links are kept explicitly so that the refinement step
//! (**REF**) can drop individual links and the store can be rebuilt from
//! what survives.

use std::collections::BTreeSet;

use snaps_graph::UnionFind;
use snaps_model::{CertificateId, Dataset, Gender, PersonRecord, RecordId};

use crate::attrs::AttrValues;
use crate::constraints::{alive_year, birth_interval, posthumous_slack, YearInterval};

/// An unordered accepted link between two records.
pub type Link = (RecordId, RecordId);

/// Summary of one entity: everything needed for PROP-A value propagation and
/// PROP-C constraint validation, mergeable in `O(size of smaller)`.
#[derive(Debug, Clone)]
pub struct EntityInfo {
    /// Member records.
    pub records: Vec<RecordId>,
    /// Certificates the members come from (two records of one certificate
    /// can never co-refer).
    pub certs: BTreeSet<CertificateId>,
    /// Accumulated QID values of all members.
    pub values: AttrValues,
    /// Entity gender (first recorded non-unknown gender).
    pub gender: Gender,
    /// Intersection of all members' implied birth-year intervals.
    pub birth: YearInterval,
    /// Number of `Bb` records (must stay ≤ 1).
    pub births: u8,
    /// Number of `Dd` records (must stay ≤ 1).
    pub deaths: u8,
    /// Death year, once a `Dd` record is a member.
    pub death_year: Option<i32>,
    /// Latest year any member requires the person alive.
    pub max_alive_year: Option<i32>,
    /// Maximum posthumous slack among members requiring aliveness
    /// (a `Bf` may predecease the birth by a year).
    pub alive_slack: i32,
}

impl EntityInfo {
    /// Summary of a single record.
    #[must_use]
    pub fn from_record(r: &PersonRecord) -> Self {
        Self {
            records: vec![r.id],
            certs: BTreeSet::from([r.certificate]),
            values: AttrValues::from_record(r),
            gender: r.gender,
            birth: birth_interval(r),
            births: u8::from(r.role == snaps_model::Role::BirthBaby),
            deaths: u8::from(r.role == snaps_model::Role::DeathDeceased),
            death_year: (r.role == snaps_model::Role::DeathDeceased).then_some(r.event_year),
            max_alive_year: alive_year(r),
            alive_slack: posthumous_slack(r.role),
        }
    }

    /// Whether merging `self` and `other` would violate any link or temporal
    /// constraint (PROP-C).
    #[must_use]
    pub fn compatible(&self, other: &EntityInfo) -> bool {
        // Link constraints: one birth, one death, disjoint certificates.
        if self.births + other.births > 1 || self.deaths + other.deaths > 1 {
            return false;
        }
        if !self.certs.is_disjoint(&other.certs) {
            return false;
        }
        // Gender.
        if !self.gender.compatible(other.gender) {
            return false;
        }
        // Temporal: birth intervals must intersect.
        if self.birth.intersect(other.birth).is_empty() {
            return false;
        }
        // Temporal: nothing requiring aliveness may postdate the death year
        // (beyond the posthumous slack).
        let death = self.death_year.or(other.death_year);
        if let Some(d) = death {
            for (alive, slack) in
                [(self.max_alive_year, self.alive_slack), (other.max_alive_year, other.alive_slack)]
            {
                if let Some(a) = alive {
                    if a > d + slack {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Fuse another entity's summary into this one.
    pub(crate) fn merge_from(&mut self, other: &EntityInfo, ds: &Dataset) {
        self.records.extend_from_slice(&other.records);
        self.certs.extend(other.certs.iter().copied());
        for &r in &other.records {
            self.values.push_record(ds.record(r));
        }
        if self.gender == Gender::Unknown {
            self.gender = other.gender;
        }
        self.birth = self.birth.intersect(other.birth);
        self.births += other.births;
        self.deaths += other.deaths;
        self.death_year = self.death_year.or(other.death_year);
        self.max_alive_year = match (self.max_alive_year, other.max_alive_year) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.alive_slack = self.alive_slack.max(other.alive_slack);
    }
}

/// The mutable entity state of a resolution run.
#[derive(Debug)]
pub struct EntityStore {
    uf: UnionFind,
    /// `info[root]` holds the summary for the set rooted at `root`.
    info: Vec<Option<EntityInfo>>,
    /// Accepted links, in acceptance order.
    links: Vec<Link>,
    /// Set view of `links` for O(log n) dedup.
    link_set: BTreeSet<Link>,
}

impl EntityStore {
    /// One singleton entity per record.
    #[must_use]
    pub fn new(ds: &Dataset) -> Self {
        let n = ds.len();
        let mut info = Vec::with_capacity(n);
        for r in &ds.records {
            info.push(Some(EntityInfo::from_record(r)));
        }
        Self { uf: UnionFind::new(n), info, links: Vec::new(), link_set: BTreeSet::new() }
    }

    /// The entity summary containing record `r`.
    #[cfg(test)]
    pub(crate) fn info(&mut self, r: RecordId) -> &EntityInfo {
        let root = self.uf.find(r.index());
        self.info[root].as_ref().expect("root always has info")
    }

    /// Whether two records are already in the same entity.
    pub fn same_entity(&mut self, a: RecordId, b: RecordId) -> bool {
        self.uf.same_set(a.index(), b.index())
    }

    /// Number of records in the entity containing `r`.
    pub fn entity_size(&mut self, r: RecordId) -> usize {
        let root = self.uf.find(r.index());
        self.info[root].as_ref().expect("root info").records.len()
    }

    /// Compare the accumulated value sets of two records' entities —
    /// the PROP-A comparison (paper §4.2.1): every value either entity has
    /// collected participates, and the best-matching pair per attribute wins.
    pub fn compare_entities(
        &mut self,
        a: RecordId,
        b: RecordId,
        geo_max_km: f64,
    ) -> crate::attrs::AttrSims {
        let ra = self.uf.find(a.index());
        let rb = self.uf.find(b.index());
        let ia = self.info[ra].as_ref().expect("root info");
        let ib = self.info[rb].as_ref().expect("root info");
        crate::attrs::compare(&ia.values, &ib.values, geo_max_km)
    }

    /// Constraint check *without* propagation: only the two records' own
    /// summaries are consulted (the "without PROP-A and PROP-C" ablation).
    pub fn can_merge_records_only(&self, a: RecordId, b: RecordId, ds: &Dataset) -> bool {
        let ia = EntityInfo::from_record(ds.record(a));
        let ib = EntityInfo::from_record(ds.record(b));
        ia.compatible(&ib)
    }

    /// Whether merging the entities of `a` and `b` satisfies all constraints.
    pub fn can_merge(&mut self, a: RecordId, b: RecordId) -> bool {
        let (ra, rb) = (self.uf.find(a.index()), self.uf.find(b.index()));
        if ra == rb {
            // Already one entity — trivially consistent.
            return true;
        }
        let ia = self.info[ra].as_ref().expect("root info");
        let ib = self.info[rb].as_ref().expect("root info");
        ia.compatible(ib)
    }

    /// Merge the entities of `a` and `b`, recording the link.
    ///
    /// When the records already co-refer the link is *confirmed* — recorded
    /// (once) without changing the clusters — and `false` is returned.
    /// Confirmed links matter: the refinement step measures cluster density
    /// over all classified-match links, including those between records an
    /// earlier merge already united (a triangle-closing link is evidence the
    /// cluster is sound).
    ///
    /// Note: `merge` deliberately does **not** enforce
    /// [`EntityStore::can_merge`]. Constraint checking is the caller's
    /// policy — the "without PROP-C" ablation intentionally merges what the
    /// propagated constraints would reject, and the resulting degenerate
    /// entity summaries (empty birth interval, two death records) are an
    /// accurate model of what wrong links do.
    pub fn merge(&mut self, a: RecordId, b: RecordId, ds: &Dataset) -> bool {
        let (ra, rb) = (self.uf.find(a.index()), self.uf.find(b.index()));
        if ra == rb {
            let link = (a.min(b), a.max(b));
            if self.link_set.insert(link) {
                self.links.push(link);
            }
            return false;
        }
        self.uf.union(ra, rb);
        let new_root = self.uf.find(ra);
        let old_root = if new_root == ra { rb } else { ra };
        let old = self.info[old_root].take().expect("losing root had info");
        let target = self.info[new_root].as_mut().expect("winning root has info");
        target.merge_from(&old, ds);
        let link = (a.min(b), a.max(b));
        if self.link_set.insert(link) {
            self.links.push(link);
        }
        true
    }

    /// Accepted links so far.
    #[must_use]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of merged links.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// All entities as record clusters (singletons included), deterministic.
    pub fn clusters(&mut self) -> Vec<Vec<RecordId>> {
        self.uf
            .groups()
            .into_iter()
            .map(|g| g.into_iter().map(RecordId::from_index).collect())
            .collect()
    }

    /// Rebuild the store keeping only `surviving` links (REF support).
    ///
    /// Links are re-applied in their original acceptance order without
    /// re-checking constraints: every surviving link was accepted under the
    /// caller's policy when it was made, and refinement only decides which
    /// links *survive*, not whether they were admissible.
    #[must_use]
    pub fn rebuilt_from(&self, surviving: &BTreeSet<Link>, ds: &Dataset) -> EntityStore {
        let mut fresh = EntityStore::new(ds);
        for &(a, b) in &self.links {
            if surviving.contains(&(a, b)) {
                fresh.merge(a, b, ds);
            }
        }
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaps_model::{CertificateKind, Role};

    /// Dataset: two birth certificates (same parents), one death certificate
    /// of the mother.
    fn fixture() -> Dataset {
        let mut ds = Dataset::new("t");
        let b1 = ds.push_certificate(CertificateKind::Birth, 1880);
        let bb1 = ds.push_record(b1, Role::BirthBaby, Gender::Female);
        let bm1 = ds.push_record(b1, Role::BirthMother, Gender::Female);
        let _bf1 = ds.push_record(b1, Role::BirthFather, Gender::Male);
        let b2 = ds.push_certificate(CertificateKind::Birth, 1883);
        let _bb2 = ds.push_record(b2, Role::BirthBaby, Gender::Male);
        let bm2 = ds.push_record(b2, Role::BirthMother, Gender::Female);
        let _bf2 = ds.push_record(b2, Role::BirthFather, Gender::Male);
        let d = ds.push_certificate(CertificateKind::Death, 1890);
        let dd = ds.push_record(d, Role::DeathDeceased, Gender::Female);
        ds.record_mut(dd).age = Some(35);
        ds.record_mut(bm1).first_name = Some("mary".into());
        ds.record_mut(bm2).first_name = Some("mary".into());
        ds.record_mut(bm1).surname = Some("smith".into());
        ds.record_mut(bm2).surname = Some("taylor".into());
        let _ = (bb1, bm1);
        ds
    }

    #[test]
    fn singletons_initially() {
        let ds = fixture();
        let mut store = EntityStore::new(&ds);
        assert_eq!(store.clusters().len(), ds.len());
        assert_eq!(store.link_count(), 0);
    }

    #[test]
    fn merge_unions_and_propagates_values() {
        let ds = fixture();
        let mut store = EntityStore::new(&ds);
        let (bm1, bm2) = (RecordId(1), RecordId(4));
        assert!(store.can_merge(bm1, bm2));
        assert!(store.merge(bm1, bm2, &ds));
        assert!(store.same_entity(bm1, bm2));
        // PROP-A substrate: both surnames are now entity values.
        let info = store.info(bm1);
        assert!(info.values.surnames.contains(&"smith".to_string()));
        assert!(info.values.surnames.contains(&"taylor".to_string()));
        assert_eq!(info.records.len(), 2);
    }

    #[test]
    fn same_certificate_blocks_merge() {
        let ds = fixture();
        let mut store = EntityStore::new(&ds);
        // Baby and mother of the same certificate.
        assert!(!store.can_merge(RecordId(0), RecordId(1)));
    }

    #[test]
    fn second_death_record_blocked() {
        let mut ds = fixture();
        let d2 = ds.push_certificate(CertificateKind::Death, 1895);
        let dd2 = ds.push_record(d2, Role::DeathDeceased, Gender::Female);
        ds.record_mut(dd2).age = Some(40);
        let mut store = EntityStore::new(&ds);
        let (bm1, dd1) = (RecordId(1), RecordId(6));
        assert!(store.can_merge(bm1, dd1));
        store.merge(bm1, dd1, &ds);
        // The entity already died in 1890 — a second Dd is impossible.
        assert!(!store.can_merge(bm1, dd2));
    }

    #[test]
    fn death_blocks_later_activity() {
        let mut ds = fixture();
        // A third birth certificate after the mother's 1890 death.
        let b3 = ds.push_certificate(CertificateKind::Birth, 1895);
        let bm3 = ds.push_record(b3, Role::BirthMother, Gender::Female);
        let mut store = EntityStore::new(&ds);
        let dd = RecordId(6);
        store.merge(RecordId(1), dd, &ds);
        assert!(!store.can_merge(RecordId(1), bm3), "cannot bear a child five years after death");
    }

    #[test]
    fn temporal_interval_propagates() {
        let ds = fixture();
        let mut store = EntityStore::new(&ds);
        // Dd aged 35 in 1890 → born ~1855±3. A Bb of 1880 cannot be her.
        assert!(!store.can_merge(RecordId(0), RecordId(6)));
    }

    #[test]
    fn gender_conflict_blocks() {
        let ds = fixture();
        let mut store = EntityStore::new(&ds);
        // Bm (female) vs Bf (male) of different certificates.
        assert!(!store.can_merge(RecordId(1), RecordId(5)));
    }

    #[test]
    fn rebuild_drops_links_and_cascades() {
        let ds = fixture();
        let mut store = EntityStore::new(&ds);
        store.merge(RecordId(1), RecordId(4), &ds);
        store.merge(RecordId(4), RecordId(6), &ds);
        assert_eq!(store.info(RecordId(1)).records.len(), 3);
        // Drop the first link; only the second survives.
        let surviving: BTreeSet<Link> = [(RecordId(4), RecordId(6))].into();
        let mut rebuilt = store.rebuilt_from(&surviving, &ds);
        assert!(!rebuilt.same_entity(RecordId(1), RecordId(4)));
        assert!(rebuilt.same_entity(RecordId(4), RecordId(6)));
        assert_eq!(rebuilt.link_count(), 1);
    }

    #[test]
    fn merge_is_idempotent() {
        let ds = fixture();
        let mut store = EntityStore::new(&ds);
        assert!(store.merge(RecordId(1), RecordId(4), &ds));
        assert!(!store.merge(RecordId(1), RecordId(4), &ds), "second merge is a no-op");
        assert_eq!(store.link_count(), 1, "confirming an existing link does not duplicate it");
    }
}
