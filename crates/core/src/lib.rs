//! The SNAPS contribution: unsupervised graph-based entity resolution for
//! vital records, and the pedigree graph built from its output.
//!
//! The offline pipeline (paper §4–§5) is:
//!
//! 1. **Dependency-graph generation** ([`depgraph`]) — LSH blocking produces
//!    candidate record pairs; pairs become *relational nodes*, their
//!    sufficiently similar QID value pairs become *atomic nodes*, and nodes
//!    between the same pair of certificates form a *group* connected by the
//!    certificates' relationship structure (paper Fig. 3).
//! 2. **Bootstrapping** ([`merge::bootstrap`]) — groups whose average atomic
//!    similarity reaches `t_b = 0.95` are merged outright.
//! 3. **Iterative merging** ([`merge::merge_pass`]) — a priority queue of
//!    groups (larger first, then more similar) is processed with the four key
//!    techniques:
//!    * **PROP-A** — global propagation of QID values: records are compared
//!      against *all* values of their current entity, so a woman's maiden and
//!      married surnames both count (§4.2.1);
//!    * **PROP-C** — global propagation of constraints: temporal and link
//!      constraints are enforced between whole entities, not just records
//!      (§4.2.2, [`constraints`]);
//!    * **AMB** — ambiguity-aware similarity: Eq. (1)–(3) combine attribute
//!      similarity with an IDF-style disambiguation score (§4.2.3,
//!      [`similarity`]);
//!    * **REL** — adaptive leveraging of relationship structure: a group that
//!      misses the merge threshold sheds its weakest node (the sibling node
//!      of a partial match group) and is reconsidered (§4.2.4).
//! 4. **Refinement** ([`refine`], **REF**) — after each phase, under-dense
//!    clusters lose their weakest record and oversized clusters are split at
//!    bridges (§4.2.5).
//! 5. **Pedigree-graph generation** ([`pedigree`]) — Algorithm 1 lifts record
//!    relationships to resolved entities.
//!
//! Every technique can be disabled individually through
//! [`config::Ablation`], which is how the paper's Table 3 is reproduced.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attrs;
pub mod config;
pub mod constraints;
pub mod depgraph;
pub mod entity;
pub mod merge;
pub mod pedigree;
pub mod pipeline;
pub mod refine;
pub mod similarity;

pub use config::{Ablation, SnapsConfig};
pub use pedigree::{PedigreeEntity, PedigreeGraph};
pub use pipeline::{resolve, resolve_with_obs, PassDetail, Resolution, ResolutionStats};
