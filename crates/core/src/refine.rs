//! Dynamic refining of record clusters (REF, paper §4.2.5).
//!
//! After each bootstrapping/merging phase, every entity's records-and-links
//! graph is inspected with Randall et al.'s graph measures:
//!
//! * a cluster of ≥ 3 records whose **density** falls below `t_d` sheds its
//!   lowest-degree record (the record hanging off the cluster by the fewest
//!   links is the most likely wrong link);
//! * a cluster larger than `t_n` records is **split at its bridges** (chains
//!   of records glued together by single links are characteristic of
//!   compounding wrong links).
//!
//! Dropped links free their records to be re-linked correctly in the next
//! merge pass — "unmerging of likely wrong links allows correct records to
//! be linked in the next iteration".

use std::collections::BTreeSet;

use snaps_graph::UndirectedGraph;
use snaps_model::{Dataset, RecordId};

use crate::config::SnapsConfig;
use crate::entity::{EntityStore, Link};

/// Statistics of one refinement run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct RefineStats {
    /// Links dropped because their cluster was under-dense.
    pub dropped_density: usize,
    /// Links dropped as bridges of oversized clusters.
    pub dropped_bridges: usize,
    /// Clusters inspected (size ≥ 3).
    pub inspected: usize,
}

/// Run one refinement sweep, returning the rebuilt store and statistics.
///
/// The store is rebuilt from the surviving links, so entity summaries and
/// constraint state stay consistent with the retained link set.
#[must_use]
pub(crate) fn refine(
    store: &EntityStore,
    ds: &Dataset,
    cfg: &SnapsConfig,
) -> (EntityStore, RefineStats) {
    let mut stats = RefineStats::default();
    let all_links: Vec<Link> = store.links().to_vec();
    let mut surviving: BTreeSet<Link> = all_links.iter().copied().collect();

    // Group links by entity root: rebuild clusters from the link set itself
    // (records with no surviving links are singletons and need no check).
    let mut probe = EntityStore::new(ds);
    for &(a, b) in &all_links {
        if probe.can_merge(a, b) && !probe.same_entity(a, b) {
            probe.merge(a, b, ds);
        }
    }
    let clusters: Vec<Vec<RecordId>> =
        probe.clusters().into_iter().filter(|c| c.len() >= 3).collect();

    for cluster in clusters {
        stats.inspected += 1;
        // Local graph: vertices are cluster positions, edges the links
        // inside the cluster.
        let index = |r: RecordId| cluster.binary_search(&r).expect("member of cluster");
        let in_cluster: Vec<Link> = all_links
            .iter()
            .copied()
            .filter(|&(a, b)| {
                cluster.binary_search(&a).is_ok() && cluster.binary_search(&b).is_ok()
            })
            .collect();
        let mut g = UndirectedGraph::new(cluster.len());
        for &(a, b) in &in_cluster {
            g.add_edge(index(a), index(b));
        }

        if cluster.len() > cfg.t_cluster_size {
            // Oversized: split at bridges.
            for (x, y) in g.bridges() {
                let link = ordered_link(cluster[x], cluster[y]);
                if surviving.remove(&link) {
                    stats.dropped_bridges += 1;
                }
            }
        } else if g.density() < cfg.t_density {
            // Under-dense: shed the weakest (lowest-degree) record.
            if let Some(v) = g.min_degree_vertex() {
                let victim = cluster[v];
                for &(a, b) in &in_cluster {
                    if (a == victim || b == victim) && surviving.remove(&(a, b)) {
                        stats.dropped_density += 1;
                    }
                }
            }
        }
    }

    (store.rebuilt_from(&surviving, ds), stats)
}

fn ordered_link(a: RecordId, b: RecordId) -> Link {
    (a.min(b), a.max(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaps_model::{CertificateKind, Gender, Role};

    /// Dataset of `n` death records that can all co-refer pairwise… except a
    /// person only dies once; use Bm records instead, which have no
    /// cardinality limit.
    fn chainable(n: usize) -> Dataset {
        let mut ds = Dataset::new("t");
        for _ in 0..n {
            let c = ds.push_certificate(CertificateKind::Birth, 1880);
            let r = ds.push_record(c, Role::BirthMother, Gender::Female);
            ds.record_mut(r).first_name = Some("mary".into());
            ds.record_mut(r).surname = Some("macleod".into());
        }
        ds
    }

    fn chain_store(ds: &Dataset, links: &[(u32, u32)]) -> EntityStore {
        let mut store = EntityStore::new(ds);
        for &(a, b) in links {
            // Later links of a clique are confirm-links (return false);
            // both kinds must be recorded.
            store.merge(RecordId(a), RecordId(b), ds);
        }
        store
    }

    #[test]
    fn dense_cluster_untouched() {
        let ds = chainable(4);
        // Clique on 4: density 1.0.
        let store = chain_store(&ds, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let (refined, stats) = refine(&store, &ds, &SnapsConfig::default());
        assert_eq!(stats.dropped_density + stats.dropped_bridges, 0);
        assert_eq!(refined.link_count(), 6);
    }

    #[test]
    fn sparse_cluster_sheds_weakest() {
        let ds = chainable(6);
        // A 5-path (density 4/10 = 0.4) plus a pendant vertex: density
        // 5/15 = 0.33… lower the threshold tension with a 6-chain:
        // density 5/15 = 0.333 ≥ 0.3 — so use a longer chain.
        let ds8 = chainable(8);
        let store = chain_store(&ds8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)]);
        // 8-chain: density 7/28 = 0.25 < 0.3.
        // disable bridge splitting for this test
        let cfg = SnapsConfig { t_cluster_size: 100, ..SnapsConfig::default() };
        let (refined, stats) = refine(&store, &ds8, &cfg);
        assert!(stats.dropped_density >= 1, "{stats:?}");
        assert!(refined.link_count() < store.link_count());
        let _ = ds;
    }

    #[test]
    fn oversized_cluster_split_at_bridges() {
        // Two 9-cliques joined by a single bridge: 18 records > t_n = 15.
        let ds = chainable(18);
        let mut links = Vec::new();
        for base in [0u32, 9] {
            for i in 0..9 {
                for j in (i + 1)..9 {
                    links.push((base + i, base + j));
                }
            }
        }
        links.push((8, 9)); // the bridge
        let store = chain_store(&ds, &links);
        let (refined, stats) = refine(&store, &ds, &SnapsConfig::default());
        assert_eq!(stats.dropped_bridges, 1);
        let mut refined = refined;
        assert!(!refined.same_entity(RecordId(0), RecordId(17)), "cluster was split");
        assert!(refined.same_entity(RecordId(0), RecordId(8)), "cliques stay whole");
    }

    #[test]
    fn pairs_and_singletons_ignored() {
        let ds = chainable(4);
        let store = chain_store(&ds, &[(0, 1)]);
        let (refined, stats) = refine(&store, &ds, &SnapsConfig::default());
        assert_eq!(stats.inspected, 0);
        assert_eq!(refined.link_count(), 1);
    }

    #[test]
    fn triangle_is_dense_enough() {
        let ds = chainable(3);
        let store = chain_store(&ds, &[(0, 1), (1, 2), (0, 2)]);
        let (refined, stats) = refine(&store, &ds, &SnapsConfig::default());
        assert_eq!(stats.inspected, 1);
        assert_eq!(refined.link_count(), 3);
    }

    #[test]
    fn three_chain_survives_at_default_threshold() {
        // Path of 3: density 2/3 ≈ 0.67 ≥ 0.3 → kept.
        let ds = chainable(3);
        let store = chain_store(&ds, &[(0, 1), (1, 2)]);
        let (refined, stats) = refine(&store, &ds, &SnapsConfig::default());
        assert_eq!(stats.dropped_density, 0);
        assert_eq!(refined.link_count(), 2);
    }
}
