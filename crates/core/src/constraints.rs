//! Temporal and link constraints (PROP-C).
//!
//! Constraints encode domain knowledge about vital records (paper §4.2.2):
//!
//! * **Temporal constraints** — e.g. "the time difference between a birth
//!   baby (`Bb`) becoming a birth mother (`Bm`) should be at least 15 and at
//!   most around 55 years". We implement these uniformly as a
//!   *birth-year interval* each record implies for its person; co-referring
//!   records must have intersecting intervals. Death additionally bounds all
//!   presence-requiring events.
//! * **Link constraints** — one-to-one role cardinalities: a person has
//!   exactly one birth (`Bb`) and one death (`Dd`) record, and two records on
//!   the same certificate always denote different people.
//!
//! Because constraints are checked between *entity summaries* (see
//! [`crate::entity::EntityInfo`]), a constraint established by one link
//! automatically propagates to all future link decisions — the paper's
//! "global propagation of constraints".

use snaps_model::{PersonRecord, Role};

/// An inclusive year interval; `lo > hi` encodes the empty interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct YearInterval {
    /// Earliest admissible year.
    pub lo: i32,
    /// Latest admissible year.
    pub hi: i32,
}

impl YearInterval {
    /// The unbounded interval.
    #[must_use]
    #[cfg(test)]
    pub(crate) fn unbounded() -> Self {
        Self { lo: i32::MIN / 2, hi: i32::MAX / 2 }
    }

    /// Whether the interval contains no years.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.lo > self.hi
    }

    /// Intersection of two intervals.
    #[must_use]
    pub fn intersect(self, other: Self) -> Self {
        Self { lo: self.lo.max(other.lo), hi: self.hi.min(other.hi) }
    }
}

/// Maximum plausible lifespan used in constraint windows.
pub(crate) const MAX_LIFESPAN: i32 = 105;
/// Minimum / maximum age at which a woman appears as a mother (paper §4.2.2).
pub(crate) const MOTHER_AGE: (i32, i32) = (15, 55);
/// Minimum / maximum age at which a man appears as a father.
pub(crate) const FATHER_AGE: (i32, i32) = (15, 70);
/// Minimum / maximum age at marriage.
pub(crate) const MARRIAGE_AGE: (i32, i32) = (15, 75);
/// Slack (years) allowed on stated ages when deriving intervals.
pub(crate) const AGE_SLACK: i32 = 3;

/// The birth-year interval a record implies for the person it describes.
///
/// This is the uniform encoding of the paper's role-pair temporal
/// constraints: two records can only co-refer if their intervals intersect.
#[must_use]
pub fn birth_interval(r: &PersonRecord) -> YearInterval {
    let y = r.event_year;
    // A stated age pins the birth year tightly (with slack for the era's
    // unreliable ages).
    if let Some(age) = r.age {
        let est = y - i32::from(age);
        return YearInterval { lo: est - AGE_SLACK, hi: est + AGE_SLACK };
    }
    match r.role {
        Role::BirthBaby => YearInterval { lo: y - 1, hi: y },
        Role::BirthMother | Role::DeathMother => {
            // Mothers of a child born/died around year y. For death
            // certificates the child's own birth year is unknown here, so the
            // window widens by a possible lifetime of the child.
            let slack = if r.role == Role::DeathMother { MAX_LIFESPAN } else { 0 };
            YearInterval { lo: y - slack - MOTHER_AGE.1, hi: y - MOTHER_AGE.0 }
        }
        Role::BirthFather | Role::DeathFather => {
            let slack = if r.role == Role::DeathFather { MAX_LIFESPAN } else { 0 };
            YearInterval { lo: y - slack - FATHER_AGE.1, hi: y - FATHER_AGE.0 }
        }
        Role::DeathDeceased => YearInterval { lo: y - MAX_LIFESPAN, hi: y },
        Role::DeathSpouse => YearInterval { lo: y - MAX_LIFESPAN, hi: y - MARRIAGE_AGE.0 },
        Role::MarriageBride | Role::MarriageGroom => {
            YearInterval { lo: y - MARRIAGE_AGE.1, hi: y - MARRIAGE_AGE.0 }
        }
        Role::MarriageBrideMother
        | Role::MarriageBrideFather
        | Role::MarriageGroomMother
        | Role::MarriageGroomFather => {
            // Parent of someone marrying in year y: the child is 15–75, the
            // parent 15–70 older again.
            YearInterval { lo: y - MARRIAGE_AGE.1 - FATHER_AGE.1, hi: y - MARRIAGE_AGE.0 - 15 }
        }
    }
}

/// Whether a record requires its person to be alive in the event year.
///
/// Principals, birth parents, and the informant spouse must be alive;
/// *mentioned* relatives (parents on death/marriage certificates) may already
/// be dead. A father may die shortly before the birth, hence one year of
/// slack handled by the caller.
#[must_use]
pub fn requires_alive(role: Role) -> bool {
    matches!(
        role,
        Role::BirthBaby
            | Role::BirthMother
            | Role::BirthFather
            | Role::DeathDeceased
            | Role::MarriageBride
            | Role::MarriageGroom
    )
}

/// The latest year a record asserts its person was alive, if any.
#[must_use]
pub fn alive_year(r: &PersonRecord) -> Option<i32> {
    requires_alive(r.role).then_some(r.event_year)
}

/// Posthumous slack: a `Bf` can have died up to this many years before the
/// event (a child born after the father's death).
#[must_use]
pub fn posthumous_slack(role: Role) -> i32 {
    match role {
        Role::BirthFather => 1,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaps_model::{CertificateId, Gender, RecordId};

    fn rec(role: Role, year: i32, age: Option<u16>) -> PersonRecord {
        let mut r = PersonRecord::new(RecordId(0), CertificateId(0), role, Gender::Unknown, year);
        r.age = age;
        r
    }

    #[test]
    fn interval_algebra() {
        let a = YearInterval { lo: 1850, hi: 1870 };
        let b = YearInterval { lo: 1860, hi: 1890 };
        assert_eq!(a.intersect(b), YearInterval { lo: 1860, hi: 1870 });
        let c = YearInterval { lo: 1880, hi: 1890 };
        assert!(a.intersect(c).is_empty());
        assert!(!YearInterval::unbounded().is_empty());
    }

    #[test]
    fn baby_interval_is_tight() {
        let i = birth_interval(&rec(Role::BirthBaby, 1880, None));
        assert_eq!(i, YearInterval { lo: 1879, hi: 1880 });
    }

    #[test]
    fn mother_age_window_matches_paper() {
        // "at least 15 and at most around 55 years" between Bb and Bm.
        let baby = birth_interval(&rec(Role::BirthBaby, 1880, None));
        let mum_of_1895 = birth_interval(&rec(Role::BirthMother, 1895, None));
        // Born 1880, mother in 1895 → age 15: allowed (boundary).
        assert!(!baby.intersect(mum_of_1895).is_empty());
        // (1894 would be age 14-15 but still intersects via the one-year
        // registration slack on Bb; 1893 is unambiguously too early.)
        let mum_of_1893 = birth_interval(&rec(Role::BirthMother, 1893, None));
        assert!(baby.intersect(mum_of_1893).is_empty());
        let mum_of_1936 = birth_interval(&rec(Role::BirthMother, 1936, None));
        // Age 56: impossible.
        assert!(baby.intersect(mum_of_1936).is_empty());
    }

    #[test]
    fn stated_age_pins_interval() {
        let i = birth_interval(&rec(Role::DeathDeceased, 1890, Some(40)));
        assert_eq!(i, YearInterval { lo: 1847, hi: 1853 });
    }

    #[test]
    fn deceased_without_age_spans_lifetime() {
        let i = birth_interval(&rec(Role::DeathDeceased, 1890, None));
        assert_eq!(i, YearInterval { lo: 1890 - MAX_LIFESPAN, hi: 1890 });
    }

    #[test]
    fn death_mother_window_is_loose() {
        // A Dm's child may have died at any age, so the window is wide but
        // still excludes people born after the event.
        let i = birth_interval(&rec(Role::DeathMother, 1890, None));
        assert!(i.lo < 1750);
        assert_eq!(i.hi, 1890 - MOTHER_AGE.0);
    }

    #[test]
    fn alive_requirements() {
        assert!(requires_alive(Role::BirthBaby));
        assert!(requires_alive(Role::MarriageGroom));
        assert!(!requires_alive(Role::DeathMother));
        assert!(!requires_alive(Role::DeathSpouse));
        assert_eq!(alive_year(&rec(Role::BirthMother, 1880, None)), Some(1880));
        assert_eq!(alive_year(&rec(Role::DeathFather, 1880, None)), None);
    }

    #[test]
    fn father_posthumous_slack() {
        assert_eq!(posthumous_slack(Role::BirthFather), 1);
        assert_eq!(posthumous_slack(Role::BirthMother), 0);
    }
}
