//! Bootstrapping and iterative merging (paper §4.2.6).
//!
//! **Bootstrapping** merges whole groups whose average *atomic* similarity
//! reaches `t_b = 0.95` — only groups, never singletons, because "groups can
//! provide more relationship evidence than individuals".
//!
//! **Merging** drains a priority queue of groups (larger first, then more
//! similar). Each popped group is processed with the REL loop: constraint-
//! violating nodes are removed (PROP-C), the survivors are re-evaluated with
//! propagated values (PROP-A) and disambiguation (AMB), and while the group
//! average stays below `t_m` the weakest node is dropped — which is exactly
//! how the sibling node of a partial match group is shed so the parent nodes
//! can merge (paper §4.2.4).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use snaps_model::{Dataset, RecordId, Relationship};
use snaps_obs::{Counter, Obs};
use snaps_strsim::variants::first_name_similarity;

use crate::config::{SingletonMergePolicy, SnapsConfig};
use crate::depgraph::{DependencyGraph, GroupId, NodeId, RelationalNode};
use crate::entity::EntityStore;
use crate::similarity::{atomic_similarity, NameFreqs, NodeSimilarity};

/// First-name similarity below which two spouse records are considered
/// evidence of two *different* couples (see
/// [`MergeContext::spouse_conflict`]).
pub(crate) const SPOUSE_VETO_SIMILARITY: f64 = 0.55;

/// Counter handles for merge internals, pre-resolved once per run so hot
/// loops pay one branch per event (see [`snaps_obs::Counter`]). All handles
/// are inert when instrumentation is disabled.
#[derive(Debug, Clone, Default)]
pub(crate) struct MergeCounters {
    /// Candidate comparisons attempted ([`MergeContext::evaluate`] calls).
    pub comparisons: Counter,
    /// Links created by accepted merges.
    pub links_created: Counter,
    /// Links confirmed between already co-referent records.
    pub links_confirmed: Counter,
    /// Nodes rejected by the spouse-context veto.
    pub reject_spouse_veto: Counter,
    /// Nodes rejected by entity-level cardinality/temporal constraints.
    pub reject_constraint: Counter,
    /// Nodes rejected by record-level pairwise checks (PROP ablated).
    pub reject_record_constraint: Counter,
}

impl MergeCounters {
    fn new(obs: &Obs) -> Self {
        Self {
            comparisons: obs.counter("merge.comparisons"),
            links_created: obs.counter("merge.links_created"),
            links_confirmed: obs.counter("merge.links_confirmed"),
            reject_spouse_veto: obs.counter("merge.reject.spouse_veto"),
            reject_constraint: obs.counter("merge.reject.constraint"),
            reject_record_constraint: obs.counter("merge.reject.record_constraint"),
        }
    }
}

/// Shared, read-only state of one resolution run.
pub struct MergeContext<'a> {
    /// The dataset being resolved.
    pub ds: &'a Dataset,
    /// Name-combination frequencies for the disambiguation similarity.
    pub freqs: &'a NameFreqs,
    /// Configuration.
    pub cfg: &'a SnapsConfig,
    /// Instrumentation counters (inert unless built via
    /// [`MergeContext::with_obs`] on an enabled handle).
    pub(crate) counters: MergeCounters,
    /// `spouse[r]` is the record married to `r` on `r`'s own certificate
    /// (the `Bf` of a `Bm`, the `Ds` of a `Dd`, …), precomputed once.
    spouse: Vec<Option<RecordId>>,
}

impl<'a> MergeContext<'a> {
    /// Build the context, precomputing each record's on-certificate spouse.
    /// Instrumentation is off; use [`MergeContext::with_obs`] to record.
    #[must_use]
    pub fn new(ds: &'a Dataset, freqs: &'a NameFreqs, cfg: &'a SnapsConfig) -> Self {
        Self::with_obs(ds, freqs, cfg, &Obs::disabled())
    }

    /// Build the context with counters registered on `obs`.
    #[must_use]
    pub fn with_obs(
        ds: &'a Dataset,
        freqs: &'a NameFreqs,
        cfg: &'a SnapsConfig,
        obs: &Obs,
    ) -> Self {
        let mut spouse = vec![None; ds.len()];
        for (rec, other, rel) in ds.all_relationships() {
            if rel == Relationship::SpouseOf {
                spouse[other.index()] = Some(rec);
            }
        }
        Self { ds, freqs, cfg, counters: MergeCounters::new(obs), spouse }
    }

    /// Negative relationship evidence (part of PROP-C): when both records of
    /// a node have a named spouse on their certificates and those spouses'
    /// first names are grossly dissimilar, the two records describe two
    /// different couples — the node must not merge. This is what separates a
    /// father from his namesake son: their names agree, their wives' do not.
    pub(crate) fn spouse_conflict(&self, node: &RelationalNode) -> bool {
        let (Some(sa), Some(sb)) = (self.spouse[node.a.index()], self.spouse[node.b.index()])
        else {
            return false;
        };
        let (sa, sb) = (self.ds.record(sa), self.ds.record(sb));
        if !sa.gender.compatible(sb.gender) {
            return false; // not comparable spouses
        }
        match (&sa.first_name, &sb.first_name) {
            (Some(fa), Some(fb)) => first_name_similarity(fa, fb) < SPOUSE_VETO_SIMILARITY,
            _ => false,
        }
    }

    /// A node's disambiguation-blended similarity from attribute sims.
    fn blend(&self, node: &RelationalNode, sims: &crate::attrs::AttrSims) -> NodeSimilarity {
        let atomic = atomic_similarity(sims, self.cfg);
        let disambiguation =
            self.freqs.disambiguation_freqs(self.freqs.freq_of(node.a), self.freqs.freq_of(node.b));
        let gamma = self.cfg.effective_gamma();
        NodeSimilarity {
            atomic,
            disambiguation,
            combined: gamma * atomic + (1.0 - gamma) * disambiguation,
        }
    }

    /// Evaluate a node's similarity under the current entity state.
    ///
    /// With PROP-A enabled and at least one non-singleton entity involved,
    /// the comparison runs over the entities' accumulated value sets;
    /// otherwise the cached record-level similarities are reused.
    pub(crate) fn evaluate(
        &self,
        node: &RelationalNode,
        store: &mut EntityStore,
    ) -> NodeSimilarity {
        self.counters.comparisons.incr();
        if self.cfg.ablation.prop
            && (store.entity_size(node.a) > 1 || store.entity_size(node.b) > 1)
        {
            let sims = store.compare_entities(node.a, node.b, self.cfg.geo_max_km);
            self.blend(node, &sims)
        } else {
            self.blend(node, &node.base_sims)
        }
    }

    /// Whether the node passes its constraints under the current state:
    /// entity-level cardinality/temporal constraints plus the spouse-context
    /// veto with PROP-C; record-level pairwise checks only without.
    pub(crate) fn valid(&self, node: &RelationalNode, store: &mut EntityStore) -> bool {
        if self.cfg.ablation.prop {
            if self.cfg.spouse_veto && self.spouse_conflict(node) {
                self.counters.reject_spouse_veto.incr();
                return false;
            }
            let ok = store.can_merge(node.a, node.b);
            if !ok {
                self.counters.reject_constraint.incr();
            }
            ok
        } else {
            let ok = store.can_merge_records_only(node.a, node.b, self.ds);
            if !ok {
                self.counters.reject_record_constraint.incr();
            }
            ok
        }
    }
}

/// Merge the given nodes (highest similarity first), re-validating before
/// each union; returns how many links were created.
fn merge_nodes(
    ctx: &MergeContext<'_>,
    dg: &DependencyGraph,
    store: &mut EntityStore,
    mut nodes: Vec<(NodeId, f64)>,
) -> usize {
    // Highest similarity merges first: if two nodes of the group contend for
    // the same record, the stronger claim wins and the weaker one fails its
    // re-validation (the certificates-disjoint constraint).
    nodes.sort_by(|x, y| y.1.total_cmp(&x.1).then_with(|| x.0.cmp(&y.0)));
    let mut merged = 0;
    for (id, _) in nodes {
        let node = &dg.nodes[id];
        if store.same_entity(node.a, node.b) {
            // Confirm the link: an earlier merge in this group already
            // united these records transitively; the direct link still
            // counts as density evidence for refinement.
            store.merge(node.a, node.b, ctx.ds);
            ctx.counters.links_confirmed.incr();
            continue;
        }
        if ctx.valid(node, store) {
            store.merge(node.a, node.b, ctx.ds);
            ctx.counters.links_created.incr();
            merged += 1;
        }
    }
    merged
}

/// Confirm every relational node whose records already co-refer as an
/// explicit link. The refinement step measures cluster density over merged
/// links; without this sweep an entity united through a chain of group
/// merges looks like a sparse path even when dozens of direct candidate
/// nodes corroborate it (paper: a merged node *is* a link, §4.2.5).
pub fn confirm_intra_entity_links(
    ctx: &MergeContext<'_>,
    dg: &DependencyGraph,
    store: &mut EntityStore,
) {
    for node in &dg.nodes {
        if store.same_entity(node.a, node.b) {
            store.merge(node.a, node.b, ctx.ds);
            ctx.counters.links_confirmed.incr();
        }
    }
}

/// The nodes of a group whose records are not yet co-referent.
fn pending(group_nodes: &[NodeId], dg: &DependencyGraph, store: &mut EntityStore) -> Vec<NodeId> {
    group_nodes
        .iter()
        .copied()
        .filter(|&id| {
            let n = &dg.nodes[id];
            !store.same_entity(n.a, n.b)
        })
        .collect()
}

/// Bootstrapping (paper §4.2.6, Fig. 4a): merge every group of two or more
/// valid nodes whose average atomic similarity is at least `t_b`.
/// Returns the number of links created.
pub fn bootstrap(ctx: &MergeContext<'_>, dg: &DependencyGraph, store: &mut EntityStore) -> usize {
    let mut merged = 0;
    for group in &dg.groups {
        let nodes: Vec<NodeId> = pending(&group.nodes, dg, store)
            .into_iter()
            .filter(|&id| ctx.valid(&dg.nodes[id], store))
            .collect();
        if nodes.len() < 2 {
            continue; // singletons are left to the merging step
        }
        let sims: Vec<f64> =
            nodes.iter().map(|&id| atomic_similarity(&dg.nodes[id].base_sims, ctx.cfg)).collect();
        let avg = sims.iter().sum::<f64>() / sims.len() as f64;
        if avg >= ctx.cfg.t_bootstrap {
            merged += merge_nodes(ctx, dg, store, nodes.into_iter().zip(sims).collect());
        }
    }
    merged
}

/// Queue entry: groups ordered by pending size, then average similarity,
/// then (for determinism) group id.
#[derive(Debug, PartialEq)]
struct Priority {
    size: usize,
    sim: f64,
    group: GroupId,
}

impl Eq for Priority {}

impl Ord for Priority {
    fn cmp(&self, other: &Self) -> Ordering {
        self.size
            .cmp(&other.size)
            .then_with(|| self.sim.total_cmp(&other.sim))
            .then_with(|| other.group.cmp(&self.group))
    }
}

impl PartialOrd for Priority {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// One merging pass: drain the priority queue of groups once.
///
/// Returns the number of links created. Callers loop passes until a pass
/// creates none (value propagation from earlier merges can enable later
/// ones).
pub fn merge_pass(ctx: &MergeContext<'_>, dg: &DependencyGraph, store: &mut EntityStore) -> usize {
    // Initialise the queue with every group's current pending view.
    let mut heap: BinaryHeap<Priority> = BinaryHeap::new();
    for (gid, group) in dg.groups.iter().enumerate() {
        let nodes = pending(&group.nodes, dg, store);
        if nodes.is_empty() {
            continue;
        }
        let avg = nodes.iter().map(|&id| ctx.evaluate(&dg.nodes[id], store).combined).sum::<f64>()
            / nodes.len() as f64;
        heap.push(Priority { size: nodes.len(), sim: avg, group: gid });
    }

    let mut merged = 0;
    while let Some(Priority { group, .. }) = heap.pop() {
        let mut nodes = pending(&dg.groups[group].nodes, dg, store);
        if nodes.is_empty() {
            continue;
        }

        let original_size = dg.groups[group].nodes.len();
        let may_merge_single = match ctx.cfg.singleton_policy {
            SingletonMergePolicy::Always => true,
            SingletonMergePolicy::OriginalOnly => original_size == 1,
            SingletonMergePolicy::Never => false,
        };

        if ctx.cfg.ablation.rel {
            // REL: iteratively shed constraint violators and the weakest
            // node until the remainder clears t_m (or nothing is left).
            loop {
                nodes.retain(|&id| ctx.valid(&dg.nodes[id], store));
                if nodes.is_empty() {
                    break;
                }
                let evals: Vec<(NodeId, f64)> = nodes
                    .iter()
                    .map(|&id| (id, ctx.evaluate(&dg.nodes[id], store).combined))
                    .collect();
                let avg = evals.iter().map(|e| e.1).sum::<f64>() / evals.len() as f64;
                // A lone node carries no corroborating relationship
                // evidence; it must clear a raised threshold.
                let threshold = if nodes.len() == 1 {
                    ctx.cfg.t_merge + ctx.cfg.singleton_margin
                } else {
                    ctx.cfg.t_merge
                };
                if avg >= threshold && (nodes.len() >= 2 || may_merge_single) {
                    merged += merge_nodes(ctx, dg, store, evals);
                    break;
                }
                if nodes.len() == 1 {
                    break; // "until the node group becomes a pair"
                }
                // Drop the weakest node (the sibling node of a partial
                // match group) and reconsider.
                let (weakest, _) = evals
                    .iter()
                    .copied()
                    .min_by(|x, y| x.1.total_cmp(&y.1).then_with(|| x.0.cmp(&y.0)))
                    .expect("non-empty");
                nodes.retain(|&id| id != weakest);
            }
        } else if ctx.cfg.group_merging {
            // Ablated REL: plain group-average merging, all or nothing —
            // one bad sibling node sinks the whole group.
            nodes.retain(|&id| ctx.valid(&dg.nodes[id], store));
            if nodes.is_empty() {
                continue;
            }
            if nodes.len() == 1 && !may_merge_single {
                continue;
            }
            let evals: Vec<(NodeId, f64)> =
                nodes.iter().map(|&id| (id, ctx.evaluate(&dg.nodes[id], store).combined)).collect();
            let avg = evals.iter().map(|e| e.1).sum::<f64>() / evals.len() as f64;
            if avg >= ctx.cfg.t_merge {
                merged += merge_nodes(ctx, dg, store, evals);
            }
        } else {
            // Dong-style per-node merging: every node clearing the
            // threshold on its own merges, regardless of its group's other
            // nodes (relational evidence acts only through propagation).
            nodes.retain(|&id| ctx.valid(&dg.nodes[id], store));
            let evals: Vec<(NodeId, f64)> = nodes
                .iter()
                .map(|&id| (id, ctx.evaluate(&dg.nodes[id], store).combined))
                .filter(|&(_, s)| s >= ctx.cfg.t_merge)
                .collect();
            merged += merge_nodes(ctx, dg, store, evals);
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaps_model::{CertificateKind, Gender, RecordId, Role};

    /// Build a dataset realising the paper's Fig. 3/4 scenario:
    ///
    /// * B1: baby flora, mother mary, father john (surname macrae)
    /// * D1: deceased flora (age 5, 1885) with the same parents → true match
    /// * B2: baby ann, same parents (flora's sibling)
    /// * D2: deceased ann (sibling), same parents → partial match group with
    ///   B1 via the parents, sibling node (Bb1,Dd2) must be shed.
    fn family() -> Dataset {
        let mut ds = Dataset::new("t");
        let cert = |ds: &mut Dataset,
                    kind: CertificateKind,
                    year: i32,
                    people: &[(Role, &str, &str, Option<u16>)]| {
            let c = ds.push_certificate(kind, year);
            for &(role, f, s, age) in people {
                let g = role.implied_gender().unwrap_or(Gender::Female);
                let r = ds.push_record(c, role, g);
                let rec = ds.record_mut(r);
                rec.first_name = Some(f.into());
                rec.surname = Some(s.into());
                rec.age = age;
                rec.address = Some("portree".into());
            }
            c
        };
        cert(
            &mut ds,
            CertificateKind::Birth,
            1880,
            &[
                (Role::BirthBaby, "flora", "macrae", None),
                (Role::BirthMother, "mary", "macrae", None),
                (Role::BirthFather, "john", "macrae", None),
            ],
        );
        cert(
            &mut ds,
            CertificateKind::Death,
            1885,
            &[
                (Role::DeathDeceased, "flora", "macrae", Some(5)),
                (Role::DeathMother, "mary", "macrae", None),
                (Role::DeathFather, "john", "macrae", None),
            ],
        );
        ds
    }

    fn ctx<'a>(ds: &'a Dataset, freqs: &'a NameFreqs, cfg: &'a SnapsConfig) -> MergeContext<'a> {
        MergeContext::new(ds, freqs, cfg)
    }

    #[test]
    fn bootstrap_merges_perfect_family_group() {
        let ds = family();
        let pairs = vec![
            (RecordId(0), RecordId(3)),
            (RecordId(1), RecordId(4)),
            (RecordId(2), RecordId(5)),
        ];
        let cfg = SnapsConfig::default();
        let dg = DependencyGraph::build(&ds, &pairs, &cfg);
        let freqs = NameFreqs::build(&ds);
        let mut store = EntityStore::new(&ds);
        let n = bootstrap(&ctx(&ds, &freqs, &cfg), &dg, &mut store);
        assert_eq!(n, 3);
        assert!(store.same_entity(RecordId(0), RecordId(3)));
        assert!(store.same_entity(RecordId(1), RecordId(4)));
        assert!(store.same_entity(RecordId(2), RecordId(5)));
    }

    #[test]
    fn bootstrap_skips_singleton_groups() {
        let ds = family();
        let pairs = vec![(RecordId(1), RecordId(4))];
        let cfg = SnapsConfig::default();
        let dg = DependencyGraph::build(&ds, &pairs, &cfg);
        let freqs = NameFreqs::build(&ds);
        let mut store = EntityStore::new(&ds);
        assert_eq!(bootstrap(&ctx(&ds, &freqs, &cfg), &dg, &mut store), 0);
    }

    /// The partial-match-group scenario: sibling node must be shed by REL,
    /// after which the parent nodes merge.
    fn sibling_dataset() -> (Dataset, Vec<(RecordId, RecordId)>) {
        let mut ds = family();
        // D2: the sibling ann dies in 1890 with the same parents.
        let c = ds.push_certificate(CertificateKind::Death, 1890);
        for (role, f, age) in [
            (Role::DeathDeceased, "ann", Some(7u16)),
            (Role::DeathMother, "mary", None),
            (Role::DeathFather, "john", None),
        ] {
            let g = role.implied_gender().unwrap_or(Gender::Female);
            let r = ds.push_record(c, role, g);
            let rec = ds.record_mut(r);
            rec.first_name = Some(f.into());
            rec.surname = Some("macrae".into());
            rec.age = age;
            rec.address = Some("portree".into());
        }
        // Group (B1, D2): sibling node (Bb1=flora, Dd2=ann) + parent nodes.
        let pairs = vec![
            (RecordId(0), RecordId(6)), // flora ↔ ann: the sibling node
            (RecordId(1), RecordId(7)), // mary ↔ mary
            (RecordId(2), RecordId(8)), // john ↔ john
        ];
        (ds, pairs)
    }

    #[test]
    fn rel_sheds_sibling_node_and_merges_parents() {
        let (ds, pairs) = sibling_dataset();
        // Tiny fixtures distort Eq. 2 (log ratios over N=9 records), so the
        // REL mechanics are tested with a threshold suited to the fixture.
        let cfg = SnapsConfig { t_merge: 0.65, ..SnapsConfig::default() };
        let dg = DependencyGraph::build(&ds, &pairs, &cfg);
        let freqs = NameFreqs::build(&ds);
        let mut store = EntityStore::new(&ds);
        let c = ctx(&ds, &freqs, &cfg);
        // Bootstrap must NOT merge: the sibling node drags the average down.
        assert_eq!(bootstrap(&c, &dg, &mut store), 0);
        let merged = merge_pass(&c, &dg, &mut store);
        assert_eq!(merged, 2, "both parent nodes merge");
        assert!(store.same_entity(RecordId(1), RecordId(7)));
        assert!(store.same_entity(RecordId(2), RecordId(8)));
        assert!(!store.same_entity(RecordId(0), RecordId(6)), "siblings stay apart");
    }

    #[test]
    fn without_rel_the_whole_group_sinks() {
        let (ds, pairs) = sibling_dataset();
        // same fixture-sized threshold as the REL test
        let mut cfg = SnapsConfig { t_merge: 0.65, ..SnapsConfig::default() };
        cfg.ablation.rel = false;
        let dg = DependencyGraph::build(&ds, &pairs, &cfg);
        let freqs = NameFreqs::build(&ds);
        let mut store = EntityStore::new(&ds);
        let c = ctx(&ds, &freqs, &cfg);
        bootstrap(&c, &dg, &mut store);
        let merged = merge_pass(&c, &dg, &mut store);
        assert_eq!(merged, 0, "sibling node sinks the group without REL");
    }

    #[test]
    fn constraints_remove_impossible_nodes() {
        // Deceased aged 40 in 1885 cannot be the 1880 baby; but with a
        // similar name the node exists. The group's remaining node (parents)
        // is unaffected.
        let mut ds = family();
        ds.record_mut(RecordId(3)).age = Some(40);
        let pairs = vec![(RecordId(0), RecordId(3)), (RecordId(1), RecordId(4))];
        // Fixture-sized threshold (see REL test). The group degrades to one
        // node when the impossible node is removed; allow that remnant
        // unpenalised so the test isolates the constraint logic from the
        // singleton policy.
        let cfg = SnapsConfig {
            t_merge: 0.65,
            singleton_policy: crate::config::SingletonMergePolicy::Always,
            singleton_margin: 0.0,
            ..SnapsConfig::default()
        };
        let dg = DependencyGraph::build(&ds, &pairs, &cfg);
        let freqs = NameFreqs::build(&ds);
        let mut store = EntityStore::new(&ds);
        let c = ctx(&ds, &freqs, &cfg);
        bootstrap(&c, &dg, &mut store);
        merge_pass(&c, &dg, &mut store);
        assert!(!store.same_entity(RecordId(0), RecordId(3)), "temporal violation");
        assert!(store.same_entity(RecordId(1), RecordId(4)), "mother node still merges");
    }

    #[test]
    fn prop_a_recovers_changed_surname() {
        // A woman appears as baby (smith), then as mother under her married
        // name (taylor). Once (Bb, Bm2-as-taylor) links via a first merge,
        // PROP-A lets a later record written "tayler" match her entity.
        let mut ds = Dataset::new("t");
        let b1 = ds.push_certificate(CertificateKind::Birth, 1860);
        let bb = ds.push_record(b1, Role::BirthBaby, Gender::Female);
        {
            let r = ds.record_mut(bb);
            r.first_name = Some("oighrig".into());
            r.surname = Some("smith".into());
        }
        // Her child's birth: she is Bm with married surname taylor.
        let b2 = ds.push_certificate(CertificateKind::Birth, 1885);
        let bm = ds.push_record(b2, Role::BirthMother, Gender::Female);
        {
            let r = ds.record_mut(bm);
            r.first_name = Some("oighrig".into());
            r.surname = Some("taylor".into());
        }
        // Her death record: surname transcribed "tayler", age pins birth year.
        let d = ds.push_certificate(CertificateKind::Death, 1890);
        let dd = ds.push_record(d, Role::DeathDeceased, Gender::Female);
        {
            let r = ds.record_mut(dd);
            r.first_name = Some("oighrig".into());
            r.surname = Some("tayler".into());
            r.age = Some(30);
        }
        let freqs = NameFreqs::build(&ds);
        let cfg = SnapsConfig::default();
        let pairs = vec![(bb, dd), (bm, dd), (bb, bm)];
        let dg = DependencyGraph::build(&ds, &pairs, &cfg);
        let mut store = EntityStore::new(&ds);
        // Seed: merge (bb, bm) — e.g. established through other evidence.
        store.merge(bb, bm, &ds);
        let c = ctx(&ds, &freqs, &cfg);
        // Node (bb, dd) compared record-to-record: smith vs tayler — the
        // core category scores 0. With PROP-A, the entity {bb, bm} carries
        // taylor, so the comparison uses (tayler, taylor).
        let node_bb_dd = dg.nodes.iter().find(|n| n.a == bb && n.b == dd).unwrap();
        let with_prop = c.evaluate(node_bb_dd, &mut store).atomic;
        let record_only = atomic_similarity(&node_bb_dd.base_sims, &cfg);
        assert!(
            with_prop > record_only + 0.1,
            "propagation lifts the similarity: {with_prop} vs {record_only}"
        );
    }

    #[test]
    fn counters_track_comparisons_links_and_rejections() {
        let (ds, pairs) = sibling_dataset();
        let cfg = SnapsConfig { t_merge: 0.65, ..SnapsConfig::default() };
        let dg = DependencyGraph::build(&ds, &pairs, &cfg);
        let freqs = NameFreqs::build(&ds);
        let mut store = EntityStore::new(&ds);
        let obs = Obs::new(&snaps_obs::ObsConfig::full());
        let c = MergeContext::with_obs(&ds, &freqs, &cfg, &obs);

        let merged = bootstrap(&c, &dg, &mut store) + merge_pass(&c, &dg, &mut store);
        assert_eq!(c.counters.links_created.get(), merged as u64);
        assert!(c.counters.comparisons.get() > 0, "evaluations are counted");

        // An impossible node (temporal violation) is counted as a
        // constraint rejection when the pass considers it.
        let mut ds2 = family();
        ds2.record_mut(RecordId(3)).age = Some(40);
        let pairs2 = vec![(RecordId(0), RecordId(3)), (RecordId(1), RecordId(4))];
        let dg2 = DependencyGraph::build(&ds2, &pairs2, &cfg);
        let freqs2 = NameFreqs::build(&ds2);
        let mut store2 = EntityStore::new(&ds2);
        let obs2 = Obs::new(&snaps_obs::ObsConfig::full());
        let c2 = MergeContext::with_obs(&ds2, &freqs2, &cfg, &obs2);
        bootstrap(&c2, &dg2, &mut store2);
        merge_pass(&c2, &dg2, &mut store2);
        assert!(c2.counters.reject_constraint.get() > 0, "temporal violation counted");

        // The plain constructor stays inert.
        let inert = MergeContext::new(&ds, &freqs, &cfg);
        let mut store3 = EntityStore::new(&ds);
        bootstrap(&inert, &dg, &mut store3);
        assert_eq!(inert.counters.links_created.get(), 0);
        assert_eq!(inert.counters.comparisons.get(), 0);
    }

    #[test]
    fn priority_orders_by_size_then_similarity() {
        let a = Priority { size: 3, sim: 0.5, group: 0 };
        let b = Priority { size: 2, sim: 0.99, group: 1 };
        assert!(a > b, "larger group wins regardless of similarity");
        let c = Priority { size: 2, sim: 0.8, group: 2 };
        assert!(b > c, "same size: higher similarity wins");
        let d = Priority { size: 2, sim: 0.8, group: 3 };
        assert!(c > d, "ties broken by lower group id");
    }
}
