//! The end-to-end offline resolution pipeline.
//!
//! [`resolve`] wires the stages of Fig. 1's offline component together:
//! blocking → dependency graph → bootstrap → (merge pass → refine)* →
//! final clusters, timing every phase for the scalability experiments
//! (paper Tables 5 and 6).

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use snaps_blocking::candidate_pairs;
use snaps_model::{Dataset, RecordId, RoleCategory};

use crate::config::SnapsConfig;
use crate::depgraph::DependencyGraph;
use crate::entity::{EntityStore, Link};
use crate::merge::{bootstrap, confirm_intra_entity_links, merge_pass, MergeContext};
use crate::refine::refine;
use crate::similarity::NameFreqs;

/// Phase timings and graph sizes of one resolution run.
#[derive(Debug, Clone, Default)]
pub struct ResolutionStats {
    /// Distinct atomic nodes `|N_A|`.
    pub n_atomic: usize,
    /// Relational nodes `|N_R|` (candidate pairs).
    pub n_relational: usize,
    /// Certificate-pair groups.
    pub n_groups: usize,
    /// Dependency-graph edges (atomic attachments + relationship edges).
    pub n_edges: usize,
    /// Time spent in blocking + atomic-node generation.
    pub t_atomic: Duration,
    /// Time spent building relational nodes and groups.
    pub t_relational: Duration,
    /// Time spent bootstrapping.
    pub t_bootstrap: Duration,
    /// Time spent in the iterative merging passes.
    pub t_merge: Duration,
    /// Time spent refining (REF).
    pub t_refine: Duration,
    /// Merge passes executed.
    pub passes: usize,
    /// Links created by bootstrapping.
    pub bootstrap_links: usize,
    /// Links surviving at the end.
    pub final_links: usize,
}

impl ResolutionStats {
    /// Total linkage time (bootstrap + merging), the quantity Table 6 scales.
    #[must_use]
    pub fn linkage_time(&self) -> Duration {
        self.t_bootstrap + self.t_merge
    }

    /// Total offline time.
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.t_atomic + self.t_relational + self.t_bootstrap + self.t_merge + self.t_refine
    }
}

/// The outcome of offline resolution: record clusters (entities) and the
/// links that built them.
#[derive(Debug)]
pub struct Resolution {
    /// Record clusters, singletons included, deterministic order.
    pub clusters: Vec<Vec<RecordId>>,
    /// Accepted links.
    pub links: Vec<Link>,
    /// Phase statistics.
    pub stats: ResolutionStats,
}

impl Resolution {
    /// Entity index of every record (parallel to the dataset's record arena).
    #[must_use]
    pub fn record_cluster_index(&self, n_records: usize) -> Vec<usize> {
        let mut idx = vec![usize::MAX; n_records];
        for (c, cluster) in self.clusters.iter().enumerate() {
            for &r in cluster {
                idx[r.index()] = c;
            }
        }
        idx
    }

    /// All predicted matching record pairs between two role categories —
    /// the transitive closure within each cluster, restricted to pairs of
    /// the requested categories on different certificates. This mirrors how
    /// ground-truth links are counted (see `snaps_datagen::GroundTruth`).
    #[must_use]
    pub fn matched_pairs(
        &self,
        ds: &Dataset,
        cat_a: RoleCategory,
        cat_b: RoleCategory,
    ) -> BTreeSet<(RecordId, RecordId)> {
        let mut pairs = BTreeSet::new();
        for cluster in &self.clusters {
            for (i, &ra) in cluster.iter().enumerate() {
                for &rb in &cluster[i + 1..] {
                    let (a, b) = (ds.record(ra), ds.record(rb));
                    if a.certificate == b.certificate {
                        continue;
                    }
                    let (ca, cb) = (a.role.category(), b.role.category());
                    if (ca == cat_a && cb == cat_b) || (ca == cat_b && cb == cat_a) {
                        pairs.insert((ra.min(rb), ra.max(rb)));
                    }
                }
            }
        }
        pairs
    }
}

/// Run the full offline SNAPS pipeline over a dataset.
///
/// # Panics
/// Panics if the configuration is invalid (see [`SnapsConfig::validate`]).
#[must_use]
pub fn resolve(ds: &Dataset, cfg: &SnapsConfig) -> Resolution {
    cfg.validate().expect("invalid SnapsConfig");
    let mut stats = ResolutionStats::default();

    // Blocking + atomic-node phase.
    let t0 = Instant::now();
    let pairs = candidate_pairs(ds, cfg.lsh, cfg.year_tolerance);
    stats.t_atomic = t0.elapsed();

    // Relational nodes and groups.
    let t0 = Instant::now();
    let dg = DependencyGraph::build(ds, &pairs, cfg);
    stats.t_relational = t0.elapsed();
    stats.n_atomic = dg.atomic_count;
    stats.n_relational = dg.relational_count();
    stats.n_groups = dg.groups.len();
    stats.n_edges = dg.edge_count();

    let freqs = NameFreqs::build(ds);
    let ctx = MergeContext::new(ds, &freqs, cfg);
    let mut store = EntityStore::new(ds);

    // Bootstrap.
    let t0 = Instant::now();
    stats.bootstrap_links = bootstrap(&ctx, &dg, &mut store);
    stats.t_bootstrap = t0.elapsed();

    if cfg.ablation.refine {
        let t0 = Instant::now();
        confirm_intra_entity_links(&ctx, &dg, &mut store);
        let (refined, _) = refine(&store, ds, cfg);
        store = refined;
        stats.t_refine += t0.elapsed();
    }

    // Iterative merging.
    for _pass in 0..cfg.max_passes {
        let t0 = Instant::now();
        let merged = merge_pass(&ctx, &dg, &mut store);
        stats.t_merge += t0.elapsed();
        stats.passes += 1;

        if cfg.ablation.refine {
            let t0 = Instant::now();
            confirm_intra_entity_links(&ctx, &dg, &mut store);
            let (refined, _) = refine(&store, ds, cfg);
            store = refined;
            stats.t_refine += t0.elapsed();
        }
        if merged == 0 {
            break;
        }
    }

    stats.final_links = store.link_count();
    Resolution { clusters: store.clusters(), links: store.links().to_vec(), stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaps_model::{CertificateKind, Gender, Role};

    /// A small but structured dataset: one family with two children, each
    /// child with a birth and a death certificate; plus an unrelated family
    /// with identical parent names in a different parish and generation.
    fn village() -> Dataset {
        let mut ds = Dataset::new("t");
        let cert = |ds: &mut Dataset,
                        kind: CertificateKind,
                        year: i32,
                        people: &[(Role, &str, &str, Option<u16>, &str)]| {
            let c = ds.push_certificate(kind, year);
            for &(role, f, s, age, addr) in people {
                let g = role.implied_gender().unwrap_or(Gender::Female);
                let r = ds.push_record(c, role, g);
                let rec = ds.record_mut(r);
                rec.first_name = Some(f.into());
                rec.surname = Some(s.into());
                rec.age = age;
                rec.address = Some(addr.into());
            }
            c
        };
        // Family A in portree.
        cert(&mut ds, CertificateKind::Birth, 1880, &[
            (Role::BirthBaby, "flora", "macrae", None, "portree"),
            (Role::BirthMother, "effie", "macrae", None, "portree"),
            (Role::BirthFather, "torquil", "macrae", None, "portree"),
        ]);
        cert(&mut ds, CertificateKind::Birth, 1882, &[
            (Role::BirthBaby, "hector", "macrae", None, "portree"),
            (Role::BirthMother, "effie", "macrae", None, "portree"),
            (Role::BirthFather, "torquil", "macrae", None, "portree"),
        ]);
        cert(&mut ds, CertificateKind::Death, 1885, &[
            (Role::DeathDeceased, "flora", "macrae", Some(5), "portree"),
            (Role::DeathMother, "effie", "macrae", None, "portree"),
            (Role::DeathFather, "torquil", "macrae", None, "portree"),
        ]);
        // Family B in snizort, one generation later, same parent names.
        cert(&mut ds, CertificateKind::Birth, 1899, &[
            (Role::BirthBaby, "kate", "macrae", None, "snizort"),
            (Role::BirthMother, "effie", "macrae", None, "snizort"),
            (Role::BirthFather, "torquil", "macrae", None, "snizort"),
        ]);
        ds
    }

    #[test]
    fn pipeline_links_family_and_respects_truth() {
        let ds = village();
        let res = resolve(&ds, &SnapsConfig::default());
        let idx = res.record_cluster_index(ds.len());
        // Parents of the two A births and the death certificate co-refer.
        assert_eq!(idx[1], idx[4], "mother across births");
        assert_eq!(idx[2], idx[5], "father across births");
        assert_eq!(idx[1], idx[7], "mother on death certificate");
        assert_eq!(idx[2], idx[8], "father on death certificate");
        // Flora's birth and death co-refer; her sibling does not.
        assert_eq!(idx[0], idx[6], "flora Bb-Dd");
        assert_ne!(idx[3], idx[6], "hector is not flora");
        assert_ne!(idx[0], idx[3], "siblings distinct");
    }

    #[test]
    fn matched_pairs_by_category() {
        let ds = village();
        let res = resolve(&ds, &SnapsConfig::default());
        let bp_bp = res.matched_pairs(&ds, RoleCategory::BirthParent, RoleCategory::BirthParent);
        assert!(bp_bp.contains(&(RecordId(1), RecordId(4))));
        assert!(bp_bp.contains(&(RecordId(2), RecordId(5))));
        let bp_dp = res.matched_pairs(&ds, RoleCategory::BirthParent, RoleCategory::DeathParent);
        assert!(bp_dp.contains(&(RecordId(1), RecordId(7))));
        assert!(bp_dp.contains(&(RecordId(4), RecordId(7))));
    }

    #[test]
    fn stats_are_populated() {
        let ds = village();
        let res = resolve(&ds, &SnapsConfig::default());
        assert!(res.stats.n_relational > 0);
        assert!(res.stats.n_atomic > 0);
        assert!(res.stats.passes >= 1);
        assert_eq!(res.stats.final_links, res.links.len());
        assert!(res.stats.total_time() >= res.stats.linkage_time());
    }

    #[test]
    fn clusters_partition_records() {
        let ds = village();
        let res = resolve(&ds, &SnapsConfig::default());
        let mut seen = vec![false; ds.len()];
        for cluster in &res.clusters {
            for &r in cluster {
                assert!(!seen[r.index()], "record in two clusters");
                seen[r.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every record clustered");
    }

    #[test]
    fn deterministic() {
        let ds = village();
        let a = resolve(&ds, &SnapsConfig::default());
        let b = resolve(&ds, &SnapsConfig::default());
        assert_eq!(a.clusters, b.clusters);
        assert_eq!(a.links, b.links);
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::new("empty");
        let res = resolve(&ds, &SnapsConfig::default());
        assert!(res.clusters.is_empty());
        assert!(res.links.is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid SnapsConfig")]
    fn invalid_config_panics() {
        let mut cfg = SnapsConfig::default();
        cfg.gamma = 2.0;
        let _ = resolve(&Dataset::new("x"), &cfg);
    }
}
