//! The end-to-end offline resolution pipeline.
//!
//! [`resolve`] wires the stages of Fig. 1's offline component together:
//! blocking → dependency graph → bootstrap → (merge pass → refine)* →
//! final clusters, timing every phase for the scalability experiments
//! (paper Tables 5 and 6).

use std::collections::BTreeSet;
use std::time::Duration;

use snaps_blocking::candidate_pairs;
use snaps_model::{Dataset, RecordId, RoleCategory};
use snaps_obs::{Obs, RunReport};

use crate::config::SnapsConfig;
use crate::depgraph::DependencyGraph;
use crate::entity::{EntityStore, Link};
use crate::merge::{bootstrap, confirm_intra_entity_links, merge_pass, MergeContext};
use crate::refine::refine;
use crate::similarity::NameFreqs;

/// Outcome of one iteration of the merging loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassDetail {
    /// Links created by this pass's merge sweep.
    pub merged_links: usize,
    /// Links dropped by the refinement following the pass (0 with REF off).
    pub refined_links: usize,
    /// Links in the store once the pass (and its refinement) completed.
    pub links_after: usize,
}

/// Phase timings and graph sizes of one resolution run.
#[derive(Debug, Clone, Default)]
pub struct ResolutionStats {
    /// Distinct atomic nodes `|N_A|`.
    pub n_atomic: usize,
    /// Relational nodes `|N_R|` (candidate pairs).
    pub n_relational: usize,
    /// Certificate-pair groups.
    pub n_groups: usize,
    /// Dependency-graph edges (atomic attachments + relationship edges).
    pub n_edges: usize,
    /// Time spent in blocking + atomic-node generation.
    pub t_atomic: Duration,
    /// Time spent building relational nodes and groups.
    pub t_relational: Duration,
    /// Time spent bootstrapping.
    pub t_bootstrap: Duration,
    /// Time spent in the iterative merging passes.
    pub t_merge: Duration,
    /// Time spent refining (REF).
    pub t_refine: Duration,
    /// Merge passes executed.
    pub passes: usize,
    /// Per-pass merge/refine outcomes (one entry per executed pass).
    pub pass_details: Vec<PassDetail>,
    /// Links created by bootstrapping.
    pub bootstrap_links: usize,
    /// Links surviving at the end.
    pub final_links: usize,
}

impl ResolutionStats {
    /// Total linkage time (bootstrap + merging), the quantity Table 6 scales.
    #[must_use]
    pub fn linkage_time(&self) -> Duration {
        self.t_bootstrap + self.t_merge
    }

    /// Total offline time.
    #[must_use]
    #[cfg(test)]
    pub(crate) fn total_time(&self) -> Duration {
        self.t_atomic + self.t_relational + self.t_bootstrap + self.t_merge + self.t_refine
    }
}

/// The outcome of offline resolution: record clusters (entities) and the
/// links that built them.
#[derive(Debug)]
pub struct Resolution {
    /// Record clusters, singletons included, deterministic order.
    pub clusters: Vec<Vec<RecordId>>,
    /// Accepted links.
    pub links: Vec<Link>,
    /// Phase statistics.
    pub stats: ResolutionStats,
    /// Instrumentation snapshot when [`resolve`] ran with
    /// [`SnapsConfig::obs`] enabled; `None` otherwise, and always `None`
    /// from [`resolve_with_obs`] (the caller owns the handle there).
    pub report: Option<RunReport>,
}

impl Resolution {
    /// Entity index of every record (parallel to the dataset's record arena).
    #[must_use]
    pub fn record_cluster_index(&self, n_records: usize) -> Vec<usize> {
        let mut idx = vec![usize::MAX; n_records];
        for (c, cluster) in self.clusters.iter().enumerate() {
            for &r in cluster {
                idx[r.index()] = c;
            }
        }
        idx
    }

    /// All predicted matching record pairs between two role categories —
    /// the transitive closure within each cluster, restricted to pairs of
    /// the requested categories on different certificates. This mirrors how
    /// ground-truth links are counted (see `snaps_datagen::GroundTruth`).
    #[must_use]
    pub fn matched_pairs(
        &self,
        ds: &Dataset,
        cat_a: RoleCategory,
        cat_b: RoleCategory,
    ) -> BTreeSet<(RecordId, RecordId)> {
        let mut pairs = BTreeSet::new();
        for cluster in &self.clusters {
            for (i, &ra) in cluster.iter().enumerate() {
                for &rb in &cluster[i + 1..] {
                    let (a, b) = (ds.record(ra), ds.record(rb));
                    if a.certificate == b.certificate {
                        continue;
                    }
                    let (ca, cb) = (a.role.category(), b.role.category());
                    if (ca == cat_a && cb == cat_b) || (ca == cat_b && cb == cat_a) {
                        pairs.insert((ra.min(rb), ra.max(rb)));
                    }
                }
            }
        }
        pairs
    }
}

/// Run the full offline SNAPS pipeline over a dataset.
///
/// Instrumentation follows [`SnapsConfig::obs`]: when enabled, the returned
/// [`Resolution::report`] holds the run's span tree, counters, and gauges.
///
/// # Panics
/// Panics if the configuration is invalid (see [`SnapsConfig::validate`]).
#[must_use]
pub fn resolve(ds: &Dataset, cfg: &SnapsConfig) -> Resolution {
    let obs = Obs::new(&cfg.obs);
    let mut res = resolve_with_obs(ds, cfg, &obs);
    res.report = obs.report();
    res
}

/// [`resolve`] recording into a caller-supplied [`Obs`] handle, so one
/// report can span offline resolution and the online query path. The caller
/// collects the report ([`Resolution::report`] stays `None` here).
///
/// # Panics
/// Panics if the configuration is invalid (see [`SnapsConfig::validate`]).
#[must_use]
pub fn resolve_with_obs(ds: &Dataset, cfg: &SnapsConfig, obs: &Obs) -> Resolution {
    cfg.validate().expect("invalid SnapsConfig");
    let mut stats = ResolutionStats::default();
    let root = obs.span("resolve");

    // Blocking + atomic-node phase.
    let span = root.child("blocking");
    let pairs = candidate_pairs(ds, cfg.lsh, cfg.year_tolerance);
    stats.t_atomic = span.finish();

    // Relational nodes and groups.
    let span = root.child("depgraph");
    let dg = DependencyGraph::build(ds, &pairs, cfg);
    stats.t_relational = span.finish();
    stats.n_atomic = dg.atomic_count;
    stats.n_relational = dg.relational_count();
    stats.n_groups = dg.groups.len();
    stats.n_edges = dg.edge_count();
    let gauge_val = |n: usize| i64::try_from(n).unwrap_or(i64::MAX);
    obs.gauge("graph.atomic_nodes").set(gauge_val(stats.n_atomic));
    obs.gauge("graph.relational_nodes").set(gauge_val(stats.n_relational));
    obs.gauge("graph.groups").set(gauge_val(stats.n_groups));
    obs.gauge("graph.edges").set(gauge_val(stats.n_edges));

    let span = root.child("name_freqs");
    let freqs = NameFreqs::build(ds);
    span.finish();
    let ctx = MergeContext::with_obs(ds, &freqs, cfg, obs);
    let mut store = EntityStore::new(ds);

    // Bootstrap.
    let span = root.child("bootstrap");
    stats.bootstrap_links = bootstrap(&ctx, &dg, &mut store);
    stats.t_bootstrap = span.finish();
    obs.counter("pipeline.bootstrap_links").add(stats.bootstrap_links as u64);

    let refine_sweep = |store: &mut EntityStore, stats: &mut ResolutionStats| -> usize {
        let span = root.child("refine");
        confirm_intra_entity_links(&ctx, &dg, store);
        let (refined, rs) = refine(store, ds, cfg);
        *store = refined;
        stats.t_refine += span.finish();
        let dropped = rs.dropped_density + rs.dropped_bridges;
        obs.counter("refine.links_dropped").add(dropped as u64);
        dropped
    };

    if cfg.ablation.refine {
        refine_sweep(&mut store, &mut stats);
    }

    // Iterative merging.
    for pass in 0..cfg.max_passes {
        let span = root.child(&format!("merge_pass_{}", pass + 1));
        let merged = merge_pass(&ctx, &dg, &mut store);
        stats.t_merge += span.finish();
        stats.passes += 1;

        let refined_links =
            if cfg.ablation.refine { refine_sweep(&mut store, &mut stats) } else { 0 };
        stats.pass_details.push(PassDetail {
            merged_links: merged,
            refined_links,
            links_after: store.link_count(),
        });
        obs.counter(&format!("pipeline.pass_{}.merged_links", pass + 1)).add(merged as u64);
        obs.counter(&format!("pipeline.pass_{}.refined_links", pass + 1)).add(refined_links as u64);
        if merged == 0 {
            break;
        }
    }

    stats.final_links = store.link_count();
    obs.counter("pipeline.final_links").add(stats.final_links as u64);
    // Stage throughput (records/second) so benchmark reports carry a
    // comparable per-stage rate, not just absolute durations. Integer
    // math; a sub-microsecond stage clamps to its record count.
    let rps = |n: usize, t: Duration| -> i64 {
        let us = t.as_micros().max(1);
        let scaled = u128::try_from(n).unwrap_or(u128::MAX).saturating_mul(1_000_000);
        i64::try_from(scaled / us).unwrap_or(i64::MAX)
    };
    obs.gauge("pipeline.rps.blocking").set(rps(ds.len(), stats.t_atomic));
    obs.gauge("pipeline.rps.comparison").set(rps(ds.len(), stats.t_relational));
    obs.gauge("pipeline.rps.merge").set(rps(ds.len(), stats.linkage_time()));
    obs.gauge("pipeline.rps.refine").set(rps(ds.len(), stats.t_refine));
    root.finish();
    Resolution { clusters: store.clusters(), links: store.links().to_vec(), stats, report: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaps_model::{CertificateKind, Gender, Role};

    /// A small but structured dataset: one family with two children, each
    /// child with a birth and a death certificate; plus an unrelated family
    /// with identical parent names in a different parish and generation.
    fn village() -> Dataset {
        let mut ds = Dataset::new("t");
        let cert = |ds: &mut Dataset,
                    kind: CertificateKind,
                    year: i32,
                    people: &[(Role, &str, &str, Option<u16>, &str)]| {
            let c = ds.push_certificate(kind, year);
            for &(role, f, s, age, addr) in people {
                let g = role.implied_gender().unwrap_or(Gender::Female);
                let r = ds.push_record(c, role, g);
                let rec = ds.record_mut(r);
                rec.first_name = Some(f.into());
                rec.surname = Some(s.into());
                rec.age = age;
                rec.address = Some(addr.into());
            }
            c
        };
        // Family A in portree.
        cert(
            &mut ds,
            CertificateKind::Birth,
            1880,
            &[
                (Role::BirthBaby, "flora", "macrae", None, "portree"),
                (Role::BirthMother, "effie", "macrae", None, "portree"),
                (Role::BirthFather, "torquil", "macrae", None, "portree"),
            ],
        );
        cert(
            &mut ds,
            CertificateKind::Birth,
            1882,
            &[
                (Role::BirthBaby, "hector", "macrae", None, "portree"),
                (Role::BirthMother, "effie", "macrae", None, "portree"),
                (Role::BirthFather, "torquil", "macrae", None, "portree"),
            ],
        );
        cert(
            &mut ds,
            CertificateKind::Death,
            1885,
            &[
                (Role::DeathDeceased, "flora", "macrae", Some(5), "portree"),
                (Role::DeathMother, "effie", "macrae", None, "portree"),
                (Role::DeathFather, "torquil", "macrae", None, "portree"),
            ],
        );
        // Family B in snizort, one generation later, same parent names.
        cert(
            &mut ds,
            CertificateKind::Birth,
            1899,
            &[
                (Role::BirthBaby, "kate", "macrae", None, "snizort"),
                (Role::BirthMother, "effie", "macrae", None, "snizort"),
                (Role::BirthFather, "torquil", "macrae", None, "snizort"),
            ],
        );
        ds
    }

    #[test]
    fn pipeline_links_family_and_respects_truth() {
        let ds = village();
        let res = resolve(&ds, &SnapsConfig::default());
        let idx = res.record_cluster_index(ds.len());
        // Parents of the two A births and the death certificate co-refer.
        assert_eq!(idx[1], idx[4], "mother across births");
        assert_eq!(idx[2], idx[5], "father across births");
        assert_eq!(idx[1], idx[7], "mother on death certificate");
        assert_eq!(idx[2], idx[8], "father on death certificate");
        // Flora's birth and death co-refer; her sibling does not.
        assert_eq!(idx[0], idx[6], "flora Bb-Dd");
        assert_ne!(idx[3], idx[6], "hector is not flora");
        assert_ne!(idx[0], idx[3], "siblings distinct");
    }

    #[test]
    fn matched_pairs_by_category() {
        let ds = village();
        let res = resolve(&ds, &SnapsConfig::default());
        let bp_bp = res.matched_pairs(&ds, RoleCategory::BirthParent, RoleCategory::BirthParent);
        assert!(bp_bp.contains(&(RecordId(1), RecordId(4))));
        assert!(bp_bp.contains(&(RecordId(2), RecordId(5))));
        let bp_dp = res.matched_pairs(&ds, RoleCategory::BirthParent, RoleCategory::DeathParent);
        assert!(bp_dp.contains(&(RecordId(1), RecordId(7))));
        assert!(bp_dp.contains(&(RecordId(4), RecordId(7))));
    }

    #[test]
    fn stats_are_populated() {
        let ds = village();
        let res = resolve(&ds, &SnapsConfig::default());
        assert!(res.stats.n_relational > 0);
        assert!(res.stats.n_atomic > 0);
        assert!(res.stats.passes >= 1);
        assert_eq!(res.stats.final_links, res.links.len());
        assert!(res.stats.total_time() >= res.stats.linkage_time());
    }

    #[test]
    fn clusters_partition_records() {
        let ds = village();
        let res = resolve(&ds, &SnapsConfig::default());
        let mut seen = vec![false; ds.len()];
        for cluster in &res.clusters {
            for &r in cluster {
                assert!(!seen[r.index()], "record in two clusters");
                seen[r.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every record clustered");
    }

    #[test]
    fn pass_details_are_consistent_with_final_links() {
        let ds = village();
        let res = resolve(&ds, &SnapsConfig::default());
        let details = &res.stats.pass_details;
        assert_eq!(details.len(), res.stats.passes, "one entry per executed pass");
        // The loop only continues while passes keep merging: every pass but
        // the last must have merged something, and the link count after the
        // final pass is exactly what the resolution reports.
        for d in &details[..details.len() - 1] {
            assert!(d.merged_links > 0, "non-final pass merged nothing: {details:?}");
        }
        let last = details.last().expect("at least one pass");
        assert!(
            last.merged_links == 0 || res.stats.passes == SnapsConfig::default().max_passes,
            "loop stops only on a dry pass or the pass cap"
        );
        assert_eq!(last.links_after, res.stats.final_links);
        // Merged links accumulate monotonically across passes.
        let cumulative: Vec<usize> = details
            .iter()
            .scan(0, |acc, d| {
                *acc += d.merged_links;
                Some(*acc)
            })
            .collect();
        assert!(cumulative.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn report_covers_phases_passes_and_counters() {
        let ds = village();
        let cfg = SnapsConfig { obs: snaps_obs::ObsConfig::full(), ..SnapsConfig::default() };
        let res = resolve(&ds, &cfg);
        let report = res.report.as_ref().expect("obs enabled");

        let resolve_span = report.span("resolve").expect("root span");
        for phase in ["blocking", "depgraph", "bootstrap"] {
            let s = resolve_span.find(phase).unwrap_or_else(|| panic!("{phase} span missing"));
            assert_eq!(s.count, 1, "{phase} runs once");
        }
        for pass in 1..=res.stats.passes {
            assert!(
                resolve_span.find(&format!("merge_pass_{pass}")).is_some(),
                "span for pass {pass} missing"
            );
        }
        // Counters mirror the stats projection.
        assert_eq!(
            report.counter("pipeline.bootstrap_links"),
            Some(res.stats.bootstrap_links as u64)
        );
        assert_eq!(report.counter("pipeline.final_links"), Some(res.stats.final_links as u64));
        for (i, d) in res.stats.pass_details.iter().enumerate() {
            assert_eq!(
                report.counter(&format!("pipeline.pass_{}.merged_links", i + 1)),
                Some(d.merged_links as u64)
            );
        }
        assert!(report.counter("merge.comparisons").unwrap_or(0) > 0, "merge internals counted");
        // Disabled instrumentation produces no report.
        assert!(resolve(&ds, &SnapsConfig::default()).report.is_none());
    }

    #[test]
    fn deterministic() {
        let ds = village();
        let a = resolve(&ds, &SnapsConfig::default());
        let b = resolve(&ds, &SnapsConfig::default());
        assert_eq!(a.clusters, b.clusters);
        assert_eq!(a.links, b.links);
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::new("empty");
        let res = resolve(&ds, &SnapsConfig::default());
        assert!(res.clusters.is_empty());
        assert!(res.links.is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid SnapsConfig")]
    fn invalid_config_panics() {
        let cfg = SnapsConfig { gamma: 2.0, ..SnapsConfig::default() };
        let _ = resolve(&Dataset::new("x"), &cfg);
    }
}
