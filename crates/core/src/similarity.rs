//! The SNAPS similarity model — Equations (1)–(3) of the paper.
//!
//! A relational node's score combines:
//!
//! * **atomic similarity** `s_a` (Eq. 1) — the weighted average of the Must /
//!   Core / Extra category similarities derived from the node's atomic nodes;
//! * **disambiguation similarity** `s_d` (Eq. 2) — a normalised IDF of the
//!   records' name-combination frequencies, so records with rare names carry
//!   more evidence than records with ubiquitous ones (**AMB**, §4.2.3);
//! * the blend `s = γ·s_a + (1-γ)·s_d` (Eq. 3).
//!
//! One deliberate refinement over a literal reading of Eq. 1: a category
//! whose attributes are *missing* on either side is excluded from both the
//! numerator and denominator (standard missing-data handling in record
//! linkage — Ong et al., cited by the paper), whereas a category whose values
//! are *present but dissimilar* (no atomic node survives `t_a`) contributes
//! zero. Treating missing as zero would make every sparse historical record
//! unmergeable; treating dissimilar as missing would merge namesakes with
//! contradictory surnames.

use std::collections::BTreeMap;

use snaps_model::{Dataset, PersonRecord};

use crate::attrs::AttrSims;
use crate::config::SnapsConfig;

/// Frequency table of QID value combinations, used by the disambiguation
/// similarity (Eq. 2).
///
/// The paper counts "a combination of several QID values of two records in a
/// node"; we use (first name, surname, address). Counting the full
/// combination (rather than single attributes) is what makes Eq. 2 usable
/// with `t_m = 0.85` and `γ = 0.6`: most combinations are rare, so `s_d` is
/// high for ordinary records and only genuinely ambiguous ones — common
/// names with no distinguishing address — are pushed below the merge
/// threshold until relationship evidence lifts them.
#[derive(Debug, Clone)]
pub struct NameFreqs {
    counts: BTreeMap<(String, String, String), u32>,
    /// Per-record frequency, indexed by record id — precomputed so the hot
    /// merge loop never rebuilds string keys.
    per_record: Vec<u32>,
    total: usize,
}

/// The key under which a record's QID combination is counted; missing parts
/// count under the empty string so sparse records still get a (high)
/// frequency.
fn name_key(r: &PersonRecord) -> (String, String, String) {
    (
        r.first_name.clone().unwrap_or_default(),
        r.surname.clone().unwrap_or_default(),
        r.address.clone().unwrap_or_default(),
    )
}

impl NameFreqs {
    /// Count every record's name combination.
    #[must_use]
    pub fn build(ds: &Dataset) -> Self {
        let mut counts: BTreeMap<(String, String, String), u32> = BTreeMap::new();
        for r in &ds.records {
            *counts.entry(name_key(r)).or_insert(0) += 1;
        }
        let per_record = ds.records.iter().map(|r| counts[&name_key(r)]).collect();
        Self { counts, per_record, total: ds.len() }
    }

    /// Frequency of a record's name combination (at least 1). Works for
    /// records of any dataset (query records included); for records of the
    /// indexed dataset prefer the allocation-free [`NameFreqs::freq_of`].
    #[must_use]
    pub fn freq(&self, r: &PersonRecord) -> u32 {
        self.counts.get(&name_key(r)).copied().unwrap_or(1).max(1)
    }

    /// Frequency of record `id` of the indexed dataset (O(1), no hashing).
    #[must_use]
    pub fn freq_of(&self, id: snaps_model::RecordId) -> u32 {
        self.per_record[id.index()].max(1)
    }

    /// Disambiguation similarity from two raw frequencies (Eq. 2).
    #[must_use]
    pub fn disambiguation_freqs(&self, fa: u32, fb: u32) -> f64 {
        let n = self.total.max(2) as f64;
        let f = f64::from(fa + fb);
        ((n / f).log2() / n.log2()).clamp(0.0, 1.0)
    }

    /// Total number of records `|O|` used as the normalisation base.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Disambiguation similarity `s_d` (Eq. 2):
    /// `log2(|O| / (f_i + f_j)) / log2(|O|)`, clamped to `[0, 1]`.
    #[must_use]
    pub fn disambiguation(&self, a: &PersonRecord, b: &PersonRecord) -> f64 {
        self.disambiguation_freqs(self.freq(a), self.freq(b))
    }
}

/// The category-aggregated similarity of one relational node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSimilarity {
    /// Atomic similarity `s_a` (Eq. 1).
    pub atomic: f64,
    /// Disambiguation similarity `s_d` (Eq. 2).
    pub disambiguation: f64,
    /// Combined similarity `s` (Eq. 3) with the effective `γ`.
    pub combined: f64,
}

/// Compute `s_a` from per-attribute similarities.
///
/// Name similarities below `t_a` are *present-but-dissimilar*: their atomic
/// node does not exist and the category scores zero. A missing Must
/// attribute makes the node unmergeable (`s_a = 0`) — first names are the
/// paper's Must category precisely because they are near-complete.
#[must_use]
pub fn atomic_similarity(sims: &AttrSims, cfg: &SnapsConfig) -> f64 {
    // Must: first name.
    let Some(fn_sim) = sims.first_name else {
        return 0.0;
    };
    let s_must = if fn_sim >= cfg.t_atomic { fn_sim } else { 0.0 };

    // Core: surname (present-but-dissimilar scores 0; missing drops the
    // category).
    let s_core = sims.surname.map(|s| if s >= cfg.t_atomic { s } else { 0.0 });

    // Extra: average of the comparable extra attributes.
    let extras: Vec<f64> =
        [sims.address, sims.occupation, sims.birth_year].into_iter().flatten().collect();
    let s_extra = (!extras.is_empty()).then(|| extras.iter().sum::<f64>() / extras.len() as f64);

    let mut num = cfg.w_must * s_must;
    let mut den = cfg.w_must;
    if let Some(s) = s_core {
        num += cfg.w_core * s;
        den += cfg.w_core;
    }
    if let Some(s) = s_extra {
        num += cfg.w_extra * s;
        den += cfg.w_extra;
    }
    num / den
}

/// Combine Eq. (1)–(3) for one node.
#[must_use]
pub fn node_similarity(
    sims: &AttrSims,
    a: &PersonRecord,
    b: &PersonRecord,
    freqs: &NameFreqs,
    cfg: &SnapsConfig,
) -> NodeSimilarity {
    let atomic = atomic_similarity(sims, cfg);
    let disambiguation = freqs.disambiguation(a, b);
    let gamma = cfg.effective_gamma();
    NodeSimilarity {
        atomic,
        disambiguation,
        combined: gamma * atomic + (1.0 - gamma) * disambiguation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaps_model::{CertificateKind, Gender, RecordId, Role};

    fn ds_with(names: &[(&str, &str)]) -> Dataset {
        let mut ds = Dataset::new("t");
        for (f, s) in names {
            let c = ds.push_certificate(CertificateKind::Death, 1890);
            let r = ds.push_record(c, Role::DeathDeceased, Gender::Female);
            ds.record_mut(r).first_name = Some((*f).to_string());
            ds.record_mut(r).surname = Some((*s).to_string());
        }
        ds
    }

    fn key(f: &str, s: &str) -> (String, String, String) {
        (f.into(), s.into(), String::new())
    }

    #[test]
    fn paper_worked_example_eq1() {
        // §4.2.3: first name (Mary, Mary)=1.0 Must, surname
        // (Tayler, Taylor)=0.9 Core, city (Klmor, Kilmore)=0.9 Extra,
        // weights 0.5/0.3/0.2 → s_a = 0.95.
        let sims = AttrSims {
            first_name: Some(1.0),
            surname: Some(0.9),
            address: Some(0.9),
            occupation: None,
            birth_year: None,
        };
        let cfg = SnapsConfig::default();
        let s_a = atomic_similarity(&sims, &cfg);
        assert!((s_a - 0.95).abs() < 1e-12, "got {s_a}");
    }

    #[test]
    fn paper_worked_example_eq2() {
        // §4.2.3: f_i = 45, f_j = 12, |O| = 100 → s_d = log2(100/57)/log2(100)
        // ≈ 0.12.
        let mut ds = ds_with(&[("a", "b")]);
        ds.records.clear();
        ds.certificates.clear();
        let mut freqs = NameFreqs { counts: BTreeMap::new(), per_record: Vec::new(), total: 100 };
        freqs.counts.insert(key("mary", "x"), 45);
        freqs.counts.insert(key("mary", "y"), 12);
        let mut ra = PersonRecord::new(
            RecordId(0),
            snaps_model::CertificateId(0),
            Role::DeathDeceased,
            Gender::Female,
            1890,
        );
        ra.first_name = Some("mary".into());
        ra.surname = Some("x".into());
        let mut rb = ra.clone();
        rb.surname = Some("y".into());
        let s_d = freqs.disambiguation(&ra, &rb);
        let expected = (100.0_f64 / 57.0).log2() / 100.0_f64.log2();
        assert!((s_d - expected).abs() < 1e-12);
        assert!((s_d - 0.12).abs() < 0.005, "paper quotes ≈0.12, got {s_d}");
    }

    #[test]
    fn missing_first_name_blocks_node() {
        let sims = AttrSims { first_name: None, surname: Some(1.0), ..AttrSims::default() };
        assert_eq!(atomic_similarity(&sims, &SnapsConfig::default()), 0.0);
    }

    #[test]
    fn dissimilar_surname_penalises() {
        let cfg = SnapsConfig::default();
        let same = AttrSims { first_name: Some(1.0), surname: Some(1.0), ..AttrSims::default() };
        let diff = AttrSims {
            first_name: Some(1.0),
            surname: Some(0.4), // below t_a → counts as 0
            ..AttrSims::default()
        };
        let missing = AttrSims { first_name: Some(1.0), surname: None, ..AttrSims::default() };
        let s_same = atomic_similarity(&same, &cfg);
        let s_diff = atomic_similarity(&diff, &cfg);
        let s_missing = atomic_similarity(&missing, &cfg);
        assert_eq!(s_same, 1.0);
        assert!((s_diff - 0.5 / 0.8).abs() < 1e-12);
        assert_eq!(s_missing, 1.0, "missing core drops the category");
        assert!(s_diff < s_missing, "contradiction is worse than absence");
    }

    #[test]
    fn rare_names_more_evidential() {
        let ds = ds_with(&[
            ("mary", "macdonald"),
            ("mary", "macdonald"),
            ("mary", "macdonald"),
            ("mary", "macdonald"),
            ("effie", "tweedie"),
            ("effie", "tweedie"),
        ]);
        let freqs = NameFreqs::build(&ds);
        let common = freqs.disambiguation(&ds.records[0], &ds.records[1]);
        let rare = freqs.disambiguation(&ds.records[4], &ds.records[5]);
        assert!(rare > common, "rare {rare} vs common {common}");
    }

    #[test]
    fn disambiguation_in_unit_range() {
        let ds = ds_with(&[("a", "b"), ("a", "b")]);
        let freqs = NameFreqs::build(&ds);
        let s = freqs.disambiguation(&ds.records[0], &ds.records[1]);
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn combined_blend() {
        let ds = ds_with(&[("mary", "smith"), ("mary", "smith")]);
        let freqs = NameFreqs::build(&ds);
        let sims = AttrSims { first_name: Some(1.0), surname: Some(1.0), ..AttrSims::default() };
        let mut cfg = SnapsConfig::default();
        let s = node_similarity(&sims, &ds.records[0], &ds.records[1], &freqs, &cfg);
        assert!((s.combined - (0.6 * s.atomic + 0.4 * s.disambiguation)).abs() < 1e-12);
        // AMB off → combined == atomic.
        cfg.ablation.amb = false;
        let s2 = node_similarity(&sims, &ds.records[0], &ds.records[1], &freqs, &cfg);
        assert_eq!(s2.combined, s2.atomic);
    }

    #[test]
    fn freq_floor_is_one() {
        let ds = ds_with(&[("mary", "smith")]);
        let freqs = NameFreqs::build(&ds);
        let mut ghost = ds.records[0].clone();
        ghost.first_name = Some("never-seen".into());
        assert_eq!(freqs.freq(&ghost), 1);
    }
}
