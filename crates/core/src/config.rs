//! Pipeline configuration: the paper's parameters and ablation switches.

use snaps_blocking::LshConfig;
use snaps_obs::ObsConfig;

/// When may a *single* relational node (a lone record pair with no
/// relationship support) merge?
///
/// The paper's merging loop runs "until either we find a node group that
/// satisfies the constraints … and merge it, or until the node group becomes
/// a pair"; whether a lone node may merge is underspecified. With the
/// spouse-context veto carrying the precision burden, `Always` measures
/// best and is the default; `OriginalOnly`/`Never` trade recall for
/// precision on data without spouse information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SingletonMergePolicy {
    /// Any single node clearing `t_m` merges (most recall, least precision).
    Always,
    /// Only groups that never had relationship support may merge as a single
    /// node; a group whittled down by REL stops (the paper's literal rule).
    OriginalOnly,
    /// Merges always require at least two agreeing nodes (most precision).
    Never,
}

/// Which of the four key techniques are enabled.
///
/// All enabled is full SNAPS; each switch corresponds to one column of the
/// paper's Table 3 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ablation {
    /// PROP-A + PROP-C: global propagation of QID values and constraints.
    /// The paper ablates them together "since both propagate link decisions".
    pub prop: bool,
    /// AMB: disambiguation similarity (off ⇒ `γ = 1`, pure QID similarity).
    pub amb: bool,
    /// REL: adaptive group merging with weakest-node removal.
    pub rel: bool,
    /// REF: dynamic cluster refinement (density / bridge splitting).
    pub refine: bool,
}

impl Default for Ablation {
    fn default() -> Self {
        Self { prop: true, amb: true, rel: true, refine: true }
    }
}

impl Ablation {
    /// Full SNAPS (everything on).
    #[must_use]
    pub fn full() -> Self {
        Self::default()
    }

    /// Table 3 column "without PROP-A and PROP-C".
    #[must_use]
    pub fn without_prop() -> Self {
        Self { prop: false, ..Self::default() }
    }

    /// Table 3 column "without AMB".
    #[must_use]
    pub fn without_amb() -> Self {
        Self { amb: false, ..Self::default() }
    }

    /// Table 3 column "without REL".
    #[must_use]
    pub fn without_rel() -> Self {
        Self { rel: false, ..Self::default() }
    }

    /// Table 3 column "without REF".
    #[must_use]
    pub fn without_ref() -> Self {
        Self { refine: false, ..Self::default() }
    }
}

/// All tunables of the offline pipeline, defaulting to the paper's settings
/// (§10 "Implementation and Parameter Settings").
#[derive(Debug, Clone)]
pub struct SnapsConfig {
    /// Bootstrap threshold `t_b`: groups whose average atomic similarity
    /// reaches this are merged in the bootstrap phase.
    pub t_bootstrap: f64,
    /// Merge threshold `t_m` on the combined similarity (Eq. 3).
    pub t_merge: f64,
    /// Atomic-node threshold `t_a`: name value pairs below this similarity
    /// contribute no atomic node.
    pub t_atomic: f64,
    /// Weight `γ` between attribute similarity and disambiguation (Eq. 3).
    pub gamma: f64,
    /// Cluster-size threshold `t_n`: larger clusters are split at bridges.
    pub t_cluster_size: usize,
    /// Density threshold `t_d`: sparser clusters shed their weakest record.
    pub t_density: f64,
    /// Must-category weight `w_M` (first name).
    pub w_must: f64,
    /// Core-category weight `w_C` (surname).
    pub w_core: f64,
    /// Extra-category weight `w_E` (address, occupation, birth-year).
    pub w_extra: f64,
    /// Maximum merge passes (each pass drains the whole priority queue;
    /// passes stop early once a pass merges nothing).
    pub max_passes: usize,
    /// Birth-year estimate tolerance used in blocking and constraints.
    pub year_tolerance: i32,
    /// Distance horizon (km) at which geocoded address similarity reaches 0.
    pub geo_max_km: f64,
    /// LSH blocking configuration.
    pub lsh: LshConfig,
    /// Whether single relational nodes may merge without group support.
    pub singleton_policy: SingletonMergePolicy,
    /// Extra similarity demanded of a merge carried by a *single* node
    /// (no agreeing group member): the effective threshold becomes
    /// `t_merge + singleton_margin`. Unsupported merges are the main source
    /// of namesake false positives; a small margin prices in the missing
    /// relationship evidence.
    pub singleton_margin: f64,
    /// Spouse-context veto: grossly dissimilar spouses on the two
    /// certificates block a merge (negative relationship evidence, part of
    /// SNAPS's constraint propagation; Dong-style baselines disable it).
    pub spouse_veto: bool,
    /// Group-average merging: decisions are taken per certificate-pair
    /// group (SNAPS) rather than per individual node (Dong et al.).
    pub group_merging: bool,
    /// Technique switches.
    pub ablation: Ablation,
    /// Instrumentation switch: disabled by default, so the pipeline pays no
    /// observability cost unless a caller opts in (see [`snaps_obs`]).
    pub obs: ObsConfig,
}

impl Default for SnapsConfig {
    fn default() -> Self {
        Self {
            t_bootstrap: 0.95,
            t_merge: 0.85,
            t_atomic: 0.9,
            gamma: 0.6,
            t_cluster_size: 15,
            t_density: 0.3,
            w_must: 0.5,
            w_core: 0.3,
            w_extra: 0.2,
            max_passes: 4,
            year_tolerance: 12,
            geo_max_km: 5.0,
            lsh: LshConfig::default(),
            singleton_policy: SingletonMergePolicy::Always,
            singleton_margin: 0.05,
            spouse_veto: true,
            group_merging: true,
            ablation: Ablation::default(),
            obs: ObsConfig::default(),
        }
    }
}

impl SnapsConfig {
    /// Effective `γ`: ablating AMB sets `γ = 1` exactly as the paper does
    /// ("we removed the disambiguation similarity … by setting γ = 1").
    #[must_use]
    pub fn effective_gamma(&self) -> f64 {
        if self.ablation.amb {
            self.gamma
        } else {
            1.0
        }
    }

    /// Validate parameter ranges.
    ///
    /// # Errors
    /// Returns a description of the first out-of-range parameter.
    pub fn validate(&self) -> Result<(), String> {
        let unit = [
            ("t_bootstrap", self.t_bootstrap),
            ("t_merge", self.t_merge),
            ("t_atomic", self.t_atomic),
            ("gamma", self.gamma),
            ("t_density", self.t_density),
        ];
        for (name, v) in unit {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0,1], got {v}"));
            }
        }
        if self.w_must <= 0.0 || self.w_core < 0.0 || self.w_extra < 0.0 {
            return Err("category weights must be non-negative with w_must > 0".into());
        }
        if self.max_passes == 0 {
            return Err("max_passes must be at least 1".into());
        }
        if self.geo_max_km <= 0.0 {
            return Err("geo_max_km must be positive".into());
        }
        if !(0.0..=0.5).contains(&self.singleton_margin) {
            return Err(format!(
                "singleton_margin must be in [0, 0.5], got {}",
                self.singleton_margin
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SnapsConfig::default();
        assert_eq!(c.t_bootstrap, 0.95);
        assert_eq!(c.t_merge, 0.85);
        assert_eq!(c.t_atomic, 0.9);
        assert_eq!(c.gamma, 0.6);
        assert_eq!(c.t_cluster_size, 15);
        assert_eq!(c.t_density, 0.3);
        assert_eq!((c.w_must, c.w_core, c.w_extra), (0.5, 0.3, 0.2));
        c.validate().unwrap();
    }

    #[test]
    fn ablation_switches() {
        assert!(!Ablation::without_prop().prop);
        assert!(Ablation::without_prop().amb);
        assert!(!Ablation::without_amb().amb);
        assert!(!Ablation::without_rel().rel);
        assert!(!Ablation::without_ref().refine);
        assert_eq!(Ablation::full(), Ablation::default());
    }

    #[test]
    fn amb_off_forces_gamma_one() {
        let mut c = SnapsConfig::default();
        assert_eq!(c.effective_gamma(), 0.6);
        c.ablation.amb = false;
        assert_eq!(c.effective_gamma(), 1.0);
    }

    #[test]
    fn validation_catches_bad_values() {
        let c = SnapsConfig { t_merge: 1.5, ..SnapsConfig::default() };
        assert!(c.validate().is_err());
        let c = SnapsConfig { w_must: 0.0, ..SnapsConfig::default() };
        assert!(c.validate().is_err());
        let c = SnapsConfig { max_passes: 0, ..SnapsConfig::default() };
        assert!(c.validate().is_err());
    }
}
