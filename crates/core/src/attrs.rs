//! QID attribute comparison for relational nodes.
//!
//! Attributes are categorised as **Must** (first name), **Core** (surname),
//! and **Extra** (address, occupation, birth-year estimate) following the
//! paper's §4.2.3: Must attributes are complete and stable, Core slightly
//! less so, Extra attributes are sparse and volatile but corroborative.
//!
//! Comparison operates on *value sets* rather than single values: under
//! PROP-A a record is compared against every value its entity has
//! accumulated, so a maiden and a married surname both participate and the
//! best-matching pair wins (paper §4.2.1, Fig. 4b).

use snaps_model::PersonRecord;
use snaps_strsim::geo::{distance_similarity, GeoPoint};
use snaps_strsim::numeric::max_abs_diff_similarity;
use snaps_strsim::qgram::bigram_jaccard;
use snaps_strsim::variants::{first_name_similarity, surname_similarity};
use snaps_strsim::Similarity;

/// The comparable values of one side of a relational node: either a single
/// record's values, or (under PROP-A) every value of the record's entity.
#[derive(Debug, Clone, Default)]
pub struct AttrValues {
    /// First names.
    pub first_names: Vec<String>,
    /// Surnames (maiden and married forms accumulate here).
    pub surnames: Vec<String>,
    /// Address strings.
    pub addresses: Vec<String>,
    /// Geocoded coordinates, parallel in spirit to `addresses`.
    pub geos: Vec<GeoPoint>,
    /// Occupations.
    pub occupations: Vec<String>,
    /// Birth-year estimates.
    pub birth_years: Vec<i32>,
}

impl AttrValues {
    /// The values of a single record.
    #[must_use]
    pub fn from_record(r: &PersonRecord) -> Self {
        let mut v = Self::default();
        v.push_record(r);
        v
    }

    /// Accumulate a record's values (entity views call this per member).
    pub fn push_record(&mut self, r: &PersonRecord) {
        let add = |vec: &mut Vec<String>, val: &Option<String>| {
            if let Some(s) = val {
                if !s.is_empty() && !vec.iter().any(|x| x == s) {
                    vec.push(s.clone());
                }
            }
        };
        add(&mut self.first_names, &r.first_name);
        add(&mut self.surnames, &r.surname);
        add(&mut self.addresses, &r.address);
        add(&mut self.occupations, &r.occupation);
        if let Some(g) = r.geo {
            let p: GeoPoint = g.into();
            if !self.geos.contains(&p) {
                self.geos.push(p);
            }
        }
        if let Some(y) = r.estimated_birth_year() {
            if !self.birth_years.contains(&y) {
                self.birth_years.push(y);
            }
        }
    }
}

/// Pairwise attribute similarities between two value sets.
///
/// `None` means the attribute is not comparable (missing on at least one
/// side); `Some(s)` is the best-pair similarity.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AttrSims {
    /// Best first-name similarity (variant-aware Jaro-Winkler).
    pub first_name: Option<Similarity>,
    /// Best surname similarity (variant-aware Jaro-Winkler).
    pub surname: Option<Similarity>,
    /// Best address similarity (geographic when both sides are geocoded,
    /// bigram Jaccard otherwise).
    pub address: Option<Similarity>,
    /// Best occupation similarity (bigram Jaccard).
    pub occupation: Option<Similarity>,
    /// Best birth-year similarity (max-absolute-difference, 5-year window).
    pub birth_year: Option<Similarity>,
}

/// Best similarity across the cross product of two string sets.
fn best_string_sim(
    a: &[String],
    b: &[String],
    sim: impl Fn(&str, &str) -> Similarity,
) -> Option<Similarity> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let mut best: f64 = 0.0;
    for x in a {
        for y in b {
            best = best.max(sim(x, y));
            if best >= 1.0 {
                return Some(1.0);
            }
        }
    }
    Some(best)
}

/// Compare two value sets attribute by attribute.
///
/// `geo_max_km` is the distance at which geocoded address similarity decays
/// to zero; it is only consulted when both sides carry coordinates.
#[must_use]
pub fn compare(a: &AttrValues, b: &AttrValues, geo_max_km: f64) -> AttrSims {
    let address = if !a.geos.is_empty() && !b.geos.is_empty() {
        let mut best: f64 = 0.0;
        for &p in &a.geos {
            for &q in &b.geos {
                best = best.max(distance_similarity(p, q, geo_max_km));
            }
        }
        Some(best)
    } else {
        best_string_sim(&a.addresses, &b.addresses, bigram_jaccard)
    };

    let birth_year = if a.birth_years.is_empty() || b.birth_years.is_empty() {
        None
    } else {
        let mut best: f64 = 0.0;
        for &x in &a.birth_years {
            for &y in &b.birth_years {
                best = best.max(max_abs_diff_similarity(f64::from(x), f64::from(y), 5.0));
            }
        }
        Some(best)
    };

    AttrSims {
        first_name: best_string_sim(&a.first_names, &b.first_names, first_name_similarity),
        surname: best_string_sim(&a.surnames, &b.surnames, surname_similarity),
        address,
        occupation: best_string_sim(&a.occupations, &b.occupations, bigram_jaccard),
        birth_year,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaps_model::{CertificateId, Gender, RecordId, Role};

    fn record(first: Option<&str>, sur: Option<&str>) -> PersonRecord {
        let mut r = PersonRecord::new(
            RecordId(0),
            CertificateId(0),
            Role::DeathDeceased,
            Gender::Female,
            1890,
        );
        r.first_name = first.map(str::to_string);
        r.surname = sur.map(str::to_string);
        r
    }

    #[test]
    fn from_record_collects_values() {
        let mut r = record(Some("mary"), Some("smith"));
        r.address = Some("portree".into());
        r.age = Some(30);
        let v = AttrValues::from_record(&r);
        assert_eq!(v.first_names, vec!["mary"]);
        assert_eq!(v.birth_years, vec![1860]);
        assert_eq!(v.addresses, vec!["portree"]);
    }

    #[test]
    fn push_record_dedupes() {
        let r = record(Some("mary"), Some("smith"));
        let mut v = AttrValues::from_record(&r);
        v.push_record(&r);
        assert_eq!(v.first_names.len(), 1);
        assert_eq!(v.surnames.len(), 1);
    }

    #[test]
    fn missing_attribute_is_incomparable() {
        let a = AttrValues::from_record(&record(Some("mary"), None));
        let b = AttrValues::from_record(&record(Some("mary"), Some("smith")));
        let s = compare(&a, &b, 25.0);
        assert_eq!(s.first_name, Some(1.0));
        assert_eq!(s.surname, None);
        assert_eq!(s.occupation, None);
    }

    #[test]
    fn best_pair_wins_prop_a_semantics() {
        // Entity has both the maiden name (smith) and married name (taylor);
        // comparing to a record written "tayler" must use the married form.
        let mut a = AttrValues::from_record(&record(Some("mary"), Some("smith")));
        a.surnames.push("taylor".into());
        let b = AttrValues::from_record(&record(Some("mary"), Some("tayler")));
        let s = compare(&a, &b, 25.0);
        assert!(s.surname.unwrap() > 0.93, "uses (tayler,taylor), not (tayler,smith)");
    }

    #[test]
    fn geocoded_addresses_use_distance() {
        let mut a = AttrValues::from_record(&record(Some("x"), Some("y")));
        let mut b = a.clone();
        a.geos.push(GeoPoint::new(57.4, -6.2));
        b.geos.push(GeoPoint::new(57.4, -6.2));
        // Conflicting address *strings* are irrelevant once geo is present.
        a.addresses.push("completely different".into());
        b.addresses.push("something else".into());
        let s = compare(&a, &b, 25.0);
        assert_eq!(s.address, Some(1.0));
    }

    #[test]
    fn textual_addresses_use_jaccard() {
        let mut a = AttrValues::default();
        let mut b = AttrValues::default();
        a.addresses.push("portree".into());
        b.addresses.push("portree".into());
        assert_eq!(compare(&a, &b, 25.0).address, Some(1.0));
    }

    #[test]
    fn birth_year_window() {
        let mut a = AttrValues::default();
        let mut b = AttrValues::default();
        a.birth_years.push(1860);
        b.birth_years.push(1862);
        let s = compare(&a, &b, 25.0).birth_year.unwrap();
        assert!((s - 0.6).abs() < 1e-12);
        b.birth_years.push(1860); // best pair wins
        assert_eq!(compare(&a, &b, 25.0).birth_year, Some(1.0));
    }

    #[test]
    fn empty_sets_compare_to_nothing() {
        let s = compare(&AttrValues::default(), &AttrValues::default(), 25.0);
        assert_eq!(s, AttrSims::default());
    }
}
