//! Pedigree-graph generation (paper §5, Algorithm 1).
//!
//! The pedigree graph `G_P` has one node per resolved entity, carrying the
//! QID values accumulated from the entity's records, and one edge per
//! family relationship (*motherOf*, *fatherOf*, *spouseOf*, *childOf*)
//! lifted from the certificates: when a certificate relates two records and
//! both records have resolved entities, their entities are related.
//!
//! Algorithm 1 only adds entities of *merged* nodes; for a usable search
//! service we default to including singleton entities as well (a person with
//! one surviving record is still findable), controllable via
//! [`PedigreeGraph::build_with`].

use std::collections::BTreeSet;

use snaps_model::{Dataset, EntityId, Gender, RecordId, Relationship, Role};

use crate::pipeline::Resolution;

/// One resolved entity as a pedigree-graph node.
#[derive(Debug, Clone)]
pub struct PedigreeEntity {
    /// Dense entity id (index in [`PedigreeGraph::entities`]).
    pub id: EntityId,
    /// The records this entity was resolved from.
    pub records: Vec<RecordId>,
    /// All first names appearing across the records.
    pub first_names: Vec<String>,
    /// All surnames (maiden and married forms).
    pub surnames: Vec<String>,
    /// All addresses.
    pub addresses: Vec<String>,
    /// All occupations.
    pub occupations: Vec<String>,
    /// Geocoded coordinates of the entity's addresses (geocoded datasets).
    pub geos: Vec<snaps_model::person::GeoCoord>,
    /// Entity gender.
    pub gender: Gender,
    /// Birth year (from a `Bb` record, else the best estimate).
    pub birth_year: Option<i32>,
    /// Death year (from a `Dd` record).
    pub death_year: Option<i32>,
    /// Whether the entity has an actual birth (`Bb`) record.
    pub has_birth_record: bool,
    /// Whether the entity has an actual death (`Dd`) record.
    pub has_death_record: bool,
    /// Event years of the entity's records (for search by year range).
    pub event_years: Vec<i32>,
}

impl PedigreeEntity {
    /// Preferred display name: most recent first name + surname.
    #[must_use]
    pub fn display_name(&self) -> String {
        format!(
            "{} {}",
            self.first_names.first().map_or("?", String::as_str),
            self.surnames.first().map_or("?", String::as_str),
        )
    }
}

/// The pedigree graph: entities and their family relationships.
#[derive(Debug, Clone, Default)]
pub struct PedigreeGraph {
    /// Entity nodes.
    pub entities: Vec<PedigreeEntity>,
    /// Directed relationship edges `(from, to, relationship)`.
    pub edges: Vec<(EntityId, EntityId, Relationship)>,
    /// Adjacency: `adjacency[e]` lists `(neighbour, relationship-from-e)`.
    pub adjacency: Vec<Vec<(EntityId, Relationship)>>,
    /// Entity of each record (`EntityId(u32::MAX)` = record excluded).
    pub record_entity: Vec<EntityId>,
}

/// Sentinel for records without a pedigree entity (only occurs when
/// singletons are excluded).
pub const NO_ENTITY: EntityId = EntityId(u32::MAX);

impl PedigreeGraph {
    /// Build from a resolution, including singleton entities (the default
    /// for the search service).
    #[must_use]
    pub fn build(ds: &Dataset, res: &Resolution) -> Self {
        Self::build_with(ds, res, true)
    }

    /// Build from a resolution; `include_singletons = false` reproduces
    /// Algorithm 1 literally (only entities of merged nodes appear).
    #[must_use]
    pub fn build_with(ds: &Dataset, res: &Resolution, include_singletons: bool) -> Self {
        let mut graph =
            PedigreeGraph { record_entity: vec![NO_ENTITY; ds.len()], ..PedigreeGraph::default() };

        // Lines 1–6: one node per (merged) entity.
        for cluster in &res.clusters {
            if !include_singletons && cluster.len() < 2 {
                continue;
            }
            let id = EntityId::from_index(graph.entities.len());
            graph.entities.push(build_entity(ds, id, cluster));
            for &r in cluster {
                graph.record_entity[r.index()] = id;
            }
        }

        // Lines 7–15: lift certificate relationships to entity edges.
        let mut seen: BTreeSet<(EntityId, EntityId, Relationship)> = BTreeSet::new();
        for (a, b, rel) in ds.all_relationships() {
            let (ea, eb) = (graph.record_entity[a.index()], graph.record_entity[b.index()]);
            if ea == NO_ENTITY || eb == NO_ENTITY || ea == eb {
                continue;
            }
            if seen.insert((ea, eb, rel)) {
                graph.edges.push((ea, eb, rel));
            }
        }

        graph.adjacency = vec![Vec::new(); graph.entities.len()];
        for &(a, b, rel) in &graph.edges {
            graph.adjacency[a.index()].push((b, rel));
        }
        for adj in &mut graph.adjacency {
            adj.sort_unstable();
        }
        graph
    }

    /// Number of entities.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// Whether the graph has no entities.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Entity lookup; panics on an out-of-range id. Offline pipeline code
    /// that mints its own ids uses this; request handlers use [`Self::get`].
    #[must_use]
    pub fn entity(&self, id: EntityId) -> &PedigreeEntity {
        &self.entities[id.index()]
    }

    /// Entity lookup that tolerates out-of-range ids (the serve path takes
    /// ids from untrusted clients and from snapshot bytes).
    #[must_use]
    pub fn get(&self, id: EntityId) -> Option<&PedigreeEntity> {
        self.entities.get(id.index())
    }

    /// Neighbours of an entity with the relationship *from* the entity;
    /// empty for out-of-range ids.
    #[must_use]
    pub fn neighbours(&self, id: EntityId) -> &[(EntityId, Relationship)] {
        self.adjacency.get(id.index()).map_or(&[], Vec::as_slice)
    }

    /// The entities with a given relationship from `id` (e.g. its mother:
    /// edges point *from* the mother, so use [`Relationship::ChildOf`] from
    /// the child or query the inverse direction).
    #[must_use]
    #[cfg(test)]
    pub(crate) fn related(&self, id: EntityId, rel: Relationship) -> Vec<EntityId> {
        self.neighbours(id).iter().filter(|&&(_, r)| r == rel).map(|&(e, _)| e).collect()
    }
}

fn push_unique(vec: &mut Vec<String>, v: &Option<String>) {
    if let Some(s) = v {
        if !s.is_empty() && !vec.iter().any(|x| x == s) {
            vec.push(s.clone());
        }
    }
}

fn build_entity(ds: &Dataset, id: EntityId, cluster: &[RecordId]) -> PedigreeEntity {
    let mut e = PedigreeEntity {
        id,
        records: cluster.to_vec(),
        first_names: Vec::new(),
        surnames: Vec::new(),
        addresses: Vec::new(),
        occupations: Vec::new(),
        geos: Vec::new(),
        gender: Gender::Unknown,
        birth_year: None,
        death_year: None,
        has_birth_record: false,
        has_death_record: false,
        event_years: Vec::new(),
    };
    let mut est_birth: Option<i32> = None;
    for &rid in cluster {
        let r = ds.record(rid);
        push_unique(&mut e.first_names, &r.first_name);
        push_unique(&mut e.surnames, &r.surname);
        push_unique(&mut e.addresses, &r.address);
        push_unique(&mut e.addresses, &ds.certificate(r.certificate).parish);
        push_unique(&mut e.occupations, &r.occupation);
        if let Some(g) = r.geo {
            if !e.geos.iter().any(|x| x.lat == g.lat && x.lon == g.lon) {
                e.geos.push(g);
            }
        }
        if e.gender == Gender::Unknown {
            e.gender = r.gender;
        }
        e.event_years.push(r.event_year);
        match r.role {
            Role::BirthBaby => {
                e.birth_year = Some(r.event_year);
                e.has_birth_record = true;
            }
            Role::DeathDeceased => {
                e.death_year = Some(r.event_year);
                e.has_death_record = true;
            }
            _ => {}
        }
        if est_birth.is_none() {
            est_birth = r.estimated_birth_year();
        }
    }
    if e.birth_year.is_none() {
        e.birth_year = est_birth;
    }
    e.event_years.sort_unstable();
    e.event_years.dedup();
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SnapsConfig;
    use crate::pipeline::resolve;
    use snaps_model::CertificateKind;

    /// Family: birth of flora (1880) linked to her death (1885).
    fn family() -> Dataset {
        let mut ds = Dataset::new("t");
        let b = ds.push_certificate(CertificateKind::Birth, 1880);
        for (role, f) in [
            (Role::BirthBaby, "flora"),
            (Role::BirthMother, "effie"),
            (Role::BirthFather, "torquil"),
        ] {
            let g = role.implied_gender().unwrap_or(Gender::Female);
            let r = ds.push_record(b, role, g);
            ds.record_mut(r).first_name = Some(f.into());
            ds.record_mut(r).surname = Some("macrae".into());
            ds.record_mut(r).address = Some("portree".into());
        }
        let d = ds.push_certificate(CertificateKind::Death, 1885);
        for (role, f, age) in [
            (Role::DeathDeceased, "flora", Some(5u16)),
            (Role::DeathMother, "effie", None),
            (Role::DeathFather, "torquil", None),
        ] {
            let g = role.implied_gender().unwrap_or(Gender::Female);
            let r = ds.push_record(d, role, g);
            ds.record_mut(r).first_name = Some(f.into());
            ds.record_mut(r).surname = Some("macrae".into());
            ds.record_mut(r).age = age;
            ds.record_mut(r).address = Some("portree".into());
        }
        ds
    }

    #[test]
    fn entities_carry_aggregate_values() {
        let ds = family();
        let res = resolve(&ds, &SnapsConfig::default());
        let g = PedigreeGraph::build(&ds, &res);
        let flora = g.record_entity[0];
        let e = g.entity(flora);
        assert_eq!(e.records.len(), 2, "birth and death records linked");
        assert_eq!(e.birth_year, Some(1880));
        assert_eq!(e.death_year, Some(1885));
        assert_eq!(e.display_name(), "flora macrae");
    }

    #[test]
    fn relationships_lifted_to_entities() {
        let ds = family();
        let res = resolve(&ds, &SnapsConfig::default());
        let g = PedigreeGraph::build(&ds, &res);
        let flora = g.record_entity[0];
        let effie = g.record_entity[1];
        // effie --MotherOf--> flora (asserted by both certificates,
        // deduplicated to one edge).
        let mothers_children = g.related(effie, Relationship::MotherOf);
        assert_eq!(mothers_children, vec![flora]);
        let count = g
            .edges
            .iter()
            .filter(|&&(a, b, r)| a == effie && b == flora && r == Relationship::MotherOf)
            .count();
        assert_eq!(count, 1, "edge deduplicated across certificates");
    }

    #[test]
    fn record_entity_mapping_total_with_singletons() {
        let ds = family();
        let res = resolve(&ds, &SnapsConfig::default());
        let g = PedigreeGraph::build(&ds, &res);
        assert!(g.record_entity.iter().all(|&e| e != NO_ENTITY));
    }

    #[test]
    fn algorithm1_mode_excludes_singletons() {
        let mut ds = family();
        // An unlinked stranger.
        let c = ds.push_certificate(CertificateKind::Death, 1899);
        let r = ds.push_record(c, Role::DeathDeceased, Gender::Male);
        ds.record_mut(r).first_name = Some("zachary".into());
        ds.record_mut(r).surname = Some("ztranger".into());
        let res = resolve(&ds, &SnapsConfig::default());
        let strict = PedigreeGraph::build_with(&ds, &res, false);
        assert_eq!(strict.record_entity[r.index()], NO_ENTITY);
        let lax = PedigreeGraph::build(&ds, &res);
        assert_ne!(lax.record_entity[r.index()], NO_ENTITY);
        assert!(lax.len() > strict.len());
    }

    #[test]
    fn no_self_edges() {
        let ds = family();
        let res = resolve(&ds, &SnapsConfig::default());
        let g = PedigreeGraph::build(&ds, &res);
        assert!(g.edges.iter().all(|&(a, b, _)| a != b));
    }

    #[test]
    fn empty_resolution_empty_graph() {
        let ds = Dataset::new("e");
        let res = resolve(&ds, &SnapsConfig::default());
        let g = PedigreeGraph::build(&ds, &res);
        assert!(g.is_empty());
        assert!(g.edges.is_empty());
    }
}
