//! Data model for Scottish-style vital records (birth, death, and marriage
//! certificates) and the person records extracted from them.
//!
//! This crate is the substrate every other SNAPS crate builds on. It defines:
//!
//! * strongly-typed identifiers ([`ids`]),
//! * certificate [`Role`]s and their metadata (paper §3: `Bb`, `Bm`, `Bf`,
//!   `Dd`, `Dm`, `Df`, `Ds`, …),
//! * [`PersonRecord`] — one occurrence of an individual on one certificate,
//!   carrying the quasi-identifier (QID) attributes ER compares,
//! * [`Certificate`] and [`Dataset`] containers,
//! * intra-certificate [`Relationship`]s (*motherOf*, *fatherOf*, *spouseOf*,
//!   *childOf*) that seed the dependency graph's relational edges,
//! * dataset characterisation statistics ([`stats`]) reproducing the paper's
//!   Table 1 and Figure 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certificate;
pub mod dataset;
pub mod ids;
pub mod person;
pub mod relationship;
pub mod role;
pub mod stats;

pub use certificate::{Certificate, CertificateKind};
pub use dataset::Dataset;
pub use ids::{CertificateId, EntityId, RecordId};
pub use person::{Gender, PersonRecord};
pub use relationship::Relationship;
pub use role::{Role, RoleCategory};
