//! Dataset characterisation statistics.
//!
//! Reproduces the paper's descriptive artefacts: Table 1 (missing-value
//! counts and QID value frequencies of deceased people) and Figure 2
//! (frequency distribution of the 100 most common first names, surnames, and
//! addresses).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::person::PersonRecord;
use crate::role::Role;

/// The QID attributes Table 1 characterises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QidField {
    /// First (given) name.
    FirstName,
    /// Surname.
    Surname,
    /// Address / parish.
    Address,
    /// Occupation.
    Occupation,
}

impl QidField {
    /// All characterised fields, in Table 1 order.
    pub const ALL: [QidField; 4] =
        [QidField::FirstName, QidField::Surname, QidField::Address, QidField::Occupation];

    /// Human-readable label matching the paper's table.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            QidField::FirstName => "First name",
            QidField::Surname => "Surname",
            QidField::Address => "Address",
            QidField::Occupation => "Occupation",
        }
    }

    /// Extract this field's value from a record.
    #[must_use]
    pub fn value(self, r: &PersonRecord) -> Option<&str> {
        match self {
            QidField::FirstName => r.first_name.as_deref(),
            QidField::Surname => r.surname.as_deref(),
            QidField::Address => r.address.as_deref(),
            QidField::Occupation => r.occupation.as_deref(),
        }
    }
}

impl std::fmt::Display for QidField {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One Table 1 row: missing count and value-frequency summary for one QID.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QidStats {
    /// The characterised field.
    pub field: QidField,
    /// Number of records with the value missing.
    pub missing: usize,
    /// Minimum frequency among distinct present values (0 if none present).
    pub min_freq: usize,
    /// Mean frequency among distinct present values.
    pub avg_freq: f64,
    /// Maximum frequency among distinct present values.
    pub max_freq: usize,
    /// Number of distinct present values.
    pub distinct: usize,
}

/// Frequency table of one field over an iterator of records.
fn frequencies<'r>(
    records: impl Iterator<Item = &'r PersonRecord>,
    field: QidField,
) -> (BTreeMap<String, usize>, usize) {
    let mut freq: BTreeMap<String, usize> = BTreeMap::new();
    let mut missing = 0usize;
    for r in records {
        match field.value(r) {
            Some(v) if !v.is_empty() => *freq.entry(v.to_string()).or_insert(0) += 1,
            _ => missing += 1,
        }
    }
    (freq, missing)
}

/// Compute one Table 1 row for records with the given role.
#[must_use]
pub(crate) fn qid_stats(ds: &Dataset, role: Role, field: QidField) -> QidStats {
    let (freq, missing) = frequencies(ds.records_with_role(role), field);
    let distinct = freq.len();
    let (min_freq, max_freq, total) = freq
        .values()
        .fold((usize::MAX, 0usize, 0usize), |(mn, mx, sum), &f| (mn.min(f), mx.max(f), sum + f));
    QidStats {
        field,
        missing,
        min_freq: if distinct == 0 { 0 } else { min_freq },
        avg_freq: if distinct == 0 { 0.0 } else { total as f64 / distinct as f64 },
        max_freq,
        distinct,
    }
}

/// Compute the full Table 1 block (all four QIDs) for one role.
#[must_use]
pub fn table1_block(ds: &Dataset, role: Role) -> Vec<QidStats> {
    QidField::ALL.iter().map(|&f| qid_stats(ds, role, f)).collect()
}

/// The `k` most frequent values of a field among records with `role`,
/// descending by frequency (ties broken alphabetically for determinism).
///
/// This is the series plotted in the paper's Figure 2 with `k = 100`.
#[must_use]
pub fn top_k_frequencies(
    ds: &Dataset,
    role: Role,
    field: QidField,
    k: usize,
) -> Vec<(String, usize)> {
    let (freq, _) = frequencies(ds.records_with_role(role), field);
    let mut items: Vec<(String, usize)> = freq.into_iter().collect();
    items.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    items.truncate(k);
    items
}

/// Share (0–1) of records whose field equals the single most common value —
/// the paper observes >8% for the most common IOS name (Fig. 2 discussion).
#[must_use]
pub fn top_value_share(ds: &Dataset, role: Role, field: QidField) -> f64 {
    let (freq, _) = frequencies(ds.records_with_role(role), field);
    let total: usize = freq.values().sum();
    if total == 0 {
        return 0.0;
    }
    let max = freq.values().copied().max().unwrap_or(0);
    max as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::CertificateKind;
    use crate::person::Gender;

    fn dataset_with_deaths(names: &[Option<&str>]) -> Dataset {
        let mut ds = Dataset::new("t");
        for name in names {
            let c = ds.push_certificate(CertificateKind::Death, 1890);
            let d = ds.push_record(c, Role::DeathDeceased, Gender::Female);
            ds.record_mut(d).first_name = name.map(str::to_string);
        }
        ds
    }

    #[test]
    fn counts_missing() {
        let ds = dataset_with_deaths(&[Some("mary"), None, Some("mary"), None, Some("ann")]);
        let s = qid_stats(&ds, Role::DeathDeceased, QidField::FirstName);
        assert_eq!(s.missing, 2);
        assert_eq!(s.distinct, 2);
        assert_eq!(s.min_freq, 1);
        assert_eq!(s.max_freq, 2);
        assert!((s.avg_freq - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_role_gives_zeroes() {
        let ds = dataset_with_deaths(&[Some("mary")]);
        let s = qid_stats(&ds, Role::BirthBaby, QidField::FirstName);
        assert_eq!(s.missing, 0);
        assert_eq!(s.distinct, 0);
        assert_eq!(s.min_freq, 0);
        assert_eq!(s.max_freq, 0);
        assert_eq!(s.avg_freq, 0.0);
    }

    #[test]
    fn top_k_sorted_desc() {
        let ds = dataset_with_deaths(&[
            Some("mary"),
            Some("mary"),
            Some("mary"),
            Some("ann"),
            Some("ann"),
            Some("kate"),
        ]);
        let top = top_k_frequencies(&ds, Role::DeathDeceased, QidField::FirstName, 2);
        assert_eq!(top, vec![("mary".to_string(), 3), ("ann".to_string(), 2)]);
    }

    #[test]
    fn top_k_tie_break_alphabetical() {
        let ds = dataset_with_deaths(&[Some("zoe"), Some("ann")]);
        let top = top_k_frequencies(&ds, Role::DeathDeceased, QidField::FirstName, 10);
        assert_eq!(top[0].0, "ann");
    }

    #[test]
    fn top_value_share_fraction() {
        let ds = dataset_with_deaths(&[Some("mary"), Some("mary"), Some("ann"), Some("kate")]);
        assert!((top_value_share(&ds, Role::DeathDeceased, QidField::FirstName) - 0.5) < 1e-12);
    }

    #[test]
    fn table1_block_covers_all_fields() {
        let ds = dataset_with_deaths(&[Some("mary")]);
        let block = table1_block(&ds, Role::DeathDeceased);
        assert_eq!(block.len(), 4);
        assert_eq!(block[0].field, QidField::FirstName);
        assert_eq!(block[3].field, QidField::Occupation);
    }
}
