//! Strongly-typed identifiers.
//!
//! Records, certificates, and resolved entities all live in dense arenas and
//! are addressed by index. Newtypes keep the three index spaces from being
//! mixed up at compile time while still being `Copy` and free to pass around.

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// The identifier as a `usize` index into the owning arena.
            #[inline]
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from an arena index.
            ///
            /// # Panics
            /// Panics if `i` exceeds `u32::MAX` (arenas are bounded at 2^32).
            #[inline]
            #[must_use]
            pub fn from_index(i: usize) -> Self {
                Self(u32::try_from(i).expect("arena index exceeds u32::MAX"))
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a [`crate::PersonRecord`] — one occurrence of an
    /// individual on one certificate.
    RecordId
);
define_id!(
    /// Identifier of a [`crate::Certificate`].
    CertificateId
);
define_id!(
    /// Identifier of a resolved entity (a real-world individual, i.e. a
    /// cluster of records).
    EntityId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        let id = RecordId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, RecordId(42));
    }

    #[test]
    fn ordering_follows_index() {
        assert!(RecordId(1) < RecordId(2));
        assert!(EntityId(0) < EntityId(10));
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(CertificateId(7).to_string(), "CertificateId(7)");
    }

    #[test]
    fn serde_transparent() {
        let json = serde_json::to_string(&RecordId(5)).unwrap();
        assert_eq!(json, "5");
        let back: RecordId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, RecordId(5));
    }

    #[test]
    #[should_panic(expected = "u32::MAX")]
    fn oversized_index_panics() {
        let _ = RecordId::from_index(usize::try_from(u32::MAX).unwrap() + 1);
    }
}
