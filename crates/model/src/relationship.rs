//! Intra-certificate relationships.
//!
//! A certificate asserts relationships between the people on it — a birth
//! certificate says its `Bm` is *motherOf* its `Bb`, and so on. These edges
//! seed both the dependency graph's relational structure (paper §4.1,
//! Fig. 3) and, after resolution, the pedigree graph (paper §5).

use serde::{Deserialize, Serialize};

use crate::certificate::Certificate;
use crate::ids::RecordId;
use crate::role::Role;

/// A family relationship between two person records or entities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Relationship {
    /// `a` is the mother of `b` (paper: *Mof*).
    MotherOf,
    /// `a` is the father of `b` (paper: *Fof*).
    FatherOf,
    /// `a` is the spouse of `b` (paper: *Sof*).
    SpouseOf,
    /// `a` is a child of `b` (paper: *Cof*).
    ChildOf,
}

impl Relationship {
    /// Paper abbreviation (*Mof*, *Fof*, *Sof*, *Cof*).
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Relationship::MotherOf => "Mof",
            Relationship::FatherOf => "Fof",
            Relationship::SpouseOf => "Sof",
            Relationship::ChildOf => "Cof",
        }
    }

    /// The relationship seen from the other endpoint.
    ///
    /// Parental relationships invert to [`Relationship::ChildOf`]; *spouseOf*
    /// is its own inverse. `ChildOf` has no unique inverse (mother or father)
    /// and inverts to `None`.
    #[must_use]
    #[cfg(test)]
    pub(crate) fn inverse(self) -> Option<Relationship> {
        match self {
            Relationship::MotherOf | Relationship::FatherOf => Some(Relationship::ChildOf),
            Relationship::SpouseOf => Some(Relationship::SpouseOf),
            Relationship::ChildOf => None,
        }
    }
}

impl std::fmt::Display for Relationship {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// The directed relationships a pair of roles on the *same* certificate
/// implies, if any: returns the relationship of the first role towards the
/// second.
#[must_use]
pub fn role_relationship(from: Role, to: Role) -> Option<Relationship> {
    use Relationship::*;
    use Role::*;
    match (from, to) {
        // Birth certificate.
        (BirthMother, BirthBaby) => Some(MotherOf),
        (BirthFather, BirthBaby) => Some(FatherOf),
        (BirthBaby, BirthMother) | (BirthBaby, BirthFather) => Some(ChildOf),
        (BirthMother, BirthFather) | (BirthFather, BirthMother) => Some(SpouseOf),
        // Death certificate.
        (DeathMother, DeathDeceased) => Some(MotherOf),
        (DeathFather, DeathDeceased) => Some(FatherOf),
        (DeathDeceased, DeathMother) | (DeathDeceased, DeathFather) => Some(ChildOf),
        (DeathMother, DeathFather) | (DeathFather, DeathMother) => Some(SpouseOf),
        (DeathSpouse, DeathDeceased) | (DeathDeceased, DeathSpouse) => Some(SpouseOf),
        // Marriage certificate.
        (MarriageBride, MarriageGroom) | (MarriageGroom, MarriageBride) => Some(SpouseOf),
        (MarriageBrideMother, MarriageBride) | (MarriageGroomMother, MarriageGroom) => {
            Some(MotherOf)
        }
        (MarriageBrideFather, MarriageBride) | (MarriageGroomFather, MarriageGroom) => {
            Some(FatherOf)
        }
        (MarriageBride, MarriageBrideMother)
        | (MarriageBride, MarriageBrideFather)
        | (MarriageGroom, MarriageGroomMother)
        | (MarriageGroom, MarriageGroomFather) => Some(ChildOf),
        (MarriageBrideMother, MarriageBrideFather)
        | (MarriageBrideFather, MarriageBrideMother)
        | (MarriageGroomMother, MarriageGroomFather)
        | (MarriageGroomFather, MarriageGroomMother) => Some(SpouseOf),
        _ => None,
    }
}

/// Enumerate all directed relationship edges a certificate asserts between
/// its person records.
#[must_use]
pub fn certificate_relationships(cert: &Certificate) -> Vec<(RecordId, RecordId, Relationship)> {
    let mut edges = Vec::new();
    for &(role_a, rec_a) in &cert.people {
        for &(role_b, rec_b) in &cert.people {
            if rec_a == rec_b {
                continue;
            }
            if let Some(rel) = role_relationship(role_a, role_b) {
                edges.push((rec_a, rec_b, rel));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::CertificateKind;
    use crate::ids::CertificateId;

    #[test]
    fn birth_certificate_relationships() {
        let mut c = Certificate::new(CertificateId(0), CertificateKind::Birth, 1880);
        c.add_person(Role::BirthBaby, RecordId(0));
        c.add_person(Role::BirthMother, RecordId(1));
        c.add_person(Role::BirthFather, RecordId(2));
        let edges = certificate_relationships(&c);
        assert!(edges.contains(&(RecordId(1), RecordId(0), Relationship::MotherOf)));
        assert!(edges.contains(&(RecordId(2), RecordId(0), Relationship::FatherOf)));
        assert!(edges.contains(&(RecordId(0), RecordId(1), Relationship::ChildOf)));
        assert!(edges.contains(&(RecordId(1), RecordId(2), Relationship::SpouseOf)));
        // 3 people, every ordered pair related: 6 edges.
        assert_eq!(edges.len(), 6);
    }

    #[test]
    fn death_certificate_spouse() {
        let mut c = Certificate::new(CertificateId(0), CertificateKind::Death, 1890);
        c.add_person(Role::DeathDeceased, RecordId(0));
        c.add_person(Role::DeathSpouse, RecordId(1));
        let edges = certificate_relationships(&c);
        assert_eq!(edges.len(), 2);
        assert!(edges.iter().all(|&(_, _, r)| r == Relationship::SpouseOf));
    }

    #[test]
    fn marriage_unrelated_in_laws() {
        // Bride's mother and groom's father are on the same certificate but
        // unrelated to each other.
        assert_eq!(role_relationship(Role::MarriageBrideMother, Role::MarriageGroomFather), None);
        assert_eq!(role_relationship(Role::MarriageBrideMother, Role::MarriageGroom), None);
    }

    #[test]
    fn inverses() {
        assert_eq!(Relationship::MotherOf.inverse(), Some(Relationship::ChildOf));
        assert_eq!(Relationship::SpouseOf.inverse(), Some(Relationship::SpouseOf));
        assert_eq!(Relationship::ChildOf.inverse(), None);
    }

    #[test]
    fn cross_certificate_roles_unrelated() {
        assert_eq!(role_relationship(Role::BirthBaby, Role::DeathDeceased), None);
        assert_eq!(role_relationship(Role::BirthMother, Role::DeathMother), None);
    }
}
