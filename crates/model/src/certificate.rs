//! Certificates: the source documents person records are extracted from.

use serde::{Deserialize, Serialize};

use crate::ids::{CertificateId, RecordId};
use crate::role::Role;

/// Kind of statutory certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CertificateKind {
    /// Birth certificate: baby + mother + father.
    Birth,
    /// Death certificate: deceased + parents (+ spouse if married).
    Death,
    /// Marriage certificate: bride + groom (+ their parents).
    Marriage,
}

impl CertificateKind {
    /// One-letter code used in displays (`b`/`d`/`m`).
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            CertificateKind::Birth => "b",
            CertificateKind::Death => "d",
            CertificateKind::Marriage => "m",
        }
    }
}

impl std::fmt::Display for CertificateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// A single statutory certificate with the person records appearing on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Certificate {
    /// This certificate's identifier.
    pub id: CertificateId,
    /// Birth, death, or marriage.
    pub kind: CertificateKind,
    /// Registration year of the event.
    pub year: i32,
    /// Registration parish or district.
    pub parish: Option<String>,
    /// The person records on this certificate, as `(role, record)` pairs.
    pub people: Vec<(Role, RecordId)>,
}

impl Certificate {
    /// Create an empty certificate.
    #[must_use]
    pub fn new(id: CertificateId, kind: CertificateKind, year: i32) -> Self {
        Self { id, kind, year, parish: None, people: Vec::new() }
    }

    /// The record playing `role` on this certificate, if present.
    #[must_use]
    pub fn record_with_role(&self, role: Role) -> Option<RecordId> {
        self.people.iter().find(|(r, _)| *r == role).map(|&(_, id)| id)
    }

    /// Attach a person record with its role.
    ///
    /// # Panics
    /// Panics if the role belongs to a different certificate kind or is
    /// already occupied — both indicate a bug in whatever built the
    /// certificate.
    pub fn add_person(&mut self, role: Role, record: RecordId) {
        assert_eq!(
            role.certificate_kind(),
            self.kind,
            "role {role} cannot appear on a {:?} certificate",
            self.kind
        );
        assert!(
            self.record_with_role(role).is_none(),
            "role {role} already present on certificate {}",
            self.id
        );
        self.people.push((role, record));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut c = Certificate::new(CertificateId(0), CertificateKind::Birth, 1880);
        c.add_person(Role::BirthBaby, RecordId(1));
        c.add_person(Role::BirthMother, RecordId(2));
        assert_eq!(c.record_with_role(Role::BirthBaby), Some(RecordId(1)));
        assert_eq!(c.record_with_role(Role::BirthFather), None);
    }

    #[test]
    #[should_panic(expected = "cannot appear")]
    fn wrong_kind_panics() {
        let mut c = Certificate::new(CertificateId(0), CertificateKind::Birth, 1880);
        c.add_person(Role::DeathDeceased, RecordId(1));
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn duplicate_role_panics() {
        let mut c = Certificate::new(CertificateId(0), CertificateKind::Death, 1880);
        c.add_person(Role::DeathDeceased, RecordId(1));
        c.add_person(Role::DeathDeceased, RecordId(2));
    }

    #[test]
    fn kind_codes() {
        assert_eq!(CertificateKind::Birth.to_string(), "b");
        assert_eq!(CertificateKind::Death.to_string(), "d");
        assert_eq!(CertificateKind::Marriage.to_string(), "m");
    }
}
