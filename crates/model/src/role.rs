//! Certificate roles and role metadata.
//!
//! Each person record carries the *role* it plays on its certificate
//! (paper §3). Roles constrain ER in two ways: some role pairs are
//! impossible to link at all (`Bm` is always female, `Bf` always male), and
//! role pairs carry temporal and cardinality constraints (paper §4.2.2).

use serde::{Deserialize, Serialize};

use crate::certificate::CertificateKind;
use crate::person::Gender;

/// The role an individual plays on a certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Role {
    /// Baby on a birth certificate.
    BirthBaby,
    /// Mother on a birth certificate.
    BirthMother,
    /// Father on a birth certificate.
    BirthFather,
    /// Deceased person on a death certificate.
    DeathDeceased,
    /// Mother of the deceased on a death certificate.
    DeathMother,
    /// Father of the deceased on a death certificate.
    DeathFather,
    /// Spouse of the deceased on a death certificate.
    DeathSpouse,
    /// Bride on a marriage certificate.
    MarriageBride,
    /// Groom on a marriage certificate.
    MarriageGroom,
    /// Mother of the bride on a marriage certificate.
    MarriageBrideMother,
    /// Father of the bride on a marriage certificate.
    MarriageBrideFather,
    /// Mother of the groom on a marriage certificate.
    MarriageGroomMother,
    /// Father of the groom on a marriage certificate.
    MarriageGroomFather,
}

impl Role {
    /// All roles, in a stable order.
    pub const ALL: [Role; 13] = [
        Role::BirthBaby,
        Role::BirthMother,
        Role::BirthFather,
        Role::DeathDeceased,
        Role::DeathMother,
        Role::DeathFather,
        Role::DeathSpouse,
        Role::MarriageBride,
        Role::MarriageGroom,
        Role::MarriageBrideMother,
        Role::MarriageBrideFather,
        Role::MarriageGroomMother,
        Role::MarriageGroomFather,
    ];

    /// The paper's two-letter abbreviation (`Bb`, `Bm`, `Bf`, `Dd`, …).
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Role::BirthBaby => "Bb",
            Role::BirthMother => "Bm",
            Role::BirthFather => "Bf",
            Role::DeathDeceased => "Dd",
            Role::DeathMother => "Dm",
            Role::DeathFather => "Df",
            Role::DeathSpouse => "Ds",
            Role::MarriageBride => "Mb",
            Role::MarriageGroom => "Mg",
            Role::MarriageBrideMother => "Mbm",
            Role::MarriageBrideFather => "Mbf",
            Role::MarriageGroomMother => "Mgm",
            Role::MarriageGroomFather => "Mgf",
        }
    }

    /// Which kind of certificate this role appears on.
    #[must_use]
    pub fn certificate_kind(self) -> CertificateKind {
        match self {
            Role::BirthBaby | Role::BirthMother | Role::BirthFather => CertificateKind::Birth,
            Role::DeathDeceased | Role::DeathMother | Role::DeathFather | Role::DeathSpouse => {
                CertificateKind::Death
            }
            _ => CertificateKind::Marriage,
        }
    }

    /// The gender the role implies, if any.
    ///
    /// `BirthBaby`, `DeathDeceased`, and `DeathSpouse` can be either gender;
    /// every parental and marital role fixes it.
    #[must_use]
    pub fn implied_gender(self) -> Option<Gender> {
        match self {
            Role::BirthMother
            | Role::DeathMother
            | Role::MarriageBride
            | Role::MarriageBrideMother
            | Role::MarriageGroomMother => Some(Gender::Female),
            Role::BirthFather
            | Role::DeathFather
            | Role::MarriageGroom
            | Role::MarriageBrideFather
            | Role::MarriageGroomFather => Some(Gender::Male),
            Role::BirthBaby | Role::DeathDeceased | Role::DeathSpouse => None,
        }
    }

    /// Whether this role describes the certificate's *principal* (the person
    /// the event happened to) as opposed to a relative mentioned on it.
    #[must_use]
    #[cfg(test)]
    pub(crate) fn is_principal(self) -> bool {
        matches!(
            self,
            Role::BirthBaby | Role::DeathDeceased | Role::MarriageBride | Role::MarriageGroom
        )
    }

    /// The coarse category used when reporting linkage quality per role pair.
    #[must_use]
    pub fn category(self) -> RoleCategory {
        match self {
            Role::BirthBaby => RoleCategory::BirthChild,
            Role::BirthMother | Role::BirthFather => RoleCategory::BirthParent,
            Role::DeathDeceased => RoleCategory::Deceased,
            Role::DeathMother | Role::DeathFather => RoleCategory::DeathParent,
            Role::DeathSpouse => RoleCategory::Spouse,
            Role::MarriageBride | Role::MarriageGroom => RoleCategory::MarriagePrincipal,
            Role::MarriageBrideMother
            | Role::MarriageBrideFather
            | Role::MarriageGroomMother
            | Role::MarriageGroomFather => RoleCategory::MarriageParent,
        }
    }
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// Coarse role grouping used for evaluation (the paper's `Bp`, `Dp`, … in
/// Tables 2–4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RoleCategory {
    /// Baby on a birth certificate (`Bb`).
    BirthChild,
    /// Parent on a birth certificate (`Bp` = `Bm` ∪ `Bf`).
    BirthParent,
    /// Deceased person (`Dd`).
    Deceased,
    /// Parent on a death certificate (`Dp` = `Dm` ∪ `Df`).
    DeathParent,
    /// Spouse on a death certificate (`Ds`).
    Spouse,
    /// Bride or groom (`Mp` = `Mb` ∪ `Mg`).
    MarriagePrincipal,
    /// Parent on a marriage certificate.
    MarriageParent,
}

impl RoleCategory {
    /// The paper's abbreviation for the category.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            RoleCategory::BirthChild => "Bb",
            RoleCategory::BirthParent => "Bp",
            RoleCategory::Deceased => "Dd",
            RoleCategory::DeathParent => "Dp",
            RoleCategory::Spouse => "Ds",
            RoleCategory::MarriagePrincipal => "Mp",
            RoleCategory::MarriageParent => "Mpp",
        }
    }
}

impl std::fmt::Display for RoleCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique() {
        let mut codes: Vec<_> = Role::ALL.iter().map(|r| r.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), Role::ALL.len());
    }

    #[test]
    fn certificate_kinds() {
        assert_eq!(Role::BirthBaby.certificate_kind(), CertificateKind::Birth);
        assert_eq!(Role::DeathSpouse.certificate_kind(), CertificateKind::Death);
        assert_eq!(Role::MarriageGroomFather.certificate_kind(), CertificateKind::Marriage);
    }

    #[test]
    fn implied_genders() {
        assert_eq!(Role::BirthMother.implied_gender(), Some(Gender::Female));
        assert_eq!(Role::MarriageGroom.implied_gender(), Some(Gender::Male));
        assert_eq!(Role::BirthBaby.implied_gender(), None);
        assert_eq!(Role::DeathSpouse.implied_gender(), None);
    }

    #[test]
    fn principals() {
        assert!(Role::BirthBaby.is_principal());
        assert!(Role::MarriageBride.is_principal());
        assert!(!Role::BirthMother.is_principal());
        assert!(!Role::DeathSpouse.is_principal());
    }

    #[test]
    fn categories_group_parents() {
        assert_eq!(Role::BirthMother.category(), RoleCategory::BirthParent);
        assert_eq!(Role::BirthFather.category(), RoleCategory::BirthParent);
        assert_eq!(Role::DeathMother.category(), RoleCategory::DeathParent);
        assert_eq!(RoleCategory::BirthParent.code(), "Bp");
        assert_eq!(RoleCategory::DeathParent.code(), "Dp");
    }

    #[test]
    fn display_uses_code() {
        assert_eq!(Role::DeathDeceased.to_string(), "Dd");
        assert_eq!(RoleCategory::Spouse.to_string(), "Ds");
    }
}
