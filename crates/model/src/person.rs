//! Person records: one occurrence of an individual on one certificate.

use serde::{Deserialize, Serialize};
use snaps_strsim::geo::GeoPoint;

use crate::ids::{CertificateId, RecordId};
use crate::role::Role;

/// Gender as recorded on a certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Gender {
    /// Female.
    Female,
    /// Male.
    Male,
    /// Not recorded / illegible.
    Unknown,
}

impl Gender {
    /// Single-letter code (`f`/`m`/`u`) as shown in the paper's result lists.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Gender::Female => "f",
            Gender::Male => "m",
            Gender::Unknown => "u",
        }
    }

    /// Whether two recorded genders are compatible (unknown matches anything).
    #[must_use]
    pub fn compatible(self, other: Gender) -> bool {
        self == Gender::Unknown || other == Gender::Unknown || self == other
    }
}

impl std::fmt::Display for Gender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// A serialisable latitude/longitude pair.
///
/// [`GeoPoint`] itself lives in `snaps-strsim` (which has no serde
/// dependency); this mirror type carries coordinates through dataset
/// (de)serialisation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoCoord {
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
}

impl From<GeoCoord> for GeoPoint {
    fn from(c: GeoCoord) -> Self {
        GeoPoint::new(c.lat, c.lon)
    }
}

impl From<GeoPoint> for GeoCoord {
    fn from(p: GeoPoint) -> Self {
        GeoCoord { lat: p.lat, lon: p.lon }
    }
}

/// One occurrence of an individual on one certificate, with the
/// quasi-identifier (QID) attributes available for ER.
///
/// Optional fields are `None` when the certificate did not record a value —
/// missing values are pervasive in historical data (paper Table 1) and every
/// comparison function must tolerate them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersonRecord {
    /// This record's identifier (its index in the dataset's record arena).
    pub id: RecordId,
    /// The certificate the record was extracted from.
    pub certificate: CertificateId,
    /// Role the individual plays on that certificate.
    pub role: Role,
    /// First (given) name, normalised; `None` if missing.
    pub first_name: Option<String>,
    /// Surname, normalised; `None` if missing.
    pub surname: Option<String>,
    /// Gender as recorded (or implied by the role).
    pub gender: Gender,
    /// Year of the certificate's event (birth/death/marriage year).
    pub event_year: i32,
    /// Address / parish string; `None` if missing.
    pub address: Option<String>,
    /// Occupation; `None` if missing.
    pub occupation: Option<String>,
    /// Age at the event, when stated (deaths, marriages).
    pub age: Option<u16>,
    /// Geocoded address coordinate, when the dataset was geocoded (IOS only).
    pub geo: Option<GeoCoord>,
    /// Cause of death (deceased records only).
    pub cause_of_death: Option<String>,
}

impl PersonRecord {
    /// A minimal record with all optional attributes absent.
    #[must_use]
    pub fn new(
        id: RecordId,
        certificate: CertificateId,
        role: Role,
        gender: Gender,
        event_year: i32,
    ) -> Self {
        Self {
            id,
            certificate,
            role,
            first_name: None,
            surname: None,
            gender,
            event_year,
            address: None,
            occupation: None,
            age: None,
            geo: None,
            cause_of_death: None,
        }
    }

    /// Estimated birth year: the event year for birth babies, otherwise
    /// `event_year - age` when an age was recorded.
    #[must_use]
    pub fn estimated_birth_year(&self) -> Option<i32> {
        match self.role {
            Role::BirthBaby => Some(self.event_year),
            _ => self.age.map(|a| self.event_year - i32::from(a)),
        }
    }

    /// Full name (`first surname`) for display; missing parts are `?`.
    #[must_use]
    pub fn display_name(&self) -> String {
        format!(
            "{} {}",
            self.first_name.as_deref().unwrap_or("?"),
            self.surname.as_deref().unwrap_or("?")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(role: Role) -> PersonRecord {
        PersonRecord::new(RecordId(0), CertificateId(0), role, Gender::Female, 1880)
    }

    #[test]
    fn gender_compatibility() {
        assert!(Gender::Female.compatible(Gender::Female));
        assert!(!Gender::Female.compatible(Gender::Male));
        assert!(Gender::Unknown.compatible(Gender::Male));
        assert!(Gender::Female.compatible(Gender::Unknown));
    }

    #[test]
    fn birth_year_for_baby_is_event_year() {
        let r = rec(Role::BirthBaby);
        assert_eq!(r.estimated_birth_year(), Some(1880));
    }

    #[test]
    fn birth_year_from_age() {
        let mut r = rec(Role::DeathDeceased);
        assert_eq!(r.estimated_birth_year(), None);
        r.age = Some(30);
        assert_eq!(r.estimated_birth_year(), Some(1850));
    }

    #[test]
    fn display_name_handles_missing() {
        let mut r = rec(Role::BirthMother);
        assert_eq!(r.display_name(), "? ?");
        r.first_name = Some("mary".into());
        r.surname = Some("macdonald".into());
        assert_eq!(r.display_name(), "mary macdonald");
    }

    #[test]
    fn geo_coord_round_trip() {
        let p = GeoPoint::new(57.4, -6.2);
        let c: GeoCoord = p.into();
        let back: GeoPoint = c.into();
        assert_eq!(back, p);
    }

    #[test]
    fn serde_round_trip() {
        let mut r = rec(Role::DeathDeceased);
        r.first_name = Some("mary".into());
        r.cause_of_death = Some("old age".into());
        let json = serde_json::to_string(&r).unwrap();
        let back: PersonRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
