//! Dataset container: certificates + extracted person records.

use serde::{Deserialize, Serialize};

use crate::certificate::{Certificate, CertificateKind};
use crate::ids::{CertificateId, RecordId};
use crate::person::{Gender, PersonRecord};
use crate::relationship::{certificate_relationships, Relationship};
use crate::role::Role;

/// A set of certificates and the person records extracted from them — the
/// paper's record set **R**.
///
/// Records and certificates are stored in dense arenas; identifiers are arena
/// indices, so lookups are `O(1)` and iteration order is deterministic.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable dataset name (e.g. `"IOS"`, `"KIL"`).
    pub name: String,
    /// Certificate arena, indexed by [`CertificateId`].
    pub certificates: Vec<Certificate>,
    /// Record arena, indexed by [`RecordId`].
    pub records: Vec<PersonRecord>,
}

impl Dataset {
    /// Create an empty dataset.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), certificates: Vec::new(), records: Vec::new() }
    }

    /// Number of person records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the dataset holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Look up a record.
    ///
    /// # Panics
    /// Panics when the id is out of range (ids are only minted by this
    /// dataset, so an out-of-range id is a logic error).
    #[inline]
    #[must_use]
    pub fn record(&self, id: RecordId) -> &PersonRecord {
        // Only "serve-reachable" through the call-graph's method-name
        // fallback (`.record` on a histogram handle); no request handler
        // passes ids this dataset did not mint.
        &self.records[id.index()] // snaps-lint: allow(panic-reachability) -- false method-fallback edge; ids are arena-minted
    }

    /// Look up a certificate.
    #[inline]
    #[must_use]
    pub fn certificate(&self, id: CertificateId) -> &Certificate {
        &self.certificates[id.index()]
    }

    /// Start a new certificate, returning its id.
    pub fn push_certificate(&mut self, kind: CertificateKind, year: i32) -> CertificateId {
        let id = CertificateId::from_index(self.certificates.len());
        self.certificates.push(Certificate::new(id, kind, year));
        id
    }

    /// Add a person record to an existing certificate, returning its id.
    pub fn push_record(
        &mut self,
        certificate: CertificateId,
        role: Role,
        gender: Gender,
    ) -> RecordId {
        let year = self.certificate(certificate).year;
        let id = RecordId::from_index(self.records.len());
        self.records.push(PersonRecord::new(id, certificate, role, gender, year));
        self.certificates[certificate.index()].add_person(role, id);
        id
    }

    /// Mutable access to a record (builder-style population).
    #[inline]
    pub fn record_mut(&mut self, id: RecordId) -> &mut PersonRecord {
        &mut self.records[id.index()]
    }

    /// Iterate over records with a given role.
    pub fn records_with_role(&self, role: Role) -> impl Iterator<Item = &PersonRecord> {
        self.records.iter().filter(move |r| r.role == role)
    }

    /// All directed relationship edges asserted by all certificates.
    #[must_use]
    pub fn all_relationships(&self) -> Vec<(RecordId, RecordId, Relationship)> {
        let mut edges = Vec::new();
        for cert in &self.certificates {
            edges.extend(certificate_relationships(cert));
        }
        edges
    }

    /// The records appearing on the same certificate as `id`, with the
    /// relationship of each towards `id`.
    #[must_use]
    pub fn certificate_neighbours(&self, id: RecordId) -> Vec<(RecordId, Relationship)> {
        let rec = self.record(id);
        let cert = self.certificate(rec.certificate);
        let mut out = Vec::new();
        for &(role, other) in &cert.people {
            if other == id {
                continue;
            }
            if let Some(rel) = crate::relationship::role_relationship(role, rec.role) {
                out.push((other, rel));
            }
        }
        out
    }

    /// Serialise to pretty JSON.
    ///
    /// # Errors
    /// Propagates serialisation failures (effectively unreachable for this
    /// data model).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Deserialise from JSON produced by [`Dataset::to_json`].
    ///
    /// # Errors
    /// Returns the underlying parse error on malformed input.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Validate internal invariants; used by tests and after deserialising
    /// externally-produced files.
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        for (i, r) in self.records.iter().enumerate() {
            if r.id.index() != i {
                return Err(format!("record at index {i} has id {}", r.id));
            }
            if r.certificate.index() >= self.certificates.len() {
                return Err(format!("record {} references missing certificate", r.id));
            }
            let cert = self.certificate(r.certificate);
            if r.role.certificate_kind() != cert.kind {
                return Err(format!("record {} role {} on wrong certificate kind", r.id, r.role));
            }
            if cert.record_with_role(r.role) != Some(r.id) {
                return Err(format!("certificate {} does not list record {}", cert.id, r.id));
            }
            if let Some(g) = r.role.implied_gender() {
                if !r.gender.compatible(g) {
                    return Err(format!("record {} gender conflicts with role {}", r.id, r.role));
                }
            }
        }
        for (i, c) in self.certificates.iter().enumerate() {
            if c.id.index() != i {
                return Err(format!("certificate at index {i} has id {}", c.id));
            }
            for &(role, rec) in &c.people {
                if rec.index() >= self.records.len() {
                    return Err(format!("certificate {} lists missing record", c.id));
                }
                if self.record(rec).role != role {
                    return Err(format!("certificate {} role mismatch for {}", c.id, rec));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let mut ds = Dataset::new("tiny");
        let b = ds.push_certificate(CertificateKind::Birth, 1880);
        let bb = ds.push_record(b, Role::BirthBaby, Gender::Female);
        let bm = ds.push_record(b, Role::BirthMother, Gender::Female);
        ds.record_mut(bb).first_name = Some("mary".into());
        ds.record_mut(bm).first_name = Some("ann".into());
        ds
    }

    #[test]
    fn push_and_lookup() {
        let ds = tiny();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.record(RecordId(0)).first_name.as_deref(), Some("mary"));
        assert_eq!(ds.certificate(CertificateId(0)).people.len(), 2);
        ds.validate().unwrap();
    }

    #[test]
    fn records_with_role() {
        let ds = tiny();
        assert_eq!(ds.records_with_role(Role::BirthBaby).count(), 1);
        assert_eq!(ds.records_with_role(Role::DeathDeceased).count(), 0);
    }

    #[test]
    fn record_inherits_certificate_year() {
        let ds = tiny();
        assert_eq!(ds.record(RecordId(0)).event_year, 1880);
    }

    #[test]
    fn neighbours_carry_relationships() {
        let ds = tiny();
        let n = ds.certificate_neighbours(RecordId(0));
        assert_eq!(n, vec![(RecordId(1), Relationship::MotherOf)]);
    }

    #[test]
    fn json_round_trip() {
        let ds = tiny();
        let json = ds.to_json().unwrap();
        let back = Dataset::from_json(&json).unwrap();
        assert_eq!(back.len(), ds.len());
        back.validate().unwrap();
    }

    #[test]
    fn validate_catches_gender_conflict() {
        let mut ds = tiny();
        ds.record_mut(RecordId(1)).gender = Gender::Male; // mother marked male
        assert!(ds.validate().is_err());
    }

    #[test]
    fn empty_dataset_is_valid() {
        let ds = Dataset::new("empty");
        assert!(ds.is_empty());
        ds.validate().unwrap();
    }
}
