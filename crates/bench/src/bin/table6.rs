//! Regenerates **Table 6**: scalability of the offline component over
//! growing registration windows of the BHIC-like profile — graph sizes,
//! per-phase runtimes, and linkage time per node / per edge.
//!
//! The paper's windows end in 1935 and start 35/45/55/65 years earlier;
//! near-linear ms-per-node and ms-per-edge is the claimed result.
//!
//! ```text
//! cargo run -p snaps-bench --release --bin table6 [-- --scale 1.0 --seed 42]
//! ```

use snaps_bench::{format_table, write_report, ExperimentArgs};
use snaps_core::{resolve_with_obs, SnapsConfig};
use snaps_datagen::{generate, DatasetProfile};
use snaps_eval::scaling::{run_scaling, PAPER_PERIODS};
use snaps_obs::{Obs, ObsConfig};

fn main() {
    let args = ExperimentArgs::parse();
    let cfg = SnapsConfig::default();
    println!(
        "Table 6: Runtimes of the offline component for different graph sizes (BHIC)\n\
         (scale={}, seed={})\n",
        args.scale, args.seed
    );

    let rows = run_scaling(&PAPER_PERIODS, args.scale, args.seed, &cfg);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{} - {}", r.period.0, r.period.1),
                r.records.to_string(),
                r.nodes.to_string(),
                r.edges.to_string(),
                format!("{:.1}", r.t_atomic_s),
                format!("{:.1}", r.t_relational_s),
                format!("{:.1}", r.t_bootstrap_s),
                format!("{:.1}", r.t_merge_s),
                format!("{:.3}", r.linkage_ms_per_node),
                format!("{:.3}", r.linkage_ms_per_edge),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "Time period",
                "Records",
                "Nodes",
                "Edges",
                "Gen N_A (s)",
                "Gen N_R (s)",
                "Bootstrap (s)",
                "Merging (s)",
                "Linkage ms/node",
                "Linkage ms/edge"
            ],
            &table
        )
    );

    // With --report, re-resolve the largest window with full instrumentation
    // (the timed sweep above stays uninstrumented) and dump the span tree,
    // per-pass counters, and graph gauges.
    if args.report.is_some() {
        let years = *PAPER_PERIODS.last().expect("paper periods are non-empty");
        let profile = DatasetProfile::bhic(years).scaled(args.scale);
        let data = generate(&profile, args.seed);
        eprintln!(
            "[table6] instrumented resolve on the {}-year window ({} records)…",
            years,
            data.dataset.len()
        );
        let obs = Obs::new(&ObsConfig::full());
        let _ = resolve_with_obs(&data.dataset, &cfg, &obs);
        if let Some(report) = obs.report() {
            write_report(
                report
                    .with_meta("dataset", data.dataset.name.as_str())
                    .with_meta("period_years", years),
                &args,
                "table6",
            );
        }
    }
}
