//! Regenerates **Table 7**: minimum, average, median, and maximum time for
//! querying and for extracting family pedigrees.
//!
//! A batch of realistic queries (entity names, a third of them typo'd, half
//! with optional refinements) runs against the online search engine built
//! from a resolved IOS-profile dataset; each query's top hit then has its
//! two-generation pedigree extracted.
//!
//! ```text
//! cargo run -p snaps-bench --release --bin table7 [-- --scale 1.0 --seed 42]
//! ```

use snaps_bench::{format_table, ExperimentArgs};
use snaps_core::{resolve, PedigreeGraph, SnapsConfig};
use snaps_datagen::{generate, DatasetProfile};
use snaps_eval::timing::{generate_query_batch, time_queries};
use snaps_query::SearchEngine;

/// Queries timed per run.
const BATCH: usize = 200;

fn main() {
    let args = ExperimentArgs::parse();
    let cfg = SnapsConfig::default();
    println!(
        "Table 7: Min/avg/median/max seconds for querying and pedigree extraction\n\
         (scale={}, seed={}, batch={BATCH})\n",
        args.scale, args.seed
    );

    let data = generate(&DatasetProfile::ios().scaled(args.scale), args.seed);
    eprintln!("[table7] resolving {} records…", data.dataset.len());
    let res = resolve(&data.dataset, &cfg);
    let graph = PedigreeGraph::build(&data.dataset, &res);
    eprintln!("[table7] building indices over {} entities…", graph.len());
    let mut engine = SearchEngine::build(graph);

    let queries = generate_query_batch(engine.graph(), BATCH, args.seed);
    let (q, p) = time_queries(&mut engine, &queries, 10);

    let fmt = |v: f64| format!("{v:.4}");
    println!(
        "{}",
        format_table(
            &["Task", "Minimum", "Average", "Median", "Maximum"],
            &[
                vec!["Querying".into(), fmt(q.min), fmt(q.avg), fmt(q.median), fmt(q.max)],
                vec![
                    "Pedigree extraction".into(),
                    fmt(p.min),
                    fmt(p.avg),
                    fmt(p.median),
                    fmt(p.max)
                ],
            ]
        )
    );
}
