//! Regenerates **Table 7**: minimum, average, median, and maximum time for
//! querying and for extracting family pedigrees.
//!
//! A batch of realistic queries (entity names, a third of them typo'd, half
//! with optional refinements) runs against the online search engine built
//! from a resolved IOS-profile dataset; each query's top hit then has its
//! two-generation pedigree extracted.
//!
//! ```text
//! cargo run -p snaps-bench --release --bin table7 [-- --scale 1.0 --seed 42]
//! ```

use snaps_bench::{format_table, write_report, ExperimentArgs};
use snaps_core::{resolve_with_obs, PedigreeGraph, SnapsConfig};
use snaps_datagen::{generate, DatasetProfile};
use snaps_eval::timing::{generate_query_batch, time_queries};
use snaps_obs::{Obs, ObsConfig};
use snaps_pedigree::{extract_with, DEFAULT_GENERATIONS};
use snaps_query::SearchEngine;

/// Queries timed per run.
const BATCH: usize = 200;

fn main() {
    let args = ExperimentArgs::parse();
    let cfg = SnapsConfig::default();
    println!(
        "Table 7: Min/avg/median/max seconds for querying and pedigree extraction\n\
         (scale={}, seed={}, batch={BATCH})\n",
        args.scale, args.seed
    );

    // With --report the whole end-to-end path (resolve, index build, query
    // batch) runs instrumented; the query latency histogram then lands in
    // the report alongside the table's exact sample statistics.
    let obs = if args.report.is_some() { Obs::new(&ObsConfig::full()) } else { Obs::disabled() };

    let data = generate(&DatasetProfile::ios().scaled(args.scale), args.seed);
    eprintln!("[table7] resolving {} records…", data.dataset.len());
    let res = resolve_with_obs(&data.dataset, &cfg, &obs);
    let graph = PedigreeGraph::build(&data.dataset, &res);
    eprintln!("[table7] building indices over {} entities…", graph.len());
    let engine = SearchEngine::build_obs(graph, &obs);

    let queries = generate_query_batch(engine.graph(), BATCH, args.seed);
    let (q, p) = time_queries(&engine, &queries, 10);

    if obs.is_enabled() {
        // One instrumented extraction so pedigree span/counters appear too.
        if let Some(top) = engine.query(&queries[0], 1).first() {
            let _ = extract_with(engine.graph(), top.entity, DEFAULT_GENERATIONS, &obs);
        }
    }

    let fmt = |v: f64| format!("{v:.4}");
    let pedigree_row = match p {
        Some(p) => {
            vec!["Pedigree extraction".into(), fmt(p.min), fmt(p.avg), fmt(p.median), fmt(p.max)]
        }
        // No query returned a hit, so there is nothing to extract.
        None => vec![
            "Pedigree extraction".into(),
            "n/a".into(),
            "n/a".into(),
            "n/a".into(),
            "n/a".into(),
        ],
    };
    println!(
        "{}",
        format_table(
            &["Task", "Minimum", "Average", "Median", "Maximum"],
            &[
                vec!["Querying".into(), fmt(q.min), fmt(q.avg), fmt(q.median), fmt(q.max)],
                pedigree_row,
            ]
        )
    );

    if let Some(report) = obs.report() {
        write_report(report.with_meta("dataset", "ios").with_meta("batch", BATCH), &args, "table7");
    }
}
