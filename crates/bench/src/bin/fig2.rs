//! Regenerates **Figure 2**: frequency distribution of the 100 most common
//! first names, surnames, and addresses of deceased people (IOS and KIL).
//!
//! Prints the series the paper plots — rank vs frequency — plus the top
//! value's share of all records (the paper notes >8% for IOS first names).
//!
//! ```text
//! cargo run -p snaps-bench --release --bin fig2 [-- --scale 1.0 --seed 42]
//! ```

use snaps_bench::ExperimentArgs;
use snaps_datagen::{generate, DatasetProfile};
use snaps_eval::characterise::fig2_series;
use snaps_model::stats::{top_value_share, QidField};
use snaps_model::Role;

fn main() {
    let args = ExperimentArgs::parse();
    println!(
        "Figure 2: frequency distribution of the 100 most common values\n\
         (scale={}, seed={})\n",
        args.scale, args.seed
    );

    for profile in
        [DatasetProfile::ios().scaled(args.scale), DatasetProfile::kil().scaled(args.scale)]
    {
        let data = generate(&profile, args.seed);
        println!("== {} ==", data.dataset.name);
        for field in [QidField::FirstName, QidField::Surname, QidField::Address] {
            let series = fig2_series(&data, field, 100);
            let share = 100.0 * top_value_share(&data.dataset, Role::DeathDeceased, field);
            println!("-- {} (top value covers {share:.1}% of records) --", field.label());
            // Print rank: frequency series, ten per line, plus the top 5
            // values by name.
            for (rank, (value, freq)) in series.iter().take(5).enumerate() {
                println!("   #{:<3} {value:<20} {freq}", rank + 1);
            }
            let freqs: Vec<String> = series.iter().map(|(_, f)| f.to_string()).collect();
            for chunk in freqs.chunks(20) {
                println!("   {}", chunk.join(" "));
            }
        }
        println!();
    }
}
