//! Regenerates **Table 1**: missing-value counts and QID value frequencies
//! (min / avg / max) of deceased people in the IOS and KIL data sets and a
//! DS-like sample.
//!
//! ```text
//! cargo run -p snaps-bench --release --bin table1 [-- --scale 1.0 --seed 42]
//! ```

use snaps_bench::{format_table, ExperimentArgs};
use snaps_datagen::{generate, DatasetProfile};
use snaps_eval::characterise::table1;

fn main() {
    let args = ExperimentArgs::parse();
    println!(
        "Table 1: Missing value counts and QID value frequencies of deceased people\n\
         (scale={}, seed={})\n",
        args.scale, args.seed
    );

    let profiles = [
        DatasetProfile::ios().scaled(args.scale),
        DatasetProfile::kil().scaled(args.scale),
        // The DS sample is only used for characterisation; keep it modest.
        DatasetProfile::ds_sample().scaled(args.scale * 0.5),
    ];

    let mut rows = Vec::new();
    for profile in profiles {
        let data = generate(&profile, args.seed);
        let block = table1(&data);
        for (i, r) in block.rows.iter().enumerate() {
            rows.push(vec![
                if i == 0 {
                    format!("{} ({})", block.dataset, block.entities)
                } else {
                    String::new()
                },
                r.field.label().to_string(),
                r.missing.to_string(),
                r.min_freq.to_string(),
                format!("{:.1}", r.avg_freq),
                r.max_freq.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        format_table(
            &["Data set (Entities)", "QID attribute", "Missing", "Min", "Avr", "Max"],
            &rows
        )
    );
}
