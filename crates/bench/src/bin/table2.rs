//! Regenerates **Table 2**: characteristics of the data sets used in the
//! evaluation — records per role, candidate record pairs, and true matches
//! for the `Bp-Bp` and `Bp-Dp` role pairs on IOS and KIL.
//!
//! ```text
//! cargo run -p snaps-bench --release --bin table2 [-- --scale 1.0 --seed 42]
//! ```

use snaps_bench::{format_table, ExperimentArgs};
use snaps_core::SnapsConfig;
use snaps_datagen::{generate, DatasetProfile};
use snaps_eval::characterise::table2;

fn main() {
    let args = ExperimentArgs::parse();
    let cfg = SnapsConfig::default();
    println!(
        "Table 2: Characteristics of the data sets used in the experimental evaluation\n\
         (scale={}, seed={})\n",
        args.scale, args.seed
    );

    let mut rows = Vec::new();
    for profile in
        [DatasetProfile::ios().scaled(args.scale), DatasetProfile::kil().scaled(args.scale)]
    {
        let data = generate(&profile, args.seed);
        for (i, r) in table2(&data, &cfg).into_iter().enumerate() {
            rows.push(vec![
                if i == 0 { r.dataset.clone() } else { String::new() },
                r.role_pair,
                r.interpretation,
                r.records_role1.to_string(),
                r.records_role2.to_string(),
                r.record_pairs.to_string(),
                r.true_matches.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        format_table(
            &[
                "Data set",
                "Role pair",
                "Interpretation (links between)",
                "Role-1",
                "Role-2",
                "Record pairs",
                "True matches"
            ],
            &rows
        )
    );
}
