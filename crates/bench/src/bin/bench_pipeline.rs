//! Offline-pipeline throughput benchmark.
//!
//! Runs the full resolution pipeline (blocking → dependency graph →
//! bootstrap/merge → refine) over a scaled IOS dataset and reports each
//! stage's wall time and records-per-second rate — the committed
//! `results/BENCH_pipeline.json` is the perf trajectory CI ratchets
//! against (see `tools/bench-ratchet.sh`).
//!
//! ```text
//! cargo run --release --bin bench_pipeline -- --scale 0.1 --report results/BENCH_pipeline.json
//! ```

use std::time::Duration;

use snaps_bench::{format_table, write_report, ExperimentArgs};
use snaps_core::{resolve_with_obs, SnapsConfig};
use snaps_datagen::{generate, DatasetProfile};
use snaps_obs::{Obs, ObsConfig};

fn main() {
    let args = ExperimentArgs::parse();
    let obs = Obs::new(&ObsConfig::full());

    eprintln!("[bench_pipeline] generating (ios scaled {}, seed {})…", args.scale, args.seed);
    let data = generate(&DatasetProfile::ios().scaled(args.scale), args.seed);
    let n_records = data.dataset.len();
    eprintln!("[bench_pipeline] resolving {n_records} records…");
    let res = resolve_with_obs(&data.dataset, &SnapsConfig::default(), &obs);

    let fmt_s = |d: Duration| format!("{:.3}", d.as_secs_f64());
    let report = obs.report();
    let rps = |stage: &str| -> String {
        report
            .as_ref()
            .and_then(|r| r.gauges.iter().find(|(n, _)| n == &format!("pipeline.rps.{stage}")))
            .map_or_else(|| "-".to_string(), |(_, v)| v.to_string())
    };
    let stats = &res.stats;
    println!(
        "{}",
        format_table(
            &["stage", "wall s", "records/s"],
            &[
                vec!["blocking".into(), fmt_s(stats.t_atomic), rps("blocking")],
                vec!["comparison".into(), fmt_s(stats.t_relational), rps("comparison")],
                vec!["merge".into(), fmt_s(stats.linkage_time()), rps("merge")],
                vec!["refine".into(), fmt_s(stats.t_refine), rps("refine")],
            ],
        )
    );
    println!(
        "records {n_records}  entities {}  links {}  passes {}",
        res.clusters.len(),
        res.stats.final_links,
        res.stats.passes
    );

    if let Some(report) = report {
        let report = report
            .with_meta("records", n_records)
            .with_meta("entities", res.clusters.len())
            .with_meta("final_links", res.stats.final_links)
            .with_meta("passes", res.stats.passes);
        write_report(report, &args, "bench_pipeline");
    }
}
