//! Regenerates **Table 3**: the ablation analysis — how each key technique
//! (PROP-A/PROP-C, AMB, REL, REF) affects linkage quality on the IOS data
//! set.
//!
//! ```text
//! cargo run -p snaps-bench --release --bin table3 [-- --scale 1.0 --seed 42]
//! ```

use snaps_bench::{format_table, prf, ExperimentArgs};
use snaps_core::SnapsConfig;
use snaps_datagen::{generate, DatasetProfile};
use snaps_eval::ablation::run_ablation;

fn main() {
    let args = ExperimentArgs::parse();
    let cfg = SnapsConfig::default();
    println!(
        "Table 3: Ablation analysis on IOS — one key technique removed at a time\n\
         (scale={}, seed={})\n",
        args.scale, args.seed
    );

    let data = generate(&DatasetProfile::ios().scaled(args.scale), args.seed);
    let rows = run_ablation(&data, &cfg);

    // Paper layout: role pairs as row blocks, variants as columns.
    let header: Vec<&str> = std::iter::once("Role pair / metric")
        .chain(rows.iter().map(|r| r.variant.as_str()))
        .collect();
    let mut table = Vec::new();
    let n_role_pairs = rows[0].per_role_pair.len();
    for rp in 0..n_role_pairs {
        let label = rows[0].per_role_pair[rp].0.clone();
        for (mi, metric) in ["P", "R", "F*"].iter().enumerate() {
            let mut line = vec![format!("{label} {metric}")];
            for variant in &rows {
                let (p, r, f) = prf(&variant.per_role_pair[rp].1);
                line.push(match mi {
                    0 => p,
                    1 => r,
                    _ => f,
                });
            }
            table.push(line);
        }
    }
    println!("{}", format_table(&header, &table));
}
