//! Regenerates **Table 5**: runtime of the offline component of SNAPS and
//! every baseline on IOS and KIL, with the dependency-graph sizes
//! `|N_A|` and `|N_R|`.
//!
//! ```text
//! cargo run -p snaps-bench --release --bin table5 [-- --scale 1.0 --seed 42]
//! ```

use snaps_bench::{format_table, ExperimentArgs};
use snaps_core::SnapsConfig;
use snaps_datagen::{generate, DatasetProfile};
use snaps_eval::timing::time_offline;

fn main() {
    let args = ExperimentArgs::parse();
    let cfg = SnapsConfig::default();
    println!(
        "Table 5: Runtime (seconds) of the offline component of SNAPS and baselines\n\
         (scale={}, seed={})\n",
        args.scale, args.seed
    );

    let mut rows = Vec::new();
    for profile in [
        DatasetProfile::ios().scaled(args.scale),
        DatasetProfile::kil().scaled(args.scale),
    ] {
        let data = generate(&profile, args.seed);
        eprintln!("[table5] timing all systems on {} ({} records)…", data.dataset.name, data.dataset.len());
        let timings = time_offline(&data, &cfg);
        let (na, nr) = (
            timings[0].n_atomic.unwrap_or(0),
            timings[0].n_relational.unwrap_or(0),
        );
        let mut row = vec![
            data.dataset.name.clone(),
            na.to_string(),
            nr.to_string(),
        ];
        row.extend(timings.iter().map(|t| format!("{:.1}", t.seconds)));
        rows.push(row);
    }
    println!(
        "{}",
        format_table(
            &[
                "Data set",
                "|N_A|",
                "|N_R|",
                "SNAPS",
                "Attr-Sim",
                "Dep-Graph",
                "Rel-Cluster",
                "Supervised"
            ],
            &rows
        )
    );
}
