//! Regenerates **Table 5**: runtime of the offline component of SNAPS and
//! every baseline on IOS and KIL, with the dependency-graph sizes
//! `|N_A|` and `|N_R|`.
//!
//! ```text
//! cargo run -p snaps-bench --release --bin table5 [-- --scale 1.0 --seed 42]
//! ```

use snaps_bench::{format_table, write_report, ExperimentArgs};
use snaps_core::{resolve_with_obs, SnapsConfig};
use snaps_datagen::{generate, DatasetProfile};
use snaps_eval::timing::time_offline;
use snaps_obs::{Obs, ObsConfig};

fn main() {
    let args = ExperimentArgs::parse();
    let cfg = SnapsConfig::default();
    println!(
        "Table 5: Runtime (seconds) of the offline component of SNAPS and baselines\n\
         (scale={}, seed={})\n",
        args.scale, args.seed
    );

    // With --report, an extra fully-instrumented SNAPS resolution runs per
    // dataset on this shared handle; the timed runs stay uninstrumented so
    // the table numbers are untouched.
    let obs = if args.report.is_some() { Obs::new(&ObsConfig::full()) } else { Obs::disabled() };

    let mut rows = Vec::new();
    for profile in
        [DatasetProfile::ios().scaled(args.scale), DatasetProfile::kil().scaled(args.scale)]
    {
        let data = generate(&profile, args.seed);
        eprintln!(
            "[table5] timing all systems on {} ({} records)…",
            data.dataset.name,
            data.dataset.len()
        );
        let timings = time_offline(&data, &cfg);
        if obs.is_enabled() {
            eprintln!("[table5] instrumented resolve on {}…", data.dataset.name);
            let _ = resolve_with_obs(&data.dataset, &cfg, &obs);
        }
        let (na, nr) = (timings[0].n_atomic.unwrap_or(0), timings[0].n_relational.unwrap_or(0));
        let mut row = vec![data.dataset.name.clone(), na.to_string(), nr.to_string()];
        row.extend(timings.iter().map(|t| format!("{:.1}", t.seconds)));
        rows.push(row);
    }
    println!(
        "{}",
        format_table(
            &[
                "Data set",
                "|N_A|",
                "|N_R|",
                "SNAPS",
                "Attr-Sim",
                "Dep-Graph",
                "Rel-Cluster",
                "Supervised"
            ],
            &rows
        )
    );

    if let Some(report) = obs.report() {
        write_report(report.with_meta("datasets", "ios,kil"), &args, "table5");
    }
}
