//! Load generator for the `snaps-serve` online service.
//!
//! Exercises the full serving path end to end: build an engine offline,
//! persist it to a snapshot, restore it, serve it on an ephemeral port,
//! then drive it with concurrent HTTP clients. Reports sustained QPS and
//! p50/p95/p99 request latency, and asserts that every concurrent response
//! is byte-identical to the single-threaded baseline — the memoising
//! caches must never change observable results under contention.
//!
//! ```text
//! cargo run --release --bin bench_serve -- --scale 0.05 --report results/BENCH_serve.json
//! ```
//!
//! Environment knobs (for CI smoke runs):
//! - `SNAPS_SERVE_CLIENTS`  — concurrent client threads (default 4, min 4)
//! - `SNAPS_SERVE_REQUESTS` — requests per client (default 200)

use std::io::{Read, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use snaps_bench::{format_table, write_report, ExperimentArgs};
use snaps_core::{resolve, PedigreeGraph, SnapsConfig};
use snaps_datagen::{generate, DatasetProfile};
use snaps_eval::timing::generate_query_batch;
use snaps_obs::{Obs, ObsConfig};
use snaps_query::{QueryRecord, SearchEngine, SearchKind};
use snaps_serve::{snapshot, Server, ServerConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Minimal percent-encoding for normalised name values (lowercase
/// alphanumerics, `-`, `'`, single spaces).
fn encode(v: &str) -> String {
    v.replace('%', "%25").replace(' ', "%20").replace('\'', "%27")
}

fn target_for(q: &QueryRecord) -> String {
    let mut t = format!(
        "/search?first={}&last={}&kind={}&m=10",
        encode(&q.first_name),
        encode(&q.surname),
        match q.kind {
            SearchKind::Birth => "birth",
            SearchKind::Death => "death",
        }
    );
    if let Some(g) = q.gender {
        t.push_str(&format!("&gender={}", g.code()));
    }
    if let Some((from, to)) = q.year_range {
        t.push_str(&format!("&year_from={from}&year_to={to}"));
    }
    if let Some(loc) = &q.location {
        t.push_str(&format!("&location={}", encode(loc)));
    }
    t
}

/// One GET over a fresh connection; returns `(status, body)`.
fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect to snaps-serve");
    s.set_read_timeout(Some(Duration::from_secs(30))).expect("set timeout");
    write!(s, "GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n").expect("send request");
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read response");
    let status = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.split(' ').next())
        .and_then(|c| c.parse().ok())
        .unwrap_or(0);
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let args = ExperimentArgs::parse();
    let clients = env_usize("SNAPS_SERVE_CLIENTS", 4).max(4);
    let requests_per_client = env_usize("SNAPS_SERVE_REQUESTS", 200).max(1);

    let obs = Obs::new(&ObsConfig::full());

    // Offline phase: build, persist, restore — the bench always goes
    // through the snapshot so persistence stays on the measured path.
    eprintln!("[bench_serve] building engine (ios scaled {}, seed {})…", args.scale, args.seed);
    let data = generate(&DatasetProfile::ios().scaled(args.scale), args.seed);
    let res = resolve(&data.dataset, &SnapsConfig::default());
    let engine = SearchEngine::build(PedigreeGraph::build(&data.dataset, &res));
    let snap_path =
        std::env::temp_dir().join(format!("bench_serve_{}_{}.snap", std::process::id(), args.seed));
    snapshot::save(&engine, &snap_path).expect("write snapshot");
    let snap_bytes = std::fs::metadata(&snap_path).map(|m| m.len()).unwrap_or(0);
    let engine = Arc::new(snapshot::load(&snap_path, &obs).expect("load snapshot"));
    eprintln!(
        "[bench_serve] snapshot {} bytes, {} entities restored",
        snap_bytes,
        engine.graph().len()
    );

    let server = Server::start("127.0.0.1:0", Arc::clone(&engine), &obs, &ServerConfig::default())
        .expect("start server");
    let addr = server.addr();

    let queries = generate_query_batch(engine.graph(), 50, args.seed.wrapping_add(7));
    let targets: Vec<String> = queries.iter().map(target_for).collect();

    // Single-threaded baseline: one sequential pass over the batch.
    let baseline: Vec<String> = targets
        .iter()
        .map(|t| {
            let (status, body) = get(addr, t);
            assert_eq!(status, 200, "baseline request failed: {t} → {body}");
            body
        })
        .collect();
    let baseline = Arc::new(baseline);
    let targets = Arc::new(targets);

    // Load phase: concurrent clients replay the batch round-robin, each
    // response checked against the single-threaded baseline.
    eprintln!("[bench_serve] {clients} clients × {requests_per_client} requests…");
    let latency_hist = obs.histogram("bench.serve.latency");
    let load_started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let targets = Arc::clone(&targets);
            let baseline = Arc::clone(&baseline);
            let hist = latency_hist.clone();
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(requests_per_client);
                let mut resp_bytes = 0u64;
                for r in 0..requests_per_client {
                    let i = (c + r * 31) % targets.len();
                    let started = Instant::now();
                    let (status, body) = get(addr, &targets[i]);
                    let elapsed = started.elapsed();
                    latencies.push(elapsed);
                    hist.record(elapsed);
                    resp_bytes += body.len() as u64;
                    assert_eq!(status, 200, "request failed under load: {}", targets[i]);
                    assert_eq!(
                        body, baseline[i],
                        "concurrent response diverged from single-threaded baseline for {}",
                        targets[i]
                    );
                }
                (latencies, resp_bytes)
            })
        })
        .collect();

    let mut latencies: Vec<Duration> = Vec::with_capacity(clients * requests_per_client);
    let mut total_resp_bytes = 0u64;
    for h in handles {
        let (lat, bytes) = h.join().expect("client thread panicked");
        latencies.extend(lat);
        total_resp_bytes += bytes;
    }
    let wall = load_started.elapsed();

    // Scrape the live telemetry endpoints while the server is still up:
    // the Prometheus exposition becomes a CI artifact, and the debug
    // endpoints get an end-to-end smoke check under real load.
    let (prom_status, prom_body) = get(addr, "/metrics?format=prom");
    assert_eq!(prom_status, 200, "prometheus exposition failed");
    assert!(prom_body.contains("# TYPE"), "exposition lacks TYPE lines");
    // Allocation proxy: how often any worker's reusable response buffer
    // had to regrow. After warm-up this should be static; the ratchet
    // catches per-request allocation creeping back into the serve path.
    let resp_buf_regrow: u64 = prom_body
        .lines()
        .find_map(|l| l.strip_prefix("snaps_serve_resp_buf_regrow_total "))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let (traces_status, traces_body) = get(addr, "/debug/traces?n=10");
    assert_eq!(traces_status, 200, "debug traces failed: {traces_body}");
    let (slow_status, _) = get(addr, "/debug/slow?threshold_us=1");
    assert_eq!(slow_status, 200, "debug slow failed");
    if let Some(report_path) = &args.report {
        let prom_path = std::path::Path::new(report_path).with_extension("prom");
        std::fs::write(&prom_path, &prom_body).expect("write prometheus exposition");
        eprintln!("[bench_serve] wrote prometheus exposition to {}", prom_path.display());
    }

    server.shutdown();
    let _ = std::fs::remove_file(&snap_path);

    latencies.sort_unstable();
    let total = latencies.len();
    let qps = total as f64 / wall.as_secs_f64();
    let (p50, p95, p99) =
        (percentile(&latencies, 50.0), percentile(&latencies, 95.0), percentile(&latencies, 99.0));

    let fmt_ms = |d: Duration| format!("{:.3}", d.as_secs_f64() * 1e3);
    println!(
        "{}",
        format_table(
            &["metric", "value"],
            &[
                vec!["clients".into(), clients.to_string()],
                vec!["requests".into(), total.to_string()],
                vec!["wall s".into(), format!("{:.3}", wall.as_secs_f64())],
                vec!["qps".into(), format!("{qps:.1}")],
                vec!["p50 ms".into(), fmt_ms(p50)],
                vec!["p95 ms".into(), fmt_ms(p95)],
                vec!["p99 ms".into(), fmt_ms(p99)],
                vec!["snapshot bytes".into(), snap_bytes.to_string()],
                vec![
                    "resp bytes/req".into(),
                    (total_resp_bytes / (total.max(1) as u64)).to_string(),
                ],
                vec!["resp buf regrows".into(), resp_buf_regrow.to_string()],
            ],
        )
    );
    println!("all {total} concurrent responses identical to the single-threaded baseline");

    if let Some(report) = obs.report() {
        let report = report
            .with_meta("clients", clients)
            .with_meta("requests", total)
            .with_meta("qps", format!("{qps:.1}"))
            .with_meta("snapshot_bytes", snap_bytes)
            .with_meta("resp_bytes_per_req", total_resp_bytes / (total.max(1) as u64))
            .with_meta("resp_buf_regrow", resp_buf_regrow);
        write_report(report, &args, "bench_serve");
    }
}
