//! Regenerates **Table 4**: precision, recall, and F*-measure of SNAPS
//! compared to Attr-Sim, Dep-Graph, Rel-Cluster, and the supervised
//! (Magellan-substitute) baseline — on IOS and KIL, for `Bp-Bp` and `Bp-Dp`.
//! The supervised column reports mean ± standard deviation over four
//! classifiers and two training regimes, as in the paper.
//!
//! ```text
//! cargo run -p snaps-bench --release --bin table4 [-- --scale 1.0 --seed 42]
//! ```

use snaps_bench::{format_table, prf, ExperimentArgs};
use snaps_core::SnapsConfig;
use snaps_datagen::{generate, DatasetProfile};
use snaps_eval::metrics::mean_std;
use snaps_eval::quality::run_quality_experiment;
use snaps_eval::Quality;

fn supervised_cell(samples: &[Quality], metric: fn(&Quality) -> f64) -> String {
    let values: Vec<f64> = samples.iter().map(|q| 100.0 * metric(q)).collect();
    let (mean, std) = mean_std(&values);
    format!("{mean:.1} ± {std:.1}")
}

fn main() {
    let args = ExperimentArgs::parse();
    let cfg = SnapsConfig::default();
    println!(
        "Table 4: P/R/F* of SNAPS compared to the baselines\n(scale={}, seed={})\n",
        args.scale, args.seed
    );

    // Results print per dataset as soon as they are ready, so a partial run
    // still yields usable rows.
    for profile in
        [DatasetProfile::ios().scaled(args.scale), DatasetProfile::kil().scaled(args.scale)]
    {
        let data = generate(&profile, args.seed);
        eprintln!(
            "[table4] running all systems on {} ({} records)…",
            data.dataset.name,
            data.dataset.len()
        );
        let report = run_quality_experiment(&data, &cfg);

        let mut table = Vec::new();
        for (rp, (label, _)) in report.unsupervised[0].per_role_pair.iter().enumerate() {
            for (mi, metric_name) in ["P", "R", "F*"].iter().enumerate() {
                let metric: fn(&Quality) -> f64 = match mi {
                    0 => Quality::precision,
                    1 => Quality::recall,
                    _ => Quality::f_star,
                };
                let mut line =
                    vec![format!("{} ({label})", report.dataset), (*metric_name).to_string()];
                for sys in &report.unsupervised {
                    let (p, r, f) = prf(&sys.per_role_pair[rp].1);
                    line.push(match mi {
                        0 => p,
                        1 => r,
                        _ => f,
                    });
                }
                line.push(supervised_cell(&report.supervised.per_role_pair[rp].1, metric));
                table.push(line);
            }
        }
        println!(
            "{}",
            format_table(
                &[
                    "Data set (role pair)",
                    "Metric",
                    "SNAPS",
                    "Attr-Sim",
                    "Dep-Graph",
                    "Rel-Cluster",
                    "Supervised (±sd)"
                ],
                &table
            )
        );
    }
}
