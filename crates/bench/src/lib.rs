//! Shared helpers for the experiment binaries.
//!
//! Each `src/bin/table*.rs` / `src/bin/fig2.rs` binary regenerates one table
//! or figure of the paper's evaluation (§10); this library holds the common
//! argument parsing and table formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Command-line options shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct ExperimentArgs {
    /// Population scale factor applied to the dataset profiles
    /// (`--scale 0.5`); 1.0 reproduces the full profile.
    pub scale: f64,
    /// RNG seed (`--seed 42`).
    pub seed: u64,
    /// Where to write a machine-readable instrumentation report
    /// (`--report results/table5.report.json`); `None` disables
    /// instrumentation entirely.
    pub report: Option<String>,
}

impl Default for ExperimentArgs {
    fn default() -> Self {
        Self { scale: 1.0, seed: 42, report: None }
    }
}

impl ExperimentArgs {
    /// Parse `--scale`, `--seed`, and `--report` from `std::env::args`,
    /// exiting with a usage message (status 2) on malformed input.
    #[must_use]
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1)).unwrap_or_else(|msg| {
            eprintln!(
                "error: {msg}
usage: <binary> [--scale F] [--seed N] [--report PATH.json]"
            );
            std::process::exit(2);
        })
    }

    /// Parse from an explicit argument iterator (testable core of
    /// [`ExperimentArgs::parse`]).
    ///
    /// # Errors
    /// Returns a description of the first malformed argument.
    pub(crate) fn parse_from(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = Self::default();
        let args: Vec<String> = args.into_iter().collect();
        let mut i = 0;
        while let Some(arg) = args.get(i) {
            match arg.as_str() {
                "--scale" => {
                    i += 1;
                    out.scale = args
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .ok_or("--scale requires a positive number")?;
                }
                "--seed" => {
                    i += 1;
                    out.seed = args
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .ok_or("--seed requires an integer")?;
                }
                "--report" => {
                    i += 1;
                    let path = args.get(i).ok_or("--report requires a file path")?;
                    if path.starts_with("--") || path.is_empty() {
                        return Err("--report requires a file path".into());
                    }
                    out.report = Some(path.clone());
                }
                other => return Err(format!("unknown argument {other}")),
            }
            i += 1;
        }
        if !out.scale.is_finite() || out.scale <= 0.0 {
            return Err("--scale must be a positive finite number".into());
        }
        Ok(out)
    }
}

/// Write an instrumentation report to the path from `--report`, stamping
/// the shared experiment metadata first. Exits with status 1 on I/O errors
/// so a scripted run fails loudly instead of silently dropping the report.
pub fn write_report(report: snaps_obs::RunReport, args: &ExperimentArgs, table: &str) {
    let Some(path) = &args.report else { return };
    let report = report
        .with_meta("table", table)
        .with_meta("scale", args.scale)
        .with_meta("seed", args.seed);
    if let Err(e) = report.write_to(path) {
        eprintln!("error: cannot write run report to {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("[{table}] wrote run report to {path}");
}

/// Render an aligned text table: `header` then `rows`, columns padded to the
/// widest cell.
#[must_use]
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<w$}"));
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Format a `(P, R, F*)` percentage triple.
#[must_use]
pub fn prf(q: &snaps_eval::Quality) -> (String, String, String) {
    let (p, r, f) = q.percentages();
    (format!("{p:.2}"), format!("{r:.2}"), format!("{f:.2}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_from_accepts_valid_args() {
        let a = ExperimentArgs::parse_from(["--scale", "0.5", "--seed", "7"].map(String::from))
            .unwrap();
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.seed, 7);
        assert_eq!(a.report, None);
        let d = ExperimentArgs::parse_from([]).unwrap();
        assert_eq!(d.scale, 1.0);
        let r =
            ExperimentArgs::parse_from(["--report", "results/t5.json"].map(String::from)).unwrap();
        assert_eq!(r.report.as_deref(), Some("results/t5.json"));
    }

    #[test]
    fn parse_from_rejects_bad_args() {
        assert!(ExperimentArgs::parse_from(["--bogus".into()]).is_err());
        assert!(ExperimentArgs::parse_from(["--scale".into()]).is_err());
        assert!(ExperimentArgs::parse_from(["--scale", "-1"].map(String::from)).is_err());
        // NaN sails past a plain `<= 0.0` check and infinity saturates the
        // founder count downstream; both must be rejected here.
        assert!(ExperimentArgs::parse_from(["--scale", "nan"].map(String::from)).is_err());
        assert!(ExperimentArgs::parse_from(["--scale", "inf"].map(String::from)).is_err());
        assert!(ExperimentArgs::parse_from(["--seed", "x"].map(String::from)).is_err());
        assert!(ExperimentArgs::parse_from(["--report".into()]).is_err());
        assert!(ExperimentArgs::parse_from(["--report", "--seed"].map(String::from)).is_err());
    }

    #[test]
    fn table_formatting_aligns() {
        let t = format_table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["longer-name".into(), "2".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = format_table(&["a", "b"], &[vec!["only-one".into()]]);
    }
}
