//! Micro-benchmarks of the similarity substrate: the comparators dominate
//! the dependency-graph generation phase, so their per-call cost matters.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use snaps_strsim::qgram::bigram_jaccard;
use snaps_strsim::variants::first_name_similarity;
use snaps_strsim::{jaro_winkler, levenshtein_similarity};

fn bench_similarities(c: &mut Criterion) {
    let pairs = [
        ("macdonald", "mcdonald"),
        ("mary", "mairi"),
        ("euphemia", "effie"),
        ("agricultural labourer", "agricultural laborer"),
    ];
    let mut g = c.benchmark_group("strsim");
    g.bench_function("jaro_winkler", |b| {
        b.iter(|| {
            for (x, y) in pairs {
                black_box(jaro_winkler(black_box(x), black_box(y)));
            }
        });
    });
    g.bench_function("levenshtein", |b| {
        b.iter(|| {
            for (x, y) in pairs {
                black_box(levenshtein_similarity(black_box(x), black_box(y)));
            }
        });
    });
    g.bench_function("bigram_jaccard", |b| {
        b.iter(|| {
            for (x, y) in pairs {
                black_box(bigram_jaccard(black_box(x), black_box(y)));
            }
        });
    });
    g.bench_function("variant_aware_first_name", |b| {
        b.iter(|| {
            for (x, y) in pairs {
                black_box(first_name_similarity(black_box(x), black_box(y)));
            }
        });
    });
    g.finish();
}

criterion_group!(benches, bench_similarities);
criterion_main!(benches);
