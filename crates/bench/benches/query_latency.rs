//! Benchmarks the online component (the subject of Table 7): query
//! processing and pedigree extraction over a resolved dataset.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use snaps_core::{resolve, PedigreeGraph, SnapsConfig};
use snaps_datagen::{generate, DatasetProfile};
use snaps_eval::timing::generate_query_batch;
use snaps_pedigree::{extract, DEFAULT_GENERATIONS};
use snaps_query::SearchEngine;

fn bench_queries(c: &mut Criterion) {
    let data = generate(&DatasetProfile::ios().scaled(0.1), 42);
    let res = resolve(&data.dataset, &SnapsConfig::default());
    let graph = PedigreeGraph::build(&data.dataset, &res);
    let engine = SearchEngine::build(graph);
    let queries = generate_query_batch(engine.graph(), 50, 7);

    let mut g = c.benchmark_group("online");
    g.bench_function("query", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(engine.query(q, 10))
        });
    });

    // Pedigree extraction for entities that have family.
    let entities: Vec<_> = engine
        .graph()
        .entities
        .iter()
        .filter(|e| !engine.graph().neighbours(e.id).is_empty())
        .map(|e| e.id)
        .collect();
    g.bench_function("pedigree_extraction", |b| {
        let mut i = 0;
        b.iter(|| {
            let e = entities[i % entities.len()];
            i += 1;
            black_box(extract(engine.graph(), e, DEFAULT_GENERATIONS))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
