//! Benchmarks resolution over growing BHIC-like windows (the subject of
//! Table 6): wall-clock should grow near-linearly in graph size.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use snaps_core::{resolve, SnapsConfig};
use snaps_datagen::{generate, DatasetProfile};

fn bench_scaling(c: &mut Criterion) {
    let cfg = SnapsConfig::default();
    let mut g = c.benchmark_group("scaling");
    g.sample_size(10);
    for period in [15u32, 25, 35] {
        let data = generate(&DatasetProfile::bhic(period).scaled(0.04), 42);
        g.bench_with_input(
            BenchmarkId::new("bhic_window_years", period),
            &data.dataset,
            |b, ds| b.iter(|| black_box(resolve(ds, &cfg))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
