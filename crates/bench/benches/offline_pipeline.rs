//! Benchmarks the offline component (the subject of Table 5): full SNAPS
//! resolution and each baseline on a small IOS-profile dataset.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use snaps_baselines::{attr_sim_link, dep_graph_link, rel_cluster_link};
use snaps_core::{resolve, SnapsConfig};
use snaps_datagen::{generate, DatasetProfile};

fn bench_offline(c: &mut Criterion) {
    let data = generate(&DatasetProfile::ios().scaled(0.05), 42);
    let ds = &data.dataset;
    let cfg = SnapsConfig::default();

    let mut g = c.benchmark_group("offline");
    g.sample_size(10);
    g.bench_function("snaps_resolve", |b| {
        b.iter(|| black_box(resolve(ds, &cfg)));
    });
    g.bench_function("attr_sim", |b| {
        b.iter(|| black_box(attr_sim_link(ds, &cfg)));
    });
    g.bench_function("dep_graph", |b| {
        b.iter(|| black_box(dep_graph_link(ds, &cfg)));
    });
    g.bench_function("rel_cluster", |b| {
        b.iter(|| black_box(rel_cluster_link(ds, &cfg)));
    });
    g.finish();
}

criterion_group!(benches, bench_offline);
criterion_main!(benches);
