//! Measures the cost of the instrumentation layer on the offline pipeline:
//! `resolve` with observability disabled (the default) must be
//! indistinguishable from the pre-instrumentation pipeline, and the fully
//! enabled configuration shows what a `--report` run pays.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use snaps_core::{resolve, SnapsConfig};
use snaps_datagen::{generate, DatasetProfile};
use snaps_obs::{ObsConfig, Verbosity};

fn bench_obs_overhead(c: &mut Criterion) {
    let data = generate(&DatasetProfile::ios().scaled(0.05), 42);
    let ds = &data.dataset;

    let disabled = SnapsConfig::default();
    debug_assert!(!disabled.obs.enabled, "instrumentation is opt-in");
    let spans_only = SnapsConfig {
        obs: ObsConfig { enabled: true, verbosity: Verbosity::Spans },
        ..SnapsConfig::default()
    };
    let full = SnapsConfig { obs: ObsConfig::full(), ..SnapsConfig::default() };

    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(10);
    g.bench_function("resolve_obs_disabled", |b| {
        b.iter(|| black_box(resolve(ds, &disabled)));
    });
    g.bench_function("resolve_obs_spans", |b| {
        b.iter(|| black_box(resolve(ds, &spans_only)));
    });
    g.bench_function("resolve_obs_full", |b| {
        b.iter(|| black_box(resolve(ds, &full)));
    });
    g.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
