//! Property tests: union-find invariants and bridge-finder correctness
//! against a brute-force oracle.

use proptest::prelude::*;
use snaps_graph::{connected_components, UndirectedGraph, UnionFind};

/// Brute-force bridge oracle: remove each edge and check connectivity drops.
fn brute_force_bridges(n: usize, edges: &[(usize, usize)]) -> Vec<(usize, usize)> {
    let base = connected_components(n, edges.iter().copied()).len();
    let mut bridges = Vec::new();
    for (i, &(a, b)) in edges.iter().enumerate() {
        let without: Vec<_> =
            edges.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, &e)| e).collect();
        if connected_components(n, without).len() > base {
            bridges.push((a.min(b), a.max(b)));
        }
    }
    bridges.sort_unstable();
    bridges.dedup();
    bridges
}

fn edge_list(n: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..n, 0..n), 0..(n * 2)).prop_map(move |pairs| {
        let mut seen = std::collections::BTreeSet::new();
        pairs
            .into_iter()
            .filter(|&(a, b)| a != b)
            .filter(|&(a, b)| seen.insert((a.min(b), a.max(b))))
            .collect()
    })
}

proptest! {
    #[test]
    fn bridges_match_brute_force(edges in edge_list(10)) {
        let n = 10;
        let mut g = UndirectedGraph::new(n);
        for &(a, b) in &edges {
            g.add_edge(a, b);
        }
        prop_assert_eq!(g.bridges(), brute_force_bridges(n, &edges));
    }

    #[test]
    fn union_find_partitions(unions in proptest::collection::vec((0usize..20, 0usize..20), 0..40)) {
        let mut uf = UnionFind::new(20);
        for &(a, b) in &unions {
            uf.union(a, b);
        }
        let groups = uf.groups();
        // Groups partition 0..20.
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..20).collect::<Vec<_>>());
        prop_assert_eq!(groups.len(), uf.set_count());
        // Every requested union is honoured.
        for &(a, b) in &unions {
            prop_assert!(uf.same_set(a, b));
        }
        // set_size agrees with groups.
        for g in &groups {
            for &m in g {
                prop_assert_eq!(uf.set_size(m), g.len());
            }
        }
    }

    #[test]
    fn components_agree_between_implementations(edges in edge_list(12)) {
        let n = 12;
        let mut g = UndirectedGraph::new(n);
        for &(a, b) in &edges {
            g.add_edge(a, b);
        }
        prop_assert_eq!(g.components(), connected_components(n, edges));
    }

    #[test]
    fn density_in_unit_range(edges in edge_list(8)) {
        let mut g = UndirectedGraph::new(8);
        for &(a, b) in &edges {
            g.add_edge(a, b);
        }
        let d = g.density();
        prop_assert!((0.0..=1.0).contains(&d));
    }
}
