//! Disjoint-set (union-find) with path compression and union by size.

/// A disjoint-set forest over `0..n`.
///
/// Used to maintain entity clusters: every record starts in its own set and
/// merging a relational node unions the two records' sets. Amortised cost is
/// effectively constant per operation (inverse Ackermann).
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    sets: usize,
}

impl UnionFind {
    /// Create `n` singleton sets.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "UnionFind supports at most 2^32 elements");
        Self { parent: (0..n as u32).collect(), size: vec![1; n], sets: n }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    #[must_use]
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Find the representative of `x`'s set, compressing the path.
    ///
    /// Out-of-range `x` is returned unchanged (a singleton no union ever
    /// touched behaves the same way).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while let Some(&p) = self.parent.get(root) {
            if p as usize == root {
                break;
            }
            root = p as usize;
        }
        // Path compression.
        let mut cur = x;
        while let Some(p) = self.parent.get_mut(cur) {
            let next = *p as usize;
            if next == cur {
                break;
            }
            *p = root as u32;
            cur = next;
        }
        root
    }

    /// Union the sets containing `a` and `b`; returns `true` if they were
    /// previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        // Union by size: attach the smaller tree under the larger.
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }

    /// Group all elements by representative; each group is sorted ascending
    /// and groups are ordered by their smallest element, so the output is
    /// deterministic.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: Vec<Vec<usize>> = vec![Vec::new(); n];
        for x in 0..n {
            let r = self.find(x);
            by_root[r].push(x);
        }
        by_root.retain(|g| !g.is_empty());
        by_root.sort_by_key(|g| g[0]);
        by_root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.set_count(), 4);
        assert!(!uf.same_set(0, 1));
        assert_eq!(uf.set_size(2), 1);
    }

    #[test]
    fn union_merges() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.same_set(0, 1));
        assert_eq!(uf.set_count(), 3);
        assert_eq!(uf.set_size(0), 2);
        assert!(!uf.union(1, 0), "already merged");
    }

    #[test]
    fn transitive_union() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(3, 4);
        assert!(uf.same_set(0, 2));
        assert!(!uf.same_set(2, 3));
        assert_eq!(uf.set_count(), 2);
    }

    #[test]
    fn groups_deterministic() {
        let mut uf = UnionFind::new(6);
        uf.union(4, 2);
        uf.union(5, 0);
        let g = uf.groups();
        assert_eq!(g, vec![vec![0, 5], vec![1], vec![2, 4], vec![3]]);
    }

    #[test]
    fn empty() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.groups().len(), 0);
    }

    #[test]
    fn find_idempotent_after_compression() {
        let mut uf = UnionFind::new(10);
        for i in 0..9 {
            uf.union(i, i + 1);
        }
        let r = uf.find(0);
        for i in 0..10 {
            assert_eq!(uf.find(i), r);
        }
        assert_eq!(uf.set_size(7), 10);
    }
}
