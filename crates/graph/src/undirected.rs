//! A small undirected graph with the measures used for cluster refinement.
//!
//! The dynamic-refining step (paper §4.2.5) views each entity's records and
//! links as an undirected graph and applies Randall et al.'s graph-measure
//! error identification: low *density* or the presence of *bridges* marks a
//! loosely connected cluster likely to contain wrong links.

/// An undirected graph over vertices `0..n` stored as adjacency lists.
///
/// Parallel edges and self-loops are rejected at insertion; both would
/// distort the density measure.
#[derive(Debug, Clone)]
pub struct UndirectedGraph {
    adj: Vec<Vec<u32>>,
    edges: usize,
}

impl UndirectedGraph {
    /// Create a graph with `n` vertices and no edges.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { adj: vec![Vec::new(); n], edges: 0 }
    }

    /// Number of vertices.
    #[must_use]
    pub(crate) fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Add the undirected edge `{a, b}`; returns `false` (and does nothing)
    /// if it already exists. Self-loops panic — cluster graphs never contain
    /// them.
    pub fn add_edge(&mut self, a: usize, b: usize) -> bool {
        assert_ne!(a, b, "self-loops are not allowed");
        if self.adj[a].contains(&(b as u32)) {
            return false;
        }
        self.adj[a].push(b as u32);
        self.adj[b].push(a as u32);
        self.edges += 1;
        true
    }

    /// Neighbours of `v`; empty for out-of-range vertices.
    #[must_use]
    pub fn neighbours(&self, v: usize) -> &[u32] {
        self.adj.get(v).map_or(&[], Vec::as_slice)
    }

    /// Degree of `v`.
    #[must_use]
    pub(crate) fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// The vertex with minimum degree (ties broken by smallest index).
    ///
    /// Refinement drops this vertex from under-dense clusters.
    #[must_use]
    pub fn min_degree_vertex(&self) -> Option<usize> {
        (0..self.vertex_count()).min_by_key(|&v| (self.degree(v), v))
    }

    /// Graph density `d = 2|E| / (|N| (|N| - 1))` (paper §4.2.5).
    ///
    /// Graphs with fewer than two vertices have density `1.0` (trivially
    /// complete).
    #[must_use]
    pub fn density(&self) -> f64 {
        let n = self.vertex_count();
        if n < 2 {
            return 1.0;
        }
        2.0 * self.edges as f64 / (n as f64 * (n - 1) as f64)
    }

    /// All bridges — edges whose removal disconnects their component —
    /// via Tarjan's low-link algorithm, iteratively (no recursion, so deep
    /// chains cannot overflow the stack).
    ///
    /// Returned as `(a, b)` with `a < b`, sorted, for determinism.
    #[must_use]
    pub fn bridges(&self) -> Vec<(usize, usize)> {
        let n = self.vertex_count();
        let mut disc = vec![usize::MAX; n]; // discovery time
        let mut low = vec![usize::MAX; n];
        let mut timer = 0usize;
        let mut bridges = Vec::new();

        // Iterative DFS frame: (vertex, parent-edge neighbour index skip, next child index).
        for start in 0..n {
            if disc[start] != usize::MAX {
                continue;
            }
            // Stack of (v, parent, next neighbour index to visit).
            let mut stack: Vec<(usize, usize, usize)> = vec![(start, usize::MAX, 0)];
            disc[start] = timer;
            low[start] = timer;
            timer += 1;

            while let Some(&mut (v, parent, ref mut idx)) = stack.last_mut() {
                if *idx < self.adj[v].len() {
                    let to = self.adj[v][*idx] as usize;
                    *idx += 1;
                    if to == parent {
                        // Skip the tree edge back to the parent once; a second
                        // parallel edge would not be a bridge, but parallel
                        // edges are rejected at insertion.
                        continue;
                    }
                    if disc[to] == usize::MAX {
                        disc[to] = timer;
                        low[to] = timer;
                        timer += 1;
                        stack.push((to, v, 0));
                    } else {
                        low[v] = low[v].min(disc[to]);
                    }
                } else {
                    stack.pop();
                    if let Some(&mut (p, _, _)) = stack.last_mut() {
                        low[p] = low[p].min(low[v]);
                        if low[v] > disc[p] {
                            bridges.push((p.min(v), p.max(v)));
                        }
                    }
                }
            }
        }
        bridges.sort_unstable();
        bridges
    }

    /// Connected components as sorted vertex lists, ordered by smallest
    /// member.
    #[must_use]
    pub fn components(&self) -> Vec<Vec<usize>> {
        let n = self.vertex_count();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut comp = vec![start];
            seen[start] = true;
            let mut stack = vec![start];
            while let Some(v) = stack.pop() {
                for &u in &self.adj[v] {
                    let u = u as usize;
                    if !seen[u] {
                        seen[u] = true;
                        comp.push(u);
                        stack.push(u);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> UndirectedGraph {
        let mut g = UndirectedGraph::new(n);
        for i in 0..n.saturating_sub(1) {
            g.add_edge(i, i + 1);
        }
        g
    }

    fn clique(n: usize) -> UndirectedGraph {
        let mut g = UndirectedGraph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(i, j);
            }
        }
        g
    }

    #[test]
    fn density_of_clique_is_one() {
        assert!((clique(5).density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn density_of_path() {
        // Path of 4: 3 edges, max 6 → 0.5.
        assert!((path(4).density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn density_trivial_graphs() {
        assert_eq!(UndirectedGraph::new(0).density(), 1.0);
        assert_eq!(UndirectedGraph::new(1).density(), 1.0);
    }

    #[test]
    fn every_path_edge_is_a_bridge() {
        let b = path(5).bridges();
        assert_eq!(b, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
    }

    #[test]
    fn cliques_have_no_bridges() {
        assert!(clique(4).bridges().is_empty());
    }

    #[test]
    fn bridge_between_two_triangles() {
        // Triangles {0,1,2} and {3,4,5} joined by edge (2,3).
        let mut g = UndirectedGraph::new(6);
        for &(a, b) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(a, b);
        }
        g.add_edge(2, 3);
        assert_eq!(g.bridges(), vec![(2, 3)]);
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut g = UndirectedGraph::new(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        UndirectedGraph::new(2).add_edge(1, 1);
    }

    #[test]
    fn min_degree_vertex() {
        // Star: centre 0 has degree 3, leaves degree 1 → leaf 1 wins.
        let mut g = UndirectedGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        assert_eq!(g.min_degree_vertex(), Some(1));
        assert_eq!(UndirectedGraph::new(0).min_degree_vertex(), None);
    }

    #[test]
    fn components_split() {
        let mut g = UndirectedGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(3, 4);
        assert_eq!(g.components(), vec![vec![0, 1], vec![2], vec![3, 4]]);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 100k-vertex path: recursive Tarjan would blow the stack.
        let n = 100_000;
        let g = path(n);
        assert_eq!(g.bridges().len(), n - 1);
    }

    #[test]
    fn disconnected_bridges_found_in_all_components() {
        let mut g = UndirectedGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        assert_eq!(g.bridges(), vec![(0, 1), (2, 3)]);
    }
}
