//! Connected components over arbitrary edge lists.

use crate::union_find::UnionFind;

/// Connected components of the graph over `0..n` defined by `edges`.
///
/// Each component is sorted ascending; components are ordered by their
/// smallest member. Isolated vertices form singleton components.
#[must_use]
pub fn connected_components(
    n: usize,
    edges: impl IntoIterator<Item = (usize, usize)>,
) -> Vec<Vec<usize>> {
    let mut uf = UnionFind::new(n);
    for (a, b) in edges {
        uf.union(a, b);
    }
    uf.groups()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_singletons() {
        let comps = connected_components(6, [(0, 1), (1, 2), (4, 5)]);
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3], vec![4, 5]]);
    }

    #[test]
    fn empty_graph() {
        assert!(connected_components(0, []).is_empty());
        assert_eq!(connected_components(2, []), vec![vec![0], vec![1]]);
    }

    #[test]
    fn duplicate_edges_harmless() {
        let comps = connected_components(3, [(0, 1), (0, 1), (1, 0)]);
        assert_eq!(comps, vec![vec![0, 1], vec![2]]);
    }
}
