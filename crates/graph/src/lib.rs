//! Graph utilities for the SNAPS entity-resolution pipeline.
//!
//! Three independent tools live here:
//!
//! * [`UnionFind`] — disjoint sets used to maintain record clusters as
//!   relational nodes merge (paper §4.2),
//! * [`UndirectedGraph`] — a small adjacency-list graph with the measures
//!   the cluster-refinement step needs: [`UndirectedGraph::bridges`]
//!   (Tarjan low-link) and [`UndirectedGraph::density`] (paper §4.2.5,
//!   following Randall et al.'s graph-measure error identification),
//! * [`components`] — connected components over an arbitrary edge list.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod components;
pub mod undirected;
pub mod union_find;

pub use components::connected_components;
pub use undirected::UndirectedGraph;
pub use union_find::UnionFind;
