//! Query records and scoring weights.

use snaps_model::Gender;
use snaps_strsim::geo::GeoPoint;
use snaps_strsim::normalize::normalize_name;

/// Which certificate kind the user is searching (the paper's UI offers
/// Birth or Death, Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchKind {
    /// Search people with a birth record.
    Birth,
    /// Search people with a death record.
    Death,
}

/// A user query as entered on the search form (paper Fig. 5).
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// First name (mandatory).
    pub first_name: String,
    /// Surname (mandatory).
    pub surname: String,
    /// Birth or death search.
    pub kind: SearchKind,
    /// Optional gender restriction.
    pub gender: Option<Gender>,
    /// Optional inclusive year range for the birth/death year.
    pub year_range: Option<(i32, i32)>,
    /// Optional parish/district or settlement name.
    pub location: Option<String>,
    /// Optional geographic restriction: only entities with a geocoded
    /// address within `radius_km` of the centre are returned. This realises
    /// the paper's stated future work ("incorporate geographical distances
    /// into the query process to allow users to limit searches to certain
    /// geographical regions", §12).
    pub geo_filter: Option<(GeoPoint, f64)>,
}

impl QueryRecord {
    /// Build a query, normalising all strings the way the indices were
    /// normalised. Fallible twin of [`Self::new`] for callers holding
    /// untrusted input (the HTTP search handler).
    ///
    /// # Errors
    /// Fails when either mandatory name normalises to the empty string.
    pub fn try_new(
        first_name: &str,
        surname: &str,
        kind: SearchKind,
    ) -> Result<Self, &'static str> {
        let first_name = normalize_name(first_name);
        let surname = normalize_name(surname);
        if first_name.is_empty() {
            return Err("first name is mandatory");
        }
        if surname.is_empty() {
            return Err("surname is mandatory");
        }
        Ok(Self {
            first_name,
            surname,
            kind,
            gender: None,
            year_range: None,
            location: None,
            geo_filter: None,
        })
    }

    /// Build a query from trusted input (experiment binaries, tests).
    ///
    /// # Panics
    /// Panics if either mandatory name normalises to the empty string.
    #[must_use]
    pub fn new(first_name: &str, surname: &str, kind: SearchKind) -> Self {
        match Self::try_new(first_name, surname, kind) {
            Ok(q) => q,
            Err(e) => panic!("{e}"),
        }
    }

    /// Restrict to a gender.
    #[must_use]
    pub fn with_gender(mut self, g: Gender) -> Self {
        self.gender = Some(g);
        self
    }

    /// Restrict to an inclusive year range; fallible twin of
    /// [`Self::with_years`].
    ///
    /// # Errors
    /// Fails on an inverted range.
    pub fn try_with_years(mut self, from: i32, to: i32) -> Result<Self, &'static str> {
        if from > to {
            return Err("year range is inverted");
        }
        self.year_range = Some((from, to));
        Ok(self)
    }

    /// Restrict to an inclusive year range.
    ///
    /// # Panics
    /// Panics on an inverted range.
    #[must_use]
    pub fn with_years(self, from: i32, to: i32) -> Self {
        match self.try_with_years(from, to) {
            Ok(q) => q,
            Err(_) => panic!("year range is inverted: {from}..{to}"),
        }
    }

    /// Restrict results to entities geocoded within `radius_km` of `centre`.
    ///
    /// # Panics
    /// Panics on a non-positive radius.
    #[must_use]
    pub fn with_geo_filter(mut self, centre: GeoPoint, radius_km: f64) -> Self {
        assert!(radius_km > 0.0, "radius must be positive");
        self.geo_filter = Some((centre, radius_km));
        self
    }

    /// Add a location; fallible twin of [`Self::with_location`].
    ///
    /// # Errors
    /// Fails when the location normalises to the empty string.
    pub fn try_with_location(mut self, location: &str) -> Result<Self, &'static str> {
        let l = normalize_name(location);
        if l.is_empty() {
            return Err("location must not normalise to empty");
        }
        self.location = Some(l);
        Ok(self)
    }

    /// Add a location.
    ///
    /// # Panics
    /// Panics when the location normalises to the empty string.
    #[must_use]
    pub fn with_location(self, location: &str) -> Self {
        match self.try_with_location(location) {
            Ok(q) => q,
            Err(e) => panic!("{e}"),
        }
    }

    /// The attributes provided, for score normalisation.
    #[must_use]
    pub(crate) fn provided(&self) -> ProvidedFields {
        ProvidedFields {
            gender: self.gender.is_some(),
            year: self.year_range.is_some(),
            location: self.location.is_some(),
        }
    }
}

/// Which optional fields a query provided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ProvidedFields {
    /// A gender was given.
    pub gender: bool,
    /// A year range was given.
    pub year: bool,
    /// A location was given.
    pub location: bool,
}

/// Attribute weights `w_a` of the match score `s_r = Σ w_a · sim(q_a, o_a)`
/// (paper §7). Names carry more weight than location — "name values that
/// match provide more evidence that an entity is relevant".
#[derive(Debug, Clone, Copy)]
pub struct QueryWeights {
    /// Weight of the first-name similarity.
    pub first_name: f64,
    /// Weight of the surname similarity.
    pub surname: f64,
    /// Weight of the year match.
    pub year: f64,
    /// Weight of the gender match.
    pub gender: f64,
    /// Weight of the location similarity.
    pub location: f64,
}

impl Default for QueryWeights {
    fn default() -> Self {
        Self { first_name: 0.3, surname: 0.3, year: 0.15, gender: 0.1, location: 0.15 }
    }
}

impl QueryWeights {
    /// The maximum achievable raw score for a query (used to normalise to
    /// a percentage): mandatory names plus whichever optional fields were
    /// provided.
    #[must_use]
    pub(crate) fn max_score(&self, provided: ProvidedFields) -> f64 {
        let mut m = self.first_name + self.surname;
        if provided.gender {
            m += self.gender;
        }
        if provided.year {
            m += self.year;
        }
        if provided.location {
            m += self.location;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_normalises() {
        let q = QueryRecord::new("  Douglas ", "MacDonald", SearchKind::Birth)
            .with_location("Duirinish");
        assert_eq!(q.first_name, "douglas");
        assert_eq!(q.surname, "macdonald");
        assert_eq!(q.location.as_deref(), Some("duirinish"));
    }

    #[test]
    #[should_panic(expected = "first name is mandatory")]
    fn empty_first_name_panics() {
        let _ = QueryRecord::new("  ", "macdonald", SearchKind::Birth);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_year_range_panics() {
        let _ = QueryRecord::new("a", "b", SearchKind::Death).with_years(1900, 1890);
    }

    #[test]
    fn provided_tracks_optionals() {
        let q = QueryRecord::new("a", "b", SearchKind::Birth);
        assert_eq!(q.provided(), ProvidedFields { gender: false, year: false, location: false });
        let q = q.with_gender(Gender::Male).with_years(1850, 1900);
        let p = q.provided();
        assert!(p.gender && p.year && !p.location);
    }

    #[test]
    fn max_score_scales_with_provided() {
        let w = QueryWeights::default();
        let none = ProvidedFields { gender: false, year: false, location: false };
        let all = ProvidedFields { gender: true, year: true, location: true };
        assert!((w.max_score(none) - 0.6).abs() < 1e-12);
        assert!((w.max_score(all) - 1.0).abs() < 1e-12);
    }
}
