//! The search engine: accumulator construction, refinement, and ranking.

use std::collections::BTreeMap;

use snaps_core::{PedigreeEntity, PedigreeGraph};
use snaps_index::{KeywordIndex, SimilarityIndex, DEFAULT_S_T};
use snaps_model::EntityId;
use snaps_obs::{Counter, HistogramHandle, Obs};

use crate::query::{QueryRecord, QueryWeights, SearchKind};

/// One ranked search result.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedMatch {
    /// The matched entity.
    pub entity: EntityId,
    /// Overall match score normalised to a percentage (paper §7).
    pub score_percent: f64,
    /// Best first-name similarity contributing to the score.
    pub first_name_sim: f64,
    /// Best surname similarity contributing to the score.
    pub surname_sim: f64,
    /// Year match score, when a range was queried.
    pub year_score: Option<f64>,
    /// Gender match score, when a gender was queried.
    pub gender_score: Option<f64>,
    /// Best location similarity, when a location was queried.
    pub location_score: Option<f64>,
}

/// The online search service: pedigree graph + indices, ready for queries.
///
/// Queries take `&self`: the §7 memoisation of unseen query values lives in
/// the similarity indexes' internal sharded caches, so one engine can be
/// shared across threads (e.g. behind an `Arc` in `snaps-serve`).
#[derive(Debug)]
pub struct SearchEngine {
    graph: PedigreeGraph,
    keyword: KeywordIndex,
    first_name_sims: SimilarityIndex,
    surname_sims: SimilarityIndex,
    location_sims: SimilarityIndex,
    weights: QueryWeights,
    obs: Obs,
    n_queries: Counter,
    results_returned: Counter,
    latency: HistogramHandle,
}

impl SearchEngine {
    /// Build the engine (keyword + similarity indices) from a pedigree graph.
    #[must_use]
    pub fn build(graph: PedigreeGraph) -> Self {
        Self::build_with(graph, QueryWeights::default(), DEFAULT_S_T)
    }

    /// [`SearchEngine::build`] with default weights and threshold but an
    /// explicit instrumentation handle.
    #[must_use]
    pub fn build_obs(graph: PedigreeGraph, obs: &Obs) -> Self {
        Self::build_with_obs(graph, QueryWeights::default(), DEFAULT_S_T, obs)
    }

    /// Build with explicit weights and similarity threshold.
    #[must_use]
    pub fn build_with(graph: PedigreeGraph, weights: QueryWeights, s_t: f64) -> Self {
        Self::build_with_obs(graph, weights, s_t, &Obs::disabled())
    }

    /// Build with instrumentation: index construction is timed under an
    /// `engine_build` span, and queries record `query.*` counters plus a
    /// `query.latency` histogram on `obs`.
    #[must_use]
    pub(crate) fn build_with_obs(
        graph: PedigreeGraph,
        weights: QueryWeights,
        s_t: f64,
        obs: &Obs,
    ) -> Self {
        let build_span = obs.span("engine_build");
        let span = build_span.child("keyword_index");
        let keyword = KeywordIndex::build(&graph);
        span.finish();
        let span = build_span.child("similarity_indices");
        let first_name_sims = SimilarityIndex::build(keyword.first_name_values(), s_t);
        let surname_sims = SimilarityIndex::build(keyword.surname_values(), s_t);
        let location_sims = SimilarityIndex::build(keyword.location_values(), s_t);
        span.finish();
        build_span.finish();
        Self::from_parts(graph, keyword, first_name_sims, surname_sims, location_sims, weights, obs)
    }

    /// Assemble an engine from already-built parts — the snapshot-restore
    /// path (`snaps-serve`), which deserialises the graph and indexes
    /// instead of recomputing them. Wires the same instrumentation as
    /// [`SearchEngine::build_with_obs`], including the similarity indexes'
    /// `index.sim_cache.*` counters.
    #[must_use]
    pub fn from_parts(
        graph: PedigreeGraph,
        keyword: KeywordIndex,
        mut first_name_sims: SimilarityIndex,
        mut surname_sims: SimilarityIndex,
        mut location_sims: SimilarityIndex,
        weights: QueryWeights,
        obs: &Obs,
    ) -> Self {
        first_name_sims.instrument(obs);
        surname_sims.instrument(obs);
        location_sims.instrument(obs);
        Self {
            graph,
            keyword,
            first_name_sims,
            surname_sims,
            location_sims,
            weights,
            obs: obs.clone(),
            n_queries: obs.counter("query.count"),
            results_returned: obs.counter("query.results_returned"),
            latency: obs.histogram("query.latency"),
        }
    }

    /// The underlying pedigree graph.
    #[must_use]
    pub fn graph(&self) -> &PedigreeGraph {
        &self.graph
    }

    /// The keyword index.
    #[must_use]
    pub fn keyword_index(&self) -> &KeywordIndex {
        &self.keyword
    }

    /// The first-name similarity index.
    #[must_use]
    pub fn first_name_sims(&self) -> &SimilarityIndex {
        &self.first_name_sims
    }

    /// The surname similarity index.
    #[must_use]
    pub fn surname_sims(&self) -> &SimilarityIndex {
        &self.surname_sims
    }

    /// The location similarity index.
    #[must_use]
    pub fn location_sims(&self) -> &SimilarityIndex {
        &self.location_sims
    }

    /// The scoring weights.
    #[must_use]
    pub fn weights(&self) -> QueryWeights {
        self.weights
    }

    /// Process a query and return the `top_m` ranked entities.
    ///
    /// Takes `&self` — concurrent callers sharing one engine get identical
    /// results to sequential ones. Each call records one `query` span, one
    /// `query.latency` histogram sample, and bumps the `query.count` /
    /// `query.results_returned` counters (all no-ops without
    /// instrumentation).
    pub fn query(&self, q: &QueryRecord, top_m: usize) -> Vec<RankedMatch> {
        let span = self.obs.span("query");
        let results = process_query(
            q,
            &self.graph,
            &self.keyword,
            &self.first_name_sims,
            &self.surname_sims,
            &self.location_sims,
            self.weights,
            top_m,
            &self.obs,
        );
        self.latency.record(span.finish());
        self.n_queries.incr();
        self.results_returned.add(results.len() as u64);
        results
    }
}

/// Value → similarity map for one query value: the exact value at `1.0`
/// plus every approximate match from the similarity index.
fn value_similarities(value: &str, index: &SimilarityIndex) -> BTreeMap<String, f64> {
    let mut map: BTreeMap<String, f64> = BTreeMap::new();
    map.insert(value.to_string(), 1.0);
    for (v, s) in index.lookup_or_compute(value).iter() {
        map.entry(v.clone()).or_insert(*s);
    }
    map
}

/// Does the entity match the searched certificate kind?
fn kind_matches(e: &PedigreeEntity, kind: SearchKind) -> bool {
    match kind {
        SearchKind::Birth => e.has_birth_record,
        SearchKind::Death => e.has_death_record,
    }
}

/// Does the entity fall inside the query's geographic restriction?
/// Entities without any geocoded address never match a geo-filtered query —
/// the filter *limits* the search region (§12 future work).
fn geo_matches(e: &PedigreeEntity, filter: Option<(snaps_strsim::geo::GeoPoint, f64)>) -> bool {
    let Some((centre, radius_km)) = filter else { return true };
    e.geos.iter().any(|&g| snaps_strsim::geo::haversine_km(g.into(), centre) <= radius_km)
}

/// Year score: 1.0 inside the queried range, linearly decaying to 0 at
/// three years outside it (user-supplied years are uncertain, §7).
fn year_score(e: &PedigreeEntity, kind: SearchKind, range: (i32, i32)) -> f64 {
    let year = match kind {
        SearchKind::Birth => e.birth_year,
        SearchKind::Death => e.death_year,
    };
    let Some(y) = year else { return 0.0 };
    let (lo, hi) = range;
    let dist = if y < lo {
        lo - y
    } else if y > hi {
        y - hi
    } else {
        0
    };
    (1.0 - f64::from(dist) / 3.0).max(0.0)
}

/// Run the full §7 pipeline: accumulate name matches, refine with optional
/// attributes, rank, and normalise.
///
/// Records `query.index_probes` (similarity-index lookups plus keyword
/// bucket probes) and `query.candidates_scored` on `obs`; pass
/// [`Obs::disabled`] when calling outside an instrumented engine.
#[allow(clippy::too_many_arguments)]
pub fn process_query(
    q: &QueryRecord,
    graph: &PedigreeGraph,
    keyword: &KeywordIndex,
    first_name_sims: &SimilarityIndex,
    surname_sims: &SimilarityIndex,
    location_sims: &SimilarityIndex,
    weights: QueryWeights,
    top_m: usize,
    obs: &Obs,
) -> Vec<RankedMatch> {
    let probes = obs.counter("query.index_probes");

    // --- Accumulator M: entities with an exact or approximate name match.
    let fn_map = value_similarities(&q.first_name, first_name_sims);
    let sn_map = value_similarities(&q.surname, surname_sims);
    probes.add(2); // the two similarity-index lookups

    let mut acc: BTreeMap<EntityId, (f64, f64)> = BTreeMap::new();
    for (value, &sim) in &fn_map {
        for &e in keyword.by_first_name(value) {
            let entry = acc.entry(e).or_insert((0.0, 0.0));
            entry.0 = entry.0.max(sim);
        }
    }
    for (value, &sim) in &sn_map {
        for &e in keyword.by_surname(value) {
            let entry = acc.entry(e).or_insert((0.0, 0.0));
            entry.1 = entry.1.max(sim);
        }
    }
    // One keyword bucket probe per matched name value.
    probes.add((fn_map.len() + sn_map.len()) as u64);
    obs.counter("query.candidates_scored").add(acc.len() as u64);

    // --- Refinement: certificate kind, gender, year, location.
    let loc_map = q.location.as_ref().map(|l| value_similarities(l, location_sims));
    if loc_map.is_some() {
        probes.incr(); // location similarity-index lookup
    }
    let provided = q.provided();
    let max_score = weights.max_score(provided);

    let mut results: Vec<RankedMatch> = acc
        .into_iter()
        .filter_map(|(e, (fn_sim, sn_sim))| {
            // Ids come from the keyword index; `get` keeps the request path
            // total even if an index/graph snapshot pair ever disagrees.
            let entity = graph.get(e)?;
            if !kind_matches(entity, q.kind) || !geo_matches(entity, q.geo_filter) {
                return None;
            }
            let mut score = weights.first_name * fn_sim + weights.surname * sn_sim;

            let gender_score = q.gender.map(|g| {
                let s = if entity.gender.compatible(g) { 1.0 } else { 0.0 };
                score += weights.gender * s;
                s
            });
            let year_sc = q.year_range.map(|range| {
                let s = year_score(entity, q.kind, range);
                score += weights.year * s;
                s
            });
            let location_score = loc_map.as_ref().map(|map| {
                let s = entity
                    .addresses
                    .iter()
                    .filter_map(|a| map.get(a))
                    .copied()
                    .fold(0.0f64, f64::max);
                score += weights.location * s;
                s
            });

            Some(RankedMatch {
                entity: e,
                score_percent: 100.0 * score / max_score,
                first_name_sim: fn_sim,
                surname_sim: sn_sim,
                year_score: year_sc,
                gender_score,
                location_score,
            })
        })
        .collect();

    results.sort_by(|a, b| {
        b.score_percent.total_cmp(&a.score_percent).then_with(|| a.entity.cmp(&b.entity))
    });
    results.truncate(top_m);
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaps_core::{resolve, SnapsConfig};
    use snaps_model::{CertificateKind, Dataset, Gender, Role};

    /// Dataset: the birth and death of flora macrae (linked), the birth of
    /// douglas macdonald, and the death of doyd macdougall.
    fn engine() -> SearchEngine {
        let mut ds = Dataset::new("t");
        let person = |ds: &mut Dataset, kind, year, role, f: &str, s: &str, g, addr: &str| {
            let c = ds.push_certificate(kind, year);
            let r = ds.push_record(c, role, g);
            ds.record_mut(r).first_name = Some(f.into());
            ds.record_mut(r).surname = Some(s.into());
            ds.record_mut(r).address = Some(addr.into());
            if role == Role::DeathDeceased {
                ds.record_mut(r).age = Some(5);
            }
            r
        };
        person(
            &mut ds,
            CertificateKind::Birth,
            1880,
            Role::BirthBaby,
            "flora",
            "macrae",
            Gender::Female,
            "portree",
        );
        person(
            &mut ds,
            CertificateKind::Death,
            1885,
            Role::DeathDeceased,
            "flora",
            "macrae",
            Gender::Female,
            "portree",
        );
        person(
            &mut ds,
            CertificateKind::Birth,
            1874,
            Role::BirthBaby,
            "douglas",
            "macdonald",
            Gender::Male,
            "snizort",
        );
        person(
            &mut ds,
            CertificateKind::Death,
            1891,
            Role::DeathDeceased,
            "doyd",
            "macdougall",
            Gender::Male,
            "duirinish",
        );
        let res = resolve(&ds, &SnapsConfig::default());
        SearchEngine::build(PedigreeGraph::build(&ds, &res))
    }

    #[test]
    fn exact_match_scores_100() {
        let e = engine();
        let q = QueryRecord::new("flora", "macrae", SearchKind::Birth);
        let r = e.query(&q, 10);
        assert!(!r.is_empty());
        assert!((r[0].score_percent - 100.0).abs() < 1e-9);
        assert_eq!(r[0].first_name_sim, 1.0);
        assert_eq!(r[0].surname_sim, 1.0);
    }

    #[test]
    fn approximate_names_found_and_ranked_below_exact() {
        let e = engine();
        // The paper's running example: query douglas macdonald also surfaces
        // doyd macdougall (Fig. 6).
        let q = QueryRecord::new("douglas", "macdonald", SearchKind::Death);
        let r = e.query(&q, 10);
        assert!(!r.is_empty());
        let names: Vec<String> =
            r.iter().map(|m| e.graph().entity(m.entity).display_name()).collect();
        assert!(names.contains(&"doyd macdougall".to_string()), "{names:?}");
        // All death-search results have death records.
        for m in &r {
            assert!(e.graph().entity(m.entity).has_death_record);
        }
    }

    #[test]
    fn kind_filter_excludes_other_kind() {
        let e = engine();
        let q = QueryRecord::new("douglas", "macdonald", SearchKind::Birth);
        let r = e.query(&q, 10);
        assert!(r.iter().all(|m| e.graph().entity(m.entity).has_birth_record));
        // douglas macdonald only has a birth record → found here…
        assert!(!r.is_empty());
        // …and not in a death search with an exact name requirement.
        let q = QueryRecord::new("douglas", "macdonald", SearchKind::Death);
        let r = e.query(&q, 10);
        assert!(r.iter().all(|m| e.graph().entity(m.entity).display_name() != "douglas macdonald"));
    }

    #[test]
    fn year_range_boosts_in_range() {
        let e = engine();
        let q = QueryRecord::new("flora", "macrae", SearchKind::Birth).with_years(1878, 1882);
        let r = e.query(&q, 10);
        assert!((r[0].score_percent - 100.0).abs() < 1e-9);
        assert_eq!(r[0].year_score, Some(1.0));
        // Out-of-range by 10 years → year component zero, score below 100.
        let q = QueryRecord::new("flora", "macrae", SearchKind::Birth).with_years(1890, 1895);
        let r = e.query(&q, 10);
        assert_eq!(r[0].year_score, Some(0.0));
        assert!(r[0].score_percent < 100.0);
    }

    #[test]
    fn near_miss_year_decays() {
        let e = engine();
        // Born 1880, queried 1881-1885: one year out → 2/3.
        let q = QueryRecord::new("flora", "macrae", SearchKind::Birth).with_years(1881, 1885);
        let r = e.query(&q, 10);
        let ys = r[0].year_score.unwrap();
        assert!((ys - (1.0 - 1.0 / 3.0)).abs() < 1e-9, "{ys}");
    }

    #[test]
    fn gender_and_location_refine() {
        let e = engine();
        let q = QueryRecord::new("flora", "macrae", SearchKind::Birth)
            .with_gender(Gender::Female)
            .with_location("portree");
        let r = e.query(&q, 10);
        assert_eq!(r[0].gender_score, Some(1.0));
        assert_eq!(r[0].location_score, Some(1.0));
        assert!((r[0].score_percent - 100.0).abs() < 1e-9);
        // Wrong gender drops the component.
        let q = QueryRecord::new("flora", "macrae", SearchKind::Birth).with_gender(Gender::Male);
        let r = e.query(&q, 10);
        assert_eq!(r[0].gender_score, Some(0.0));
    }

    #[test]
    fn no_name_match_no_results() {
        let e = engine();
        let q = QueryRecord::new("zzyzx", "qqqqq", SearchKind::Birth);
        assert!(e.query(&q, 10).is_empty());
    }

    #[test]
    fn top_m_truncates_and_sorts() {
        let e = engine();
        let q = QueryRecord::new("flora", "macrae", SearchKind::Birth);
        let all = e.query(&q, 10);
        let one = e.query(&q, 1);
        assert_eq!(one.len(), 1.min(all.len()));
        for w in all.windows(2) {
            assert!(w[0].score_percent >= w[1].score_percent);
        }
    }

    #[test]
    fn instrumented_engine_records_queries() {
        let obs = snaps_obs::Obs::new(&snaps_obs::ObsConfig::full());
        let base = engine();
        let e = SearchEngine::build_with_obs(
            base.graph().clone(),
            QueryWeights::default(),
            snaps_index::DEFAULT_S_T,
            &obs,
        );
        let q = QueryRecord::new("flora", "macrae", SearchKind::Birth);
        let n = e.query(&q, 10).len();
        let _ = e.query(&q, 1);

        let report = obs.report().expect("enabled obs");
        assert!(report.span("engine_build").is_some(), "index build timed");
        assert_eq!(report.span("query").map(|s| s.count), Some(2));
        assert_eq!(report.counter("query.count"), Some(2));
        assert_eq!(report.counter("query.results_returned"), Some(n as u64 + 1));
        assert!(
            report.counter("query.index_probes").unwrap_or(0) >= 4,
            "2 sim + keyword probes per query"
        );
        assert!(report.counter("query.candidates_scored").unwrap_or(0) >= 2);
        let h = report.histogram("query.latency").expect("latency histogram");
        assert_eq!(h.count, 2);
        assert!(h.min_ns > 0 && h.p95_ns >= h.p50_ns);
    }

    #[test]
    fn misspelled_query_still_finds() {
        let e = engine();
        // "flra macre" — typo'd both names.
        let q = QueryRecord::new("flra", "macre", SearchKind::Birth);
        let r = e.query(&q, 10);
        assert!(!r.is_empty());
        let top = e.graph().entity(r[0].entity).display_name();
        assert_eq!(top, "flora macrae");
        assert!(r[0].score_percent < 100.0, "approximate match scores below 100");
    }
}

#[cfg(test)]
mod geo_filter_tests {
    use super::*;
    use crate::query::{QueryRecord, SearchKind};
    use snaps_core::{resolve, SnapsConfig};
    use snaps_model::person::GeoCoord;
    use snaps_model::{CertificateKind, Dataset, Gender, Role};
    use snaps_strsim::geo::GeoPoint;

    /// Two same-named people: one geocoded near Portree, one near Sleat
    /// (~30 km apart), plus one without any geocode.
    fn engine() -> SearchEngine {
        let mut ds = Dataset::new("t");
        let add = |ds: &mut Dataset, addr: &str, geo: Option<GeoCoord>| {
            let c = ds.push_certificate(CertificateKind::Birth, 1880);
            let r = ds.push_record(c, Role::BirthBaby, Gender::Female);
            let rec = ds.record_mut(r);
            rec.first_name = Some("flora".into());
            rec.surname = Some("macrae".into());
            rec.address = Some(addr.into());
            rec.geo = geo;
        };
        add(&mut ds, "portree", Some(GeoCoord { lat: 57.41, lon: -6.19 }));
        add(&mut ds, "sleat", Some(GeoCoord { lat: 57.15, lon: -5.90 }));
        add(&mut ds, "unknown", None);
        let res = resolve(&ds, &SnapsConfig::default());
        SearchEngine::build(PedigreeGraph::build(&ds, &res))
    }

    #[test]
    fn geo_filter_limits_to_radius() {
        let e = engine();
        let portree = GeoPoint::new(57.41, -6.19);
        let q =
            QueryRecord::new("flora", "macrae", SearchKind::Birth).with_geo_filter(portree, 10.0);
        let r = e.query(&q, 10);
        assert_eq!(r.len(), 1, "only the Portree flora is within 10 km");
        let hit = e.graph().entity(r[0].entity);
        assert_eq!(hit.addresses[0], "portree");
    }

    #[test]
    fn wide_radius_admits_both_geocoded() {
        let e = engine();
        let portree = GeoPoint::new(57.41, -6.19);
        let q =
            QueryRecord::new("flora", "macrae", SearchKind::Birth).with_geo_filter(portree, 100.0);
        let r = e.query(&q, 10);
        assert_eq!(r.len(), 2, "both geocoded floras, never the ungeocoded one");
    }

    #[test]
    fn no_filter_admits_everyone() {
        let e = engine();
        let q = QueryRecord::new("flora", "macrae", SearchKind::Birth);
        assert_eq!(e.query(&q, 10).len(), 3);
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn zero_radius_panics() {
        let _ = QueryRecord::new("a", "b", SearchKind::Birth)
            .with_geo_filter(GeoPoint::new(0.0, 0.0), 0.0);
    }
}
