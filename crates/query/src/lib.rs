//! Online query processing and ranking (paper §7).
//!
//! A query carries a mandatory first name and surname, the certificate kind
//! to search (birth or death), and optional gender, year range, and
//! location. Processing builds an *accumulator* of candidate entities from
//! exact and approximate name matches (via the keyword and similarity-aware
//! indices), refines their scores with the optional attributes, and returns
//! the top-`m` entities with scores normalised to percentages — "100%
//! indicating an entity … matches exactly on all QID values provided".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod process;
pub mod query;

pub use process::{process_query, RankedMatch, SearchEngine};
pub use query::{QueryRecord, QueryWeights, SearchKind};
