//! From-scratch supervised classifiers.
//!
//! The paper's fourth baseline is Magellan with its four best classifiers —
//! "a SVM, a random forest, a logistic regression, and a decision tree" —
//! whose linkage quality is averaged (§10). This crate implements those four
//! classifiers from scratch over record-pair comparison vectors, so the
//! supervised baseline can be reproduced without any external ML dependency.
//!
//! All classifiers are deterministic (seeded where randomised), operate on
//! dense `f64` feature vectors with boolean labels, and share the
//! [`Classifier`] interface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod forest;
pub mod logistic;
pub mod svm;
pub mod tree;

pub use data::{train_test_split, Dataset};
pub use forest::RandomForest;
pub use logistic::LogisticRegression;
pub use svm::LinearSvm;
pub use tree::DecisionTree;

/// A binary classifier over dense feature vectors.
pub trait Classifier {
    /// Fit on features `x` (row-major) and labels `y`.
    ///
    /// # Panics
    /// Implementations panic when `x` and `y` lengths differ or `x` is
    /// ragged.
    fn fit(&mut self, x: &[Vec<f64>], y: &[bool]);

    /// Predict the label of one feature vector.
    fn predict(&self, x: &[f64]) -> bool;

    /// Short classifier name for reports.
    fn name(&self) -> &'static str;

    /// Predict a batch.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<bool> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

/// Validate a training set's shape; returns the feature dimension.
pub(crate) fn check_shape(x: &[Vec<f64>], y: &[bool]) -> usize {
    assert_eq!(x.len(), y.len(), "features and labels must have equal length");
    assert!(!x.is_empty(), "training set must be non-empty");
    let dim = x[0].len();
    assert!(dim > 0, "feature vectors must be non-empty");
    assert!(x.iter().all(|r| r.len() == dim), "ragged feature matrix");
    dim
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A linearly separable toy problem: label = (x0 + x1 > 1).
    pub(crate) fn toy() -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let (a, b) = (f64::from(i) / 10.0, f64::from(j) / 10.0);
                x.push(vec![a, b]);
                y.push(a + b > 1.0);
            }
        }
        (x, y)
    }

    fn accuracy(c: &dyn Classifier, x: &[Vec<f64>], y: &[bool]) -> f64 {
        let correct = x.iter().zip(y).filter(|(xi, &yi)| c.predict(xi) == yi).count();
        correct as f64 / x.len() as f64
    }

    #[test]
    fn all_classifiers_learn_separable_data() {
        let (x, y) = toy();
        let mut classifiers: Vec<Box<dyn Classifier>> = vec![
            Box::new(LogisticRegression::default()),
            Box::new(DecisionTree::default()),
            Box::new(RandomForest::default()),
            Box::new(LinearSvm::default()),
        ];
        for c in &mut classifiers {
            c.fit(&x, &y);
            let acc = accuracy(c.as_ref(), &x, &y);
            assert!(acc > 0.93, "{} accuracy {acc}", c.name());
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn shape_mismatch_panics() {
        let mut c = LogisticRegression::default();
        c.fit(&[vec![1.0]], &[true, false]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_matrix_panics() {
        let mut c = DecisionTree::default();
        c.fit(&[vec![1.0], vec![1.0, 2.0]], &[true, false]);
    }
}
