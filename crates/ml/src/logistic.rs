//! Logistic regression via mini-batch-free SGD with L2 regularisation.

use crate::{check_shape, Classifier};

/// Logistic regression classifier.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Learning rate.
    pub learning_rate: f64,
    /// Training epochs.
    pub epochs: usize,
    /// L2 regularisation strength.
    pub l2: f64,
    weights: Vec<f64>,
    bias: f64,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self { learning_rate: 0.5, epochs: 200, l2: 1e-4, weights: Vec::new(), bias: 0.0 }
    }
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl LogisticRegression {
    /// Predicted probability of the positive class.
    #[must_use]
    pub(crate) fn predict_proba(&self, x: &[f64]) -> f64 {
        let z: f64 = self.bias + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>();
        sigmoid(z)
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, x: &[Vec<f64>], y: &[bool]) {
        let dim = check_shape(x, y);
        self.weights = vec![0.0; dim];
        self.bias = 0.0;
        let n = x.len() as f64;
        for epoch in 0..self.epochs {
            // Simple decay keeps late epochs from oscillating.
            let lr = self.learning_rate / (1.0 + epoch as f64 / 50.0);
            for (xi, &yi) in x.iter().zip(y) {
                let p = self.predict_proba(xi);
                let err = p - f64::from(u8::from(yi));
                for (w, &v) in self.weights.iter_mut().zip(xi) {
                    *w -= lr * (err * v + self.l2 * *w / n);
                }
                self.bias -= lr * err;
            }
        }
    }

    fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    fn name(&self) -> &'static str {
        "logistic-regression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_threshold() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![f64::from(i) / 100.0]).collect();
        let y: Vec<bool> = (0..100).map(|i| i >= 50).collect();
        let mut c = LogisticRegression::default();
        c.fit(&x, &y);
        assert!(!c.predict(&[0.1]));
        assert!(c.predict(&[0.9]));
        assert!(c.predict_proba(&[0.9]) > c.predict_proba(&[0.6]));
    }

    #[test]
    fn probabilities_in_unit_range() {
        let mut c = LogisticRegression::default();
        c.fit(&[vec![0.0], vec![1.0]], &[false, true]);
        for v in [-10.0, 0.0, 0.5, 10.0] {
            let p = c.predict_proba(&[v]);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn deterministic() {
        let x = vec![vec![0.2, 0.1], vec![0.9, 0.8], vec![0.1, 0.3], vec![0.7, 0.9]];
        let y = vec![false, true, false, true];
        let mut a = LogisticRegression::default();
        let mut b = LogisticRegression::default();
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict_proba(&[0.5, 0.5]), b.predict_proba(&[0.5, 0.5]));
    }

    #[test]
    fn all_one_class_predicts_that_class() {
        let mut c = LogisticRegression::default();
        c.fit(&[vec![0.3], vec![0.7]], &[true, true]);
        assert!(c.predict(&[0.1]));
        assert!(c.predict(&[0.9]));
    }
}
