//! Training-data utilities: labelled datasets and deterministic splits.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A labelled dataset of dense feature vectors.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Feature rows.
    pub x: Vec<Vec<f64>>,
    /// Labels.
    pub y: Vec<bool>,
}

impl Dataset {
    /// Number of examples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the dataset is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Add one example.
    pub fn push(&mut self, features: Vec<f64>, label: bool) {
        self.x.push(features);
        self.y.push(label);
    }

    /// Count of positive examples.
    #[must_use]
    #[cfg(test)]
    pub(crate) fn positives(&self) -> usize {
        self.y.iter().filter(|&&l| l).count()
    }
}

/// Split into `(train, test)` with `train_fraction` of examples in train,
/// shuffled deterministically by `seed`.
///
/// # Panics
/// Panics if `train_fraction` is outside `(0, 1)`.
#[must_use]
pub fn train_test_split(data: &Dataset, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
    assert!(train_fraction > 0.0 && train_fraction < 1.0, "train_fraction must be in (0,1)");
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    use rand::seq::SliceRandom;
    order.shuffle(&mut rng);

    let cut = ((data.len() as f64) * train_fraction).round() as usize;
    let cut = cut.clamp(1, data.len().saturating_sub(1).max(1));
    let mut train = Dataset::default();
    let mut test = Dataset::default();
    for (k, &i) in order.iter().enumerate() {
        if k < cut {
            train.push(data.x[i].clone(), data.y[i]);
        } else {
            test.push(data.x[i].clone(), data.y[i]);
        }
    }
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Dataset {
        let mut d = Dataset::default();
        for i in 0..n {
            d.push(vec![i as f64], i % 3 == 0);
        }
        d
    }

    #[test]
    fn split_sizes() {
        let d = sample(100);
        let (tr, te) = train_test_split(&d, 0.7, 1);
        assert_eq!(tr.len(), 70);
        assert_eq!(te.len(), 30);
        assert_eq!(tr.len() + te.len(), d.len());
    }

    #[test]
    fn split_partitions_without_duplication() {
        let d = sample(50);
        let (tr, te) = train_test_split(&d, 0.5, 2);
        let mut all: Vec<f64> = tr.x.iter().chain(te.x.iter()).map(|r| r[0]).collect();
        all.sort_by(f64::total_cmp);
        let expected: Vec<f64> = (0..50).map(f64::from).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = sample(30);
        let (a, _) = train_test_split(&d, 0.6, 9);
        let (b, _) = train_test_split(&d, 0.6, 9);
        assert_eq!(a.x, b.x);
        let (c, _) = train_test_split(&d, 0.6, 10);
        assert_ne!(a.x, c.x, "different seed shuffles differently");
    }

    #[test]
    fn positives_counted() {
        let d = sample(9);
        assert_eq!(d.positives(), 3);
    }

    #[test]
    #[should_panic(expected = "train_fraction")]
    fn bad_fraction_panics() {
        let _ = train_test_split(&sample(10), 1.0, 0);
    }
}
