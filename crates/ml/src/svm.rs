//! Linear SVM trained with Pegasos-style hinge-loss SGD.

use crate::{check_shape, Classifier};

/// Linear support-vector machine.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    /// Regularisation parameter λ (smaller = wider margin tolerance).
    pub lambda: f64,
    /// Training epochs.
    pub epochs: usize,
    weights: Vec<f64>,
    bias: f64,
}

impl Default for LinearSvm {
    fn default() -> Self {
        Self { lambda: 1e-3, epochs: 200, weights: Vec::new(), bias: 0.0 }
    }
}

impl LinearSvm {
    /// Signed decision value (`> 0` → positive class).
    #[must_use]
    pub(crate) fn decision(&self, x: &[f64]) -> f64 {
        self.bias + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, x: &[Vec<f64>], y: &[bool]) {
        let dim = check_shape(x, y);
        self.weights = vec![0.0; dim];
        self.bias = 0.0;
        let mut t = 1u64;
        for _ in 0..self.epochs {
            for (xi, &yi) in x.iter().zip(y) {
                let label = if yi { 1.0 } else { -1.0 };
                let eta = 1.0 / (self.lambda * t as f64);
                let margin = label * self.decision(xi);
                // Pegasos update: always shrink, add the example when it
                // violates the margin.
                for w in &mut self.weights {
                    *w *= 1.0 - eta * self.lambda;
                }
                if margin < 1.0 {
                    for (w, &v) in self.weights.iter_mut().zip(xi) {
                        *w += eta * label * v;
                    }
                    self.bias += eta * label;
                }
                t += 1;
            }
        }
    }

    fn predict(&self, x: &[f64]) -> bool {
        self.decision(x) > 0.0
    }

    fn name(&self) -> &'static str {
        "linear-svm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_linear_classes() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..50 {
            let v = f64::from(i) / 50.0;
            x.push(vec![v, 1.0 - v]);
            y.push(v > 0.5);
        }
        let mut svm = LinearSvm::default();
        svm.fit(&x, &y);
        assert!(!svm.predict(&[0.1, 0.9]));
        assert!(svm.predict(&[0.9, 0.1]));
    }

    #[test]
    fn decision_monotone_along_weight_direction() {
        let mut svm = LinearSvm::default();
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![f64::from(i) / 40.0]).collect();
        let y: Vec<bool> = (0..40).map(|i| i >= 20).collect();
        svm.fit(&x, &y);
        assert!(svm.decision(&[0.9]) > svm.decision(&[0.2]));
    }

    #[test]
    fn deterministic() {
        let x = vec![vec![0.0], vec![1.0], vec![0.2], vec![0.8]];
        let y = vec![false, true, false, true];
        let mut a = LinearSvm::default();
        let mut b = LinearSvm::default();
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.decision(&[0.5]), b.decision(&[0.5]));
    }
}
