//! CART decision tree with Gini impurity.

use crate::{check_shape, Classifier};

/// A node of the fitted tree.
#[derive(Debug, Clone)]
enum Node {
    /// Leaf predicting a class.
    Leaf(bool),
    /// `x[feature] <= threshold` goes left, else right.
    Split { feature: usize, threshold: f64, left: usize, right: usize },
}

/// CART decision tree classifier (binary splits, Gini impurity).
#[derive(Debug, Clone)]
pub struct DecisionTree {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node further.
    pub min_samples_split: usize,
    nodes: Vec<Node>,
}

impl Default for DecisionTree {
    fn default() -> Self {
        Self { max_depth: 8, min_samples_split: 4, nodes: Vec::new() }
    }
}

fn gini(pos: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p = pos as f64 / total as f64;
    2.0 * p * (1.0 - p)
}

fn majority(indices: &[usize], y: &[bool]) -> bool {
    let pos = indices.iter().filter(|&&i| y[i]).count();
    2 * pos >= indices.len()
}

/// The best `(feature, threshold, gini_after)` split of `indices`, if any
/// split improves on the parent impurity.
fn best_split(
    x: &[Vec<f64>],
    y: &[bool],
    indices: &[usize],
    features: &[usize],
) -> Option<(usize, f64, f64)> {
    let total = indices.len();
    let parent_pos = indices.iter().filter(|&&i| y[i]).count();
    let parent_gini = gini(parent_pos, total);
    let mut best: Option<(usize, f64, f64)> = None;

    for &f in features {
        // Sort candidate values; thresholds are midpoints between distinct
        // consecutive values.
        let mut vals: Vec<(f64, bool)> = indices.iter().map(|&i| (x[i][f], y[i])).collect();
        vals.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut left_pos = 0usize;
        for k in 1..vals.len() {
            if vals[k - 1].1 {
                left_pos += 1;
            }
            if vals[k].0 == vals[k - 1].0 {
                continue;
            }
            let left_n = k;
            let right_n = total - k;
            let right_pos = parent_pos - left_pos;
            let weighted = (left_n as f64 * gini(left_pos, left_n)
                + right_n as f64 * gini(right_pos, right_n))
                / total as f64;
            if weighted < parent_gini - 1e-12 && best.is_none_or(|(_, _, g)| weighted < g) {
                let threshold = (vals[k - 1].0 + vals[k].0) / 2.0;
                best = Some((f, threshold, weighted));
            }
        }
    }
    best
}

impl DecisionTree {
    fn build(
        &mut self,
        x: &[Vec<f64>],
        y: &[bool],
        indices: Vec<usize>,
        depth: usize,
        features: &[usize],
    ) -> usize {
        let id = self.nodes.len();
        self.nodes.push(Node::Leaf(majority(&indices, y)));

        if depth >= self.max_depth || indices.len() < self.min_samples_split {
            return id;
        }
        let Some((feature, threshold, _)) = best_split(x, y, &indices, features) else {
            return id;
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| x[i][feature] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            return id;
        }
        let left = self.build(x, y, left_idx, depth + 1, features);
        let right = self.build(x, y, right_idx, depth + 1, features);
        self.nodes[id] = Node::Split { feature, threshold, left, right };
        id
    }

    /// Fit on a subset of rows and features — used by the random forest.
    pub(crate) fn fit_subset(
        &mut self,
        x: &[Vec<f64>],
        y: &[bool],
        rows: Vec<usize>,
        features: &[usize],
    ) {
        self.nodes.clear();
        self.build(x, y, rows, 0, features);
    }

    /// Number of fitted nodes (diagnostics).
    #[must_use]
    #[cfg(test)]
    pub(crate) fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, x: &[Vec<f64>], y: &[bool]) {
        let dim = check_shape(x, y);
        let features: Vec<usize> = (0..dim).collect();
        self.fit_subset(x, y, (0..x.len()).collect(), &features);
    }

    fn predict(&self, x: &[f64]) -> bool {
        let mut node = 0usize;
        loop {
            match self.nodes[node] {
                Node::Leaf(c) => return c,
                Node::Split { feature, threshold, left, right } => {
                    node = if x[feature] <= threshold { left } else { right };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "decision-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_axis_aligned_split() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![f64::from(i)]).collect();
        let y: Vec<bool> = (0..40).map(|i| i >= 20).collect();
        let mut t = DecisionTree::default();
        t.fit(&x, &y);
        assert!(!t.predict(&[5.0]));
        assert!(t.predict(&[35.0]));
        assert!(t.node_count() >= 3);
    }

    #[test]
    fn learns_conjunction_with_two_levels() {
        // y = (x0 > 0.5) AND (x1 > 0.5): needs a split on each feature.
        // (XOR is deliberately not tested: greedy CART cannot split it at
        // the root — no single split improves Gini.)
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                let (a, b) = (f64::from(i) / 8.0, f64::from(j) / 8.0);
                x.push(vec![a, b]);
                y.push(a > 0.5 && b > 0.5);
            }
        }
        let mut t = DecisionTree::default();
        t.fit(&x, &y);
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(t.predict(xi), yi, "at {xi:?}");
        }
    }

    #[test]
    fn pure_node_stays_leaf() {
        let mut t = DecisionTree::default();
        t.fit(&[vec![1.0], vec![2.0]], &[true, true]);
        assert_eq!(t.node_count(), 1);
        assert!(t.predict(&[99.0]));
    }

    #[test]
    fn respects_max_depth() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![f64::from(i)]).collect();
        // Alternating labels: unlearnable without depth 6.
        let y: Vec<bool> = (0..64).map(|i| i % 2 == 0).collect();
        let mut t = DecisionTree { max_depth: 1, ..DecisionTree::default() };
        t.fit(&x, &y);
        assert!(t.node_count() <= 3, "depth-1 tree has at most 3 nodes");
    }

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(0, 10), 0.0);
        assert_eq!(gini(10, 10), 0.0);
        assert!((gini(5, 10) - 0.5).abs() < 1e-12);
        assert_eq!(gini(0, 0), 0.0);
    }
}
