//! Random forest: bagged CART trees over random feature subsets.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::tree::DecisionTree;
use crate::{check_shape, Classifier};

/// Random forest classifier (majority vote over bootstrapped trees).
#[derive(Debug, Clone)]
pub struct RandomForest {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// Seed for bootstrap and feature sampling (deterministic fits).
    pub seed: u64,
    trees: Vec<DecisionTree>,
}

impl Default for RandomForest {
    fn default() -> Self {
        Self { n_trees: 25, max_depth: 8, seed: 42, trees: Vec::new() }
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &[Vec<f64>], y: &[bool]) {
        let dim = check_shape(x, y);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        self.trees.clear();
        // √dim feature subsampling, the conventional default.
        let n_features = ((dim as f64).sqrt().ceil() as usize).clamp(1, dim);
        for _ in 0..self.n_trees {
            // Bootstrap rows.
            let rows: Vec<usize> = (0..x.len()).map(|_| rng.gen_range(0..x.len())).collect();
            // Random feature subset (without replacement).
            let mut features: Vec<usize> = (0..dim).collect();
            for i in (1..features.len()).rev() {
                features.swap(i, rng.gen_range(0..=i));
            }
            features.truncate(n_features);
            features.sort_unstable();

            let mut tree = DecisionTree::default();
            tree.max_depth = self.max_depth;
            tree.fit_subset(x, y, rows, &features);
            self.trees.push(tree);
        }
    }

    fn predict(&self, x: &[f64]) -> bool {
        assert!(!self.trees.is_empty(), "predict before fit");
        let votes = self.trees.iter().filter(|t| t.predict(x)).count();
        2 * votes >= self.trees.len()
    }

    fn name(&self) -> &'static str {
        "random-forest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_nonlinear_boundary() {
        // Ring problem: positive inside the ring.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in -10..=10 {
            for j in -10..=10 {
                let (a, b) = (f64::from(i) / 10.0, f64::from(j) / 10.0);
                x.push(vec![a, b]);
                y.push(a * a + b * b < 0.5);
            }
        }
        let mut f = RandomForest::default();
        f.fit(&x, &y);
        let correct = x.iter().zip(&y).filter(|(xi, &yi)| f.predict(xi) == yi).count();
        assert!(correct as f64 / x.len() as f64 > 0.9);
    }

    #[test]
    fn deterministic_given_seed() {
        let x = vec![vec![0.1, 0.2], vec![0.9, 0.8], vec![0.2, 0.1], vec![0.8, 0.9]];
        let y = vec![false, true, false, true];
        let mut a = RandomForest::default();
        let mut b = RandomForest::default();
        a.fit(&x, &y);
        b.fit(&x, &y);
        for xi in &x {
            assert_eq!(a.predict(xi), b.predict(xi));
        }
    }

    #[test]
    fn different_seed_may_differ_but_still_learns() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![f64::from(i)]).collect();
        let y: Vec<bool> = (0..50).map(|i| i >= 25).collect();
        let mut f = RandomForest { seed: 7, ..RandomForest::default() };
        f.fit(&x, &y);
        assert!(!f.predict(&[2.0]));
        assert!(f.predict(&[48.0]));
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_unfitted_panics() {
        let f = RandomForest::default();
        let _ = f.predict(&[0.0]);
    }
}
