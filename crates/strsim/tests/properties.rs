//! Property-based tests for the similarity metric axioms.

use proptest::prelude::*;
use snaps_strsim::{
    geo::{distance_similarity, haversine_km, GeoPoint},
    jaro, jaro_winkler, levenshtein, levenshtein_similarity,
    normalize::normalize_name,
    numeric::max_abs_diff_similarity,
    qgram::{bigram_jaccard, bigrams, share_bigram},
};

fn word() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z]{0,12}").unwrap()
}

proptest! {
    #[test]
    fn jaro_in_unit_range(a in word(), b in word()) {
        let s = jaro(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn jaro_winkler_in_unit_range(a in word(), b in word()) {
        let s = jaro_winkler(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
    }

    #[test]
    fn jaro_symmetric(a in word(), b in word()) {
        prop_assert!((jaro(&a, &b) - jaro(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn jaro_winkler_symmetric(a in word(), b in word()) {
        prop_assert!((jaro_winkler(&a, &b) - jaro_winkler(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn jaro_identity(a in word()) {
        prop_assert_eq!(jaro(&a, &a), 1.0);
        prop_assert_eq!(jaro_winkler(&a, &a), 1.0);
    }

    #[test]
    fn winkler_dominates_jaro(a in word(), b in word()) {
        prop_assert!(jaro_winkler(&a, &b) + 1e-12 >= jaro(&a, &b));
    }

    #[test]
    fn levenshtein_identity_and_symmetry(a in word(), b in word()) {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
    }

    #[test]
    fn levenshtein_triangle(a in word(), b in word(), c in word()) {
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    #[test]
    fn levenshtein_bounded_by_longer_length(a in word(), b in word()) {
        prop_assert!(levenshtein(&a, &b) <= a.chars().count().max(b.chars().count()));
        let s = levenshtein_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn jaccard_unit_range_and_symmetry(a in word(), b in word()) {
        let s = bigram_jaccard(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert_eq!(s, bigram_jaccard(&b, &a));
    }

    #[test]
    fn positive_jaccard_implies_shared_bigram(a in word(), b in word()) {
        if !a.is_empty() && !b.is_empty() && bigram_jaccard(&a, &b) > 0.0 {
            prop_assert!(share_bigram(&a, &b));
        }
    }

    #[test]
    fn bigram_count_bound(a in word()) {
        let n = a.chars().count();
        let expected_max = if n == 0 { 0 } else if n == 1 { 1 } else { n - 1 };
        prop_assert!(bigrams(&a).len() <= expected_max.max(1));
    }

    #[test]
    fn numeric_similarity_unit_range(a in -5000.0..5000.0f64, b in -5000.0..5000.0f64, m in 0.1..100.0f64) {
        let s = max_abs_diff_similarity(a, b, m);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert_eq!(s, max_abs_diff_similarity(b, a, m));
    }

    #[test]
    fn normalize_idempotent(a in "[ -~]{0,30}") {
        let once = normalize_name(&a);
        prop_assert_eq!(normalize_name(&once), once.clone());
        prop_assert!(!once.starts_with(' ') && !once.ends_with(' '));
    }

    #[test]
    fn haversine_symmetric_nonnegative(
        lat1 in -89.0..89.0f64, lon1 in -179.0..179.0f64,
        lat2 in -89.0..89.0f64, lon2 in -179.0..179.0f64,
    ) {
        let a = GeoPoint::new(lat1, lon1);
        let b = GeoPoint::new(lat2, lon2);
        let d = haversine_km(a, b);
        prop_assert!(d >= 0.0);
        prop_assert!((d - haversine_km(b, a)).abs() < 1e-6);
        let s = distance_similarity(a, b, 25.0);
        prop_assert!((0.0..=1.0).contains(&s));
    }
}
