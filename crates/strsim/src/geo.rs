//! Geographic similarity for geocoded addresses.
//!
//! For the Isle-of-Skye data the paper geocodes address strings and compares
//! addresses "based on the distances between two locations" (§10). We
//! implement the great-circle (haversine) distance and a linear decay of
//! similarity with distance.

use crate::Similarity;

/// Mean Earth radius in kilometres.
pub(crate) const EARTH_RADIUS_KM: f64 = 6371.0;

/// A WGS-84 style latitude/longitude coordinate in degrees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Create a point, panicking on out-of-range coordinates.
    #[must_use]
    pub fn new(lat: f64, lon: f64) -> Self {
        assert!((-90.0..=90.0).contains(&lat), "latitude out of range: {lat}");
        assert!((-180.0..=180.0).contains(&lon), "longitude out of range: {lon}");
        Self { lat, lon }
    }
}

/// Great-circle distance between two points in kilometres (haversine formula).
///
/// # Examples
///
/// ```
/// use snaps_strsim::geo::{haversine_km, GeoPoint};
/// let portree = GeoPoint::new(57.4125, -6.1946);
/// let kilmore = GeoPoint::new(57.2306, -5.9811);
/// let d = haversine_km(portree, kilmore);
/// assert!(d > 20.0 && d < 30.0);
/// ```
#[must_use]
pub fn haversine_km(a: GeoPoint, b: GeoPoint) -> f64 {
    let (lat1, lon1) = (a.lat.to_radians(), a.lon.to_radians());
    let (lat2, lon2) = (b.lat.to_radians(), b.lon.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

/// Distance-based address similarity.
///
/// Similarity decays linearly from `1.0` at zero distance to `0.0` at
/// `max_km` or further. `max_km` must be positive; for an island parish
/// registry a horizon of 20–30 km is appropriate (anything further is a
/// different community).
#[must_use]
pub fn distance_similarity(a: GeoPoint, b: GeoPoint, max_km: f64) -> Similarity {
    assert!(max_km > 0.0, "max_km must be positive");
    (1.0 - haversine_km(a, b) / max_km).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_full_similarity() {
        let p = GeoPoint::new(57.0, -6.0);
        assert_eq!(haversine_km(p, p), 0.0);
        assert_eq!(distance_similarity(p, p, 25.0), 1.0);
    }

    #[test]
    fn symmetric_distance() {
        let a = GeoPoint::new(57.41, -6.19);
        let b = GeoPoint::new(55.61, -4.50);
        assert!((haversine_km(a, b) - haversine_km(b, a)).abs() < 1e-9);
    }

    #[test]
    fn skye_to_kilmarnock_far() {
        // Portree to Kilmarnock is roughly 230 km as the crow flies.
        let portree = GeoPoint::new(57.4125, -6.1946);
        let kilmarnock = GeoPoint::new(55.6117, -4.4957);
        let d = haversine_km(portree, kilmarnock);
        assert!(d > 200.0 && d < 260.0, "got {d}");
        assert_eq!(distance_similarity(portree, kilmarnock, 25.0), 0.0);
    }

    #[test]
    fn one_degree_latitude_is_about_111km() {
        let a = GeoPoint::new(57.0, -6.0);
        let b = GeoPoint::new(58.0, -6.0);
        let d = haversine_km(a, b);
        assert!((d - 111.19).abs() < 1.0, "got {d}");
    }

    #[test]
    #[should_panic(expected = "latitude out of range")]
    fn bad_latitude_panics() {
        let _ = GeoPoint::new(91.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "longitude out of range")]
    fn bad_longitude_panics() {
        let _ = GeoPoint::new(0.0, 181.0);
    }

    #[test]
    fn similarity_monotone_in_distance() {
        let base = GeoPoint::new(57.0, -6.0);
        let near = GeoPoint::new(57.05, -6.0);
        let far = GeoPoint::new(57.2, -6.0);
        assert!(distance_similarity(base, near, 25.0) > distance_similarity(base, far, 25.0));
    }
}
