//! q-gram (character n-gram) utilities and set-based similarities.
//!
//! SNAPS relies on bigrams (2-grams) in two places: the similarity-aware index
//! only pre-compares value pairs that *share at least one bigram* (paper §6),
//! and the Jaccard coefficient over token/bigram sets is the comparator used
//! for longer textual attributes such as occupations and causes of death
//! (paper §9, §10).

use std::collections::BTreeSet;

use crate::Similarity;

/// Extract the distinct q-grams of a string as a sorted set.
///
/// Strings shorter than `q` yield a single gram containing the whole string
/// (so `"a"` still participates in bigram-sharing checks). The empty string
/// yields the empty set. A `q` of zero is clamped to 1 (unigrams) so the
/// function stays total on the request path.
///
/// # Examples
///
/// ```
/// use snaps_strsim::qgram::qgrams;
/// let grams = qgrams("mary", 2);
/// assert!(grams.contains("ma") && grams.contains("ar") && grams.contains("ry"));
/// assert_eq!(grams.len(), 3);
/// ```
#[must_use]
pub fn qgrams(s: &str, q: usize) -> BTreeSet<String> {
    let q = q.max(1);
    let chars: Vec<char> = s.chars().collect();
    let mut set = BTreeSet::new();
    if chars.is_empty() {
        return set;
    }
    if chars.len() < q {
        set.insert(chars.iter().collect());
        return set;
    }
    for w in chars.windows(q) {
        set.insert(w.iter().collect());
    }
    set
}

/// Distinct bigrams of a string; shorthand for [`qgrams`]`(s, 2)`.
#[must_use]
pub fn bigrams(s: &str) -> BTreeSet<String> {
    qgrams(s, 2)
}

/// Whether two strings share at least one bigram.
///
/// This is the candidate filter of the similarity-aware index: values that
/// share no bigram are guaranteed to be dissimilar enough that the index
/// never needs their pairwise similarity.
#[must_use]
pub fn share_bigram(a: &str, b: &str) -> bool {
    let ga = bigrams(a);
    if ga.is_empty() {
        return false;
    }
    let gb = bigrams(b);
    ga.intersection(&gb).next().is_some()
}

/// Jaccard coefficient between two sets: `|A ∩ B| / |A ∪ B|`.
///
/// Two empty sets are considered identical (`1.0`).
#[must_use]
pub(crate) fn jaccard<T: Ord>(a: &BTreeSet<T>, b: &BTreeSet<T>) -> Similarity {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Jaccard coefficient over the bigram sets of two strings.
///
/// The comparator SNAPS uses for "other textual strings" (occupations,
/// un-geocoded addresses, causes of death).
///
/// # Examples
///
/// ```
/// use snaps_strsim::qgram::bigram_jaccard;
/// assert_eq!(bigram_jaccard("crofter", "crofter"), 1.0);
/// assert!(bigram_jaccard("crofter", "crofters") > 0.7);
/// assert_eq!(bigram_jaccard("ab", "cd"), 0.0);
/// ```
#[must_use]
pub fn bigram_jaccard(a: &str, b: &str) -> Similarity {
    jaccard(&bigrams(a), &bigrams(b))
}

/// Jaccard coefficient over whitespace-separated token sets.
///
/// Used for multi-word values (e.g. cause-of-death strings) where word
/// overlap matters more than character overlap.
#[must_use]
pub fn token_jaccard(a: &str, b: &str) -> Similarity {
    let ta: BTreeSet<&str> = a.split_whitespace().collect();
    let tb: BTreeSet<&str> = b.split_whitespace().collect();
    jaccard(&ta, &tb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qgrams_basic() {
        let g = qgrams("abcd", 2);
        assert_eq!(
            g.into_iter().collect::<Vec<_>>(),
            vec!["ab".to_string(), "bc".to_string(), "cd".to_string()]
        );
    }

    #[test]
    fn qgrams_short_string_whole() {
        let g = qgrams("a", 2);
        assert_eq!(g.len(), 1);
        assert!(g.contains("a"));
    }

    #[test]
    fn qgrams_empty() {
        assert!(qgrams("", 2).is_empty());
        assert!(qgrams("", 3).is_empty());
    }

    #[test]
    fn qgrams_dedup_repeats() {
        // "aaaa" has a single distinct bigram "aa".
        assert_eq!(qgrams("aaaa", 2).len(), 1);
    }

    #[test]
    fn qgrams_zero_clamps_to_unigrams() {
        assert_eq!(qgrams("abc", 0), qgrams("abc", 1));
        assert_eq!(qgrams("abc", 1).len(), 3);
    }

    #[test]
    fn trigram_extraction() {
        let g = qgrams("abcd", 3);
        assert_eq!(g.len(), 2);
        assert!(g.contains("abc") && g.contains("bcd"));
    }

    #[test]
    fn share_bigram_cases() {
        assert!(share_bigram("mary", "maria"));
        assert!(!share_bigram("ann", "xy"));
        assert!(!share_bigram("", "mary"));
        assert!(!share_bigram("", ""));
    }

    #[test]
    fn jaccard_identical_and_disjoint() {
        assert_eq!(bigram_jaccard("smith", "smith"), 1.0);
        assert_eq!(bigram_jaccard("ab", "cd"), 0.0);
        assert_eq!(bigram_jaccard("", ""), 1.0);
    }

    #[test]
    fn jaccard_partial() {
        // bigrams(night)={ni,ig,gh,ht}, bigrams(nacht)={na,ac,ch,ht}; inter={ht}.
        assert!((bigram_jaccard("night", "nacht") - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn token_jaccard_multiword() {
        assert_eq!(token_jaccard("old age", "old age"), 1.0);
        assert!((token_jaccard("heart failure", "heart disease") - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_symmetric() {
        for (a, b) in [("crofter", "weaver"), ("mary ann", "ann mary")] {
            assert_eq!(bigram_jaccard(a, b), bigram_jaccard(b, a));
            assert_eq!(token_jaccard(a, b), token_jaccard(b, a));
        }
    }
}
