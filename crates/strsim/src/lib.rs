//! String, numeric, and geographic similarity functions for entity resolution.
//!
//! This crate implements, from scratch, every comparison function the SNAPS
//! paper (EDBT 2022) relies on:
//!
//! * [`jaro()`] and [`jaro_winkler()`] — the standard approximate name comparators
//!   used for first names and surnames (paper §4.1, §6, §10),
//! * [`levenshtein()`] edit distance and its normalised similarity
//!   [`levenshtein_similarity`] (paper §4.1),
//! * q-gram utilities ([`qgram`]) including bigram extraction and the
//!   [`qgram::jaccard`] coefficient used for occupations, addresses and
//!   causes of death (paper §9, §10),
//! * [`numeric::max_abs_diff_similarity`] for year comparisons (paper §10),
//! * [`geo`] — haversine distance and distance-based address similarity used
//!   for the geocoded Isle-of-Skye addresses (paper §10).
//!
//! All similarity functions return values in `[0, 1]`, where `1.0` means the
//! inputs are identical and `0.0` means they are maximally different. Inputs
//! are compared as Unicode scalar values; callers that want case-insensitive
//! behaviour should normalise first with [`normalize::normalize_name`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod geo;
pub mod jaro;
pub mod levenshtein;
pub mod normalize;
pub mod numeric;
pub mod qgram;
pub mod variants;

pub use jaro::{jaro, jaro_winkler};
pub use levenshtein::{levenshtein, levenshtein_similarity};

/// A similarity score in `[0, 1]`.
///
/// Plain `f64` newtype-free alias: scores flow through hot loops and arithmetic
/// constantly, so we keep them as primitive floats and document the invariant
/// instead of wrapping.
pub type Similarity = f64;

/// Clamp a raw score into the valid similarity range `[0, 1]`.
///
/// Useful when combining scores arithmetically where floating-point error can
/// push a value marginally outside the range.
#[inline]
#[must_use]
#[cfg(test)]
pub(crate) fn clamp01(s: f64) -> Similarity {
    s.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp01_bounds() {
        assert_eq!(clamp01(-0.5), 0.0);
        assert_eq!(clamp01(1.5), 1.0);
        assert_eq!(clamp01(0.3), 0.3);
    }
}
