//! Numeric comparison functions.
//!
//! SNAPS compares numeric attributes (years of events) with the
//! maximum-absolute-difference method (paper §10): two values are fully
//! similar when equal and their similarity decays linearly to zero at a
//! caller-chosen maximum tolerated difference.

use crate::Similarity;

/// Maximum-absolute-difference similarity.
///
/// ```text
/// sim(a, b) = max(0, 1 - |a - b| / max_diff)
/// ```
///
/// `max_diff` must be positive. A difference of zero gives `1.0`; differences
/// of `max_diff` or more give `0.0`.
///
/// # Examples
///
/// ```
/// use snaps_strsim::numeric::max_abs_diff_similarity;
/// assert_eq!(max_abs_diff_similarity(1861.0, 1861.0, 3.0), 1.0);
/// assert_eq!(max_abs_diff_similarity(1861.0, 1864.0, 3.0), 0.0);
/// assert!((max_abs_diff_similarity(1861.0, 1862.0, 4.0) - 0.75).abs() < 1e-12);
/// ```
#[must_use]
pub fn max_abs_diff_similarity(a: f64, b: f64, max_diff: f64) -> Similarity {
    assert!(max_diff > 0.0, "max_diff must be positive");
    let d = (a - b).abs();
    (1.0 - d / max_diff).max(0.0)
}

/// Year similarity with the tolerance SNAPS uses for event years.
///
/// Historical certificates frequently mis-state ages/years by a year or two;
/// a ±3-year linear window is the conventional setting for vital records.
#[must_use]
// snaps-lint: allow(dead-pub) -- paper-named attribute similarity (±3-year window), kept as public API
pub fn year_similarity(a: i32, b: i32) -> Similarity {
    max_abs_diff_similarity(f64::from(a), f64::from(b), 3.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match() {
        assert_eq!(max_abs_diff_similarity(5.0, 5.0, 2.0), 1.0);
        assert_eq!(year_similarity(1880, 1880), 1.0);
    }

    #[test]
    fn linear_decay() {
        assert!((max_abs_diff_similarity(0.0, 1.0, 4.0) - 0.75).abs() < 1e-12);
        assert!((max_abs_diff_similarity(0.0, 2.0, 4.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clamps_to_zero() {
        assert_eq!(max_abs_diff_similarity(0.0, 100.0, 4.0), 0.0);
        assert_eq!(year_similarity(1850, 1900), 0.0);
    }

    #[test]
    fn symmetric() {
        assert_eq!(year_similarity(1861, 1863), year_similarity(1863, 1861));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_max_diff_panics() {
        let _ = max_abs_diff_similarity(1.0, 2.0, 0.0);
    }

    #[test]
    fn year_similarity_one_year_off() {
        assert!((year_similarity(1880, 1881) - (1.0 - 1.0 / 3.0)).abs() < 1e-12);
    }
}
