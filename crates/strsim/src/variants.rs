//! Known name-variant dictionaries and the variant-aware name comparator.
//!
//! Historical record linkage conventionally *standardises* personal names
//! before comparison: `peggy` is a written form of `margaret`, `jock` of
//! `john`, `mcleod` of `macleod`. A pure string comparator scores such pairs
//! very low even though any domain expert links them instantly. The tables
//! here hold the period's common diminutives, Gaelic/English doublets, and
//! surname spelling alternates; [`first_name_similarity`] blends dictionary
//! knowledge with Jaro-Winkler.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use crate::jaro_winkler;
use crate::Similarity;

/// Written variants of the same spoken first name (diminutives and
/// Gaelic/English forms). Each group lists interchangeable forms.
pub const FIRST_NAME_VARIANTS: &[&[&str]] = &[
    &["margaret", "maggie", "peggy"],
    &["catherine", "kate", "katie", "catharine"],
    &["christina", "cirsty", "kirsty", "christy"],
    &["isabella", "bella", "isobel"],
    &["elizabeth", "betsy", "eliza"],
    &["mary", "mairi", "may"],
    &["janet", "jessie", "jenny"],
    &["ann", "anne", "annie"],
    &["john", "iain", "jock"],
    &["donald", "daniel", "domhnall"],
    &["alexander", "alex", "sandy", "alastair"],
    &["norman", "tormod"],
    &["roderick", "ruairidh", "rory"],
    &["malcolm", "calum"],
    &["william", "willie", "uilleam"],
];

/// Surname spelling alternates of the transcription era.
pub const SURNAME_VARIANTS: &[&[&str]] = &[
    &["macdonald", "mcdonald", "macdonell"],
    &["macleod", "mcleod", "m'leod"],
    &["mackinnon", "mckinnon"],
    &["maclean", "mclean", "maclaine"],
    &["mackenzie", "mckenzie", "m'kenzie"],
    &["macpherson", "mcpherson"],
    &["macrae", "mcrae", "macrath"],
    &["nicolson", "nicholson"],
    &["matheson", "mathieson"],
    &["thomson", "thompson"],
    &["paterson", "patterson"],
    &["johnston", "johnstone"],
    &["reid", "reed"],
    &["taylor", "tayler"],
    &["smith", "smyth"],
];

/// Similarity assigned to two distinct written forms of the same name.
pub(crate) const VARIANT_SIMILARITY: Similarity = 0.95;

fn group_index(tables: &'static [&'static [&'static str]]) -> BTreeMap<&'static str, usize> {
    let mut map = BTreeMap::new();
    for (g, group) in tables.iter().enumerate() {
        for &name in *group {
            map.insert(name, g);
        }
    }
    map
}

fn first_name_groups() -> &'static BTreeMap<&'static str, usize> {
    static CELL: OnceLock<BTreeMap<&'static str, usize>> = OnceLock::new();
    CELL.get_or_init(|| group_index(FIRST_NAME_VARIANTS))
}

fn surname_groups() -> &'static BTreeMap<&'static str, usize> {
    static CELL: OnceLock<BTreeMap<&'static str, usize>> = OnceLock::new();
    CELL.get_or_init(|| group_index(SURNAME_VARIANTS))
}

/// Whether two first names are known written forms of the same name.
#[must_use]
pub(crate) fn same_first_name_group(a: &str, b: &str) -> bool {
    let groups = first_name_groups();
    matches!((groups.get(a), groups.get(b)), (Some(x), Some(y)) if x == y)
}

/// Whether two surnames are known spelling alternates.
#[must_use]
pub(crate) fn same_surname_group(a: &str, b: &str) -> bool {
    let groups = surname_groups();
    matches!((groups.get(a), groups.get(b)), (Some(x), Some(y)) if x == y)
}

/// Variant-aware first-name similarity: Jaro-Winkler, floored at
/// [`VARIANT_SIMILARITY`] for known variants of the same name.
///
/// # Examples
///
/// ```
/// use snaps_strsim::variants::first_name_similarity;
/// assert!(first_name_similarity("jock", "john") >= 0.95);
/// assert_eq!(first_name_similarity("mary", "mary"), 1.0);
/// assert!(first_name_similarity("mary", "flora") < 0.6);
/// ```
#[must_use]
pub fn first_name_similarity(a: &str, b: &str) -> Similarity {
    let jw = jaro_winkler(a, b);
    if jw < 1.0 && same_first_name_group(a, b) {
        jw.max(VARIANT_SIMILARITY)
    } else {
        jw
    }
}

/// Variant-aware surname similarity; see [`first_name_similarity`].
#[must_use]
pub fn surname_similarity(a: &str, b: &str) -> Similarity {
    let jw = jaro_winkler(a, b);
    if jw < 1.0 && same_surname_group(a, b) {
        jw.max(VARIANT_SIMILARITY)
    } else {
        jw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diminutives_score_high() {
        assert!(first_name_similarity("peggy", "margaret") >= 0.95);
        assert!(first_name_similarity("jessie", "janet") >= 0.95);
        assert!(first_name_similarity("jock", "iain") >= 0.95, "both forms of john");
    }

    #[test]
    fn identical_names_score_one() {
        assert_eq!(first_name_similarity("mary", "mary"), 1.0);
        assert_eq!(surname_similarity("macleod", "macleod"), 1.0);
    }

    #[test]
    fn unknown_names_fall_back_to_jw() {
        use crate::jaro_winkler;
        assert_eq!(first_name_similarity("zebedee", "zachary"), jaro_winkler("zebedee", "zachary"));
    }

    #[test]
    fn different_groups_not_boosted() {
        assert!(first_name_similarity("mary", "margaret") < 0.95);
        assert!(surname_similarity("macdonald", "macleod") < 0.9);
    }

    #[test]
    fn surname_alternates() {
        assert!(surname_similarity("m'leod", "macleod") >= 0.95);
        assert!(surname_similarity("reid", "reed") >= 0.95);
    }

    #[test]
    fn group_membership() {
        assert!(same_first_name_group("kate", "catharine"));
        assert!(!same_first_name_group("kate", "mary"));
        assert!(!same_first_name_group("kate", "unknownname"));
        assert!(same_surname_group("smyth", "smith"));
    }

    #[test]
    fn symmetric() {
        assert_eq!(first_name_similarity("jock", "john"), first_name_similarity("john", "jock"));
    }
}
