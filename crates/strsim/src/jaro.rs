//! Jaro and Jaro-Winkler approximate string comparison.
//!
//! These are the comparators recommended for personal names in the record
//! linkage literature and the ones SNAPS uses for first names and surnames,
//! both during dependency-graph construction (atomic node similarities,
//! paper §4.1) and inside the similarity-aware index (paper §6).

use crate::Similarity;

/// Jaro similarity between two strings.
///
/// The Jaro similarity counts characters that match within a sliding window of
/// half the longer string's length and discounts transpositions:
///
/// ```text
/// jaro = (m/|a| + m/|b| + (m - t)/m) / 3
/// ```
///
/// where `m` is the number of matching characters and `t` the number of
/// transpositions (half the number of matched characters appearing in a
/// different order).
///
/// Returns `1.0` for two empty strings (identical), `0.0` when exactly one is
/// empty or no characters match.
///
/// # Examples
///
/// ```
/// use snaps_strsim::jaro;
/// assert_eq!(jaro("martha", "martha"), 1.0);
/// assert!(jaro("martha", "marhta") > 0.94);
/// assert_eq!(jaro("abc", "xyz"), 0.0);
/// ```
#[must_use]
pub fn jaro(a: &str, b: &str) -> Similarity {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    jaro_chars(&a, &b)
}

/// Jaro similarity over pre-collected character slices.
///
/// Exposed so that batch comparison loops (e.g. the similarity-aware index
/// build) can decode each string once and reuse the buffers.
#[must_use]
pub(crate) fn jaro_chars(a: &[char], b: &[char]) -> Similarity {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let max_len = a.len().max(b.len());
    // Matching window: characters count as matching if they are equal and no
    // further than floor(max_len / 2) - 1 positions apart.
    let window = (max_len / 2).saturating_sub(1);

    let mut a_matched = vec![false; a.len()];
    let mut b_matched = vec![false; b.len()];
    let mut matches = 0usize;

    for (i, (&ca, am)) in a.iter().zip(a_matched.iter_mut()).enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for (&cb, bm) in b.iter().zip(b_matched.iter_mut()).take(hi).skip(lo) {
            if !*bm && cb == ca {
                *am = true;
                *bm = true;
                matches += 1;
                break;
            }
        }
    }

    if matches == 0 {
        return 0.0;
    }

    // Count transpositions: walk the matched characters of both strings in
    // order and count positions where they differ.
    let a_seq = a.iter().zip(&a_matched).filter(|&(_, &m)| m).map(|(&c, _)| c);
    let b_seq = b.iter().zip(&b_matched).filter(|&(_, &m)| m).map(|(&c, _)| c);
    let transpositions = a_seq.zip(b_seq).filter(|&(ca, cb)| ca != cb).count();
    let t = transpositions as f64 / 2.0;
    let m = matches as f64;

    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Standard Winkler prefix scaling factor.
pub(crate) const WINKLER_PREFIX_SCALE: f64 = 0.1;

/// Maximum shared-prefix length the Winkler adjustment rewards.
pub(crate) const WINKLER_MAX_PREFIX: usize = 4;

/// Jaro-Winkler similarity between two strings.
///
/// Boosts the plain [`jaro`] score for strings sharing a common prefix of up
/// to four characters — personal names that differ only towards the end (as
/// with transcription errors such as `Tayler`/`Taylor`) score higher:
///
/// ```text
/// jw = jaro + ℓ · p · (1 - jaro),   ℓ = shared prefix length ≤ 4, p = 0.1
/// ```
///
/// # Examples
///
/// ```
/// use snaps_strsim::{jaro, jaro_winkler};
/// assert!(jaro_winkler("tayler", "taylor") > jaro("tayler", "taylor"));
/// assert_eq!(jaro_winkler("smith", "smith"), 1.0);
/// ```
#[must_use]
pub fn jaro_winkler(a: &str, b: &str) -> Similarity {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    jaro_winkler_chars(&a, &b)
}

/// Jaro-Winkler over pre-collected character slices; see [`jaro_winkler`].
#[must_use]
pub(crate) fn jaro_winkler_chars(a: &[char], b: &[char]) -> Similarity {
    let j = jaro_chars(a, b);
    let prefix =
        a.iter().zip(b.iter()).take(WINKLER_MAX_PREFIX).take_while(|(x, y)| x == y).count();
    j + prefix as f64 * WINKLER_PREFIX_SCALE * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn identical_strings() {
        assert_eq!(jaro("kilmarnock", "kilmarnock"), 1.0);
        assert_eq!(jaro_winkler("kilmarnock", "kilmarnock"), 1.0);
    }

    #[test]
    fn both_empty_is_identical() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro_winkler("", ""), 1.0);
    }

    #[test]
    fn one_empty_is_zero() {
        assert_eq!(jaro("", "mary"), 0.0);
        assert_eq!(jaro("mary", ""), 0.0);
    }

    #[test]
    fn textbook_martha_marhta() {
        // Classic worked example: m = 6, t = 1 → (1 + 1 + 5/6) / 3.
        approx(jaro("martha", "marhta"), (1.0 + 1.0 + 5.0 / 6.0) / 3.0);
    }

    #[test]
    fn textbook_dixon_dicksonx() {
        // m = 4, t = 0: (4/5 + 4/8 + 1) / 3.
        approx(jaro("dixon", "dicksonx"), (4.0 / 5.0 + 4.0 / 8.0 + 1.0) / 3.0);
    }

    #[test]
    fn textbook_jaro_winkler_dwayne_duane() {
        // jaro(dwayne, duane) = (4/6 + 4/5 + 1)/3 = 0.82222…; prefix ℓ = 1.
        let j = (4.0 / 6.0 + 4.0 / 5.0 + 1.0) / 3.0;
        approx(jaro_winkler("dwayne", "duane"), j + 0.1 * (1.0 - j));
    }

    #[test]
    fn completely_different_is_zero() {
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro_winkler("abc", "xyz"), 0.0);
    }

    #[test]
    fn symmetric() {
        for (a, b) in [("tayler", "taylor"), ("mcdonald", "macdonald"), ("a", "ab")] {
            approx(jaro(a, b), jaro(b, a));
            approx(jaro_winkler(a, b), jaro_winkler(b, a));
        }
    }

    #[test]
    fn winkler_prefix_capped_at_four() {
        // Shared prefix of 6, but only 4 should count.
        let j = jaro("abcdefgh", "abcdefxy");
        let jw = jaro_winkler("abcdefgh", "abcdefxy");
        approx(jw, j + 4.0 * 0.1 * (1.0 - j));
    }

    #[test]
    fn unicode_names() {
        assert_eq!(jaro("mòrag", "mòrag"), 1.0);
        assert!(jaro_winkler("mòrag", "morag") > 0.8);
    }

    #[test]
    fn winkler_never_below_jaro() {
        for (a, b) in [("smith", "smyth"), ("jon", "john"), ("x", "y")] {
            assert!(jaro_winkler(a, b) >= jaro(a, b));
        }
    }
}
