//! Input normalisation for historical vital-records strings.
//!
//! Transcribed 19th-century certificates mix cases, stray punctuation, and
//! uneven whitespace. All SNAPS comparisons and indices operate on the
//! normalised form produced here, matching the conventional pre-processing
//! step of record-linkage pipelines.

/// Normalise a name or other short textual value:
/// lowercase, strip everything but letters/digits/space/hyphen/apostrophe,
/// collapse runs of whitespace, trim.
///
/// # Examples
///
/// ```
/// use snaps_strsim::normalize::normalize_name;
/// assert_eq!(normalize_name("  MacDonald,  "), "macdonald");
/// assert_eq!(normalize_name("Mary-Ann  O'Neil"), "mary-ann o'neil");
/// assert_eq!(normalize_name("J.  Smith"), "j smith");
/// ```
#[must_use]
pub fn normalize_name(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true; // suppress leading whitespace
    for c in s.chars() {
        let c = c.to_lowercase().next().unwrap_or(c);
        if c.is_alphanumeric() || c == '-' || c == '\'' {
            out.push(c);
            last_space = false;
        } else if (c.is_whitespace() || c == '.' || c == ',') && !last_space {
            out.push(' ');
            last_space = true;
        }
        // any other punctuation is dropped entirely
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Whether a raw attribute value should be treated as missing.
///
/// Historical transcriptions mark unknown values in several ways; all of the
/// conventional markers map to "missing".
#[must_use]
#[cfg(test)]
pub(crate) fn is_missing(s: &str) -> bool {
    let n = normalize_name(s);
    n.is_empty() || matches!(n.as_str(), "unknown" | "not known" | "n k" | "nk" | "-" | "illegible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_trims() {
        assert_eq!(normalize_name("  SMITH  "), "smith");
    }

    #[test]
    fn collapses_internal_whitespace() {
        assert_eq!(normalize_name("mary   ann"), "mary ann");
    }

    #[test]
    fn keeps_hyphen_and_apostrophe() {
        assert_eq!(normalize_name("O'Brien-Stuart"), "o'brien-stuart");
    }

    #[test]
    fn strips_punctuation() {
        assert_eq!(normalize_name("smith; (farmer)!"), "smith farmer");
    }

    #[test]
    fn dots_and_commas_become_spaces() {
        assert_eq!(normalize_name("J.Smith"), "j smith");
        assert_eq!(normalize_name("Portree,Skye"), "portree skye");
    }

    #[test]
    fn empty_and_punct_only() {
        assert_eq!(normalize_name(""), "");
        assert_eq!(normalize_name("!!!"), "");
    }

    #[test]
    fn missing_markers() {
        assert!(is_missing(""));
        assert!(is_missing("  "));
        assert!(is_missing("Unknown"));
        assert!(is_missing("NOT KNOWN"));
        assert!(is_missing("N.K."));
        assert!(!is_missing("Mary"));
    }
}
