//! Levenshtein edit distance and its normalised similarity.
//!
//! SNAPS uses edit distance as one of the approximate string comparators for
//! atomic-node similarities (paper §4.1). The normalised form maps the raw
//! distance into `[0, 1]` by dividing by the longer string's length.

use crate::Similarity;

/// Levenshtein (edit) distance: the minimum number of single-character
/// insertions, deletions, and substitutions turning `a` into `b`.
///
/// Runs in `O(|a| · |b|)` time and `O(min(|a|, |b|))` space using the
/// classic two-row dynamic programme.
///
/// # Examples
///
/// ```
/// use snaps_strsim::levenshtein;
/// assert_eq!(levenshtein("kitten", "sitting"), 3);
/// assert_eq!(levenshtein("", "abc"), 3);
/// assert_eq!(levenshtein("same", "same"), 0);
/// ```
#[must_use]
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    levenshtein_chars(&a, &b)
}

/// Edit distance over pre-collected character slices; see [`levenshtein`].
#[must_use]
pub(crate) fn levenshtein_chars(a: &[char], b: &[char]) -> usize {
    // Keep the shorter string as the row to minimise memory.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }

    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur: Vec<usize> = vec![0; short.len() + 1];

    for (i, &cl) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cs) in short.iter().enumerate() {
            let cost = usize::from(cl != cs);
            cur[j + 1] = (prev[j] + cost) // substitution
                .min(prev[j + 1] + 1) // deletion
                .min(cur[j] + 1); // insertion
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Normalised edit similarity: `1 - d / max(|a|, |b|)`.
///
/// Two empty strings are identical (`1.0`).
///
/// # Examples
///
/// ```
/// use snaps_strsim::levenshtein_similarity;
/// assert_eq!(levenshtein_similarity("smith", "smith"), 1.0);
/// assert_eq!(levenshtein_similarity("ab", "cd"), 0.0);
/// ```
#[must_use]
pub fn levenshtein_similarity(a: &str, b: &str) -> Similarity {
    let ca: Vec<char> = a.chars().collect();
    let cb: Vec<char> = b.chars().collect();
    let max_len = ca.len().max(cb.len());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein_chars(&ca, &cb) as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_kitten_sitting() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("", "abcd"), 4);
        assert_eq!(levenshtein("abcd", ""), 4);
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("", "ab"), 0.0);
    }

    #[test]
    fn single_substitution() {
        assert_eq!(levenshtein("tayler", "taylor"), 1);
        assert!((levenshtein_similarity("tayler", "taylor") - (1.0 - 1.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        for (a, b) in [("flaw", "lawn"), ("gumbo", "gambol"), ("a", "")] {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }

    #[test]
    fn triangle_inequality_spot_check() {
        let (a, b, c) = ("smith", "smyth", "smythe");
        assert!(levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c));
    }

    #[test]
    fn unicode_counts_scalars_not_bytes() {
        // 'ò' is two bytes in UTF-8 but one scalar.
        assert_eq!(levenshtein("mòrag", "morag"), 1);
    }

    #[test]
    fn similarity_in_unit_range() {
        for (a, b) in [("abcdef", "xyz"), ("", "x"), ("aaa", "aaa")] {
            let s = levenshtein_similarity(a, b);
            assert!((0.0..=1.0).contains(&s));
        }
    }
}
