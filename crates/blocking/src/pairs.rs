//! Candidate-pair generation with role/gender compatibility filtering.
//!
//! After LSH bucketing, record pairs inside each block are emitted only when
//! they could possibly co-refer: the paper "first filters record pairs of
//! impossible role types, such as pairs with different genders" (§4.1).

use std::collections::BTreeSet;

use snaps_model::{Dataset, PersonRecord, RecordId, Role};

use crate::minhash::{LshBlocker, LshConfig};

/// An unordered candidate pair `(min, max)`.
pub type RecordPair = (RecordId, RecordId);

/// Whether two roles could ever belong to one individual.
///
/// A person has exactly one birth and one death, so two `Bb` records (or two
/// `Dd` records) can never co-refer. Roles whose implied genders conflict
/// (e.g. `Bm` and `Bf`) are impossible too. Everything else is allowed —
/// including `Mb`-`Mb` (remarriage) and `Bm`-`Bm` (several children).
#[must_use]
pub fn plausible_role_pair(a: Role, b: Role) -> bool {
    if (a == Role::BirthBaby && b == Role::BirthBaby)
        || (a == Role::DeathDeceased && b == Role::DeathDeceased)
    {
        return false;
    }
    match (a.implied_gender(), b.implied_gender()) {
        (Some(ga), Some(gb)) => ga == gb,
        _ => true,
    }
}

/// Whether two *records* pass the cheap compatibility pre-filter:
/// different certificates, plausible roles, compatible recorded genders,
/// and (when both known) birth-year estimates within `year_tolerance`.
#[must_use]
pub fn compatible_records(a: &PersonRecord, b: &PersonRecord, year_tolerance: i32) -> bool {
    if a.certificate == b.certificate {
        return false;
    }
    if !plausible_role_pair(a.role, b.role) {
        return false;
    }
    if !a.gender.compatible(b.gender) {
        return false;
    }
    if let (Some(ya), Some(yb)) = (a.estimated_birth_year(), b.estimated_birth_year()) {
        if (ya - yb).abs() > year_tolerance {
            return false;
        }
    }
    true
}

/// Generate the deduplicated candidate pair set of a dataset using LSH
/// blocking followed by the compatibility pre-filter.
///
/// `year_tolerance` bounds how far apart two birth-year estimates may be
/// (ages on historical certificates are unreliable; ±10 years is generous
/// without admitting whole-population cross products).
#[must_use]
pub fn candidate_pairs(ds: &Dataset, cfg: LshConfig, year_tolerance: i32) -> Vec<RecordPair> {
    let blocker = LshBlocker::new(cfg);
    let mut pairs: BTreeSet<RecordPair> = BTreeSet::new();
    for block in blocker.blocks(ds) {
        for (i, &ra) in block.iter().enumerate() {
            for &rb in &block[i + 1..] {
                let (a, b) = (ds.record(ra), ds.record(rb));
                if compatible_records(a, b, year_tolerance) {
                    pairs.insert((ra.min(rb), ra.max(rb)));
                }
            }
        }
    }
    pairs.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaps_model::{CertificateKind, Gender};

    #[test]
    fn impossible_principal_pairs() {
        assert!(!plausible_role_pair(Role::BirthBaby, Role::BirthBaby));
        assert!(!plausible_role_pair(Role::DeathDeceased, Role::DeathDeceased));
        assert!(plausible_role_pair(Role::BirthBaby, Role::DeathDeceased));
        assert!(plausible_role_pair(Role::MarriageBride, Role::MarriageBride));
    }

    #[test]
    fn gender_conflicts() {
        assert!(!plausible_role_pair(Role::BirthMother, Role::BirthFather));
        assert!(!plausible_role_pair(Role::MarriageBride, Role::MarriageGroom));
        assert!(plausible_role_pair(Role::BirthMother, Role::DeathMother));
        assert!(plausible_role_pair(Role::BirthBaby, Role::BirthMother));
    }

    fn two_record_ds(role_a: Role, gender_a: Gender, role_b: Role, gender_b: Gender) -> Dataset {
        let mut ds = Dataset::new("t");
        let kind = |r: Role| r.certificate_kind();
        let c1 = ds.push_certificate(kind(role_a), 1880);
        ds.push_record(c1, role_a, gender_a);
        let c2 = ds.push_certificate(kind(role_b), 1890);
        ds.push_record(c2, role_b, gender_b);
        ds
    }

    #[test]
    fn same_certificate_never_compatible() {
        let mut ds = Dataset::new("t");
        let c = ds.push_certificate(CertificateKind::Birth, 1880);
        ds.push_record(c, Role::BirthBaby, Gender::Female);
        ds.push_record(c, Role::BirthMother, Gender::Female);
        assert!(!compatible_records(&ds.records[0], &ds.records[1], 10));
    }

    #[test]
    fn recorded_gender_conflict_filtered() {
        let ds = two_record_ds(Role::BirthBaby, Gender::Male, Role::DeathDeceased, Gender::Female);
        assert!(!compatible_records(&ds.records[0], &ds.records[1], 10));
    }

    #[test]
    fn year_tolerance() {
        let mut ds =
            two_record_ds(Role::BirthBaby, Gender::Male, Role::DeathDeceased, Gender::Male);
        // Baby born 1880; deceased aged 60 in 1890 → born 1830: 50 years apart.
        ds.record_mut(RecordId(1)).age = Some(60);
        assert!(!compatible_records(&ds.records[0], &ds.records[1], 10));
        // Deceased aged 8 in 1890 → born 1882: 2 years apart.
        ds.record_mut(RecordId(1)).age = Some(8);
        assert!(compatible_records(&ds.records[0], &ds.records[1], 10));
    }

    #[test]
    fn candidate_pairs_end_to_end() {
        let mut ds = Dataset::new("t");
        let c1 = ds.push_certificate(CertificateKind::Birth, 1880);
        let bb = ds.push_record(c1, Role::BirthBaby, Gender::Female);
        ds.record_mut(bb).first_name = Some("mary".into());
        ds.record_mut(bb).surname = Some("macleod".into());
        let c2 = ds.push_certificate(CertificateKind::Death, 1895);
        let dd = ds.push_record(c2, Role::DeathDeceased, Gender::Female);
        ds.record_mut(dd).first_name = Some("mary".into());
        ds.record_mut(dd).surname = Some("macleod".into());
        ds.record_mut(dd).age = Some(15);
        let c3 = ds.push_certificate(CertificateKind::Death, 1899);
        let other = ds.push_record(c3, Role::DeathDeceased, Gender::Male);
        ds.record_mut(other).first_name = Some("farquhar".into());
        ds.record_mut(other).surname = Some("tweedie".into());

        let pairs = candidate_pairs(&ds, LshConfig::default(), 10);
        assert_eq!(pairs, vec![(bb, dd)]);
    }

    #[test]
    fn empty_dataset_yields_no_pairs() {
        let ds = Dataset::new("t");
        assert!(candidate_pairs(&ds, LshConfig::default(), 10).is_empty());
    }
}
