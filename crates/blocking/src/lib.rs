//! Blocking: reducing the quadratic comparison space to candidate pairs.
//!
//! The paper blocks with locality-sensitive hashing: "a locality sensitive
//! hashing based blocking technique … that maps similar QID value pairs to
//! the same hash value to group likely matches" (§4.1, §10). This crate
//! implements that scheme from scratch:
//!
//! * [`minhash`] — MinHash signatures over name-bigram sets and banded LSH
//!   bucketing,
//! * [`soundex`] — the classic phonetic code, offered as a cheaper
//!   deterministic blocking alternative and used in tests as a recall oracle,
//! * [`pairs`] — candidate-pair generation with the role/gender
//!   compatibility pre-filter the paper applies before adding relational
//!   nodes ("we first filter record pairs of impossible role types, such as
//!   pairs with different genders").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod minhash;
pub mod pairs;
pub mod soundex;

pub use minhash::{LshBlocker, LshConfig};
pub use pairs::{candidate_pairs, compatible_records, plausible_role_pair};
