//! American Soundex phonetic encoding.
//!
//! A deterministic, cheap alternative blocking key: names that sound alike
//! (`taylor`/`tayler`, `macleod`/`mcleod` after prefix folding) map to the
//! same 4-character code. Used as a fallback blocker and as a recall oracle
//! in LSH tests.

/// Soundex digit for a letter, or `None` for vowels/h/w/y.
fn digit(c: char) -> Option<u8> {
    match c {
        'b' | 'f' | 'p' | 'v' => Some(1),
        'c' | 'g' | 'j' | 'k' | 'q' | 's' | 'x' | 'z' => Some(2),
        'd' | 't' => Some(3),
        'l' => Some(4),
        'm' | 'n' => Some(5),
        'r' => Some(6),
        _ => None,
    }
}

/// The classic 4-character Soundex code (`letter + 3 digits`) of a name.
///
/// Non-alphabetic characters are ignored; an empty or non-alphabetic input
/// returns `None`.
///
/// # Examples
///
/// ```
/// use snaps_blocking::soundex::soundex;
/// assert_eq!(soundex("robert"), Some("r163".to_string()));
/// assert_eq!(soundex("rupert"), Some("r163".to_string()));
/// assert_eq!(soundex("tayler"), soundex("taylor"));
/// assert_eq!(soundex(""), None);
/// ```
#[must_use]
pub fn soundex(name: &str) -> Option<String> {
    let letters: Vec<char> =
        name.chars().flat_map(char::to_lowercase).filter(|c| c.is_ascii_alphabetic()).collect();
    let &first = letters.first()?;

    let mut code = String::with_capacity(4);
    code.push(first);

    // `h` and `w` are transparent: consonants separated only by them still
    // merge. Vowels (and y) break runs.
    let mut last_digit = digit(first);
    for &c in &letters[1..] {
        match c {
            'h' | 'w' => continue,
            _ => {
                let d = digit(c);
                if let Some(d) = d {
                    if last_digit != Some(d) {
                        code.push(char::from(b'0' + d));
                        if code.len() == 4 {
                            break;
                        }
                    }
                }
                last_digit = d;
            }
        }
    }
    while code.len() < 4 {
        code.push('0');
    }
    Some(code)
}

/// Soundex with the `mac`/`mc` prefix folded away — Scottish surname pools
/// are dominated by the prefix, which otherwise collapses every `mac*` name
/// into a handful of codes.
#[must_use]
// snaps-lint: allow(dead-pub) -- paper-named blocking variant (§Blocking), kept as public API
pub fn scottish_soundex(name: &str) -> Option<String> {
    let stripped = name
        .strip_prefix("mac")
        .or_else(|| name.strip_prefix("mc"))
        .filter(|rest| rest.len() >= 3)
        .unwrap_or(name);
    soundex(stripped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_codes() {
        assert_eq!(soundex("robert").as_deref(), Some("r163"));
        assert_eq!(soundex("rupert").as_deref(), Some("r163"));
        assert_eq!(soundex("ashcraft").as_deref(), Some("a261"));
        assert_eq!(soundex("ashcroft").as_deref(), Some("a261"));
        assert_eq!(soundex("tymczak").as_deref(), Some("t522"));
        assert_eq!(soundex("pfister").as_deref(), Some("p236"));
    }

    #[test]
    fn padding_short_names() {
        assert_eq!(soundex("lee").as_deref(), Some("l000"));
        assert_eq!(soundex("ann").as_deref(), Some("a500"));
    }

    #[test]
    fn empty_and_nonalpha() {
        assert_eq!(soundex(""), None);
        assert_eq!(soundex("123"), None);
        assert_eq!(soundex("o'neil"), soundex("oneil"));
    }

    #[test]
    fn variants_collide() {
        assert_eq!(soundex("tayler"), soundex("taylor"));
        assert_eq!(soundex("smith"), soundex("smyth"));
        // Thompson (t512) and Thomson (t525) genuinely differ in Soundex:
        // the 'p' contributes a digit.
        assert_ne!(soundex("thomson"), soundex("thompson"));
    }

    #[test]
    fn scottish_prefix_folding() {
        assert_eq!(scottish_soundex("macdonald"), scottish_soundex("mcdonald"));
        assert_ne!(
            scottish_soundex("macdonald"),
            scottish_soundex("macleod"),
            "folding must keep distinct stems distinct"
        );
        // Short remainders are left alone ("mack" stays intact).
        assert_eq!(scottish_soundex("mack"), soundex("mack"));
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(soundex("Robert"), soundex("robert"));
    }
}
