//! MinHash signatures and banded locality-sensitive hashing.
//!
//! Each record's name string is shingled into character bigrams; a MinHash
//! signature approximates the Jaccard similarity between shingle sets, and
//! banding maps records into buckets such that similar records collide in at
//! least one band with high probability.

use std::collections::BTreeMap;

use snaps_model::{Dataset, PersonRecord, RecordId};
use snaps_strsim::qgram::qgrams;

/// Configuration of the LSH blocker.
#[derive(Debug, Clone, Copy)]
pub struct LshConfig {
    /// Total hash functions in each MinHash signature.
    pub num_hashes: usize,
    /// Number of bands (`num_hashes` must be divisible by this).
    pub bands: usize,
    /// Shingle length (2 = bigrams, the paper's choice).
    pub shingle_q: usize,
    /// Buckets larger than this are skipped when emitting pairs — the
    /// standard guard against frequency skew blowing up the pair count.
    pub max_block_size: usize,
}

impl Default for LshConfig {
    fn default() -> Self {
        // 64 hashes in 16 bands of 4 rows: collision probability ≈
        // 1-(1-s^4)^16, i.e. >0.95 for Jaccard s ≥ 0.55 — tuned for noisy
        // name pairs.
        Self { num_hashes: 64, bands: 16, shingle_q: 2, max_block_size: 4000 }
    }
}

/// SplitMix64 — a tiny, high-quality 64-bit mixer used to derive independent
/// hash functions from seed indices. Implemented here so blocking needs no
/// external hashing crate.
#[inline]
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hash a string with one of the derived hash functions.
#[inline]
fn hash_shingle(s: &str, seed: u64) -> u64 {
    let mut h = splitmix64(seed);
    for b in s.as_bytes() {
        h = splitmix64(h ^ u64::from(*b));
    }
    h
}

/// The blocking key text of a record: first name and surname, separated so
/// `("ann", "x")` and `("an", "nx")` cannot alias.
#[must_use]
pub(crate) fn blocking_text(r: &PersonRecord) -> String {
    match (&r.first_name, &r.surname) {
        (Some(f), Some(s)) => format!("{f}|{s}"),
        (Some(f), None) => f.clone(),
        (None, Some(s)) => s.clone(),
        (None, None) => String::new(),
    }
}

/// A banded-LSH blocker over a dataset.
#[derive(Debug)]
pub struct LshBlocker {
    cfg: LshConfig,
}

impl LshBlocker {
    /// Create a blocker.
    ///
    /// # Panics
    /// Panics if `num_hashes` is not divisible by `bands` or either is zero.
    #[must_use]
    pub fn new(cfg: LshConfig) -> Self {
        assert!(cfg.num_hashes > 0 && cfg.bands > 0, "hashes and bands must be positive");
        assert_eq!(cfg.num_hashes % cfg.bands, 0, "bands must divide num_hashes");
        Self { cfg }
    }

    /// MinHash signature of one record (empty-name records get `None`).
    #[must_use]
    pub(crate) fn signature(&self, r: &PersonRecord) -> Option<Vec<u64>> {
        let text = blocking_text(r);
        if text.is_empty() {
            return None;
        }
        let shingles = qgrams(&text, self.cfg.shingle_q);
        if shingles.is_empty() {
            return None;
        }
        let mut sig = vec![u64::MAX; self.cfg.num_hashes];
        for sh in &shingles {
            for (i, slot) in sig.iter_mut().enumerate() {
                let h = hash_shingle(sh, i as u64);
                if h < *slot {
                    *slot = h;
                }
            }
        }
        Some(sig)
    }

    /// Group records into LSH buckets: for each band, records whose band
    /// slice hashes equally land in one bucket. Returns the buckets (each a
    /// sorted list of record ids), deduplicated, larger than 1, and capped at
    /// `max_block_size`.
    #[must_use]
    pub fn blocks(&self, ds: &Dataset) -> Vec<Vec<RecordId>> {
        let rows = self.cfg.num_hashes / self.cfg.bands;
        let mut buckets: BTreeMap<(usize, u64), Vec<RecordId>> = BTreeMap::new();

        for r in &ds.records {
            let Some(sig) = self.signature(r) else { continue };
            for band in 0..self.cfg.bands {
                let slice = &sig[band * rows..(band + 1) * rows];
                let mut h = splitmix64(band as u64 ^ 0xabcd_ef01);
                for &v in slice {
                    h = splitmix64(h ^ v);
                }
                buckets.entry((band, h)).or_default().push(r.id);
            }
        }

        let mut blocks: Vec<Vec<RecordId>> = buckets
            .into_values()
            .filter(|b| b.len() > 1 && b.len() <= self.cfg.max_block_size)
            .collect();
        for b in &mut blocks {
            b.sort_unstable();
        }
        blocks.sort_unstable();
        blocks.dedup();
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaps_model::{CertificateKind, Gender, Role};

    fn ds_with_names(names: &[(&str, &str)]) -> Dataset {
        let mut ds = Dataset::new("t");
        for (f, s) in names {
            let c = ds.push_certificate(CertificateKind::Death, 1890);
            let r = ds.push_record(c, Role::DeathDeceased, Gender::Female);
            ds.record_mut(r).first_name = Some((*f).to_string());
            ds.record_mut(r).surname = Some((*s).to_string());
        }
        ds
    }

    #[test]
    fn identical_names_share_every_band() {
        let blocker = LshBlocker::new(LshConfig::default());
        let ds = ds_with_names(&[("mary", "macleod"), ("mary", "macleod")]);
        let sig0 = blocker.signature(&ds.records[0]).unwrap();
        let sig1 = blocker.signature(&ds.records[1]).unwrap();
        assert_eq!(sig0, sig1);
        let blocks = blocker.blocks(&ds);
        assert!(blocks.iter().any(|b| b.len() == 2));
    }

    #[test]
    fn similar_names_collide_somewhere() {
        let blocker = LshBlocker::new(LshConfig::default());
        let ds = ds_with_names(&[("mary", "macdonald"), ("mary", "mcdonald")]);
        let blocks = blocker.blocks(&ds);
        assert!(blocks.iter().any(|b| b.len() == 2), "near-duplicate names should share a bucket");
    }

    #[test]
    fn dissimilar_names_do_not_collide() {
        let blocker = LshBlocker::new(LshConfig::default());
        let ds = ds_with_names(&[("angus", "nicolson"), ("euphemia", "tweedie")]);
        let blocks = blocker.blocks(&ds);
        assert!(blocks.is_empty(), "{blocks:?}");
    }

    #[test]
    fn missing_names_are_skipped() {
        let mut ds = Dataset::new("t");
        let c = ds.push_certificate(CertificateKind::Death, 1890);
        ds.push_record(c, Role::DeathDeceased, Gender::Female);
        let blocker = LshBlocker::new(LshConfig::default());
        assert!(blocker.signature(&ds.records[0]).is_none());
        assert!(blocker.blocks(&ds).is_empty());
    }

    #[test]
    fn surname_only_still_blocks() {
        let blocker = LshBlocker::new(LshConfig::default());
        let mut ds = ds_with_names(&[("x", "macleod"), ("x", "macleod")]);
        ds.record_mut(RecordId(0)).first_name = None;
        ds.record_mut(RecordId(1)).first_name = None;
        assert!(blocker.signature(&ds.records[0]).is_some());
    }

    #[test]
    fn oversized_buckets_dropped() {
        let cfg = LshConfig { max_block_size: 3, ..LshConfig::default() };
        let blocker = LshBlocker::new(cfg);
        let names: Vec<(&str, &str)> = (0..10).map(|_| ("mary", "macleod")).collect();
        let ds = ds_with_names(&names);
        assert!(blocker.blocks(&ds).is_empty(), "10 identical records exceed cap 3");
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn invalid_banding_panics() {
        let _ = LshBlocker::new(LshConfig { num_hashes: 10, bands: 3, ..LshConfig::default() });
    }

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Avalanche spot-check: one flipped input bit changes many output bits.
        let d = (splitmix64(0) ^ splitmix64(1)).count_ones();
        assert!(d > 16, "poor mixing: {d} bits");
    }

    #[test]
    fn blocking_text_separator_prevents_aliasing() {
        let ds = ds_with_names(&[("ann", "x"), ("an", "nx")]);
        assert_ne!(blocking_text(&ds.records[0]), blocking_text(&ds.records[1]));
    }
}
