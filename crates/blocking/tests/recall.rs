//! Blocking recall against ground truth: LSH must retain the overwhelming
//! majority of true matching pairs while shrinking the comparison space.

use snaps_blocking::{candidate_pairs, LshConfig};
use snaps_datagen::{generate, DatasetProfile};
use snaps_model::RoleCategory;

#[test]
fn lsh_keeps_most_true_bp_bp_links_and_prunes_space() {
    let data = generate(&DatasetProfile::ios().scaled(0.08), 42);
    let ds = &data.dataset;
    let truth = &data.truth;

    let pairs = candidate_pairs(ds, LshConfig::default(), 12);
    let pair_set: std::collections::BTreeSet<_> = pairs.iter().copied().collect();

    let true_links = truth.true_links(ds, RoleCategory::BirthParent, RoleCategory::BirthParent);
    assert!(!true_links.is_empty(), "fixture must contain true links");

    let found = true_links.iter().filter(|p| pair_set.contains(p)).count();
    let recall = found as f64 / true_links.len() as f64;
    assert!(recall > 0.80, "blocking recall too low: {found}/{} = {recall:.3}", true_links.len());

    // The candidate space must be far below the full cross product.
    let n = ds.len() as f64;
    let full = n * (n - 1.0) / 2.0;
    // On this deliberately tiny, highly ambiguous fixture (a few hundred
    // records drawn from a small name pool) collisions are dense; on
    // full-profile data the ratio is far smaller.
    assert!(
        (pairs.len() as f64) < full * 0.10,
        "blocking barely prunes: {} of {full}",
        pairs.len()
    );
}

#[test]
fn candidate_pairs_are_sorted_unique_and_compatible() {
    let data = generate(&DatasetProfile::ios().scaled(0.04), 7);
    let ds = &data.dataset;
    let pairs = candidate_pairs(ds, LshConfig::default(), 12);
    for w in pairs.windows(2) {
        assert!(w[0] < w[1], "sorted and unique");
    }
    for &(a, b) in &pairs {
        assert!(a < b);
        let (ra, rb) = (ds.record(a), ds.record(b));
        assert_ne!(ra.certificate, rb.certificate);
        assert!(ra.gender.compatible(rb.gender));
    }
}
