//! Dataset characterisation drivers: Table 1, Table 2, and Figure 2.

use snaps_blocking::candidate_pairs;
use snaps_core::SnapsConfig;
use snaps_datagen::GeneratedData;
use snaps_model::stats::{table1_block, top_k_frequencies, QidField, QidStats};
use snaps_model::{RecordId, Role, RoleCategory};

/// A Table 1 block: one dataset's missing counts and value frequencies for
/// deceased people.
#[derive(Debug, Clone)]
pub struct Table1Block {
    /// Dataset name.
    pub dataset: String,
    /// Number of deceased-person records characterised.
    pub entities: usize,
    /// One row per QID attribute.
    pub rows: Vec<QidStats>,
}

/// Compute a Table 1 block (deceased persons, the paper's population).
#[must_use]
pub fn table1(data: &GeneratedData) -> Table1Block {
    let ds = &data.dataset;
    Table1Block {
        dataset: ds.name.clone(),
        entities: ds.records_with_role(Role::DeathDeceased).count(),
        rows: table1_block(ds, Role::DeathDeceased),
    }
}

/// One Table 2 row: a role pair's record counts, candidate pairs, and true
/// matches.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Dataset name.
    pub dataset: String,
    /// Role pair label.
    pub role_pair: String,
    /// Interpretation (the paper's wording).
    pub interpretation: String,
    /// Records in the first role.
    pub records_role1: usize,
    /// Records in the second role.
    pub records_role2: usize,
    /// Candidate record pairs of this role pair after blocking.
    pub record_pairs: usize,
    /// True matching pairs.
    pub true_matches: usize,
}

/// Compute the Table 2 rows for one dataset.
#[must_use]
pub fn table2(data: &GeneratedData, cfg: &SnapsConfig) -> Vec<Table2Row> {
    let ds = &data.dataset;
    let pairs = candidate_pairs(ds, cfg.lsh, cfg.year_tolerance);
    let pair_count = |ca: RoleCategory, cb: RoleCategory| {
        pairs
            .iter()
            .filter(|&&(a, b): &&(RecordId, RecordId)| {
                let (ra, rb) = (ds.record(a).role.category(), ds.record(b).role.category());
                (ra == ca && rb == cb) || (ra == cb && rb == ca)
            })
            .count()
    };
    let spec = [
        (
            RoleCategory::BirthParent,
            RoleCategory::BirthParent,
            "Bp-Bp",
            "Birth parents in birth certificates",
        ),
        (
            RoleCategory::BirthParent,
            RoleCategory::DeathParent,
            "Bp-Dp",
            "Parents in birth and death certificates",
        ),
    ];
    spec.into_iter()
        .map(|(ca, cb, label, interp)| Table2Row {
            dataset: ds.name.clone(),
            role_pair: label.to_string(),
            interpretation: interp.to_string(),
            records_role1: data.truth.records_in_category(ds, ca),
            records_role2: data.truth.records_in_category(ds, cb),
            record_pairs: pair_count(ca, cb),
            true_matches: data.truth.true_links(ds, ca, cb).len(),
        })
        .collect()
}

/// Figure 2 series: the `k` most common values of a field among deceased
/// people, as `(value, frequency)` descending.
#[must_use]
pub fn fig2_series(data: &GeneratedData, field: QidField, k: usize) -> Vec<(String, usize)> {
    top_k_frequencies(&data.dataset, Role::DeathDeceased, field, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaps_datagen::{generate, DatasetProfile};

    fn data() -> GeneratedData {
        generate(&DatasetProfile::ios().scaled(0.08), 42)
    }

    #[test]
    fn table1_has_four_rows_with_missing_occupations() {
        let b = table1(&data());
        assert_eq!(b.rows.len(), 4);
        assert!(b.entities > 0);
        // IOS profile: occupation misses most (~57%), surname almost never.
        let occ = &b.rows[3];
        let sur = &b.rows[1];
        assert_eq!(occ.field, QidField::Occupation);
        assert!(occ.missing > sur.missing);
    }

    #[test]
    fn table2_counts_are_consistent() {
        let rows = table2(&data(), &SnapsConfig::default());
        assert_eq!(rows.len(), 2);
        let bpbp = &rows[0];
        assert_eq!(bpbp.records_role1, bpbp.records_role2, "Bp-Bp is symmetric");
        assert!(bpbp.true_matches > 0);
        assert!(bpbp.record_pairs > bpbp.true_matches / 2, "blocking keeps candidates");
        let bpdp = &rows[1];
        assert_ne!(bpdp.records_role1, bpdp.records_role2);
    }

    #[test]
    fn fig2_series_is_sorted_and_skewed() {
        let series = fig2_series(&data(), QidField::FirstName, 100);
        assert!(!series.is_empty());
        for w in series.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // Zipf shape: the head value is much more common than the tail.
        if series.len() > 20 {
            assert!(series[0].1 > series[19].1);
        }
    }
}
