//! Linkage-quality metrics.
//!
//! The paper reports precision, recall, and the **F\*-measure**
//! `F* = TP / (TP + FP + FN)` — "an interpretable transformation of the
//! F-measure" (Hand, Christen & Kirielle 2021) — because plain F1 weights
//! precision and recall by the number of classified matches (§10).

use std::collections::BTreeSet;

use snaps_model::RecordId;

/// Confusion counts and derived measures of one linkage evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Quality {
    /// True positives: true matches classified as matches.
    pub tp: usize,
    /// False positives: true non-matches classified as matches.
    pub fp: usize,
    /// False negatives: true matches classified as non-matches.
    pub fn_: usize,
}

impl Quality {
    /// Compare a predicted link set against ground truth.
    #[must_use]
    pub fn from_sets(
        predicted: &BTreeSet<(RecordId, RecordId)>,
        truth: &BTreeSet<(RecordId, RecordId)>,
    ) -> Self {
        let tp = predicted.intersection(truth).count();
        Self { tp, fp: predicted.len() - tp, fn_: truth.len() - tp }
    }

    /// Precision `TP / (TP + FP)` (1.0 when nothing was classified).
    #[must_use]
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            return if self.fn_ == 0 { 1.0 } else { 0.0 };
        }
        self.tp as f64 / denom as f64
    }

    /// Recall `TP / (TP + FN)` (1.0 when there was nothing to find).
    #[must_use]
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            return 1.0;
        }
        self.tp as f64 / denom as f64
    }

    /// The F\*-measure `TP / (TP + FP + FN)`.
    #[must_use]
    pub fn f_star(&self) -> f64 {
        let denom = self.tp + self.fp + self.fn_;
        if denom == 0 {
            return 1.0;
        }
        self.tp as f64 / denom as f64
    }

    /// Classic F1, kept for the monotonicity relationship with F\*.
    #[must_use]
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }

    /// `(P, R, F*)` as percentages, the paper's reporting format.
    #[must_use]
    pub fn percentages(&self) -> (f64, f64, f64) {
        (100.0 * self.precision(), 100.0 * self.recall(), 100.0 * self.f_star())
    }
}

/// Mean and (population) standard deviation of a series — the format of the
/// paper's Magellan column ("averages ± standard deviations").
#[must_use]
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(pairs: &[(u32, u32)]) -> BTreeSet<(RecordId, RecordId)> {
        pairs.iter().map(|&(a, b)| (RecordId(a), RecordId(b))).collect()
    }

    #[test]
    fn confusion_counts() {
        let pred = set(&[(0, 1), (2, 3), (4, 5)]);
        let truth = set(&[(0, 1), (2, 3), (6, 7)]);
        let q = Quality::from_sets(&pred, &truth);
        assert_eq!(q, Quality { tp: 2, fp: 1, fn_: 1 });
        assert!((q.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((q.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((q.f_star() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perfect_and_empty() {
        let q = Quality::from_sets(&set(&[(0, 1)]), &set(&[(0, 1)]));
        assert_eq!(q.percentages(), (100.0, 100.0, 100.0));
        let empty = Quality::from_sets(&set(&[]), &set(&[]));
        assert_eq!(empty.f_star(), 1.0);
        assert_eq!(empty.precision(), 1.0);
    }

    #[test]
    fn nothing_predicted_but_links_exist() {
        let q = Quality::from_sets(&set(&[]), &set(&[(0, 1)]));
        assert_eq!(q.precision(), 0.0);
        assert_eq!(q.recall(), 0.0);
        assert_eq!(q.f_star(), 0.0);
    }

    #[test]
    fn f_star_is_monotone_transformation_of_f1() {
        // F* = F1 / (2 - F1); check the identity on several points.
        for q in [
            Quality { tp: 10, fp: 3, fn_: 2 },
            Quality { tp: 1, fp: 9, fn_: 9 },
            Quality { tp: 50, fp: 1, fn_: 0 },
        ] {
            let f1 = q.f1();
            let expected = f1 / (2.0 - f1);
            assert!((q.f_star() - expected).abs() < 1e-12, "{q:?}");
        }
    }

    #[test]
    fn f_star_below_min_of_p_and_r() {
        let q = Quality { tp: 10, fp: 5, fn_: 3 };
        assert!(q.f_star() <= q.precision());
        assert!(q.f_star() <= q.recall());
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        let (m1, s1) = mean_std(&[3.3]);
        assert!((m1 - 3.3).abs() < 1e-12);
        assert_eq!(s1, 0.0);
    }
}
