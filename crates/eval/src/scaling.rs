//! The Table 6 experiment: scalability over growing registration windows.
//!
//! The paper grows the BHIC window (1900–1935, 1890–1935, …) and reports
//! graph sizes, per-phase runtimes, and linkage time per node and per edge,
//! observing near-linear scaling. We reproduce the identical protocol on
//! the BHIC-like profile.

use snaps_core::{resolve, SnapsConfig};
use snaps_datagen::{generate, DatasetProfile};

/// One Table 6 row.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Registration window length in years.
    pub period_years: u32,
    /// First and last registered year.
    pub period: (i32, i32),
    /// Records in the generated dataset.
    pub records: usize,
    /// Dependency-graph nodes (`|N_A| + |N_R|`).
    pub nodes: usize,
    /// Dependency-graph edges.
    pub edges: usize,
    /// Seconds generating atomic nodes (blocking + similarity).
    pub t_atomic_s: f64,
    /// Seconds generating relational nodes.
    pub t_relational_s: f64,
    /// Seconds bootstrapping.
    pub t_bootstrap_s: f64,
    /// Seconds in iterative merging.
    pub t_merge_s: f64,
    /// Linkage (bootstrap + merge) milliseconds per graph node.
    pub linkage_ms_per_node: f64,
    /// Linkage milliseconds per graph edge.
    pub linkage_ms_per_edge: f64,
}

/// Run the scaling experiment for each window length.
///
/// `scale` shrinks the BHIC population for quick runs (1.0 = full profile);
/// `seed` keeps the sweep deterministic.
#[must_use]
pub fn run_scaling(periods: &[u32], scale: f64, seed: u64, cfg: &SnapsConfig) -> Vec<ScalingRow> {
    periods
        .iter()
        .map(|&period_years| {
            let profile = DatasetProfile::bhic(period_years).scaled(scale);
            let data = generate(&profile, seed);
            let res = resolve(&data.dataset, cfg);
            let s = &res.stats;
            let nodes = s.n_atomic + s.n_relational;
            let edges = s.n_edges;
            let linkage_ms = s.linkage_time().as_secs_f64() * 1000.0;
            ScalingRow {
                period_years,
                period: (profile.reg_start, profile.reg_end),
                records: data.dataset.len(),
                nodes,
                edges,
                t_atomic_s: s.t_atomic.as_secs_f64(),
                t_relational_s: s.t_relational.as_secs_f64(),
                t_bootstrap_s: s.t_bootstrap.as_secs_f64(),
                t_merge_s: s.t_merge.as_secs_f64(),
                linkage_ms_per_node: linkage_ms / nodes.max(1) as f64,
                linkage_ms_per_edge: linkage_ms / edges.max(1) as f64,
            }
        })
        .collect()
}

/// The paper's four window lengths (35, 45, 55, 65 years before 1935).
pub const PAPER_PERIODS: [u32; 4] = [35, 45, 55, 65];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_grow_monotonically() {
        let rows = run_scaling(&[20, 35], 0.05, 42, &SnapsConfig::default());
        assert_eq!(rows.len(), 2);
        assert!(rows[1].records > rows[0].records, "longer window, more records");
        assert!(rows[1].nodes >= rows[0].nodes);
        assert_eq!(rows[0].period.1, 1935);
        assert_eq!(rows[1].period.1, 1935);
        assert_eq!(rows[1].period.1 - rows[1].period.0, 35);
    }

    #[test]
    fn rows_have_positive_times() {
        let rows = run_scaling(&[20], 0.05, 42, &SnapsConfig::default());
        let r = &rows[0];
        assert!(r.t_atomic_s >= 0.0);
        assert!(r.linkage_ms_per_node >= 0.0);
        assert!(r.edges > 0);
    }
}
