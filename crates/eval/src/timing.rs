//! The Table 5 and Table 7 experiments: offline runtimes and online
//! latencies.

use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use snaps_baselines::supervised::{paper_classifiers, supervised_link, TrainingRegime};
use snaps_baselines::{attr_sim_link, dep_graph_link, rel_cluster_link};
use snaps_core::{resolve, PedigreeGraph, SnapsConfig};
use snaps_datagen::GeneratedData;
use snaps_model::{Gender, RecordId};
use snaps_pedigree::{extract, DEFAULT_GENERATIONS};
use snaps_query::{QueryRecord, SearchEngine, SearchKind};

/// One Table 5 row: a system's offline runtime (plus graph sizes for SNAPS).
#[derive(Debug, Clone)]
pub struct OfflineTiming {
    /// System name.
    pub system: String,
    /// Wall-clock seconds of the offline run.
    pub seconds: f64,
    /// `|N_A|` when the system builds a dependency graph.
    pub n_atomic: Option<usize>,
    /// `|N_R|` when the system builds a dependency graph.
    pub n_relational: Option<usize>,
}

/// Time the offline component of SNAPS and every baseline (Table 5).
///
/// The supervised entry averages the four classifiers over both training
/// regimes, exactly as the paper reports its Magellan runtimes.
#[must_use]
pub fn time_offline(data: &GeneratedData, cfg: &SnapsConfig) -> Vec<OfflineTiming> {
    let ds = &data.dataset;
    let mut rows = Vec::new();

    let t = Instant::now();
    let res = resolve(ds, cfg);
    rows.push(OfflineTiming {
        system: "SNAPS".into(),
        seconds: t.elapsed().as_secs_f64(),
        n_atomic: Some(res.stats.n_atomic),
        n_relational: Some(res.stats.n_relational),
    });

    let t = Instant::now();
    let _ = attr_sim_link(ds, cfg);
    rows.push(OfflineTiming {
        system: "Attr-Sim".into(),
        seconds: t.elapsed().as_secs_f64(),
        n_atomic: None,
        n_relational: None,
    });

    let t = Instant::now();
    let _ = dep_graph_link(ds, cfg);
    rows.push(OfflineTiming {
        system: "Dep-Graph".into(),
        seconds: t.elapsed().as_secs_f64(),
        n_atomic: None,
        n_relational: None,
    });

    let t = Instant::now();
    let _ = rel_cluster_link(ds, cfg);
    rows.push(OfflineTiming {
        system: "Rel-Cluster".into(),
        seconds: t.elapsed().as_secs_f64(),
        n_atomic: None,
        n_relational: None,
    });

    // Supervised: average runtime over 4 classifiers × 2 regimes.
    let truth = &data.truth;
    let is_match = |a: RecordId, b: RecordId| truth.is_match(a, b);
    let mut times = Vec::new();
    for regime in [
        TrainingRegime::PerRolePair(
            snaps_model::RoleCategory::BirthParent,
            snaps_model::RoleCategory::BirthParent,
        ),
        TrainingRegime::AllPairs,
    ] {
        for classifier in paper_classifiers() {
            let t = Instant::now();
            let _ = supervised_link(ds, cfg, classifier, regime, &is_match);
            times.push(t.elapsed().as_secs_f64());
        }
    }
    rows.push(OfflineTiming {
        system: "Supervised".into(),
        seconds: times.iter().sum::<f64>() / times.len() as f64,
        n_atomic: None,
        n_relational: None,
    });

    rows
}

/// min / average / median / max of a latency sample (Table 7's columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Fastest observation (seconds).
    pub min: f64,
    /// Mean (seconds).
    pub avg: f64,
    /// Median (seconds).
    pub median: f64,
    /// Slowest observation (seconds).
    pub max: f64,
}

impl LatencyStats {
    /// Summarise an instrumentation histogram (`None` when it holds no
    /// samples). The median is the histogram's p50 estimate — exact to
    /// within the bucket quantisation (≤ 12.5%) — while min, mean, and max
    /// are exact.
    #[must_use]
    #[cfg(test)]
    pub(crate) fn from_histogram(h: &snaps_obs::Histogram) -> Option<Self> {
        Some(Self {
            min: h.min()?.as_secs_f64(),
            avg: h.mean()?.as_secs_f64(),
            median: h.percentile(0.5)?.as_secs_f64(),
            max: h.max()?.as_secs_f64(),
        })
    }
}

/// Summarise a set of durations; `None` on an empty sample.
#[must_use]
pub(crate) fn latency_stats(samples: &[Duration]) -> Option<LatencyStats> {
    if samples.is_empty() {
        return None;
    }
    let mut secs: Vec<f64> = samples.iter().map(Duration::as_secs_f64).collect();
    secs.sort_by(f64::total_cmp);
    let n = secs.len();
    let median = if n % 2 == 1 { secs[n / 2] } else { (secs[n / 2 - 1] + secs[n / 2]) / 2.0 };
    Some(LatencyStats {
        min: secs[0],
        avg: secs.iter().sum::<f64>() / n as f64,
        median,
        max: secs[n - 1],
    })
}

/// Generate a realistic query batch from a pedigree graph: entity names,
/// some with typos, some with gender/year/location refinements — the mix a
/// genealogy team would type.
#[must_use]
pub fn generate_query_batch(graph: &PedigreeGraph, n: usize, seed: u64) -> Vec<QueryRecord> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut queries = Vec::with_capacity(n);
    let candidates: Vec<&snaps_core::PedigreeEntity> = graph
        .entities
        .iter()
        .filter(|e| {
            (e.has_birth_record || e.has_death_record)
                && !e.first_names.is_empty()
                && !e.surnames.is_empty()
        })
        .collect();
    if candidates.is_empty() {
        return queries;
    }
    while queries.len() < n {
        let e = candidates[rng.gen_range(0..candidates.len())];
        let kind = if e.has_birth_record && (!e.has_death_record || rng.gen_bool(0.5)) {
            SearchKind::Birth
        } else {
            SearchKind::Death
        };
        let mut first = e.first_names[0].clone();
        let mut sur = e.surnames[0].clone();
        // A third of queries carry a typo (user uncertainty, §7).
        if rng.gen_bool(0.33) {
            first = snaps_datagen::corrupt::typo(&first, &mut rng);
        }
        if rng.gen_bool(0.2) {
            sur = snaps_datagen::corrupt::typo(&sur, &mut rng);
        }
        if first.is_empty() || sur.is_empty() {
            continue;
        }
        let mut q = QueryRecord::new(&first, &sur, kind);
        if rng.gen_bool(0.5) && e.gender != Gender::Unknown {
            q = q.with_gender(e.gender);
        }
        if rng.gen_bool(0.5) {
            let year = match kind {
                SearchKind::Birth => e.birth_year,
                SearchKind::Death => e.death_year,
            };
            if let Some(y) = year {
                q = q.with_years(y - 5, y + 5);
            }
        }
        if rng.gen_bool(0.3) {
            if let Some(a) = e.addresses.first() {
                if !a.is_empty() {
                    q = q.with_location(a);
                }
            }
        }
        queries.push(q);
    }
    queries
}

/// Run the Table 7 experiment: time every query, then time extracting the
/// pedigree of each query's top-ranked hit.
///
/// Returns `(querying, pedigree extraction)` latency statistics. The
/// extraction statistics are `None` when no query returned a hit.
///
/// # Panics
/// Panics on an empty query batch.
#[must_use]
pub fn time_queries(
    engine: &SearchEngine,
    queries: &[QueryRecord],
    top_m: usize,
) -> (LatencyStats, Option<LatencyStats>) {
    assert!(!queries.is_empty(), "query batch must be non-empty");
    let mut query_times = Vec::with_capacity(queries.len());
    let mut pedigree_times = Vec::new();

    for q in queries {
        let t = Instant::now();
        let results = engine.query(q, top_m);
        query_times.push(t.elapsed());

        if let Some(top) = results.first() {
            let t = Instant::now();
            let p = extract(engine.graph(), top.entity, DEFAULT_GENERATIONS);
            pedigree_times.push(t.elapsed());
            std::hint::black_box(p.members.len());
        }
    }
    let q_stats = latency_stats(&query_times).expect("query batch is non-empty");
    (q_stats, latency_stats(&pedigree_times))
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaps_datagen::{generate, DatasetProfile};

    #[test]
    fn latency_stats_basics() {
        let samples = [
            Duration::from_millis(10),
            Duration::from_millis(20),
            Duration::from_millis(30),
            Duration::from_millis(100),
        ];
        let s = latency_stats(&samples).unwrap();
        assert!((s.min - 0.010).abs() < 1e-9);
        assert!((s.max - 0.100).abs() < 1e-9);
        assert!((s.median - 0.025).abs() < 1e-9);
        assert!((s.avg - 0.040).abs() < 1e-9);
    }

    #[test]
    fn empty_latency_is_none() {
        assert_eq!(latency_stats(&[]), None);
    }

    #[test]
    fn from_histogram_matches_exact_stats() {
        let h = snaps_obs::Histogram::new();
        assert_eq!(LatencyStats::from_histogram(&h), None);
        let samples = [
            Duration::from_millis(10),
            Duration::from_millis(20),
            Duration::from_millis(30),
            Duration::from_millis(100),
        ];
        for d in samples {
            h.record(d);
        }
        let s = LatencyStats::from_histogram(&h).unwrap();
        let exact = latency_stats(&samples).unwrap();
        assert!((s.min - exact.min).abs() < 1e-9);
        assert!((s.max - exact.max).abs() < 1e-9);
        // Mean and median are bucket-quantised (≤ 12.5% relative error).
        assert!((s.avg - exact.avg).abs() / exact.avg < 0.13, "{s:?}");
        assert!(s.min <= s.median && s.median <= s.max);
    }

    #[test]
    fn offline_timing_covers_all_systems() {
        let data = generate(&DatasetProfile::ios().scaled(0.05), 42);
        let rows = time_offline(&data, &SnapsConfig::default());
        let names: Vec<&str> = rows.iter().map(|r| r.system.as_str()).collect();
        assert_eq!(names, vec!["SNAPS", "Attr-Sim", "Dep-Graph", "Rel-Cluster", "Supervised"]);
        assert!(rows.iter().all(|r| r.seconds > 0.0));
        assert!(rows[0].n_relational.unwrap() > 0);
        // Attr-Sim must be the fastest unsupervised system (Table 5 shape).
        assert!(rows[1].seconds <= rows[0].seconds);
    }

    #[test]
    fn query_batch_and_timing() {
        let data = generate(&DatasetProfile::ios().scaled(0.06), 42);
        let res = resolve(&data.dataset, &SnapsConfig::default());
        let graph = PedigreeGraph::build(&data.dataset, &res);
        let engine = SearchEngine::build(graph);
        let queries = generate_query_batch(engine.graph(), 20, 7);
        assert_eq!(queries.len(), 20);
        let (q_stats, p_stats) = time_queries(&engine, &queries, 10);
        assert!(q_stats.min <= q_stats.median && q_stats.median <= q_stats.max);
        assert!(q_stats.avg > 0.0);
        // At this scale the batch always finds hits, so extraction stats
        // are present.
        let p_stats = p_stats.expect("queries produced hits");
        assert!(p_stats.max >= p_stats.min);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn stats_ordering_holds(
                ns in proptest::collection::vec(0u64..5_000_000u64, 1..64)
            ) {
                let samples: Vec<Duration> =
                    ns.iter().map(|&n| Duration::from_nanos(n)).collect();
                let s = latency_stats(&samples).unwrap();
                prop_assert!(s.min <= s.median && s.median <= s.max);
                prop_assert!(s.min <= s.avg + 1e-15 && s.avg <= s.max + 1e-15);
            }

            #[test]
            fn median_matches_definition(
                ns in proptest::collection::vec(0u64..1_000_000u64, 1..33)
            ) {
                let samples: Vec<Duration> =
                    ns.iter().map(|&n| Duration::from_nanos(n)).collect();
                let s = latency_stats(&samples).unwrap();
                let mut sorted = ns.clone();
                sorted.sort_unstable();
                let n = sorted.len();
                // Odd length: the middle element. Even length: the mean of
                // the two middle elements.
                let expect = if n % 2 == 1 {
                    Duration::from_nanos(sorted[n / 2]).as_secs_f64()
                } else {
                    (Duration::from_nanos(sorted[n / 2 - 1]).as_secs_f64()
                        + Duration::from_nanos(sorted[n / 2]).as_secs_f64())
                        / 2.0
                };
                prop_assert!((s.median - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn query_batch_deterministic() {
        let data = generate(&DatasetProfile::ios().scaled(0.05), 42);
        let res = resolve(&data.dataset, &SnapsConfig::default());
        let graph = PedigreeGraph::build(&data.dataset, &res);
        let a = generate_query_batch(&graph, 10, 3);
        let b = generate_query_batch(&graph, 10, 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.first_name, y.first_name);
            assert_eq!(x.surname, y.surname);
        }
    }
}
