//! The Table 3 experiment: ablation of the four key techniques.

use snaps_core::{resolve, Ablation, SnapsConfig};
use snaps_datagen::GeneratedData;

use crate::metrics::Quality;
use crate::quality::ROLE_PAIRS;

/// One ablation variant's quality per role pair.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant name ("SNAPS", "without PROP-A and PROP-C", …).
    pub variant: String,
    /// `(role-pair label, quality)` pairs.
    pub per_role_pair: Vec<(String, Quality)>,
}

/// The five Table 3 variants in paper order.
#[must_use]
pub fn variants() -> Vec<(&'static str, Ablation)> {
    vec![
        ("SNAPS", Ablation::full()),
        ("without PROP-A and PROP-C", Ablation::without_prop()),
        ("without AMB", Ablation::without_amb()),
        ("without REL", Ablation::without_rel()),
        ("without REF", Ablation::without_ref()),
    ]
}

/// Run the ablation: one full resolution per variant, scored on every role
/// pair.
#[must_use]
pub fn run_ablation(data: &GeneratedData, base: &SnapsConfig) -> Vec<AblationRow> {
    let ds = &data.dataset;
    variants()
        .into_iter()
        .map(|(name, ablation)| {
            let mut cfg = base.clone();
            cfg.ablation = ablation;
            let res = resolve(ds, &cfg);
            let per_role_pair = ROLE_PAIRS
                .iter()
                .map(|&(ca, cb, label)| {
                    let truth = data.truth.true_links(ds, ca, cb);
                    let pred = res.matched_pairs(ds, ca, cb);
                    (label.to_string(), Quality::from_sets(&pred, &truth))
                })
                .collect();
            AblationRow { variant: name.to_string(), per_role_pair }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaps_datagen::{generate, DatasetProfile};

    #[test]
    fn five_variants_in_order() {
        let v = variants();
        assert_eq!(v.len(), 5);
        assert_eq!(v[0].0, "SNAPS");
        assert!(!v[1].1.prop);
        assert!(!v[2].1.amb);
        assert!(!v[3].1.rel);
        assert!(!v[4].1.refine);
    }

    #[test]
    fn ablation_shapes_match_paper() {
        let data = generate(&DatasetProfile::ios().scaled(0.1), 42);
        let rows = run_ablation(&data, &SnapsConfig::default());
        assert_eq!(rows.len(), 5);

        let f = |row: &AblationRow, i: usize| row.per_role_pair[i].1.f_star();
        let p = |row: &AblationRow, i: usize| row.per_role_pair[i].1.precision();
        let full = &rows[0];
        let no_prop = &rows[1];
        let no_rel = &rows[3];

        // Removing PROP costs F* on both role pairs (precision collapse).
        for i in 0..2 {
            assert!(f(full, i) > f(no_prop, i), "full {} vs no-prop {}", f(full, i), f(no_prop, i));
            assert!(p(full, i) > p(no_prop, i));
        }
        // REL's benefit is scale-dependent (group gating only pays once
        // namesake ambiguity bites — at full profile scale the gap is
        // 4-12 F* points, see results/table3.txt; at 0.1 scale it can even
        // invert). The fixture only checks that the variant runs and
        // produces sane numbers.
        for i in 0..2 {
            let v = f(no_rel, i);
            assert!((0.0..=1.0).contains(&v));
            assert!(v > 0.3, "without-REL still links: {v}");
        }
        let _ = no_rel;
    }
}
