//! Evaluation: linkage-quality metrics and the experiment drivers behind
//! every table of the paper's §10.
//!
//! * [`metrics`] — precision, recall, and the F*-measure (Hand, Christen &
//!   Kirielle 2021) the paper uses instead of F1;
//! * [`quality`] — Table 4: SNAPS vs the four baselines per dataset and
//!   role pair, with the supervised baseline averaged over four classifiers
//!   and two training regimes;
//! * [`ablation`] — Table 3: one key technique removed at a time;
//! * [`timing`] — Table 5 (offline runtimes) and Table 7 (query and
//!   pedigree-extraction latencies);
//! * [`scaling`] — Table 6: dependency-graph size and phase times over
//!   growing registration windows;
//! * [`characterise`] — Table 1, Table 2, and Figure 2 dataset statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod characterise;
pub mod metrics;
pub mod quality;
pub mod scaling;
pub mod timing;

pub use metrics::Quality;
