//! The Table 4 experiment: linkage quality of SNAPS vs all baselines.

use std::collections::BTreeSet;

use snaps_baselines::supervised::{paper_classifiers, supervised_link, TrainingRegime};
use snaps_baselines::{attr_sim_link, dep_graph_link, rel_cluster_link};
use snaps_core::{resolve, SnapsConfig};
use snaps_datagen::GeneratedData;
use snaps_model::{RecordId, RoleCategory};

use crate::metrics::Quality;

/// The role pairs the paper evaluates (Tables 2–4).
pub const ROLE_PAIRS: [(RoleCategory, RoleCategory, &str); 2] = [
    (RoleCategory::BirthParent, RoleCategory::BirthParent, "Bp-Bp"),
    (RoleCategory::BirthParent, RoleCategory::DeathParent, "Bp-Dp"),
];

/// Quality of one system per role pair.
#[derive(Debug, Clone)]
pub struct SystemQuality {
    /// System name ("SNAPS", "Attr-Sim", …).
    pub system: String,
    /// `(role-pair label, quality)` rows.
    pub per_role_pair: Vec<(String, Quality)>,
}

/// Supervised baseline: the paper reports mean ± std over four classifiers
/// and two training regimes, so every role pair carries the raw samples.
#[derive(Debug, Clone, Default)]
pub struct SupervisedQuality {
    /// `(role-pair label, one Quality per classifier × regime)` rows.
    pub per_role_pair: Vec<(String, Vec<Quality>)>,
}

/// All of Table 4 for one dataset.
#[derive(Debug, Clone)]
pub struct QualityReport {
    /// Dataset name.
    pub dataset: String,
    /// SNAPS and the three unsupervised baselines.
    pub unsupervised: Vec<SystemQuality>,
    /// The supervised (Magellan-substitute) baseline.
    pub supervised: SupervisedQuality,
}

/// Evaluate SNAPS and the unsupervised baselines on a generated dataset.
#[must_use]
pub(crate) fn evaluate_unsupervised(data: &GeneratedData, cfg: &SnapsConfig) -> Vec<SystemQuality> {
    let ds = &data.dataset;
    let snaps = resolve(ds, cfg);
    let attr = attr_sim_link(ds, cfg);
    let dep = dep_graph_link(ds, cfg);
    let rel = rel_cluster_link(ds, cfg);

    let mut out = Vec::new();
    type PairFn<'a> =
        Box<dyn Fn(RoleCategory, RoleCategory) -> BTreeSet<(RecordId, RecordId)> + 'a>;
    let systems: Vec<(&str, PairFn<'_>)> = vec![
        ("SNAPS", Box::new(|a, b| snaps.matched_pairs(ds, a, b))),
        ("Attr-Sim", Box::new(|a, b| attr.matched_pairs(ds, a, b))),
        ("Dep-Graph", Box::new(|a, b| dep.matched_pairs(ds, a, b))),
        ("Rel-Cluster", Box::new(|a, b| rel.matched_pairs(ds, a, b))),
    ];
    for (name, matched) in systems {
        let mut rows = Vec::new();
        for &(ca, cb, label) in &ROLE_PAIRS {
            let truth = data.truth.true_links(ds, ca, cb);
            let pred = matched(ca, cb);
            rows.push((label.to_string(), Quality::from_sets(&pred, &truth)));
        }
        out.push(SystemQuality { system: name.to_string(), per_role_pair: rows });
    }
    out
}

/// Restrict a pair set to pairs of the given role categories.
fn restrict_to_role_pair(
    ds: &snaps_model::Dataset,
    pairs: &BTreeSet<(RecordId, RecordId)>,
    ca: RoleCategory,
    cb: RoleCategory,
) -> BTreeSet<(RecordId, RecordId)> {
    pairs
        .iter()
        .copied()
        .filter(|&(a, b)| {
            let (ra, rb) = (ds.record(a).role.category(), ds.record(b).role.category());
            (ra == ca && rb == cb) || (ra == cb && rb == ca)
        })
        .collect()
}

/// Evaluate the supervised baseline: four classifiers × two regimes per role
/// pair (paper §10). Each run trains on half the candidate pairs and is
/// scored on the held-out half, pairwise — the protocol of a pairwise
/// matcher like Magellan.
#[must_use]
pub(crate) fn evaluate_supervised(data: &GeneratedData, cfg: &SnapsConfig) -> SupervisedQuality {
    let ds = &data.dataset;
    let truth = &data.truth;
    let is_match = |a: RecordId, b: RecordId| truth.is_match(a, b);

    let mut report = SupervisedQuality::default();
    for &(ca, cb, label) in &ROLE_PAIRS {
        let mut samples = Vec::new();
        for regime in [TrainingRegime::PerRolePair(ca, cb), TrainingRegime::AllPairs] {
            for classifier in paper_classifiers() {
                let (result, eval_pairs) = supervised_link(ds, cfg, classifier, regime, &is_match);
                // Pairwise scoring over the evaluation half, restricted to
                // the tested role pair.
                let eval_set: BTreeSet<(RecordId, RecordId)> =
                    eval_pairs.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
                let truth_pairs: BTreeSet<(RecordId, RecordId)> =
                    eval_set.iter().copied().filter(|&(a, b)| truth.is_match(a, b)).collect();
                let truth_pairs = restrict_to_role_pair(ds, &truth_pairs, ca, cb);
                let predicted: BTreeSet<(RecordId, RecordId)> =
                    result.links.iter().copied().collect();
                let predicted = restrict_to_role_pair(ds, &predicted, ca, cb);
                samples.push(Quality::from_sets(&predicted, &truth_pairs));
            }
        }
        report.per_role_pair.push((label.to_string(), samples));
    }
    report
}

/// Run the full Table 4 experiment on one dataset.
#[must_use]
pub fn run_quality_experiment(data: &GeneratedData, cfg: &SnapsConfig) -> QualityReport {
    QualityReport {
        dataset: data.dataset.name.clone(),
        unsupervised: evaluate_unsupervised(data, cfg),
        supervised: evaluate_supervised(data, cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaps_datagen::{generate, DatasetProfile};

    fn small() -> GeneratedData {
        generate(&DatasetProfile::ios().scaled(0.08), 42)
    }

    #[test]
    fn unsupervised_covers_all_systems_and_role_pairs() {
        let data = small();
        let rows = evaluate_unsupervised(&data, &SnapsConfig::default());
        assert_eq!(rows.len(), 4);
        let names: Vec<&str> = rows.iter().map(|r| r.system.as_str()).collect();
        assert_eq!(names, vec!["SNAPS", "Attr-Sim", "Dep-Graph", "Rel-Cluster"]);
        for r in &rows {
            assert_eq!(r.per_role_pair.len(), 2);
        }
    }

    #[test]
    fn snaps_is_most_precise_and_competitive() {
        // The Table-4 F* ordering (SNAPS best everywhere) is
        // scale-dependent — namesake ambiguity only bites at profile
        // scale, where the table4 binary measures it (see EXPERIMENTS.md).
        // Scale-free invariants: SNAPS is the most precise system, and its
        // F* is within a small margin of the best baseline even on a
        // fixture too small for its precision machinery to pay off.
        let data = small();
        let rows = evaluate_unsupervised(&data, &SnapsConfig::default());
        let snaps = &rows[0];
        for other in &rows[1..] {
            for (i, (label, q)) in snaps.per_role_pair.iter().enumerate() {
                let (_, oq) = &other.per_role_pair[i];
                assert!(
                    q.precision() >= oq.precision(),
                    "SNAPS {label} P={:.3} vs {} {:.3}",
                    q.precision(),
                    other.system,
                    oq.precision()
                );
                assert!(
                    q.f_star() + 0.06 >= oq.f_star(),
                    "SNAPS {label} F*={:.3} vs {} {:.3}",
                    q.f_star(),
                    other.system,
                    oq.f_star()
                );
            }
        }
    }

    #[test]
    fn supervised_produces_eight_samples_per_role_pair() {
        let data = small();
        let rep = evaluate_supervised(&data, &SnapsConfig::default());
        assert_eq!(rep.per_role_pair.len(), 2);
        for (_, samples) in &rep.per_role_pair {
            assert_eq!(samples.len(), 8, "4 classifiers × 2 regimes");
        }
    }

    #[test]
    fn supervised_has_variance_across_regimes() {
        // The paper's headline about Magellan: high standard deviation
        // between the favourable and realistic training regimes.
        let data = small();
        let rep = evaluate_supervised(&data, &SnapsConfig::default());
        let (_, samples) = &rep.per_role_pair[0];
        let f: Vec<f64> = samples.iter().map(Quality::f_star).collect();
        let (_, std) = crate::metrics::mean_std(&f);
        assert!(std > 0.0, "identical results across all 8 runs is implausible");
    }
}
