//! Prometheus text-exposition rendering of a [`RunReport`].
//!
//! The serve layer answers `/metrics?format=prom` with this format so the
//! live service can be scraped by a stock Prometheus/VictoriaMetrics
//! agent, while the JSON run report stays the default for scripts.
//!
//! Naming conventions (documented in DESIGN.md §8):
//!
//! - every metric is prefixed `snaps_`; dots and other separators in the
//!   registry name become `_` (`serve.http_200` → `snaps_serve_http_200`);
//! - counters get the conventional `_total` suffix;
//! - histograms keep their native nanosecond unit and carry a `_ns`
//!   suffix, with **cumulative** `_bucket{le="…"}` series (inclusive
//!   integer upper bounds from the fixed sub-octave layout), a `+Inf`
//!   bucket, `_sum` and `_count`;
//! - output order is: counters, gauges, histograms — each sorted by name
//!   (the report already stores them sorted), so the exposition is
//!   byte-deterministic for a given report.
//!
//! Rendering is a pure function of the report: no locks, no clock reads,
//! no panics.

use crate::histogram::{upper_for_lower, HistogramReport};
use crate::RunReport;
use std::fmt::Write as _;

/// Append `name` with every byte outside `[a-z0-9_]` mapped to `_`
/// (uppercase is lowered), after the `snaps_` namespace prefix.
fn metric_name(out: &mut String, name: &str) {
    out.push_str("snaps_");
    for c in name.chars() {
        match c {
            'a'..='z' | '0'..='9' | '_' => out.push(c),
            'A'..='Z' => out.push(c.to_ascii_lowercase()),
            _ => out.push('_'),
        }
    }
}

fn write_histogram(out: &mut String, name: &str, h: &HistogramReport) {
    let mut full = String::new();
    metric_name(&mut full, name);
    full.push_str("_ns");
    let _ = writeln!(out, "# TYPE {full} histogram");
    let mut cumulative = 0u64;
    for (lower, count) in &h.buckets {
        cumulative = cumulative.saturating_add(*count);
        let upper = upper_for_lower(*lower);
        if upper == u64::MAX {
            // The unbounded top bucket is represented by `+Inf` below.
            continue;
        }
        // Our buckets are `[lower, upper)` over integers, so the inclusive
        // Prometheus `le` bound is `upper - 1`.
        let _ = writeln!(out, "{full}_bucket{{le=\"{}\"}} {cumulative}", upper - 1);
    }
    let _ = writeln!(out, "{full}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{full}_sum {}", h.sum_ns);
    let _ = writeln!(out, "{full}_count {}", h.count);
}

/// Append `report` in the Prometheus text exposition format (version
/// 0.0.4) to `out`. See the module docs for the naming scheme.
pub(crate) fn render_into(report: &RunReport, out: &mut String) {
    // Two exposition lines (~64 bytes) per counter/gauge, a dozen or so
    // per histogram; sizing both buffers up front keeps the per-request
    // render free of mid-loop regrowth.
    out.reserve(
        128 * (report.counters.len() + report.gauges.len()) + 1024 * report.histograms.len(),
    );
    for (name, value) in &report.counters {
        let mut full = String::with_capacity(name.len() + 16);
        metric_name(&mut full, name);
        full.push_str("_total");
        let _ = writeln!(out, "# TYPE {full} counter");
        let _ = writeln!(out, "{full} {value}");
    }
    for (name, value) in &report.gauges {
        let mut full = String::with_capacity(name.len() + 16);
        metric_name(&mut full, name);
        let _ = writeln!(out, "# TYPE {full} gauge");
        let _ = writeln!(out, "{full} {value}");
    }
    for (name, h) in &report.histograms {
        write_histogram(out, name, h);
    }
}

#[cfg(test)]
mod tests {
    use crate::{Obs, ObsConfig};
    use std::time::Duration;

    fn sample() -> crate::RunReport {
        let obs = Obs::new(&ObsConfig::full());
        obs.counter("serve.http_200").add(12);
        obs.counter("query.count").add(7);
        obs.gauge("serve.inflight").set(3);
        let h = obs.histogram("query.latency");
        for us in [10u64, 100, 100, 5000] {
            h.record(Duration::from_micros(us));
        }
        obs.report().expect("enabled")
    }

    #[test]
    fn exposition_has_type_lines_and_values() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE snaps_serve_http_200_total counter"));
        assert!(text.contains("snaps_serve_http_200_total 12\n"));
        assert!(text.contains("# TYPE snaps_query_count_total counter"));
        assert!(text.contains("# TYPE snaps_serve_inflight gauge"));
        assert!(text.contains("snaps_serve_inflight 3\n"));
        assert!(text.contains("# TYPE snaps_query_latency_ns histogram"));
        assert!(text.contains("snaps_query_latency_ns_count 4\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_monotone() {
        let text = sample().to_prometheus();
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("snaps_query_latency_ns_bucket"))
            .filter_map(|l| l.rsplit(' ').next())
            .map(|v| v.parse().expect("bucket count"))
            .collect();
        assert!(counts.len() >= 2, "at least one finite bucket plus +Inf: {text}");
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "cumulative counts: {counts:?}");
        assert_eq!(*counts.last().expect("buckets"), 4, "+Inf bucket equals count");
        // `le` bounds strictly increase.
        let bounds: Vec<&str> = text
            .lines()
            .filter_map(|l| l.strip_prefix("snaps_query_latency_ns_bucket{le=\""))
            .filter_map(|l| l.split('"').next())
            .collect();
        let finite: Vec<u64> = bounds.iter().filter_map(|b| b.parse().ok()).collect();
        assert!(finite.windows(2).all(|w| w[0] < w[1]), "le bounds increase: {finite:?}");
        assert_eq!(bounds.last().copied(), Some("+Inf"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let report = sample();
        assert_eq!(report.to_prometheus(), report.to_prometheus());
    }

    #[test]
    fn empty_report_renders_empty() {
        let obs = Obs::new(&ObsConfig::full());
        assert_eq!(obs.report().expect("enabled").to_prometheus(), "");
    }
}
