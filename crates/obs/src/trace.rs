//! Request-scoped tracing: a fixed-capacity, mutex-sharded ring of
//! structured per-request records.
//!
//! The serve path records one [`TraceRecord`] per handled request into a
//! [`TraceRing`]; `/debug/traces` and `/debug/slow` read them back. The
//! ring is bounded (old records are evicted, never reallocated past
//! capacity) and sharded so concurrent writers rarely contend on the same
//! mutex. Writers are assigned to shards round-robin by a global sequence
//! counter, which doubles as a total order over records: the retained set
//! is always exactly the `capacity` most recent sequence numbers, whatever
//! the thread interleaving, because a full shard evicts its smallest
//! sequence number — or drops the incoming record when *it* is the
//! smallest (a writer that stalled between taking its sequence number and
//! locking the shard).
//!
//! Nothing in this module can panic: no indexing, no unwrap, and poisoned
//! shard locks are re-entered (a half-written shard is still a valid list
//! of complete records — `push` only appends or removes whole records).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independently locked shards in a [`TraceRing`].
const SHARDS: usize = 8;

/// Default ring capacity used by the serve layer.
pub const DEFAULT_TRACE_CAPACITY: usize = 512;

/// One traced request, as recorded by a serve handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Global sequence number, assigned by [`TraceRing::push`]; later
    /// requests have strictly larger values.
    pub seq: u64,
    /// Normalised route label (`search`, `pedigree`, `healthz`, …).
    pub route: &'static str,
    /// HTTP status code of the response.
    pub status: u16,
    /// Handler latency in microseconds, clamped to ≥ 1 so a
    /// sub-microsecond handler still registers as traced.
    pub latency_us: u64,
    /// Time the connection waited in the accept queue, microseconds.
    pub queue_wait_us: u64,
    /// Similarity-cache hits attributed to this request (counter delta
    /// around the handler; approximate under concurrency).
    pub cache_hits: u64,
    /// Similarity-cache misses attributed to this request (same caveat).
    pub cache_misses: u64,
    /// Candidates scored while answering (counter delta, same caveat).
    pub candidates: u64,
    /// Results returned in the response body.
    pub results: u64,
    /// Truncated query-parameter digest (`k=v&k=v…`, ≤ 64 bytes).
    pub params: String,
}

impl TraceRecord {
    /// A zeroed record for `route`; callers fill in the fields they know.
    /// `seq` is overwritten by [`TraceRing::push`].
    #[must_use]
    pub fn new(route: &'static str) -> Self {
        Self {
            seq: 0,
            route,
            status: 0,
            latency_us: 1,
            queue_wait_us: 0,
            cache_hits: 0,
            cache_misses: 0,
            candidates: 0,
            results: 0,
            params: String::new(),
        }
    }
}

/// Fixed-capacity, mutex-sharded ring buffer of [`TraceRecord`]s.
///
/// `push` is O(shard size) worst case (eviction scans for the minimum
/// sequence number) with `capacity / 8` records per shard; readers lock
/// one shard at a time — never two locks at once, so the ring introduces
/// no lock-order edges.
#[derive(Debug)]
pub struct TraceRing {
    shards: Vec<Mutex<Vec<TraceRecord>>>,
    per_shard: usize,
    next_seq: AtomicU64,
}

impl TraceRing {
    /// Ring holding at most `capacity` records (rounded up to a multiple
    /// of the shard count; zero is bumped to the shard count).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(SHARDS).max(1);
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::with_capacity(per_shard))).collect(),
            per_shard,
            next_seq: AtomicU64::new(0),
        }
    }

    /// Total capacity (a multiple of the shard count).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.per_shard * SHARDS
    }

    /// Records ever pushed (including evicted ones).
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Records currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        let mut n = 0;
        for shard in &self.shards {
            let guard = shard.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            n += guard.len();
        }
        n
    }

    /// Whether nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record one request; assigns and returns its sequence number.
    ///
    /// The shard is chosen by sequence number (round-robin), so each shard
    /// holds every `SHARDS`-th record and eviction of the shard-local
    /// minimum keeps exactly the globally most recent `capacity` records.
    ///
    /// A writer can stall between taking its sequence number and locking
    /// the shard; by the time it inserts, the shard may be full of strictly
    /// newer records. Evicting the shard minimum then would throw away a
    /// newer record to retain a stale one, so a full shard *drops* a record
    /// older than its minimum instead — the record is counted in
    /// [`pushed`](Self::pushed) but was already outside the newest-
    /// `capacity` window the ring retains. The exhaustive-interleaving
    /// model test (`tests/trace_model.rs`) checks both halves of this
    /// policy.
    pub fn push(&self, mut record: TraceRecord) -> u64 {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        record.seq = seq;
        let shard_idx = usize::try_from(seq).unwrap_or(usize::MAX) % SHARDS;
        if let Some(shard) = self.shards.get(shard_idx) {
            let mut guard = shard.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if guard.len() >= self.per_shard {
                // Evict the oldest record of this shard. Writers can lock
                // the shard out of sequence order, so scan for the minimum
                // rather than assuming FIFO order.
                if let Some((oldest, min_seq)) =
                    guard.iter().enumerate().min_by_key(|(_, r)| r.seq).map(|(i, r)| (i, r.seq))
                {
                    if seq < min_seq {
                        return seq; // stale record: everything here is newer
                    }
                    guard.swap_remove(oldest);
                }
            }
            guard.push(record);
        }
        seq
    }

    /// The most recent `n` records, newest first (by sequence number).
    ///
    /// Shards are snapshotted one at a time (no two locks held at once);
    /// the merged view is consistent per shard and totally ordered by
    /// `seq` overall.
    #[must_use]
    pub fn recent(&self, n: usize) -> Vec<TraceRecord> {
        let mut all = self.collect_all();
        all.sort_unstable_by_key(|r| std::cmp::Reverse(r.seq));
        all.truncate(n);
        all
    }

    /// Retained records whose handler latency is at least `threshold_us`,
    /// slowest first (ties broken newest first).
    #[must_use]
    pub fn slow(&self, threshold_us: u64) -> Vec<TraceRecord> {
        let mut hits: Vec<TraceRecord> =
            self.collect_all().into_iter().filter(|r| r.latency_us >= threshold_us).collect();
        hits.sort_unstable_by(|a, b| b.latency_us.cmp(&a.latency_us).then(b.seq.cmp(&a.seq)));
        hits
    }

    fn collect_all(&self) -> Vec<TraceRecord> {
        let mut all = Vec::with_capacity(self.capacity());
        for shard in &self.shards {
            let guard = shard.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            all.extend(guard.iter().cloned());
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Arc;
    use std::thread;

    fn record(route: &'static str, latency_us: u64) -> TraceRecord {
        TraceRecord { latency_us, ..TraceRecord::new(route) }
    }

    #[test]
    fn capacity_rounds_up_to_shard_multiple() {
        assert_eq!(TraceRing::new(0).capacity(), SHARDS);
        assert_eq!(TraceRing::new(1).capacity(), SHARDS);
        assert_eq!(TraceRing::new(64).capacity(), 64);
        assert_eq!(TraceRing::new(65).capacity(), 72);
    }

    #[test]
    fn recent_returns_newest_first() {
        let ring = TraceRing::new(16);
        for i in 0..10u64 {
            ring.push(record("search", i + 1));
        }
        let recent = ring.recent(4);
        let seqs: Vec<u64> = recent.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, [9, 8, 7, 6]);
        assert_eq!(ring.pushed(), 10);
        assert_eq!(ring.len(), 10);
        assert!(!ring.is_empty());
    }

    #[test]
    fn wraparound_keeps_exactly_the_most_recent_capacity() {
        let ring = TraceRing::new(16);
        for i in 0..100u64 {
            ring.push(record("search", i));
        }
        assert_eq!(ring.pushed(), 100);
        assert_eq!(ring.len(), 16);
        let seqs: BTreeSet<u64> = ring.recent(usize::MAX).iter().map(|r| r.seq).collect();
        let expected: BTreeSet<u64> = (84..100).collect();
        assert_eq!(seqs, expected, "retained set is exactly the newest capacity seqs");
    }

    #[test]
    fn slow_filters_and_sorts_by_latency() {
        let ring = TraceRing::new(16);
        for latency in [5u64, 500, 50, 5000] {
            ring.push(record("search", latency));
        }
        let slow = ring.slow(50);
        let lat: Vec<u64> = slow.iter().map(|r| r.latency_us).collect();
        assert_eq!(lat, [5000, 500, 50]);
        assert!(ring.slow(1_000_000).is_empty());
    }

    #[test]
    fn concurrent_writers_reconcile_exactly() {
        // 8 writers × 500 records into a 64-slot ring: every push must be
        // counted, the retained set must be exactly the 64 newest sequence
        // numbers, and no record may be duplicated or lost in between.
        const WRITERS: usize = 8;
        const PER_WRITER: u64 = 500;
        const CAPACITY: usize = 64;

        let ring = Arc::new(TraceRing::new(CAPACITY));
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let ring = Arc::clone(&ring);
                thread::spawn(move || {
                    for i in 0..PER_WRITER {
                        ring.push(record("search", (w as u64) * 1000 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer thread");
        }

        let total = WRITERS as u64 * PER_WRITER;
        assert_eq!(ring.pushed(), total, "every push counted");
        assert_eq!(ring.len(), CAPACITY, "ring full after wraparound");

        let retained = ring.recent(usize::MAX);
        assert_eq!(retained.len(), CAPACITY);
        let seqs: BTreeSet<u64> = retained.iter().map(|r| r.seq).collect();
        assert_eq!(seqs.len(), CAPACITY, "no duplicate sequence numbers");
        let expected: BTreeSet<u64> = (total - CAPACITY as u64..total).collect();
        assert_eq!(seqs, expected, "exactly the newest {CAPACITY} records survive");

        // Newest-first ordering holds over the merged view.
        let ordered: Vec<u64> = retained.iter().map(|r| r.seq).collect();
        assert!(ordered.windows(2).all(|w| w[0] > w[1]), "recent() is strictly newest-first");
    }
}
