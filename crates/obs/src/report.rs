//! Machine-readable run reports.

use crate::histogram::HistogramReport;
use crate::json;
use crate::SpanNode;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One node of the serialised span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanReport {
    /// Span name (one path segment).
    pub name: String,
    /// How many times a span with this path finished.
    pub count: u64,
    /// Total time across all finishes, in nanoseconds.
    pub total_ns: u64,
    /// Nested spans in first-recorded order.
    pub children: Vec<SpanReport>,
}

pub(crate) fn span_report(name: &str, node: &SpanNode) -> SpanReport {
    SpanReport {
        name: name.to_owned(),
        count: node.count,
        total_ns: u64::try_from(node.total.as_nanos()).unwrap_or(u64::MAX),
        children: node.children.iter().map(|(n, c)| span_report(n, c)).collect(),
    }
}

impl SpanReport {
    /// Find a direct or transitive descendant (or self) by name; the first
    /// match in depth-first order wins.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&SpanReport> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// Snapshot of everything an [`Obs`](crate::Obs) handle recorded.
///
/// Serialises to a stable JSON shape:
///
/// ```json
/// {
///   "meta": { "dataset": "ios", "scale": "0.1" },
///   "spans": [
///     { "name": "resolve", "count": 1, "total_ns": 123,
///       "children": [ ... ] }
///   ],
///   "counters": { "merge.comparisons": 42 },
///   "gauges": { "merge.frontier": 7 },
///   "histograms": {
///     "query.latency": { "count": 10, "sum_ns": 1, "min_ns": 1,
///                        "max_ns": 9, "mean_ns": 4, "p50_ns": 4,
///                        "p95_ns": 9, "p99_ns": 9,
///                        "buckets": [[1, 3], [8, 7]] }
///   }
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Free-form labels callers attach before writing (dataset, scale,
    /// seed, …).
    pub meta: Vec<(String, String)>,
    /// Root spans in first-recorded order.
    pub spans: Vec<SpanReport>,
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram snapshots, sorted by name.
    pub histograms: Vec<(String, HistogramReport)>,
}

impl RunReport {
    /// Attach a metadata label (builder-style).
    #[must_use]
    pub fn with_meta(mut self, key: &str, value: impl ToString) -> Self {
        self.meta.push((key.to_owned(), value.to_string()));
        self
    }

    /// Counter value by name, `None` if never recorded.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Histogram snapshot by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramReport> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Root span (or any descendant) by name, depth-first.
    #[must_use]
    pub fn span(&self, name: &str) -> Option<&SpanReport> {
        self.spans.iter().find_map(|s| s.find(name))
    }

    /// Render in the Prometheus text exposition format: counters (with a
    /// `_total` suffix), gauges, and histograms (nanosecond unit, `_ns`
    /// suffix, cumulative `le` buckets plus `+Inf`/`_sum`/`_count`), all
    /// under the `snaps_` prefix. Byte-deterministic for a given report;
    /// see the `prom` module docs for the exact naming rules.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        self.render_prometheus(&mut out);
        out
    }

    /// Append the Prometheus exposition to `out` — the allocation-free
    /// variant serving the `/metrics?format=prom` hot path, which renders
    /// into a reusable per-worker buffer.
    pub fn render_prometheus(&self, out: &mut String) {
        crate::prom::render_into(self, out);
    }

    /// Serialise to pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.render_json(&mut out);
        out
    }

    /// Append the pretty-printed JSON report to `out` — the
    /// allocation-free variant serving the `/metrics` hot path, which
    /// renders into a reusable per-worker buffer.
    pub fn render_json(&self, out: &mut String) {
        // Sized to the entry counts so the per-request render never regrows
        // mid-loop (each entry line is well under the per-slot estimate).
        out.reserve(
            256 + 64 * (self.meta.len() + self.counters.len() + self.gauges.len())
                + 512 * self.histograms.len()
                + 256 * self.spans.len(),
        );
        out.push_str("{\n");

        json::key(out, 1, "meta");
        out.push_str("{\n");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            json::key(out, 2, k);
            json::string(out, v);
            out.push_str(if i + 1 < self.meta.len() { ",\n" } else { "\n" });
        }
        json::indent(out, 1);
        out.push_str("},\n");

        json::key(out, 1, "spans");
        write_span_array(out, &self.spans, 1);
        out.push_str(",\n");

        json::key(out, 1, "counters");
        out.push_str("{\n");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            json::key(out, 2, k);
            let _ = write!(out, "{v}");
            out.push_str(if i + 1 < self.counters.len() { ",\n" } else { "\n" });
        }
        json::indent(out, 1);
        out.push_str("},\n");

        json::key(out, 1, "gauges");
        out.push_str("{\n");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            json::key(out, 2, k);
            let _ = write!(out, "{v}");
            out.push_str(if i + 1 < self.gauges.len() { ",\n" } else { "\n" });
        }
        json::indent(out, 1);
        out.push_str("},\n");

        json::key(out, 1, "histograms");
        out.push_str("{\n");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            json::key(out, 2, k);
            write_histogram(out, h, 2);
            out.push_str(if i + 1 < self.histograms.len() { ",\n" } else { "\n" });
        }
        json::indent(out, 1);
        out.push_str("}\n");

        out.push('}');
    }

    /// Write the JSON report to `path` (trailing newline included).
    ///
    /// # Errors
    /// Propagates filesystem errors from creating or writing the file.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut json = self.to_json();
        json.push('\n');
        std::fs::write(path, json)
    }
}

fn write_span_array(out: &mut String, spans: &[SpanReport], level: usize) {
    if spans.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push_str("[\n");
    for (i, s) in spans.iter().enumerate() {
        json::indent(out, level + 1);
        out.push_str("{ ");
        json::string(out, "name");
        out.push_str(": ");
        json::string(out, &s.name);
        let _ =
            write!(out, ", \"count\": {}, \"total_ns\": {}, \"children\": ", s.count, s.total_ns);
        write_span_array(out, &s.children, level + 1);
        out.push_str(" }");
        out.push_str(if i + 1 < spans.len() { ",\n" } else { "\n" });
    }
    json::indent(out, level);
    out.push(']');
}

fn write_histogram(out: &mut String, h: &HistogramReport, level: usize) {
    out.push_str("{\n");
    let fields = [
        ("count", h.count),
        ("sum_ns", h.sum_ns),
        ("min_ns", h.min_ns),
        ("max_ns", h.max_ns),
        ("mean_ns", h.mean_ns),
        ("p50_ns", h.p50_ns),
        ("p95_ns", h.p95_ns),
        ("p99_ns", h.p99_ns),
    ];
    for (k, v) in fields {
        json::key(out, level + 1, k);
        let _ = write!(out, "{v}");
        out.push_str(",\n");
    }
    json::key(out, level + 1, "buckets");
    out.push('[');
    for (i, (lo, c)) in h.buckets.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "[{lo}, {c}]");
    }
    out.push_str("]\n");
    json::indent(out, level);
    out.push('}');
}

#[cfg(test)]
mod tests {
    use crate::{Obs, ObsConfig};
    use std::time::Duration;

    fn sample_report() -> crate::RunReport {
        let obs = Obs::new(&ObsConfig::full());
        let root = obs.span("resolve");
        root.child("blocking").finish();
        root.child("merge").finish();
        root.finish();
        obs.counter("merge.accepted").add(3);
        obs.gauge("frontier").set(-2);
        let h = obs.histogram("query.latency");
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(200));
        obs.report().unwrap().with_meta("dataset", "ios").with_meta("quote\"key", "v")
    }

    #[test]
    fn json_contains_all_sections_in_order() {
        let json = sample_report().to_json();
        let order = ["\"meta\"", "\"spans\"", "\"counters\"", "\"gauges\"", "\"histograms\""];
        let mut pos = 0;
        for key in order {
            let at =
                json[pos..].find(key).unwrap_or_else(|| panic!("{key} missing or out of order"));
            pos += at;
        }
        assert!(json.contains("\"resolve\""));
        assert!(json.contains("\"blocking\""));
        assert!(json.contains("\"merge.accepted\": 3"));
        assert!(json.contains("\"frontier\": -2"));
        assert!(json.contains("\"p95_ns\""));
        assert!(json.contains("\\\"key"), "meta keys are escaped");
        assert!(json.ends_with('}'));
    }

    #[test]
    fn lookup_helpers_find_recorded_data() {
        let report = sample_report();
        assert_eq!(report.counter("merge.accepted"), Some(3));
        assert_eq!(report.counter("missing"), None);
        assert_eq!(report.histogram("query.latency").unwrap().count, 2);
        assert_eq!(report.span("resolve").unwrap().children.len(), 2);
        assert_eq!(report.span("blocking").unwrap().count, 1, "finds nested spans");
    }

    #[test]
    fn write_to_creates_file() {
        let report = sample_report();
        let path = std::env::temp_dir().join("snaps_obs_report_test.json");
        report.write_to(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.trim_end(), report.to_json());
        let _ = std::fs::remove_file(&path);
    }
}
