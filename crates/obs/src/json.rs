//! Minimal JSON emission helpers.
//!
//! The obs crate is dependency-free by design, so run reports are written
//! with this small hand-rolled emitter instead of serde. Only the pieces a
//! [`RunReport`](crate::RunReport) needs exist: escaped strings, integers,
//! and nested objects/arrays with pretty indentation.

use std::fmt::Write;

/// Append `s` as a JSON string literal (with escaping) to `out`.
pub(crate) fn string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `indent` levels of two-space indentation.
pub(crate) fn indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Append a `"key": ` prefix at the given indentation.
pub(crate) fn key(out: &mut String, level: usize, name: &str) {
    indent(out, level);
    string(out, name);
    out.push_str(": ");
}

#[cfg(test)]
mod tests {
    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        super::string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
