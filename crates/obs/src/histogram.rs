//! Fixed-bucket latency histogram with percentile readout.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Values below this are bucketed exactly (one bucket per nanosecond).
const LINEAR_LIMIT: u64 = 8;
/// Sub-buckets per octave above the linear region.
const SUBDIVISIONS: u64 = 8;
/// Total bucket count: the linear region plus `SUBDIVISIONS` buckets for
/// each octave from `log2(LINEAR_LIMIT)` through 63.
const BUCKETS: usize = (LINEAR_LIMIT + (64 - LINEAR_LIMIT.ilog2() as u64) * SUBDIVISIONS) as usize;

/// Index of the bucket covering `ns`.
///
/// Below [`LINEAR_LIMIT`] buckets are exact; above it each power-of-two
/// octave is split into [`SUBDIVISIONS`] equal sub-buckets, bounding the
/// relative quantisation error by `1 / SUBDIVISIONS` (12.5%).
fn bucket_index(ns: u64) -> usize {
    if ns < LINEAR_LIMIT {
        return ns as usize;
    }
    let octave = 63 - u64::from(ns.leading_zeros()); // >= log2(LINEAR_LIMIT)
    let base_octave = u64::from(LINEAR_LIMIT.ilog2());
    let sub = (ns >> (octave - base_octave)) & (SUBDIVISIONS - 1);
    (LINEAR_LIMIT + (octave - base_octave) * SUBDIVISIONS + sub) as usize
}

/// Inclusive lower bound (in ns) of bucket `i` — the inverse of
/// [`bucket_index`].
fn bucket_lower(i: usize) -> u64 {
    let i = i as u64;
    if i < LINEAR_LIMIT {
        return i;
    }
    let base_octave = u64::from(LINEAR_LIMIT.ilog2());
    let octave = base_octave + (i - LINEAR_LIMIT) / SUBDIVISIONS;
    let sub = (i - LINEAR_LIMIT) % SUBDIVISIONS;
    (SUBDIVISIONS + sub) << (octave - base_octave)
}

/// Exclusive upper bound (in ns) of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i + 1 < BUCKETS {
        bucket_lower(i + 1)
    } else {
        u64::MAX
    }
}

/// Exclusive upper bound (ns) of the bucket whose inclusive lower bound is
/// `lo` — lets the Prometheus writer reconstruct `le` bounds from the
/// `(lower, count)` pairs a [`HistogramReport`] stores. The unbounded top
/// bucket answers `u64::MAX`.
pub(crate) fn upper_for_lower(lo: u64) -> u64 {
    bucket_upper(bucket_index(lo))
}

/// Thread-safe latency histogram with a fixed sub-octave bucket layout.
///
/// Recording is lock-free (one relaxed atomic add per sample plus min/max
/// updates); readout walks the bucket array. Durations are quantised with
/// at most 12.5% relative error; `count`, `sum`, `min` and `max` are exact.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record one sample.
    pub fn record(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        if let Some(b) = self.buckets.get(bucket_index(ns)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples; zero when empty.
    #[must_use]
    pub fn sum(&self) -> Duration {
        Duration::from_nanos(self.sum_ns.load(Ordering::Relaxed))
    }

    /// Exact smallest sample, `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<Duration> {
        (self.count() > 0).then(|| Duration::from_nanos(self.min_ns.load(Ordering::Relaxed)))
    }

    /// Exact largest sample, `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<Duration> {
        (self.count() > 0).then(|| Duration::from_nanos(self.max_ns.load(Ordering::Relaxed)))
    }

    /// Mean sample, `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<Duration> {
        let n = self.count();
        (n > 0).then(|| Duration::from_nanos(self.sum_ns.load(Ordering::Relaxed) / n))
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`), `None` when empty.
    ///
    /// Finds the bucket holding the target rank and interpolates linearly
    /// within it; the result is clamped to the exact observed `[min, max]`.
    #[must_use]
    pub fn percentile(&self, q: f64) -> Option<Duration> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank in 1..=n of the sample we want.
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                // Interpolate the rank's position within this bucket.
                let lo = bucket_lower(i) as f64;
                let hi = bucket_upper(i).min(self.max_ns.load(Ordering::Relaxed)) as f64;
                let frac = (rank - seen) as f64 / c as f64;
                let est = lo + (hi - lo) * frac;
                let min = self.min_ns.load(Ordering::Relaxed) as f64;
                let max = self.max_ns.load(Ordering::Relaxed) as f64;
                return Some(Duration::from_nanos(est.clamp(min, max) as u64));
            }
            seen += c;
        }
        self.max()
    }

    /// Snapshot for inclusion in a run report. (Named `snapshot`, not
    /// `report`, so a name-based call-graph fallback cannot confuse it
    /// with [`Obs::report`](crate::Obs::report), which calls it under the
    /// histogram-registry lock.)
    #[must_use]
    pub fn snapshot(&self) -> HistogramReport {
        let nonzero = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((bucket_lower(i), c))
            })
            .collect();
        HistogramReport {
            count: self.count(),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            min_ns: self.min().map_or(0, |d| d.as_nanos() as u64),
            max_ns: self.max().map_or(0, |d| d.as_nanos() as u64),
            mean_ns: self.mean().map_or(0, |d| d.as_nanos() as u64),
            p50_ns: self.percentile(0.50).map_or(0, |d| d.as_nanos() as u64),
            p95_ns: self.percentile(0.95).map_or(0, |d| d.as_nanos() as u64),
            p99_ns: self.percentile(0.99).map_or(0, |d| d.as_nanos() as u64),
            buckets: nonzero,
        }
    }
}

/// Point-in-time histogram snapshot, all durations in nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramReport {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum_ns: u64,
    /// Exact minimum (0 when empty).
    pub min_ns: u64,
    /// Exact maximum (0 when empty).
    pub max_ns: u64,
    /// Mean (0 when empty).
    pub mean_ns: u64,
    /// Estimated median.
    pub p50_ns: u64,
    /// Estimated 95th percentile.
    pub p95_ns: u64,
    /// Estimated 99th percentile.
    pub p99_ns: u64,
    /// `(bucket_lower_bound_ns, sample_count)` for every non-empty bucket.
    pub buckets: Vec<(u64, u64)>,
}

/// Possibly-inert handle to a shared [`Histogram`]; the inert form (from a
/// disabled or low-verbosity [`Obs`](crate::Obs)) ignores all records.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Option<Arc<Histogram>>);

impl HistogramHandle {
    pub(crate) fn new(inner: Option<Arc<Histogram>>) -> Self {
        Self(inner)
    }

    /// Record one sample (no-op when inert).
    pub fn record(&self, d: Duration) {
        if let Some(h) = &self.0 {
            h.record(d);
        }
    }

    /// Access the underlying histogram, `None` when inert.
    #[must_use]
    pub fn histogram(&self) -> Option<&Histogram> {
        self.0.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_consistent() {
        for i in 0..BUCKETS {
            let lo = bucket_lower(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i} maps back");
            if i + 1 < BUCKETS {
                assert!(bucket_lower(i + 1) > lo, "bounds strictly increase at {i}");
                assert_eq!(bucket_index(bucket_lower(i + 1) - 1), i, "upper edge of {i}");
            }
        }
        // Largest representable value lands in the last bucket.
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn empty_histogram_reads_none() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.min().is_none());
        assert!(h.max().is_none());
        assert!(h.mean().is_none());
        assert!(h.percentile(0.5).is_none());
    }

    #[test]
    fn exact_stats_and_percentile_ordering() {
        let h = Histogram::new();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min().unwrap(), Duration::from_millis(1));
        assert_eq!(h.max().unwrap(), Duration::from_millis(100));

        let p50 = h.percentile(0.50).unwrap();
        let p95 = h.percentile(0.95).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        assert!(p50 <= p95 && p95 <= p99, "{p50:?} {p95:?} {p99:?}");
        // Quantisation error is bounded by one sub-octave (12.5%).
        let approx = |d: Duration, target_ms: u64| {
            let t = Duration::from_millis(target_ms);
            d >= t.mul_f64(0.8) && d <= t.mul_f64(1.2)
        };
        assert!(approx(p50, 50), "p50 {p50:?}");
        assert!(approx(p95, 95), "p95 {p95:?}");
        assert!(approx(p99, 99), "p99 {p99:?}");
    }

    #[test]
    fn single_sample_percentiles_are_exact() {
        let h = Histogram::new();
        h.record(Duration::from_micros(123));
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q).unwrap(), Duration::from_micros(123));
        }
        assert_eq!(h.mean().unwrap(), Duration::from_micros(123));
    }

    #[test]
    fn report_buckets_cover_all_samples() {
        let h = Histogram::new();
        for us in [1u64, 10, 100, 1000, 10_000] {
            h.record(Duration::from_micros(us));
        }
        let r = h.snapshot();
        assert_eq!(r.count, 5);
        assert_eq!(r.buckets.iter().map(|(_, c)| c).sum::<u64>(), 5);
        assert!(r.p50_ns <= r.p95_ns && r.p95_ns <= r.p99_ns);
        assert!(r.min_ns <= r.p50_ns && r.p99_ns <= r.max_ns);
    }
}
