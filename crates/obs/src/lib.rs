//! Zero-dependency instrumentation for the SNAPS pipeline.
//!
//! This crate provides the observability layer used across the workspace:
//!
//! - **Hierarchical span timers** — RAII guards over monotonic clocks
//!   ([`std::time::Instant`]). Spans form a tree keyed by `/`-separated
//!   paths (`resolve/merge/pass_1`); repeated spans with the same path
//!   accumulate count and total duration.
//! - **Atomic counters and gauges** — cheap handles backed by
//!   [`std::sync::atomic`] integers, safe to bump from hot loops.
//! - **Latency histograms** — fixed sub-octave bucket layout with
//!   p50/p95/p99 readout (see [`Histogram`]).
//! - **[`RunReport`]** — a snapshot of the whole tree serialised to JSON by
//!   a built-in writer (no serde; the crate has zero dependencies).
//!
//! The entry point is [`Obs`]: a cheaply clonable handle that is either
//! *enabled* (shared recording state) or *disabled* (all operations
//! no-ops). Construct one from an [`ObsConfig`]:
//!
//! ```
//! use snaps_obs::{Obs, ObsConfig, Verbosity};
//!
//! let obs = Obs::new(&ObsConfig { enabled: true, verbosity: Verbosity::Full });
//! let span = obs.span("resolve");
//! let child = span.child("blocking");
//! obs.counter("comparisons").add(42);
//! child.finish();
//! span.finish();
//! let report = obs.report().expect("enabled");
//! assert!(report.to_json().contains("\"blocking\""));
//! ```
//!
//! When `enabled` is `false`, [`Obs::span`] still measures elapsed time
//! (its [`SpanGuard::finish`] returns a real [`Duration`], which the
//! pipeline uses for its own stats) but records nothing, and counter /
//! gauge / histogram handles are inert — the only cost left on the hot
//! path is a branch on an `Option` that is always `None`.

#![forbid(unsafe_code)]

mod histogram;
mod json;
mod prom;
mod report;
mod trace;

pub use histogram::{Histogram, HistogramHandle, HistogramReport};
pub use report::{RunReport, SpanReport};
pub use trace::{TraceRecord, TraceRing, DEFAULT_TRACE_CAPACITY};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How much the instrumentation layer records.
///
/// Levels are cumulative: each level records everything the previous one
/// does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verbosity {
    /// Span timings only.
    Spans,
    /// Spans plus counters and gauges.
    Counters,
    /// Everything, including latency histograms.
    Full,
}

/// Instrumentation switch carried on pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Master switch; when `false` every instrumentation call is a no-op.
    pub enabled: bool,
    /// Recording level when enabled.
    pub verbosity: Verbosity,
}

impl Default for ObsConfig {
    /// Disabled; the pipeline pays no instrumentation cost by default.
    fn default() -> Self {
        Self { enabled: false, verbosity: Verbosity::Full }
    }
}

impl ObsConfig {
    /// Config with instrumentation fully on.
    #[must_use]
    pub fn full() -> Self {
        Self { enabled: true, verbosity: Verbosity::Full }
    }
}

/// Aggregated state for one span path.
#[derive(Debug, Default)]
pub(crate) struct SpanNode {
    pub(crate) count: u64,
    pub(crate) total: Duration,
    /// Children in first-recorded order, so reports read in phase order.
    pub(crate) children: Vec<(String, SpanNode)>,
}

impl SpanNode {
    fn child_mut(&mut self, name: &str) -> Option<&mut SpanNode> {
        // Linear scan: span trees are small (tens of nodes) and this
        // preserves insertion order for the report. Ensure-then-find keeps
        // the function total (the find always succeeds after the push).
        if self.children.iter().all(|(n, _)| n != name) {
            self.children.push((name.to_owned(), SpanNode::default()));
        }
        self.children.iter_mut().find(|(n, _)| n == name).map(|(_, node)| node)
    }

    fn record(&mut self, path: &str, elapsed: Duration) {
        let mut node = self;
        for seg in path.split('/') {
            match node.child_mut(seg) {
                Some(n) => node = n,
                None => return,
            }
        }
        node.count += 1;
        node.total += elapsed;
    }
}

/// Shared recording state behind an enabled [`Obs`].
#[derive(Debug)]
struct ObsInner {
    verbosity: Verbosity,
    spans: Mutex<SpanNode>,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// Handle to the instrumentation layer.
///
/// Cloning is cheap (an [`Arc`] clone when enabled, a copy of `None` when
/// disabled); clones share the same recording state.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// Build a handle from configuration; disabled configs produce the
    /// no-op handle.
    #[must_use]
    pub fn new(cfg: &ObsConfig) -> Self {
        if !cfg.enabled {
            return Self::disabled();
        }
        Self {
            inner: Some(Arc::new(ObsInner {
                verbosity: cfg.verbosity,
                spans: Mutex::new(SpanNode::default()),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// The no-op handle: every operation does nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this handle records anything at all.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Start a root-level span. The guard records into the span tree when
    /// finished (or dropped); nested spans come from [`SpanGuard::child`].
    ///
    /// Even when disabled the guard measures real elapsed time, so callers
    /// can use [`SpanGuard::finish`] as their single timing source.
    #[must_use]
    pub fn span(&self, name: &str) -> SpanGuard {
        SpanGuard {
            obs: self.clone(),
            path: if self.inner.is_some() { name.to_owned() } else { String::new() },
            start: Instant::now(),
            finished: false,
        }
    }

    /// Counter handle for `name`, creating it on first use. Inert unless
    /// verbosity is at least [`Verbosity::Counters`].
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.named_atomic(name, Verbosity::Counters, |i| &i.counters))
    }

    /// Gauge handle for `name`, creating it on first use. Inert unless
    /// verbosity is at least [`Verbosity::Counters`].
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.named_atomic(name, Verbosity::Counters, |i| &i.gauges))
    }

    /// Histogram handle for `name`, creating it on first use. Inert unless
    /// verbosity is [`Verbosity::Full`].
    #[must_use]
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        HistogramHandle::new(self.named_atomic(name, Verbosity::Full, |i| &i.histograms))
    }

    fn named_atomic<T: Default>(
        &self,
        name: &str,
        min_verbosity: Verbosity,
        map: impl Fn(&ObsInner) -> &Mutex<BTreeMap<String, Arc<T>>>,
    ) -> Option<Arc<T>> {
        let inner = self.inner.as_ref()?;
        if inner.verbosity < min_verbosity {
            return None;
        }
        // Registry maps only ever gain entries; a panic mid-insert cannot
        // leave them inconsistent, so a poisoned lock is safe to re-enter.
        let mut guard = map(inner).lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        Some(Arc::clone(guard.entry(name.to_owned()).or_default()))
    }

    fn record_span(&self, path: &str, elapsed: Duration) {
        if let Some(inner) = &self.inner {
            // A partially-recorded span tree is still a valid tree; re-enter
            // a poisoned lock rather than take the whole service down.
            inner
                .spans
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .record(path, elapsed);
        }
    }

    /// Snapshot everything recorded so far; `None` when disabled.
    #[must_use]
    pub fn report(&self) -> Option<RunReport> {
        // Snapshots tolerate a poisoned lock: the registries are append-only
        // and the span tree is valid at every step, so re-entering yields a
        // consistent (if slightly stale) report.
        let inner = self.inner.as_ref()?;
        let spans = {
            let tree = inner.spans.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            tree.children.iter().map(|(n, c)| report::span_report(n, c)).collect()
        };
        let counters = {
            let map = inner.counters.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            map.iter().map(|(n, v)| (n.clone(), v.load(Ordering::Relaxed))).collect()
        };
        let gauges = {
            let map = inner.gauges.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            map.iter().map(|(n, v)| (n.clone(), v.load(Ordering::Relaxed))).collect()
        };
        let histograms = {
            let map = inner.histograms.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            map.iter().map(|(n, h)| (n.clone(), h.snapshot())).collect()
        };
        Some(RunReport { meta: Vec::new(), spans, counters, gauges, histograms })
    }
}

/// RAII timer for one span. Created by [`Obs::span`] / [`SpanGuard::child`];
/// records its elapsed time into the span tree on [`finish`](Self::finish)
/// or drop.
#[derive(Debug)]
pub struct SpanGuard {
    obs: Obs,
    path: String,
    start: Instant,
    finished: bool,
}

impl SpanGuard {
    /// Start a nested span under this one.
    #[must_use]
    pub fn child(&self, name: &str) -> SpanGuard {
        SpanGuard {
            obs: self.obs.clone(),
            path: if self.obs.inner.is_some() {
                format!("{}/{}", self.path, name)
            } else {
                String::new()
            },
            start: Instant::now(),
            finished: false,
        }
    }

    /// Stop the timer, record the span, and return the measured duration.
    ///
    /// The returned duration is real even on a disabled handle, so callers
    /// can keep a single timing source for their own statistics.
    pub fn finish(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        self.finished = true;
        self.obs.record_span(&self.path, elapsed);
        elapsed
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.finished {
            let elapsed = self.start.elapsed();
            self.obs.record_span(&self.path, elapsed);
        }
    }
}

/// Monotonically increasing counter handle; inert when instrumentation is
/// off.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 when inert).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Signed gauge handle (a value that can go up and down); inert when
/// instrumentation is off.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// Overwrite the gauge value.
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value (0 when inert).
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn full() -> Obs {
        Obs::new(&ObsConfig::full())
    }

    #[test]
    fn disabled_handle_is_inert_but_times() {
        let obs = Obs::new(&ObsConfig::default());
        assert!(!obs.is_enabled());
        let span = obs.span("root");
        let d = span.finish();
        assert!(d >= Duration::ZERO);
        obs.counter("c").add(5);
        assert_eq!(obs.counter("c").get(), 0);
        obs.histogram("h").record(Duration::from_millis(1));
        assert!(obs.report().is_none());
    }

    #[test]
    fn span_tree_accumulates_by_path() {
        let obs = full();
        let root = obs.span("resolve");
        for _ in 0..3 {
            root.child("merge").finish();
        }
        root.child("refine").finish();
        root.finish();

        let report = obs.report().unwrap();
        assert_eq!(report.spans.len(), 1);
        let resolve = &report.spans[0];
        assert_eq!(resolve.name, "resolve");
        assert_eq!(resolve.count, 1);
        let names: Vec<&str> = resolve.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["merge", "refine"], "children keep first-recorded order");
        assert_eq!(resolve.children[0].count, 3);
        assert_eq!(resolve.children[1].count, 1);
    }

    #[test]
    fn dropped_span_still_records() {
        let obs = full();
        {
            let _span = obs.span("dropped");
        }
        let report = obs.report().unwrap();
        assert_eq!(report.spans[0].name, "dropped");
        assert_eq!(report.spans[0].count, 1);
    }

    #[test]
    fn counters_and_gauges_share_state_across_handles() {
        let obs = full();
        let a = obs.counter("hits");
        let b = obs.counter("hits");
        a.add(2);
        b.incr();
        assert_eq!(a.get(), 3);

        let g = obs.gauge("depth");
        g.set(10);
        g.add(-3);
        assert_eq!(obs.gauge("depth").get(), 7);

        let report = obs.report().unwrap();
        assert_eq!(report.counters, vec![("hits".to_owned(), 3)]);
        assert_eq!(report.gauges, vec![("depth".to_owned(), 7)]);
    }

    #[test]
    fn verbosity_gates_recording() {
        let obs = Obs::new(&ObsConfig { enabled: true, verbosity: Verbosity::Spans });
        obs.counter("c").incr();
        obs.histogram("h").record(Duration::from_micros(5));
        obs.span("s").finish();
        let report = obs.report().unwrap();
        assert!(report.counters.is_empty());
        assert!(report.histograms.is_empty());
        assert_eq!(report.spans.len(), 1);

        let obs = Obs::new(&ObsConfig { enabled: true, verbosity: Verbosity::Counters });
        obs.counter("c").incr();
        obs.histogram("h").record(Duration::from_micros(5));
        let report = obs.report().unwrap();
        assert_eq!(report.counters.len(), 1);
        assert!(report.histograms.is_empty());
    }

    #[test]
    fn counters_are_thread_safe() {
        let obs = full();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = obs.counter("shared");
                thread::spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(obs.counter("shared").get(), 4000);
    }

    #[test]
    fn clone_shares_recording_state() {
        let obs = full();
        let clone = obs.clone();
        clone.counter("c").add(9);
        assert_eq!(obs.counter("c").get(), 9);
    }
}
