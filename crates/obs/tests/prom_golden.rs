//! Golden-file test for the Prometheus text exposition.
//!
//! Builds a fully deterministic report (fixed counters, gauges, spans, and
//! histogram samples — no wall clock involved) and checks the rendered
//! exposition byte-for-byte against the committed golden file, twice, so
//! any accidental nondeterminism or format drift fails loudly.
//!
//! To regenerate after an intentional format change:
//! `SNAPS_UPDATE_GOLDEN=1 cargo test -p snaps-obs --test prom_golden`

use snaps_obs::{Obs, ObsConfig};
use std::time::Duration;

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/prom_exposition.txt");

fn deterministic_report() -> snaps_obs::RunReport {
    let obs = Obs::new(&ObsConfig::full());
    obs.counter("serve.requests").add(42);
    obs.counter("serve.route.search.2xx").add(40);
    obs.counter("index.sim_cache.hits").add(1000);
    obs.counter("index.sim_cache.misses").add(17);
    obs.gauge("serve.queue_depth").set(3);
    obs.gauge("serve.inflight").set(-1);
    obs.gauge("pipeline.rps.blocking").set(125_000);
    let h = obs.histogram("query.latency");
    for us in [3u64, 9, 10, 11, 90, 400, 400, 1500, 65_000, 2_000_000] {
        h.record(Duration::from_micros(us));
    }
    obs.report().expect("enabled").with_meta("dataset", "golden")
}

#[test]
fn exposition_matches_committed_golden_file() {
    let report = deterministic_report();
    let rendered = report.to_prometheus();
    assert_eq!(rendered, report.to_prometheus(), "two renders of one report must be identical");
    assert_eq!(
        rendered,
        deterministic_report().to_prometheus(),
        "two identically-built reports must render identically"
    );

    if std::env::var_os("SNAPS_UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &rendered).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("missing golden file — run with SNAPS_UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        rendered, golden,
        "prometheus exposition drifted from the committed golden file; \
         if intentional, regenerate with SNAPS_UPDATE_GOLDEN=1"
    );
}
