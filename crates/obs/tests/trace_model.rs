//! Exhaustive-interleaving model check for `TraceRing`'s sharded
//! min-seq eviction.
//!
//! `loom` is not available offline, so this is a hand-rolled state-space
//! enumeration: `push` is modelled as two atomic steps — (A) take a
//! sequence number from the global counter, (B) lock the shard and
//! insert, evicting per policy — and every interleaving of the threads'
//! steps is explored by depth-first search over which thread moves next.
//! Two steps is the faithful granularity: the real `fetch_add` and the
//! mutex-guarded shard mutation are each atomic, and the race window is
//! exactly the gap between them.
//!
//! Two policies are checked:
//!
//! - **drop-stale** (the shipped policy): a full shard evicts its
//!   smallest sequence number, unless the incoming record is older than
//!   all of them, in which case the incoming record is dropped. The model
//!   proves the ring's documented invariant — the retained set is exactly
//!   the newest `capacity` sequence numbers — over *every* interleaving.
//! - **naive-evict** (the policy this replaced): always evict the shard
//!   minimum. The model finds the stale-writer counterexample — a thread
//!   that stalls between step A and step B re-inserts an old record over
//!   a newer one — proving the drop rule is load-bearing, not defensive.

use std::collections::BTreeSet;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Policy {
    DropStale,
    NaiveEvict,
}

/// The two-step model of the ring: only sequence numbers are tracked,
/// because eviction depends on nothing else.
#[derive(Clone)]
struct Model {
    next: u64,
    shards: Vec<Vec<u64>>,
    per_shard: usize,
    policy: Policy,
}

impl Model {
    fn new(shards: usize, per_shard: usize, policy: Policy) -> Self {
        Self { next: 0, shards: vec![Vec::new(); shards], per_shard, policy }
    }

    /// Step A: `next_seq.fetch_add(1)`.
    fn acquire(&mut self) -> u64 {
        let s = self.next;
        self.next += 1;
        s
    }

    /// Step B: the mutex-guarded shard mutation in `TraceRing::push`.
    fn insert(&mut self, seq: u64) {
        let idx = usize::try_from(seq).unwrap_or(usize::MAX) % self.shards.len();
        let Some(shard) = self.shards.get_mut(idx) else { return };
        if shard.len() >= self.per_shard {
            if let Some(pos) = (0..shard.len()).min_by_key(|&i| shard[i]) {
                if self.policy == Policy::DropStale && seq < shard[pos] {
                    return;
                }
                shard.swap_remove(pos);
            }
        }
        shard.push(seq);
    }

    fn retained(&self) -> BTreeSet<u64> {
        self.shards.iter().flatten().copied().collect()
    }

    fn capacity(&self) -> usize {
        self.shards.len() * self.per_shard
    }
}

/// One thread's progress: pushes left to start, plus a sequence number
/// acquired in step A and not yet inserted in step B.
type ThreadState = (usize, Option<u64>);

/// Outcome of exploring every schedule to completion.
struct Exploration {
    schedules: u64,
    /// Final retained sets that violated the newest-`capacity` invariant,
    /// deduplicated.
    violations: BTreeSet<Vec<u64>>,
}

fn explore(model: &Model, threads: &[ThreadState], out: &mut Exploration) {
    let mut moved = false;
    for t in 0..threads.len() {
        let (remaining, pending) = threads[t];
        let mut m = model.clone();
        let mut ts = threads.to_vec();
        match pending {
            Some(seq) => {
                m.insert(seq);
                ts[t] = (remaining, None);
            }
            None if remaining > 0 => {
                let seq = m.acquire();
                ts[t] = (remaining - 1, Some(seq));
            }
            None => continue,
        }
        moved = true;
        explore(&m, &ts, out);
    }
    if !moved {
        // Quiescent: every thread finished both steps of every push.
        out.schedules += 1;
        let total = model.next;
        let cap = u64::try_from(model.capacity()).unwrap_or(u64::MAX);
        let expected: BTreeSet<u64> = (total.saturating_sub(cap)..total).collect();
        let retained = model.retained();
        if retained != expected {
            out.violations.insert(retained.into_iter().collect());
        }
    }
}

fn run(shards: usize, per_shard: usize, threads: usize, pushes: usize, policy: Policy) -> Exploration {
    let model = Model::new(shards, per_shard, policy);
    let start = vec![(pushes, None); threads];
    let mut out = Exploration { schedules: 0, violations: BTreeSet::new() };
    explore(&model, &start, &mut out);
    out
}

#[test]
fn drop_stale_retains_exactly_the_newest_capacity_in_every_interleaving() {
    // 3 writers × 2 pushes into a 2-shard, capacity-4 ring: 12 steps,
    // 12!/(4!·4!·4!) = 34 650 schedules, all enumerated.
    let out = run(2, 2, 3, 2, Policy::DropStale);
    assert_eq!(out.schedules, 34_650, "full schedule space covered");
    assert!(out.violations.is_empty(), "violating retained sets: {:?}", out.violations);
}

#[test]
fn drop_stale_survives_deep_overtaking_with_tiny_shards() {
    // 2 writers × 4 pushes, per-shard capacity 1: one stalled step B can
    // be overtaken by up to 7 later sequence numbers.
    let out = run(2, 1, 2, 4, Policy::DropStale);
    assert_eq!(out.schedules, 12_870, "16!/(8!·8!) schedules covered");
    assert!(out.violations.is_empty(), "violating retained sets: {:?}", out.violations);
}

#[test]
fn naive_min_evict_loses_a_newer_record_to_a_stale_writer() {
    // Same spaces under the replaced policy: the DFS must find the
    // stale-writer interleaving where an old sequence number survives a
    // newer one — the reason `push` drops stale records instead.
    let out = run(2, 1, 2, 4, Policy::NaiveEvict);
    assert!(!out.violations.is_empty(), "model failed to find the stale-writer counterexample");
    let stale_survivor = out.violations.iter().flatten().any(|&seq| seq < 6);
    assert!(stale_survivor, "violations retain a stale seq: {:?}", out.violations);
}

#[test]
fn model_matches_the_real_ring_on_sequential_schedules() {
    // On the single-thread schedule the model and the real structure must
    // agree exactly — anchors the model to the implementation.
    use snaps_obs::{TraceRecord, TraceRing};
    let ring = TraceRing::new(4); // rounds up to 8 slots, 1 per shard
    let mut model = Model::new(8, 1, Policy::DropStale);
    for _ in 0..20 {
        ring.push(TraceRecord::new("search"));
        let seq = model.acquire();
        model.insert(seq);
    }
    let real: BTreeSet<u64> = ring.recent(usize::MAX).iter().map(|r| r.seq).collect();
    assert_eq!(real, model.retained());
    assert_eq!(ring.len(), model.retained().len());
}
