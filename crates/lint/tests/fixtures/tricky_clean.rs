// Fixture: every banned name below sits inside a comment, string, raw
// string, or char literal — none of them is code, so the scanner must not
// fire a single rule. Mentions: HashMap, Instant, thread_rng, unwrap(),
// std::process, unsafe.
/* block comment with std::net::TcpListener and panic!("x") inside,
   /* nested, with x.unwrap() too */ still a comment */
fn messages() -> Vec<String> {
    vec![
        String::from("use std::collections::HashMap;"),
        String::from("let t = Instant::now();"),
        String::from("x.unwrap() // not real"),
        "std::thread::spawn".to_string(),
        r"raw: rand::thread_rng() and SystemTime".to_string(),
        r#"raw hash: unsafe { *p } and buf[i]"#.to_string(),
        "escaped quote \" then panic!(\"boom\")".to_string(),
    ]
}

fn chars() -> (char, char) {
    // A lifetime and a char literal must not confuse the string scanner.
    ('[', '"')
}

fn lifetime<'a>(s: &'a str) -> &'a str {
    s
}
