//! Fixture workspace: the pipeline main folds per-record match counts
//! through a `HashMap` digest and hands the result to the snapshot
//! writer — iteration order taints the serialized bytes.
use snaps_core::resolve;
use snaps_serve::save;

fn main() {
    let digest = resolve();
    save(digest);
}
