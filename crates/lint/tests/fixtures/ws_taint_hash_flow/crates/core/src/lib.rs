//! Resolution digest folded in `HashMap` iteration order: the
//! determinism hazard the taint pass must chase into the sink.
use std::collections::HashMap;

pub fn resolve() -> u64 {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    counts.insert(1, 2);
    let mut digest = 0u64;
    for (k, v) in counts {
        digest = digest.wrapping_mul(31).wrapping_add(k ^ v);
    }
    digest
}
