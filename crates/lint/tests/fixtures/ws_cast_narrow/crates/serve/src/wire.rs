//! Fixture workspace: an unchecked narrowing cast in the wire codec — the
//! length prefix silently truncates past `u32::MAX`.

pub fn pack(len: u64) -> u32 {
    len as u32
}
