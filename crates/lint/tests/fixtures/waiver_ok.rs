// Fixture: a well-formed waiver silences the finding on its line and on the
// line a standalone annotation precedes.
use std::collections::HashMap; // snaps-lint: allow(hash-iter) -- fixture probe, order never observed

// snaps-lint: allow(wall-clock) -- fixture probe, value is discarded
fn now() -> std::time::Instant {
    std::time::Instant::now() // snaps-lint: allow(wall-clock) -- fixture probe, value is discarded
}

fn keyed() -> HashMap<u8, u8> { // snaps-lint: allow(hash-iter) -- fixture probe, order never observed
    HashMap::new() // snaps-lint: allow(hash-iter) -- fixture probe, order never observed
}
