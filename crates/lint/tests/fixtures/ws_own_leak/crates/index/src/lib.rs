//! Bottom of the fixture chain: a snapshot-resident type whose accessor
//! returns an owned `String` built by cloning `self` state — the copy the
//! zero-copy layout must eliminate.

pub struct Snapshot {
    name: String,
}

impl Snapshot {
    pub fn title(&self) -> String {
        self.name.clone()
    }
}
