//! Fixture workspace: the `GET /search` handler reaches a
//! snapshot-resident accessor that clones owned state out instead of
//! lending it — the borrow-not-own shape pass 6 must flag.
use snaps_index::Snapshot;

pub fn search(snap: &Snapshot) {
    snap.title();
}
