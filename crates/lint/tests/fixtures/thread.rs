// Fixture: thread-containment must fire outside serve/bench/obs.
fn fan_out() {
    let h = std::thread::spawn(|| 42);
    let _ = h.join();
}
