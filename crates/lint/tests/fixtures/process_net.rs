// Fixture: process-net must fire outside serve/bench.
use std::net::TcpListener;

fn shell_out() {
    let _ = std::process::Command::new("ls").status();
}

fn listen() -> std::io::Result<TcpListener> {
    TcpListener::bind("127.0.0.1:0")
}
