//! Blocking-stage root with a per-shard local accumulator: each call
//! owns its `Vec`, so shards cannot race.

pub fn candidate_pairs() -> Vec<(u32, u32)> {
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    pairs.push((1, 2));
    pairs.sort();
    pairs
}
