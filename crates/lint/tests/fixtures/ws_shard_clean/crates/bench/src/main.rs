//! Fixture workspace: same pipeline shape as `ws_shard_shared_push`,
//! but the blocking root accumulates into a per-call local and returns
//! it — the shard-safe shape the rule must accept.
use snaps_blocking::candidate_pairs;

fn main() {
    candidate_pairs();
}
