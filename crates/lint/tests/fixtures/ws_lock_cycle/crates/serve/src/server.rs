//! Fixture workspace: two-crate lock-order cycle. GET /search reaches
//! `Gate::reload`, which locks `Gate.m` and then calls into the index
//! crate (locking `Store.m`), and `Store::commit`, which locks `Store.m`
//! and calls back into `Gate::refresh` (locking `Gate.m`).
use snaps_index::{store_touch, store_write};

pub struct Gate;

impl Gate {
    pub fn refresh(&self) {
        let g = self.m.lock();
        g.push(1);
    }

    fn reload(&self) {
        let g = self.m.lock();
        store_touch();
        g.push(1);
    }
}

pub fn search(gate: &Gate) {
    gate.reload();
    store_write(gate);
}
