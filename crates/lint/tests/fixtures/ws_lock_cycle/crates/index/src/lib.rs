//! Index half of the cycle: `Store::commit` locks `Store.m`, then calls
//! its handle back by name (method fallback — the index crate must not
//! import `snaps_serve`, which would invert the layering DAG).
struct Store;

impl Store {
    fn commit(&self, handle: &H) {
        let g = self.m.lock();
        handle.refresh();
        g.push(1);
    }

    fn bump(&self) {
        let g = self.m.lock();
        g.push(1);
    }
}

pub fn store_write(handle: &H) {
    let s = Store;
    s.commit(handle);
}

pub fn store_touch() {
    let s = Store;
    s.bump();
}
