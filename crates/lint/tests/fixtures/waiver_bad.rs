// Fixture: bad waivers are findings themselves.
// An unknown rule name:
// snaps-lint: allow(no-such-rule) -- misspelled
fn a() {}

// A missing reason:
// snaps-lint: allow(hash-iter)
fn b() {}

// An unwaivable rule:
// snaps-lint: allow(allow-budget) -- nice try
fn c() {}
