//! Fixture workspace: lock discipline. `search` holds a let-bound guard
//! across a call into the `obs` crate; `metrics` scopes the guard in an
//! inner block and releases it before the cross-crate call.
use snaps_obs::bump;

pub struct Ctx;

pub fn search(ctx: &Ctx) {
    let g = ctx.m.lock();
    g.push(1);
    bump();
}

pub fn metrics(ctx: &Ctx) {
    {
        let g = ctx.m.lock();
        g.push(1);
    }
    bump();
}
