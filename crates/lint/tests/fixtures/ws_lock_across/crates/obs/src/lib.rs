//! Cross-crate callee for the lock-discipline fixture.

pub fn bump() {}
