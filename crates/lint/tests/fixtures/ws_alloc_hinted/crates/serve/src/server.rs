//! Fixture workspace: same pipeline shape as `ws_alloc_unbounded`, but
//! the accumulator is constructed with a capacity hint — the bounded
//! shape the alloc-budget rule must accept.
use snaps_query::run_query;

pub fn search() {
    run_query();
}
