//! Bottom of the fixture chain: the same loop-carried growth as
//! `ws_alloc_unbounded`, made bounded by the `with_capacity` hint.

pub fn run_query() -> Vec<u32> {
    let mut hits: Vec<u32> = Vec::with_capacity(16);
    for i in candidates() {
        hits.push(i);
    }
    hits
}

fn candidates() -> Vec<u32> {
    Vec::with_capacity(4)
}
