// Fixture: a #[cfg(test)] module is stripped before rules run, so the
// violations inside it are invisible — except no-unsafe, which is checked
// everywhere (but not present here).
fn production() -> u32 {
    41 + 1
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn helper() {
        let t = Instant::now();
        let mut m = HashMap::new();
        m.insert(1u8, t.elapsed());
        assert!(m.get(&1).unwrap().as_nanos() < u128::MAX);
        let v = vec![1, 2, 3];
        assert_eq!(v[0], 1);
    }
}
