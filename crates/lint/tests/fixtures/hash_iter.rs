// Fixture: hash-iter must fire in a result-affecting crate.
use std::collections::HashMap;
use std::collections::HashSet;

fn build() -> HashMap<String, usize> {
    let mut m = HashMap::new();
    m.insert(String::from("a"), 1);
    let _s: HashSet<u32> = HashSet::new();
    m
}
