//! Cross-file reference keeps `used_helper` alive.
use snaps_core::used_helper;

fn total() -> u32 {
    used_helper()
}
