//! Fixture workspace: one referenced pub item, one orphan.

pub fn used_helper() -> u32 {
    1
}

pub fn orphan_helper() -> u32 {
    2
}
