//! Fixture workspace: clean numeric casts on the snapshot path. Widening,
//! int→float, and a checked-helper narrowing must all stay silent.

pub fn load(bytes: &[u8]) -> u64 {
    let n: u32 = head(bytes);
    let wide = n as u64;
    let ratio = bytes.len() as f64;
    let small = try_narrow(wide) as u32;
    finish(wide, ratio, small)
}

fn head(_bytes: &[u8]) -> u32 {
    7
}

fn try_narrow(_wide: u64) -> u32 {
    3
}

fn finish(_wide: u64, _ratio: f64, _small: u32) -> u64 {
    0
}
