// Fixture: wall-clock must fire in a result-affecting crate.
use std::time::Instant;

fn timed() -> u64 {
    let t = Instant::now();
    let s = std::time::SystemTime::now();
    drop(s);
    t.elapsed().as_nanos() as u64
}
