//! Fixture workspace: blocking call under a held guard. GET /search takes
//! the connection lock, then drains the queue; `Q::drain` blocks on
//! `.recv()` with the caller's guard still live.

pub struct Q;

impl Q {
    fn drain(&self) {
        let _msg = self.rx.recv();
    }
}

pub fn search(q: &Q) {
    let g = q.m.lock();
    g.push(1);
    q.drain();
}
