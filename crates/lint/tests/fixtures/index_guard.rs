// Fixture: index-guard must fire on the serve request path.
fn first(buf: &[u8], i: usize) -> u8 {
    buf[i]
}
