//! Blocking-stage root pushing into a process-wide accumulator: every
//! shard would contend on (and interleave into) `FOUND`.
use std::sync::Mutex;

static FOUND: Mutex<Vec<(u32, u32)>> = Mutex::new(Vec::new());

pub fn candidate_pairs() {
    FOUND.lock().push((1, 2));
}
