//! Fixture workspace: the pipeline main drives the blocking stage,
//! whose root accumulates candidate pairs into a shared static — the
//! shard-safety rule must reject it before the stage is parallelised.
use snaps_blocking::candidate_pairs;

fn main() {
    candidate_pairs();
}
