// Fixture: entropy must fire in a result-affecting crate.
fn roll() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

fn reseed() -> u64 {
    let rng = SmallRng::from_entropy();
    rng.next_u64()
}
