//! Fixture workspace: a symmetric single-section wire codec — the encoder
//! and decoder agree on every primitive and on the length-prefix
//! convention, so pass 5 must stay silent.

const FORMAT_VERSION: u32 = 1;

mod section {
    pub(crate) const META: u32 = 1;
}

fn encode_meta(m: &Meta) -> Vec<u8> {
    let mut w = Writer::new();
    w.f64(m.threshold);
    w.u32(len_u32(m.names.len()));
    for name in &m.names {
        w.string(name);
    }
    w.into_bytes()
}

fn decode_meta(bytes: &[u8]) -> Result<Meta, SnapshotError> {
    let mut r = Reader::new(bytes);
    let threshold = r.f64()?;
    let n = r.len(4)?;
    let names = (0..n).map(|_| r.string()).collect::<Result<Vec<_>, _>>()?;
    Ok(Meta { threshold, names })
}

fn to_bytes(m: &Meta) -> Vec<u8> {
    assemble(vec![(section::META, encode_meta(m))])
}

fn from_bytes(bytes: &[u8]) -> Result<Meta, SnapshotError> {
    let sections = parse(bytes)?;
    decode_meta(find(&sections, section::META)?)
}
