//! Resolution digest folded in `BTreeMap` (sorted) iteration order —
//! deterministic, so the taint pass must stay silent.
use std::collections::BTreeMap;

pub fn resolve() -> u64 {
    let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
    counts.insert(1, 2);
    let mut digest = 0u64;
    for (k, v) in counts {
        digest = digest.wrapping_mul(31).wrapping_add(k ^ v);
    }
    digest
}
