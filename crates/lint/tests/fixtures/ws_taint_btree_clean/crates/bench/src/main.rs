//! Fixture workspace: identical shape to `ws_taint_hash_flow` but the
//! digest folds over a `BTreeMap` — ordered iteration, no taint.
use snaps_core::resolve;
use snaps_serve::save;

fn main() {
    let digest = resolve();
    save(digest);
}
