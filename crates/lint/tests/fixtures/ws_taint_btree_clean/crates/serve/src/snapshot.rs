//! Snapshot writer: a serialisation sink — whatever reaches `save`
//! lands in the on-disk image.

pub fn save(digest: u64) {
    let _ = digest;
}
