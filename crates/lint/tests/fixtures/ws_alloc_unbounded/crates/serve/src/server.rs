//! Fixture workspace: the `GET /search` handler reaches a loop-carried
//! `push` on an un-capacity-hinted local one crate away. Only the pass-6
//! graph rule can see the chain from the entry to the growth site.
use snaps_query::run_query;

pub fn search() {
    run_query();
}
