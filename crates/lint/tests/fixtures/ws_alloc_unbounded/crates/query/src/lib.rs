//! Bottom of the fixture chain: a per-request accumulator constructed
//! without a capacity hint and grown inside a loop — the unbounded class
//! the hard zero gate must reject.

pub fn run_query() -> Vec<u32> {
    let mut hits: Vec<u32> = Vec::new();
    for i in candidates() {
        hits.push(i);
    }
    hits
}

fn candidates() -> Vec<u32> {
    Vec::with_capacity(4)
}
