//! Fixture workspace: a waiver for a finding that no longer exists. The
//! workspace pass must flag it as stale.

pub fn steady() -> u32 {
    // snaps-lint: allow(hash-iter) -- iteration order was fixed long ago
    7
}
