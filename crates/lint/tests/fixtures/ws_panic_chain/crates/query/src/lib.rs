//! Middle hop of the fixture chain.
use snaps_core::lookup;

pub fn run_query() -> u32 {
    lookup()
}
