//! Bottom of the fixture chain: the panic site the graph rule must reach.

pub fn lookup() -> u32 {
    maybe().unwrap()
}

fn maybe() -> Option<u32> {
    None
}
