//! Fixture workspace: the `GET /search` handler reaches a panic site two
//! crates away (serve → query → core). The panic lives outside the
//! token-checked serve files, so only the graph rule can see it.
use snaps_query::run_query;

pub fn search() {
    run_query();
}
