// Fixture: no-unsafe must fire everywhere, even in test code.
fn sneaky(p: *const u8) -> u8 {
    unsafe { *p }
}
