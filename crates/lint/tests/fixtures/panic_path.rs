// Fixture: panic-path must fire on the serve request path.
fn handle(input: Option<&str>) -> String {
    let v = input.unwrap();
    let n: usize = v.parse().expect("bad number");
    if n > 10 {
        panic!("too big");
    }
    unreachable!()
}
