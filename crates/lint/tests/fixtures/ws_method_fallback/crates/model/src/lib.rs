//! Decoy: a second `tally` with a panic. The caller's crate has its own
//! `tally`, so the same-crate preference must keep this one out of the
//! fallback edge set.

pub struct Ledger {
    rows: Vec<u64>,
}

impl Ledger {
    pub fn tally(&self, row: usize) -> u64 {
        *self.rows.get(row).unwrap()
    }
}
