//! Fallback target: the only workspace method named `observe`.

pub struct Registry {
    slots: Vec<u64>,
}

impl Registry {
    pub fn observe(&self, slot: usize) -> u64 {
        *self.slots.get(slot).unwrap()
    }
}
