//! Fixture workspace: method-call resolution fallback. `reg.observe(..)`
//! has no path qualifier, so it resolves by name to every workspace method
//! called `observe` — here only `obs::Registry::observe`, which panics.
//! `g.tally(..)` also exists in the `model` crate with a panic, but the
//! same-crate candidate (`Gauge::tally`, clean) wins, so no finding.

pub struct Gauge;

impl Gauge {
    pub fn tally(&self, _n: u64) {}
}

pub fn search(reg: &Registry, g: &Gauge) {
    g.tally(1);
    reg.observe(7);
}
