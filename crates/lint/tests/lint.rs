//! Fixture battery for snaps-lint: every rule must fire on its violation
//! fixture, the tricky string/comment fixture must stay silent, waivers must
//! be honoured or rejected, and — the self-test — the real workspace must be
//! lint-clean within the allow budget.

use std::path::Path;

use snaps_lint::rules::{check_source, FileClass, Finding};
use snaps_lint::{layering, wireschema, workspace, Report, ALLOW_BUDGET};

macro_rules! fixture {
    ($name:literal) => {
        include_str!(concat!("fixtures/", $name))
    };
}

/// A result-affecting library file (determinism rules apply).
fn result_class() -> FileClass {
    FileClass {
        crate_name: "core".into(),
        result_affecting: true,
        panic_free: false,
        test_code: false,
    }
}

/// A serve request-path file (panic-freedom rules apply).
fn panic_class() -> FileClass {
    FileClass {
        crate_name: "serve".into(),
        result_affecting: false,
        panic_free: true,
        test_code: false,
    }
}

/// A plain library file in a crate with no special privileges.
fn lib_class(name: &str) -> FileClass {
    FileClass { crate_name: name.into(), ..FileClass::default() }
}

fn unwaived(findings: &[Finding]) -> Vec<&Finding> {
    findings.iter().filter(|f| !f.waived).collect()
}

fn rules_fired(findings: &[Finding]) -> Vec<&'static str> {
    unwaived(findings).iter().map(|f| f.rule).collect()
}

#[test]
fn hash_iter_fixture_fires() {
    let (f, _) = check_source(&result_class(), "f.rs", fixture!("hash_iter.rs"));
    let fired = rules_fired(&f);
    assert!(fired.len() >= 2, "HashMap and HashSet both flagged: {f:?}");
    assert!(fired.iter().all(|r| *r == "hash-iter"), "{f:?}");
    // The same source is fine in a non-result-affecting crate.
    let (f, _) = check_source(&lib_class("serve"), "f.rs", fixture!("hash_iter.rs"));
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn wall_clock_fixture_fires() {
    let (f, _) = check_source(&result_class(), "f.rs", fixture!("wall_clock.rs"));
    let fired = rules_fired(&f);
    assert!(fired.len() >= 2, "Instant and SystemTime both flagged: {f:?}");
    assert!(fired.iter().all(|r| *r == "wall-clock"), "{f:?}");
}

#[test]
fn entropy_fixture_fires() {
    let (f, _) = check_source(&result_class(), "f.rs", fixture!("entropy.rs"));
    let fired = rules_fired(&f);
    assert!(fired.len() >= 2, "thread_rng and from_entropy both flagged: {f:?}");
    assert!(fired.iter().all(|r| *r == "entropy"), "{f:?}");
}

#[test]
fn panic_path_fixture_fires() {
    let (f, _) = check_source(&panic_class(), "f.rs", fixture!("panic_path.rs"));
    let fired = rules_fired(&f);
    assert_eq!(fired.len(), 4, "unwrap, expect, panic!, unreachable!: {f:?}");
    assert!(fired.iter().all(|r| *r == "panic-path"), "{f:?}");
    // Off the panic-free path the same source is fine.
    let (f, _) = check_source(&lib_class("core"), "f.rs", fixture!("panic_path.rs"));
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn index_guard_fixture_fires() {
    let (f, _) = check_source(&panic_class(), "f.rs", fixture!("index_guard.rs"));
    assert_eq!(rules_fired(&f), vec!["index-guard"], "{f:?}");
}

#[test]
fn thread_fixture_fires_outside_allowed_crates() {
    let (f, _) = check_source(&lib_class("core"), "f.rs", fixture!("thread.rs"));
    assert_eq!(rules_fired(&f), vec!["thread-containment"], "{f:?}");
    for ok in ["serve", "bench", "obs"] {
        let (f, _) = check_source(&lib_class(ok), "f.rs", fixture!("thread.rs"));
        assert!(f.is_empty(), "thread is allowed in {ok}: {f:?}");
    }
}

#[test]
fn process_net_fixture_fires_outside_allowed_crates() {
    let (f, _) = check_source(&lib_class("model"), "f.rs", fixture!("process_net.rs"));
    let fired = rules_fired(&f);
    assert!(fired.len() >= 3, "std::net, std::process, TcpListener: {f:?}");
    assert!(fired.iter().all(|r| *r == "process-net"), "{f:?}");
    for ok in ["serve", "bench"] {
        let (f, _) = check_source(&lib_class(ok), "f.rs", fixture!("process_net.rs"));
        assert!(f.is_empty(), "process/net is allowed in {ok}: {f:?}");
    }
}

#[test]
fn unsafe_fixture_fires_even_as_test_code() {
    let class = FileClass { test_code: true, ..lib_class("bench") };
    let (f, _) = check_source(&class, "f.rs", fixture!("no_unsafe.rs"));
    assert_eq!(rules_fired(&f), vec!["no-unsafe"], "{f:?}");
}

#[test]
fn tricky_fixture_is_silent_under_the_strictest_class() {
    // Every banned name appears only in comments, strings, raw strings, or
    // char literals; with every rule family armed, nothing may fire.
    let class = FileClass {
        crate_name: "core".into(),
        result_affecting: true,
        panic_free: true,
        test_code: false,
    };
    let (f, anns) = check_source(&class, "f.rs", fixture!("tricky_clean.rs"));
    assert!(f.is_empty(), "{f:?}");
    assert!(anns.is_empty(), "no annotations in this fixture: {anns:?}");
}

#[test]
fn cfg_test_fixture_is_silent() {
    let (f, _) = check_source(&result_class(), "f.rs", fixture!("cfg_test_clean.rs"));
    assert!(f.is_empty(), "#[cfg(test)] regions are stripped: {f:?}");
}

#[test]
fn valid_waivers_silence_all_findings() {
    let (f, anns) = check_source(&result_class(), "f.rs", fixture!("waiver_ok.rs"));
    assert!(!f.is_empty(), "the violations are still recorded");
    assert!(f.iter().all(|x| x.waived), "every finding is waived: {f:?}");
    assert_eq!(anns.len(), 5);
    assert!(anns.iter().all(|a| a.error.is_none()), "{anns:?}");
}

#[test]
fn bad_waivers_are_findings_themselves() {
    let (f, _) = check_source(&result_class(), "f.rs", fixture!("waiver_bad.rs"));
    let fired = rules_fired(&f);
    assert_eq!(fired, vec!["annotation"; 3], "unknown rule, missing reason, unwaivable: {f:?}");
}

#[test]
fn layering_rejects_upward_use() {
    // core reaching for the query layer inverts the DAG.
    assert_eq!(layering::check_use_ident("core", "snaps_query"), Some("query".to_string()));
    // query using core is the DAG's direction.
    assert_eq!(layering::check_use_ident("query", "snaps_core"), None);
    // A bin target importing its own lib is self-reference, not layering.
    assert_eq!(layering::check_use_ident("serve", "snaps_serve"), None);
}

#[test]
fn layering_rejects_manifest_smuggling() {
    let toml = "[package]\nname = \"snaps-core\"\n\n[dependencies]\nsnaps-serve = { path = \"../serve\" }\n";
    let f = layering::check_manifest("core", "crates/core/Cargo.toml", toml);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "layering");
}

/// Root of a mini-workspace fixture tree. These trees are never compiled —
/// the walker reads them as source text, and real workspace runs skip any
/// directory named `fixtures`.
fn fixture_ws(name: &str) -> Report {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures").join(name);
    workspace::run(&root).unwrap_or_else(|e| panic!("walk fixture workspace {name}: {e}"))
}

fn active_by_rule<'a>(report: &'a Report, rule: &str) -> Vec<&'a Finding> {
    report.active_findings().into_iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn ws_panic_chain_fixture_prints_the_call_chain() {
    let report = fixture_ws("ws_panic_chain");
    let panics = active_by_rule(&report, "panic-reachability");
    assert_eq!(panics.len(), 1, "{panics:?}");
    let f = panics[0];
    assert_eq!(f.file, "crates/core/src/lib.rs");
    assert!(f.message.contains("GET /search"), "entry label named: {}", f.message);
    assert!(
        f.message.contains("serve::server::search → query::run_query → core::lookup"),
        "full chain printed: {}",
        f.message
    );
}

#[test]
fn ws_method_fallback_fixture_resolves_by_name_with_same_crate_preference() {
    let report = fixture_ws("ws_method_fallback");
    let panics = active_by_rule(&report, "panic-reachability");
    // `reg.observe(..)` falls back to the only workspace `observe` (obs,
    // panics); `g.tally(..)` binds to the caller-crate `Gauge::tally`, so
    // the panicking `model::Ledger::tally` decoy must not be reported.
    assert_eq!(panics.len(), 1, "{panics:?}");
    assert_eq!(panics[0].file, "crates/obs/src/lib.rs");
    assert!(panics[0].message.contains("obs::Registry::observe"), "{}", panics[0].message);
}

#[test]
fn ws_dead_pub_fixture_flags_only_the_orphan() {
    let report = fixture_ws("ws_dead_pub");
    let dead = active_by_rule(&report, "dead-pub");
    assert!(dead.iter().any(|f| f.message.contains("`orphan_helper`")), "{dead:?}");
    assert!(dead.iter().all(|f| !f.message.contains("`used_helper`")), "{dead:?}");
}

#[test]
fn ws_lock_across_fixture_flags_held_guard_only() {
    let report = fixture_ws("ws_lock_across");
    let locks = active_by_rule(&report, "lock-discipline");
    // `search` holds the guard across `bump()`; `metrics` releases it in an
    // inner block first, so exactly one call site fires.
    assert_eq!(locks.len(), 1, "{locks:?}");
    assert_eq!(locks[0].file, "crates/serve/src/server.rs");
    assert!(locks[0].message.contains("crate 'obs'"), "{}", locks[0].message);
}

#[test]
fn ws_lock_cycle_fixture_reports_both_chains() {
    let report = fixture_ws("ws_lock_cycle");
    let cycles = active_by_rule(&report, "lock-order");
    assert_eq!(cycles.len(), 1, "{cycles:?}");
    let msg = &cycles[0].message;
    assert!(
        msg.contains(
            "potential deadlock from GET /search: lock-order cycle Gate.m → Store.m → Gate.m"
        ),
        "ring named: {msg}"
    );
    assert!(
        msg.contains(
            "serve::server::search → serve::server::Gate::reload → index::store_touch → \
             index::Store::bump acquires Store.m at crates/index/src/lib.rs"
        ),
        "first edge chain: {msg}"
    );
    assert!(
        msg.contains(
            "serve::server::search → index::store_write → index::Store::commit → \
             serve::server::Gate::refresh acquires Gate.m at crates/serve/src/server.rs"
        ),
        "second edge chain: {msg}"
    );
    assert!(msg.contains("while holding Store.m"), "{msg}");
    assert_eq!(report.lock_cycles(), 1);
    let search = &report.callgraph.entry_points[0];
    assert_eq!(search.label, "GET /search");
    assert_eq!((search.lock_nodes, search.lock_edges, search.lock_cycles), (2, 2, 1));
}

#[test]
fn ws_blocking_recv_fixture_flags_the_transitive_wait() {
    let report = fixture_ws("ws_blocking_recv");
    let blocking = active_by_rule(&report, "blocking-under-lock");
    assert_eq!(blocking.len(), 1, "{blocking:?}");
    let f = blocking[0];
    assert_eq!(f.file, "crates/serve/src/server.rs");
    assert!(
        f.message.contains(
            "blocking call .recv() while holding serve.m, reachable from GET /search: \
             serve::server::search → serve::server::Q::drain"
        ),
        "{}",
        f.message
    );
    // the guard itself is legal: no lock-order cycle, no discipline finding
    assert!(active_by_rule(&report, "lock-order").is_empty());
    let search = &report.callgraph.entry_points[0];
    assert_eq!((search.lock_nodes, search.lock_edges, search.lock_cycles), (1, 0, 0));
}

#[test]
fn ws_cast_checked_fixture_is_silent_but_counted() {
    let report = fixture_ws("ws_cast_checked");
    assert!(active_by_rule(&report, "numeric-cast").is_empty(), "{report:?}");
    // Look the entry up by label: its table position moves as routes are
    // added ahead of it.
    let load = report
        .callgraph
        .entry_points
        .iter()
        .find(|e| e.label == "snapshot load")
        .expect("snapshot load entry");
    assert_eq!(load.cast_sites, 3, "widening + float + checked all counted");
}

#[test]
fn ws_cast_narrow_fixture_names_types_and_the_fix() {
    let report = fixture_ws("ws_cast_narrow");
    let casts = active_by_rule(&report, "numeric-cast");
    assert_eq!(casts.len(), 1, "{casts:?}");
    let f = casts[0];
    assert_eq!((f.file.as_str(), f.line), ("crates/serve/src/wire.rs", 5));
    assert_eq!(
        f.message,
        "narrowing cast to `u32` from `u64` on the snapshot path can silently truncate; \
         use `u32::try_from` or a recognized checked helper (len_u32-style)"
    );
}

#[test]
fn ws_stale_waiver_fixture_flags_the_waiver() {
    let report = fixture_ws("ws_stale_waiver");
    let stale = active_by_rule(&report, "waiver-staleness");
    assert_eq!(stale.len(), 1, "{stale:?}");
    assert!(stale[0].message.contains("hash-iter"), "{}", stale[0].message);
}

#[test]
fn ws_taint_hash_flow_fixture_prints_entry_and_taint_chains() {
    let report = fixture_ws("ws_taint_hash_flow");
    let taints = active_by_rule(&report, "determinism-taint");
    assert_eq!(taints.len(), 1, "{taints:?}");
    let f = taints[0];
    assert_eq!(f.file, "crates/core/src/lib.rs", "anchored at the seeding source");
    assert!(f.message.contains("`HashMap`/`HashSet` iteration"), "{}", f.message);
    assert!(f.message.contains("pipeline mains"), "{}", f.message);
    assert!(f.message.contains("serve::snapshot::save"), "{}", f.message);
    assert!(
        f.message.contains("bench::main → core::resolve"),
        "taint path down to the source: {}",
        f.message
    );
    let mains = report
        .callgraph
        .entry_points
        .iter()
        .find(|e| e.label == "pipeline mains")
        .expect("pipeline mains entry");
    assert_eq!(mains.taint_flows, 1, "flow counted on the entry that reaches it");
}

#[test]
fn ws_taint_btree_clean_fixture_is_silent() {
    let report = fixture_ws("ws_taint_btree_clean");
    assert!(
        active_by_rule(&report, "determinism-taint").is_empty(),
        "ordered iteration must not taint: {report:?}"
    );
    for e in &report.callgraph.entry_points {
        assert_eq!(e.taint_flows, 0, "entry '{}' sees a phantom flow", e.label);
    }
}

#[test]
fn ws_shard_shared_push_fixture_rejects_the_static_accumulator() {
    let report = fixture_ws("ws_shard_shared_push");
    let shards = active_by_rule(&report, "shard-safety");
    assert_eq!(shards.len(), 1, "{shards:?}");
    let f = shards[0];
    assert_eq!(f.file, "crates/blocking/src/pairs.rs");
    assert!(f.message.contains("shared static `FOUND`"), "{}", f.message);
    assert!(f.message.contains("blocking stage root"), "{}", f.message);
    assert!(
        !f.message.contains("lock-order graph"),
        "the key is on an entry path, so only the write fires: {}",
        f.message
    );
    let blocking = report
        .callgraph
        .shard_roots
        .iter()
        .find(|r| r.stage == "blocking")
        .expect("blocking shard root");
    assert_eq!((blocking.matched, blocking.violations), (1, 1), "{blocking:?}");
    let mains = report
        .callgraph
        .entry_points
        .iter()
        .find(|e| e.label == "pipeline mains")
        .expect("pipeline mains entry");
    assert_eq!(mains.shard_violations, 1, "the main reaches the racy write");
}

#[test]
fn ws_shard_clean_fixture_accepts_the_local_accumulator() {
    let report = fixture_ws("ws_shard_clean");
    assert!(
        active_by_rule(&report, "shard-safety").is_empty(),
        "per-call locals are shard-safe: {report:?}"
    );
    let blocking = report
        .callgraph
        .shard_roots
        .iter()
        .find(|r| r.stage == "blocking")
        .expect("blocking shard root");
    assert_eq!((blocking.matched, blocking.violations), (1, 0), "{blocking:?}");
    for e in &report.callgraph.entry_points {
        assert_eq!(e.shard_violations, 0, "entry '{}' sees a phantom violation", e.label);
    }
}

#[test]
fn ws_alloc_unbounded_fixture_flags_the_loop_carried_push() {
    let report = fixture_ws("ws_alloc_unbounded");
    let allocs = active_by_rule(&report, "alloc-budget");
    assert_eq!(allocs.len(), 1, "{allocs:?}");
    let f = allocs[0];
    assert_eq!(f.file, "crates/query/src/lib.rs");
    assert!(f.message.contains("GET /search"), "entry named: {}", f.message);
    assert!(
        f.message.contains("serve::server::search → query::run_query"),
        "entry chain printed: {}",
        f.message
    );
    assert!(f.message.contains("with_capacity/reserve"), "fix named: {}", f.message);
    let search = report
        .callgraph
        .entry_points
        .iter()
        .find(|e| e.label == "GET /search")
        .expect("search entry");
    assert_eq!(search.alloc_unbounded, 1, "{search:?}");
}

#[test]
fn ws_alloc_hinted_fixture_is_clean_and_counts_bounded_sites() {
    let report = fixture_ws("ws_alloc_hinted");
    assert!(
        active_by_rule(&report, "alloc-budget").is_empty(),
        "capacity-hinted growth is bounded: {report:?}"
    );
    let search = report
        .callgraph
        .entry_points
        .iter()
        .find(|e| e.label == "GET /search")
        .expect("search entry");
    assert_eq!(search.alloc_unbounded, 0, "{search:?}");
    assert!(search.alloc_bounded >= 2, "ctor + hinted push both counted: {search:?}");
}

#[test]
fn ws_own_leak_fixture_flags_the_owned_clone_accessor() {
    let report = fixture_ws("ws_own_leak");
    let leaks = active_by_rule(&report, "borrow-not-own");
    assert_eq!(leaks.len(), 1, "{leaks:?}");
    let f = leaks[0];
    assert_eq!(f.file, "crates/index/src/lib.rs");
    assert!(f.message.contains("Snapshot"), "resident type named: {}", f.message);
    assert!(f.message.contains("GET /search"), "entry named: {}", f.message);
    assert!(f.message.contains("lend a &str/slice"), "fix named: {}", f.message);
    let search = report
        .callgraph
        .entry_points
        .iter()
        .find(|e| e.label == "GET /search")
        .expect("search entry");
    assert_eq!(search.borrow_not_own, 1, "{search:?}");
}

fn real_workspace_root() -> std::path::PathBuf {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf();
    assert!(root.join("Cargo.toml").is_file(), "workspace root not found at {}", root.display());
    root
}

/// Acceptance: every declared entry point roots at least one function with
/// a non-empty reachable set, and the report is byte-identical across runs.
#[test]
fn workspace_entry_points_are_rooted_and_report_is_deterministic() {
    let root = real_workspace_root();
    let first = workspace::run(&root).expect("walk workspace");
    let second = workspace::run(&root).expect("walk workspace again");
    assert_eq!(first.to_json(), second.to_json(), "report must be deterministic");
    let entries = &first.callgraph.entry_points;
    assert!(entries.len() >= 4, "entry table: {entries:?}");
    for e in entries {
        assert!(e.roots >= 1, "entry '{}' has no root function", e.label);
        assert!(e.reachable >= 1, "entry '{}' reaches nothing", e.label);
    }
}

/// Pass 3 acceptance: the serve entry points are deadlock-free, the lock
/// and cast statistics are live, and the new rule families are enumerated
/// in the report even at zero findings.
#[test]
fn workspace_serve_entries_are_deadlock_free_and_new_rules_enumerated() {
    let root = real_workspace_root();
    let report = workspace::run(&root).expect("walk workspace");
    assert_eq!(report.lock_cycles(), 0, "lock-order cycles (waived or not) on the workspace");
    let entries = &report.callgraph.entry_points;
    for e in entries {
        assert_eq!(e.lock_cycles, 0, "entry '{}' has a lock-order cycle", e.label);
    }
    // The pass actually sees the workspace's locks and casts — the serve
    // handlers reach the index shard locks and the wire codec's casts.
    assert!(entries.iter().any(|e| e.lock_nodes > 0), "no entry reaches a lock: {entries:?}");
    assert!(entries.iter().any(|e| e.cast_sites > 0), "no entry reaches a cast: {entries:?}");
    let json = report.to_json();
    for rule in ["lock-order", "blocking-under-lock", "numeric-cast"] {
        assert!(json.contains(&format!("\"{rule}\"")), "rule {rule} enumerated in the report");
    }
}

/// Pass 4 acceptance: every declared parallel-stage root resolves to a
/// real function, the blocking and comparison stages carry zero shard
/// violations, no taint flow reaches a serialisation sink, and the pass-4
/// section of the report is byte-deterministic across a double run.
#[test]
fn workspace_shard_roots_resolve_clean_and_pass4_section_is_deterministic() {
    let root = real_workspace_root();
    let first = workspace::run(&root).expect("walk workspace");
    let second = workspace::run(&root).expect("walk workspace again");

    let roots = &first.callgraph.shard_roots;
    assert!(roots.len() >= 4, "declared stage table: {roots:?}");
    for r in roots {
        assert!(r.matched >= 1, "stage '{}' root {} matches no function", r.stage, r.root);
        assert!(r.reachable >= 1, "stage '{}' reaches nothing", r.stage);
        assert_eq!(r.violations, 0, "stage '{}' is not shard-safe: {r:?}", r.stage);
    }
    for e in &first.callgraph.entry_points {
        assert_eq!(e.taint_flows, 0, "entry '{}' leaks nondeterminism to a sink", e.label);
        assert_eq!(e.shard_violations, 0, "entry '{}' reaches a shard hazard", e.label);
    }

    // Byte-determinism of the pass-4 report section: the shard-root block
    // plus every line carrying the per-entry pass-4 counters.
    let pass4_section = |json: &str| -> String {
        let start = json.find("\"shard_roots\"").expect("shard_roots section");
        let end = json[start..].find(']').map(|i| start + i).expect("section close");
        let block = &json[start..=end];
        let counters: Vec<&str> = json
            .lines()
            .filter(|l| l.contains("\"taint_flows\"") || l.contains("\"shard_violations\""))
            .collect();
        format!("{block}\n{}", counters.join("\n"))
    };
    let (a, b) = (first.to_json(), second.to_json());
    assert_eq!(pass4_section(&a), pass4_section(&b), "pass-4 section must be byte-stable");
    assert!(a.contains("\"schema_version\": 6"), "schema bumped for the pass-6 fields");
    for rule in ["determinism-taint", "shard-safety", "forbid-unsafe"] {
        assert!(a.contains(&format!("\"{rule}\"")), "rule {rule} enumerated in the report");
    }
}

/// Pass 6 acceptance on the real workspace: every serve-path entry's
/// budget has zero unbounded-per-request allocation sites and zero
/// owned-clone snapshot accessors (mains and loaders run once, so their
/// budgets are recorded but not gated), the serve entries actually see
/// allocation sites (the pass is live, not vacuous), and the pass-6
/// columns are byte-deterministic across a double run.
#[test]
fn workspace_alloc_budgets_are_clean_and_pass6_section_is_deterministic() {
    let root = real_workspace_root();
    let first = workspace::run(&root).expect("walk workspace");
    let second = workspace::run(&root).expect("walk workspace again");

    for e in first.callgraph.entry_points.iter().filter(|e| e.serve_path) {
        assert_eq!(
            e.alloc_unbounded, 0,
            "serve entry '{}' reaches an unbounded per-request allocation",
            e.label
        );
        assert_eq!(
            e.borrow_not_own, 0,
            "serve entry '{}' reaches an owned-clone snapshot accessor",
            e.label
        );
    }
    assert!(
        first.callgraph.entry_points.iter().any(|e| e.alloc_bounded > 0 && e.alloc_data > 0),
        "the pass sees real allocation sites: {:?}",
        first.callgraph.entry_points
    );

    // Byte-determinism of the pass-6 report columns: every line carrying a
    // per-entry budget or a summary gate count.
    let pass6_section = |json: &str| -> String {
        json.lines()
            .filter(|l| {
                l.contains("\"alloc_bounded\"")
                    || l.contains("\"alloc_unbounded\"")
                    || l.contains("\"borrow_not_own\"")
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    let (a, b) = (first.to_json(), second.to_json());
    assert_eq!(pass6_section(&a), pass6_section(&b), "pass-6 section must be byte-stable");
    for rule in ["alloc-budget", "borrow-not-own"] {
        assert!(a.contains(&format!("\"{rule}\"")), "rule {rule} enumerated in the report");
    }
}

/// Satellite guard: every crate root in the workspace carries
/// `#![forbid(unsafe_code)]`, enforced by the forbid-unsafe token rule —
/// zero findings here means dropping the attribute anywhere breaks CI.
#[test]
fn workspace_crate_roots_all_forbid_unsafe() {
    let root = real_workspace_root();
    let report = workspace::run(&root).expect("walk workspace");
    let missing = active_by_rule(&report, "forbid-unsafe");
    assert!(missing.is_empty(), "crate roots missing #![forbid(unsafe_code)]: {missing:#?}");
}

/// Pass 5 fixture: a symmetric codec extracts its section in both
/// directions and raises none of the wire rules.
#[test]
fn wire_clean_fixture_extracts_silently() {
    let report = fixture_ws("ws_wire_clean");
    for rule in ["wire-symmetry", "wire-totality", "wire-drift"] {
        assert!(active_by_rule(&report, rule).is_empty(), "rule {rule} fired on the clean codec");
    }
    assert_eq!(report.wire.format_version, Some(1), "FORMAT_VERSION parsed from source");
    assert_eq!(report.wire.sections.len(), 1, "{:?}", report.wire.sections);
    let s = &report.wire.sections[0];
    assert_eq!(
        (s.id, s.name.as_str(), s.encoder.as_str(), s.decoder.as_str()),
        (1, "META", "encode_meta", "decode_meta"),
        "section registration extracted from to_bytes/from_bytes"
    );
    assert!(s.fields >= 2, "f64 plus the string sequence: {s:?}");
}

/// Pass 5 fixture: an encoder/decoder mismatch is reported as a
/// field-level diff carrying both call chains, and the raw-`u32` loop
/// bound is a separate totality finding.
#[test]
fn wire_asym_fixture_fires_symmetry_and_totality() {
    let report = fixture_ws("ws_wire_asym");
    let sym = active_by_rule(&report, "wire-symmetry");
    assert_eq!(sym.len(), 1, "{sym:#?}");
    let msg = &sym[0].message;
    assert!(msg.contains("section META"), "section named: {msg}");
    assert!(msg.contains("writes str") && msg.contains("reads u64"), "field diff typed: {msg}");
    assert!(
        msg.contains("encode_meta at crates/serve/src/snapshot.rs:18")
            && msg.contains("decode_meta at crates/serve/src/snapshot.rs:27"),
        "both call chains anchored to source lines: {msg}"
    );
    let tot = active_by_rule(&report, "wire-totality");
    assert_eq!(tot.len(), 1, "{tot:#?}");
    assert!(tot[0].message.contains("unchecked integer read"), "{}", tot[0].message);
    assert!(tot[0].message.contains("Reader::len"), "names the fix: {}", tot[0].message);
    assert!(active_by_rule(&report, "wire-drift").is_empty(), "no golden in this fixture");
}

/// Pass 5 fixture: a layout change at an unchanged FORMAT_VERSION against
/// the committed golden is a hard drift finding that shows the first
/// differing schema line and names both remedies.
#[test]
fn wire_drift_fixture_demands_a_version_bump() {
    let report = fixture_ws("ws_wire_drift");
    let drift = active_by_rule(&report, "wire-drift");
    assert_eq!(drift.len(), 1, "{drift:#?}");
    let msg = &drift[0].message;
    assert!(msg.contains("without a FORMAT_VERSION bump"), "{msg}");
    assert!(msg.contains("first difference at schema line"), "{msg}");
    assert!(msg.contains(wireschema::UPDATE_ENV), "{msg}");
    assert!(active_by_rule(&report, "wire-symmetry").is_empty(), "the codec itself is symmetric");
}

fn copy_tree(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create copy dir");
    for entry in std::fs::read_dir(src).expect("read fixture dir") {
        let entry = entry.expect("dir entry");
        let to = dst.join(entry.file_name());
        if entry.file_type().expect("file type").is_dir() {
            copy_tree(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).expect("copy fixture file");
        }
    }
}

/// Pass 5 regen flow, on a throwaway copy of the bumped fixture: with the
/// FORMAT_VERSION bumped the stale golden is still a finding that names
/// the escape hatch, and re-running with `SNAPS_UPDATE_SCHEMA=1` rewrites
/// the golden to the extracted schema verbatim and silences the gate.
#[test]
fn wire_drift_bumped_golden_regenerates_under_update_env() {
    let src = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("ws_wire_drift_bumped");
    let tmp = std::env::temp_dir().join(format!("snaps_wire_regen_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    copy_tree(&src, &tmp);

    let before = workspace::run(&tmp).expect("walk copied fixture");
    assert_eq!(before.wire_drift(), 1, "stale bumped golden must be a finding");
    let stale = active_by_rule(&before, "wire-drift");
    assert!(stale[0].message.contains("golden is stale"), "{}", stale[0].message);
    assert!(stale[0].message.contains(wireschema::UPDATE_ENV), "{}", stale[0].message);

    std::env::set_var(wireschema::UPDATE_ENV, "1");
    let after = workspace::run(&tmp).expect("walk with update env");
    std::env::remove_var(wireschema::UPDATE_ENV);

    assert_eq!(after.wire_drift(), 0, "regeneration must silence the gate");
    let rewritten =
        std::fs::read_to_string(tmp.join(wireschema::SCHEMA_PATH)).expect("golden rewritten");
    assert_eq!(rewritten, after.wire.schema_json, "golden is the extracted schema verbatim");
    assert!(rewritten.contains("\"format_version\": 2"), "{rewritten}");
    let _ = std::fs::remove_dir_all(&tmp);
}

/// Pass 5 acceptance on the real workspace: all six snapshot sections are
/// extracted in both directions, the committed schema golden matches the
/// extracted one byte-for-byte, and the wire gate is clean — with the
/// whole wire block byte-deterministic across a double run.
#[test]
fn workspace_wire_schema_extracts_all_sections_and_matches_the_golden() {
    let root = real_workspace_root();
    let first = workspace::run(&root).expect("walk workspace");
    let second = workspace::run(&root).expect("walk workspace again");
    assert_eq!(first.wire.schema_json, second.wire.schema_json, "schema must be byte-stable");

    assert_eq!(first.wire.format_version, Some(1), "FORMAT_VERSION parsed from snapshot.rs");
    let names: Vec<&str> = first.wire.sections.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(
        names,
        ["META", "GRAPH", "KEYWORD", "SIM_FIRST", "SIM_SURNAME", "SIM_LOCATION"],
        "every snapshot section extracted"
    );
    for s in &first.wire.sections {
        assert!(
            !s.encoder.is_empty() && !s.decoder.is_empty(),
            "section {} registered in only one direction",
            s.name
        );
        assert!(s.fields > 0, "section {} extracted no fields", s.name);
    }

    assert_eq!(first.wire_asymmetries(), 0, "encode/decode symmetry on the real codec");
    assert_eq!(first.wire_totality(), 0, "every decode loop bound is checked");
    assert_eq!(first.wire_drift(), 0, "the committed schema golden is current");

    let golden =
        std::fs::read_to_string(root.join(wireschema::SCHEMA_PATH)).expect("committed golden");
    assert_eq!(golden, first.wire.schema_json, "committed golden equals the extracted schema");
}

/// The self-test: the workspace this lint ships in must pass its own rules.
#[test]
fn workspace_is_lint_clean() {
    let root = real_workspace_root();
    let report = workspace::run(&root).expect("walk workspace");
    assert!(report.files_scanned > 100, "walker saw the whole tree: {}", report.files_scanned);
    assert!(report.manifests_checked >= 15, "manifests: {}", report.manifests_checked);
    let active = report.active_findings();
    assert!(active.is_empty(), "workspace must be lint-clean, found: {active:#?}");
    assert!(
        report.allows.len() <= ALLOW_BUDGET,
        "{} allows exceed the budget of {ALLOW_BUDGET}",
        report.allows.len()
    );
}
