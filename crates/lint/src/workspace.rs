//! Workspace walker: finds every `.rs` file and manifest, classifies each
//! file, and runs the full rule set to produce a [`Report`].
//!
//! Traversal is fully deterministic: directory entries are sorted before
//! descent and all paths are reported repo-relative with `/` separators, so
//! report bytes are stable across platforms and runs.

use crate::allocflow;
use crate::callgraph::CallGraph;
use crate::items::{self, FileItems};
use crate::layering;
use crate::lockorder;
use crate::numflow;
use crate::reach;
use crate::report::{CallGraphStats, Report};
use crate::rules::{
    self, FileClass, Finding, ALLOW_BUDGET, PANIC_FREE_SERVE_FILES, RESULT_AFFECTING,
};
use crate::scanner::{self, Annotation, Tok};
use crate::shardsafe;
use crate::taint;
use crate::wireschema;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names the walker never descends into: lint fixtures contain
/// violations on purpose, and build output is not source.
const SKIP_DIRS: &[&str] = &["fixtures", "target"];

/// Walk `dir` recursively, collecting `.rs` files in sorted order.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !SKIP_DIRS.contains(&name) {
                collect_rs(&path, out)?;
            }
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Every `.rs` file under the workspace source roots, sorted, repo-relative.
pub(crate) fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut roots: Vec<PathBuf> = Vec::new();
    for top in ["src", "tests", "examples", "benches"] {
        let p = root.join(top);
        if p.is_dir() {
            roots.push(p);
        }
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crates: Vec<PathBuf> =
            fs::read_dir(&crates_dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
        crates.sort();
        for c in crates {
            for sub in ["src", "tests", "examples", "benches"] {
                let p = c.join(sub);
                if p.is_dir() {
                    roots.push(p);
                }
            }
        }
    }
    let mut files = Vec::new();
    for r in &roots {
        collect_rs(r, &mut files)?;
    }
    let mut rel: Vec<String> = files
        .iter()
        .filter_map(|p| p.strip_prefix(root).ok())
        .map(|p| {
            p.components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/")
        })
        .collect();
    rel.sort();
    Ok(rel)
}

/// Classify a repo-relative `.rs` path into the rule perimeter it lives in.
#[must_use]
pub(crate) fn classify(rel: &str) -> FileClass {
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_name, crate_rel): (&str, String) = if parts.first() == Some(&"crates") {
        (parts.get(1).copied().unwrap_or(""), parts.get(2..).unwrap_or(&[]).join("/"))
    } else {
        // Top-level src/tests/examples belong to the `snaps` facade package.
        ("snaps", rel.to_string())
    };
    let top = crate_rel.split('/').next().unwrap_or("");
    let test_code = matches!(top, "tests" | "benches" | "examples");
    let result_affecting = !test_code && RESULT_AFFECTING.contains(&crate_name) && top == "src";
    let panic_free =
        !test_code && crate_name == "serve" && PANIC_FREE_SERVE_FILES.contains(&crate_rel.as_str());
    FileClass { crate_name: crate_name.to_string(), result_affecting, panic_free, test_code }
}

/// Is this repo-relative path a crate root (`src/lib.rs` of the facade or
/// of a member crate)? Binary roots link their crate's library, so the
/// `forbid-unsafe` presence rule only needs the library roots.
fn is_crate_root(rel: &str) -> bool {
    if rel == "src/lib.rs" {
        return true;
    }
    let parts: Vec<&str> = rel.split('/').collect();
    parts.len() == 4 && parts[0] == "crates" && parts[2] == "src" && parts[3] == "lib.rs"
}

/// Does the token stream contain the inner attribute
/// `#![forbid(unsafe_code)]`? A real token-sequence match, so the words in
/// a comment or string can neither satisfy nor evade the rule.
fn has_forbid_unsafe(tokens: &[scanner::Spanned]) -> bool {
    let punct =
        |i: usize, c: char| matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c);
    let ident = |i: usize, s: &str| matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Ident(id)) if id == s);
    (0..tokens.len()).any(|i| {
        punct(i, '#')
            && punct(i + 1, '!')
            && punct(i + 2, '[')
            && ident(i + 3, "forbid")
            && punct(i + 4, '(')
            && ident(i + 5, "unsafe_code")
            && punct(i + 6, ')')
            && punct(i + 7, ']')
    })
}

/// Run the full lint over the workspace at `root`.
///
/// Four passes: pass 1 scans every file for token-rule findings and (for
/// non-test files) extracts the item model; pass 2 builds the call graph
/// and runs the graph rules (panic-reachability, lock-discipline,
/// dead-pub); pass 3 runs the concurrency/numeric soundness rules
/// (lock-order, blocking-under-lock, numeric-cast) over the same graph;
/// pass 4 runs the parallel-readiness rules (determinism-taint,
/// shard-safety) over it; pass 5 extracts the snapshot wire schema from
/// the codec files and enforces encode/decode symmetry, decode-loop
/// totality, and drift against the committed schema golden; pass 6
/// classifies every entry-reachable allocation site on the boundedness
/// lattice and flags owned clones out of snapshot-resident state
/// (alloc-budget, borrow-not-own). Waivers are then applied to the merged
/// per-file findings and each one is checked for staleness.
pub fn run(root: &Path) -> io::Result<Report> {
    let files = workspace_files(root)?;
    let mut allows: Vec<(String, scanner::Annotation)> = Vec::new();
    // Pass-1 state, keyed by repo-relative path.
    let mut findings_by_file: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    let mut annotations_by_file: BTreeMap<String, Vec<Annotation>> = BTreeMap::new();
    let mut items_by_file: BTreeMap<String, FileItems> = BTreeMap::new();
    let mut idents_by_file: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut panic_free_files: BTreeSet<String> = BTreeSet::new();
    let mut wire_inputs: Vec<wireschema::FileInput> = Vec::new();

    for rel in &files {
        let class = classify(rel);
        let src = fs::read_to_string(root.join(rel))?;
        let scanner::Scan { tokens, annotations } = scanner::scan(&src);
        // Raw identifier set (test regions included) for dead-pub
        // reference counting: a pub item exercised only by tests is alive.
        idents_by_file.insert(
            rel.clone(),
            tokens
                .iter()
                .filter_map(|t| match &t.tok {
                    Tok::Ident(id) => Some(id.clone()),
                    Tok::Punct(_) => None,
                })
                .collect(),
        );
        let tokens = scanner::strip_test_regions(tokens);
        if wireschema::WIRE_FILES.contains(&rel.as_str()) {
            wire_inputs.push(wireschema::FileInput {
                rel: rel.clone(),
                src: src.clone(),
                tokens: tokens.clone(),
            });
        }
        let mut file_findings = rules::check_tokens(&class, rel, &tokens);

        // Crate roots must carry `#![forbid(unsafe_code)]`: dropping the
        // attribute — not just writing `unsafe` — is itself a violation.
        if is_crate_root(rel) && !has_forbid_unsafe(&tokens) {
            file_findings.push(Finding {
                rule: "forbid-unsafe",
                file: rel.clone(),
                line: 1,
                message: format!("crate root {rel} is missing #![forbid(unsafe_code)]"),
                waived: false,
            });
        }

        // Source-level layering: `snaps_*` paths in non-test code must obey
        // the DAG even if a manifest tries to smuggle the dependency in.
        if !class.test_code {
            for t in &tokens {
                if let Tok::Ident(id) = &t.tok {
                    if let Some(dep) = layering::check_use_ident(&class.crate_name, id) {
                        file_findings.push(Finding {
                            rule: "layering",
                            file: rel.clone(),
                            line: t.line,
                            message: format!(
                                "crate '{}' must not use 'snaps_{dep}' (allowed: {:?})",
                                class.crate_name,
                                layering::allowed_for(&class.crate_name)
                            ),
                            waived: false,
                        });
                    }
                }
            }
            items_by_file.insert(rel.clone(), items::extract(&class.crate_name, rel, &tokens));
        }
        if class.panic_free {
            panic_free_files.insert(rel.clone());
        }
        findings_by_file.insert(rel.clone(), file_findings);
        annotations_by_file.insert(rel.clone(), annotations);
    }

    // Pass 2: call graph + graph rules, merged into the per-file buckets so
    // line-waivers apply uniformly.
    let graph = CallGraph::build(&items_by_file);
    let outcome = reach::check(&graph, &panic_free_files);
    // Pass 3: lock-order / blocking-under-lock and numeric-cast dataflow
    // over the same graph; their per-entry stats land in the entry table.
    let locks = lockorder::check(&graph);
    let casts = numflow::check(&graph);
    // Pass 4: determinism-taint dataflow and shard-safety over the same
    // graph, consuming the lock keys pass 3 proved order-checked.
    let taints = taint::check(&graph);
    let mut shared_statics: BTreeMap<String, String> = BTreeMap::new();
    for (path, items) in &items_by_file {
        for s in items.statics.iter().filter(|s| s.interior_mut) {
            // First declaration (path order) wins for the diagnostic site.
            shared_statics.entry(s.name.clone()).or_insert_with(|| format!("{path}:{}", s.line));
        }
    }
    let shards = shardsafe::check(&graph, &shared_statics, &locks.known_keys);
    // Pass 6: allocation-flow classification and snapshot-ownership
    // accessors over the same graph.
    let allocs = allocflow::check(&graph);
    let mut entry_points = outcome.entry_stats;
    for (i, e) in entry_points.iter_mut().enumerate() {
        if let Some(ls) = locks.per_entry.get(i) {
            e.lock_nodes = ls.nodes;
            e.lock_edges = ls.edges;
            e.lock_cycles = ls.cycles;
        }
        if let Some(&cs) = casts.per_entry.get(i) {
            e.cast_sites = cs;
        }
        if let Some(&tf) = taints.per_entry.get(i) {
            e.taint_flows = tf;
        }
        if let Some(&sv) = shards.per_entry.get(i) {
            e.shard_violations = sv;
        }
        if let Some(&ab) = allocs.per_entry.get(i) {
            e.alloc_bounded = ab.bounded;
            e.alloc_data = ab.data_proportional;
            e.alloc_unbounded = ab.unbounded;
            e.borrow_not_own = ab.borrow_not_own;
        }
    }
    let callgraph = CallGraphStats {
        nodes: graph.fns.len(),
        edges: graph.edge_count(),
        entry_points,
        shard_roots: shards.roots.clone(),
    };
    // Pass 5: wire-schema extraction and the format-compatibility gate
    // over the snapshot codec files collected during pass 1.
    let wire = wireschema::check(root, &wire_inputs);
    let mut graph_findings = outcome.findings;
    graph_findings.extend(locks.findings);
    graph_findings.extend(casts.findings);
    graph_findings.extend(taints.findings);
    graph_findings.extend(shards.findings);
    graph_findings.extend(allocs.findings);
    graph_findings.extend(wire.findings);
    graph_findings.extend(reach::check_dead_pub(&items_by_file, &idents_by_file));
    for f in graph_findings {
        findings_by_file.entry(f.file.clone()).or_default().push(f);
    }

    // Waivers: apply per file, then flag every stale one.
    let mut findings: Vec<Finding> = Vec::new();
    for (rel, mut file_findings) in findings_by_file {
        let annotations = annotations_by_file.get(&rel).cloned().unwrap_or_default();
        rules::apply_annotations(&rel, &annotations, &mut file_findings);
        for ann in &annotations {
            if ann.error.is_some() {
                continue;
            }
            for rule in &ann.rules {
                if !rules::is_known_rule(rule) || !rules::is_waivable(rule) {
                    continue; // already an `annotation` finding
                }
                let waives_something = file_findings
                    .iter()
                    .any(|f| f.waived && f.line == ann.applies_to && f.rule == rule.as_str());
                if !waives_something {
                    file_findings.push(Finding {
                        rule: "waiver-staleness",
                        file: rel.clone(),
                        line: ann.line,
                        message: format!(
                            "waiver for '{rule}' no longer matches a finding on line {}; \
                             remove it",
                            ann.applies_to
                        ),
                        waived: false,
                    });
                }
            }
        }
        findings.extend(file_findings);
        for a in annotations {
            if a.error.is_none() {
                allows.push((rel.clone(), a));
            }
        }
    }

    // Manifest-level layering for every member crate.
    let mut manifests_checked = 0;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crates: Vec<PathBuf> =
            fs::read_dir(&crates_dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
        crates.sort();
        for c in crates {
            let manifest = c.join("Cargo.toml");
            if !manifest.is_file() {
                continue;
            }
            let crate_name = c.file_name().and_then(|n| n.to_str()).unwrap_or("").to_string();
            let rel = format!("crates/{crate_name}/Cargo.toml");
            let toml = fs::read_to_string(&manifest)?;
            findings.extend(layering::check_manifest(&crate_name, &rel, &toml));
            if !layering::is_registered(&crate_name) {
                findings.push(Finding {
                    rule: "layering",
                    file: rel,
                    line: 1,
                    message: format!(
                        "crate '{crate_name}' is not registered in the layering DAG \
                         (add it to ALLOWED_DEPS in crates/lint/src/layering.rs)"
                    ),
                    waived: false,
                });
            }
            manifests_checked += 1;
        }
    }
    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        let toml = fs::read_to_string(&root_manifest)?;
        findings.extend(layering::check_manifest("snaps", "Cargo.toml", &toml));
        manifests_checked += 1;
    }

    // Workspace-wide allow budget.
    if allows.len() > ALLOW_BUDGET {
        findings.push(Finding {
            rule: "allow-budget",
            file: "(workspace)".to_string(),
            line: 0,
            message: format!(
                "{} allow-annotations exceed the budget of {ALLOW_BUDGET}",
                allows.len()
            ),
            waived: false,
        });
    }

    let mut report = Report {
        root: root.to_string_lossy().into_owned(),
        files_scanned: files.len(),
        manifests_checked,
        findings,
        allows,
        callgraph,
        wire: wire.stats,
    };
    report.normalise();
    Ok(report)
}

/// Find the workspace root: walk up from `start` until a `Cargo.toml`
/// containing a `[workspace]` table appears.
#[must_use]
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(body) = fs::read_to_string(&manifest) {
            if body.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_result_affecting_src() {
        let c = classify("crates/core/src/similarity.rs");
        assert_eq!(c.crate_name, "core");
        assert!(c.result_affecting);
        assert!(!c.panic_free);
        assert!(!c.test_code);
    }

    #[test]
    fn classify_serve_request_path() {
        let c = classify("crates/serve/src/server.rs");
        assert!(c.panic_free);
        assert!(!c.result_affecting);
        let c = classify("crates/serve/src/bin/snaps_serve.rs");
        assert!(!c.panic_free, "CLI startup may fail loudly");
    }

    #[test]
    fn classify_test_code() {
        let c = classify("crates/core/tests/pipeline.rs");
        assert!(c.test_code);
        assert!(!c.result_affecting);
        let c = classify("tests/end_to_end.rs");
        assert_eq!(c.crate_name, "snaps");
        assert!(c.test_code);
        let c = classify("examples/quickstart.rs");
        assert!(c.test_code);
    }

    #[test]
    fn classify_facade_src() {
        let c = classify("src/lib.rs");
        assert_eq!(c.crate_name, "snaps");
        assert!(!c.result_affecting);
        assert!(!c.test_code);
    }
}
