//! Pass 3b: intra-procedural numeric-cast dataflow.
//!
//! Classifies every `as` cast the item model collected
//! ([`crate::items::CastSite`]) against a width/signedness lattice and
//! reports the narrowing ones inside the snapshot perimeter: the wire
//! codec files themselves (`crates/serve/src/{wire,snapshot}.rs`, where
//! lengths, offsets, and checksums are encoded) plus every `serve`/`core`
//! function reachable from a serve entry point.
//!
//! The lattice (64-bit targets assumed for `usize`/`isize`):
//!
//! - int → wider int of the same signedness, or unsigned → wider signed:
//!   clean (value-preserving);
//! - int → narrower int, same-width signedness flip, or signed → wider
//!   unsigned: **narrowing**;
//! - int → float: clean — every count/id in this workspace fits `f64`'s
//!   53-bit integer range (the `len() as f64` similarity idiom);
//! - float → int, `f64 → f32`: **narrowing**;
//! - unknown source: narrowing iff the target is an integer below 64
//!   bits (wider targets would flood on field accesses that are almost
//!   always `usize` counters).
//!
//! A cast whose operand came through a recognized checked helper
//! (`try_from`/`try_into`/`len_u32`/`try_*`/`checked_*`, per
//! [`crate::items::CastSite::checked`]) is always clean: the conversion
//! already failed loudly on overflow.

use crate::callgraph::CallGraph;
use crate::reach::{self, ENTRY_POINTS};
use crate::rules::Finding;
use std::collections::BTreeSet;

/// Files inside the snapshot-codec perimeter: every cast here is checked
/// regardless of reachability — the encoder also runs from offline tools.
const SNAPSHOT_FILES: &[&str] = &["crates/serve/src/snapshot.rs", "crates/serve/src/wire.rs"];

/// Crates whose serve-reachable functions are inside the perimeter.
const PERIMETER_CRATES: &[&str] = &["core", "serve"];

/// Outcome of the pass: findings plus per-entry cast-site counts.
#[derive(Debug, Default)]
pub(crate) struct NumOutcome {
    /// numeric-cast findings, sorted by (file, line).
    pub findings: Vec<Finding>,
    /// Cast sites in each entry's reachable set, in entry-table order.
    pub per_entry: Vec<usize>,
}

fn bits(ty: &str) -> u32 {
    match ty {
        "bool" => 1,
        "u8" | "i8" => 8,
        "u16" | "i16" => 16,
        "u32" | "i32" | "f32" | "char" => 32,
        "u128" | "i128" => 128,
        // u64/i64/f64 and the 64-bit usize/isize assumption; unknown
        // idents (type aliases) conservatively match the word size.
        _ => 64,
    }
}

fn is_float(ty: &str) -> bool {
    matches!(ty, "f32" | "f64")
}

fn is_signed(ty: &str) -> bool {
    matches!(ty, "i8" | "i16" | "i32" | "i64" | "i128" | "isize")
}

/// Does `from as to` risk changing the value?
#[must_use]
pub(crate) fn narrows(from: Option<&str>, to: &str) -> bool {
    let Some(from) = from else {
        return !is_float(to) && bits(to) < 64;
    };
    if from == to {
        return false;
    }
    if is_float(from) {
        return !is_float(to) || bits(to) < bits(from);
    }
    if is_float(to) {
        return false;
    }
    if bits(to) < bits(from) {
        return true;
    }
    if bits(to) == bits(from) {
        return is_signed(from) != is_signed(to);
    }
    // Widening: only signed → unsigned loses (negatives wrap to huge).
    is_signed(from) && !is_signed(to)
}

/// Run the pass: per-entry cast-site stats plus narrowing findings inside
/// the snapshot perimeter.
#[must_use]
pub(crate) fn check(graph: &CallGraph) -> NumOutcome {
    let mut out = NumOutcome::default();
    let mut serve_reachable: BTreeSet<usize> = BTreeSet::new();

    for spec in ENTRY_POINTS {
        let roots = reach::roots_of(graph, spec);
        let parent = reach::bfs(graph, &roots);
        let sites: usize = parent.keys().map(|&n| graph.fns[n].casts.len()).sum();
        out.per_entry.push(sites);
        if spec.serve_path {
            serve_reachable.extend(parent.keys().copied());
        }
    }

    for (idx, f) in graph.fns.iter().enumerate() {
        let in_perimeter = SNAPSHOT_FILES.contains(&f.file.as_str())
            || (PERIMETER_CRATES.contains(&f.krate.as_str()) && serve_reachable.contains(&idx));
        if !in_perimeter {
            continue;
        }
        for cast in &f.casts {
            if cast.checked || !narrows(cast.from.as_deref(), &cast.to) {
                continue;
            }
            let source = cast.from.as_deref().map_or_else(
                || "an expression of undetermined type".to_string(),
                |from| format!("`{from}`"),
            );
            out.findings.push(Finding {
                rule: "numeric-cast",
                file: f.file.clone(),
                line: cast.line,
                message: format!(
                    "narrowing cast to `{to}` from {source} on the snapshot path can \
                     silently truncate; use `{to}::try_from` or a recognized checked \
                     helper (len_u32-style)",
                    to = cast.to,
                ),
                waived: false,
            });
        }
    }

    out.findings.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    out.findings.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_widening_clean_narrowing_flagged() {
        // value-preserving
        assert!(!narrows(Some("u8"), "u32"));
        assert!(!narrows(Some("u32"), "u64"));
        assert!(!narrows(Some("u32"), "i64"));
        assert!(!narrows(Some("usize"), "u64"));
        assert!(!narrows(Some("u64"), "usize"));
        assert!(!narrows(Some("char"), "u32"));
        assert!(!narrows(Some("bool"), "i32"));
        // int → float is clean by policy
        assert!(!narrows(Some("usize"), "f64"));
        assert!(!narrows(Some("u64"), "f64"));
        // narrowing
        assert!(narrows(Some("u64"), "u32"));
        assert!(narrows(Some("usize"), "u32"));
        assert!(narrows(Some("u32"), "u16"));
        assert!(narrows(Some("char"), "u16"));
        assert!(narrows(Some("u128"), "u64"));
        // same-width signedness flips and signed → wider unsigned
        assert!(narrows(Some("usize"), "i64"));
        assert!(narrows(Some("i32"), "u32"));
        assert!(narrows(Some("i32"), "u64"));
        // floats
        assert!(narrows(Some("f64"), "f32"));
        assert!(narrows(Some("f64"), "u64"));
        assert!(!narrows(Some("f32"), "f64"));
    }

    #[test]
    fn unknown_source_narrow_target_only() {
        assert!(narrows(None, "u32"));
        assert!(narrows(None, "u8"));
        assert!(!narrows(None, "usize"));
        assert!(!narrows(None, "u64"));
        assert!(!narrows(None, "i64"));
        assert!(!narrows(None, "f64"));
    }
}
