//! Pass 6: hot-path allocation & ownership.
//!
//! Reuses the pass-1 item model (per-fn allocation sites,
//! [`crate::items::AllocSite`]) and the pass-2 call graph to police the
//! serve path's allocation discipline ahead of the zero-copy snapshot
//! layout. Two rules run over the entry-point table:
//!
//! - **alloc-budget**: every allocation site reachable from an entry is
//!   classified on the boundedness lattice — *bounded* (constant-size or
//!   capacity-hinted), *data-proportional* (scales with result/snapshot
//!   size: `format!`, `collect()`, clone-family, growth through a field
//!   or parameter), or *unbounded-per-request* (loop-carried growth on a
//!   local container constructed without a hint in the same fn). The
//!   per-entry budget is reported (schema 6) and CI ratchets the first
//!   two classes while hard-zero-gating the third, but findings are
//!   raised only for the unbounded class on serve-path entries.
//! - **borrow-not-own**: a fn reachable from a serve entry, defined on a
//!   snapshot-resident type ([`SNAPSHOT_RESIDENT`]), returning an owned
//!   `String`/`Vec` produced by a clone-family call (`clone`/`to_owned`/
//!   `to_string`/`to_vec`) whose receiver chain roots at `self` — i.e. an
//!   accessor copying snapshot state out instead of lending it. The
//!   mmap/borrow-from-buffer layout needs `&str`/slice accessors, so the
//!   copies must go first.
//!
//! Unbounded classification requires positive evidence (the unhinted
//! constructor is visible in the same fn), so the hard zero gate cannot
//! fire on the method-fallback over-approximation; a later `.reserve`
//! anywhere in the fn counts as a hint (capacity-hint laundering is
//! accepted — the ratchet on the data-proportional class still sees the
//! site).

use crate::callgraph::CallGraph;
use crate::items::AllocClass;
use crate::reach::{self, ENTRY_POINTS};
use crate::rules::Finding;
use std::collections::BTreeSet;

/// Types whose instances live inside the loaded snapshot: an owned
/// `String`/`Vec` cloned out of them on the serve path is a copy the
/// zero-copy layout must eliminate.
pub(crate) const SNAPSHOT_RESIDENT: &[&str] = &[
    "KeywordIndex",
    "PedigreeEntity",
    "PedigreeGraph",
    "SearchEngine",
    "SimilarityIndex",
    "Snapshot",
];

/// Clone-family `what` labels as recorded by the item model.
const CLONE_FAMILY: &[&str] = &["clone()", "to_owned()", "to_string()", "to_vec()"];

/// Per-entry allocation budget (site counts by boundedness class, plus
/// the borrow-not-own accessor count).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct AllocBudget {
    /// Constant-size or capacity-hinted sites.
    pub bounded: usize,
    /// Sites scaling with result/snapshot size.
    pub data_proportional: usize,
    /// Loop-carried growth with no capacity hint (hard zero gate).
    pub unbounded: usize,
    /// Snapshot-resident accessors returning owned clones.
    pub borrow_not_own: usize,
}

/// Outcome of the pass: findings plus per-entry budgets in table order.
#[derive(Debug, Default)]
pub(crate) struct AllocOutcome {
    /// `alloc-budget` and `borrow-not-own` findings.
    pub findings: Vec<Finding>,
    /// Per-entry budgets, in entry-table order.
    pub per_entry: Vec<AllocBudget>,
}

/// Run the allocation pass over every declared entry point.
#[must_use]
pub(crate) fn check(graph: &CallGraph) -> AllocOutcome {
    let mut out = AllocOutcome::default();
    // Dedup across entries by (file, line, rule); the first (table-order)
    // entry wins, so the diagnostic names the most user-facing route.
    let mut seen: BTreeSet<(String, usize, &'static str)> = BTreeSet::new();
    let mut findings: Vec<Finding> = Vec::new();

    for spec in ENTRY_POINTS {
        let roots = reach::roots_of(graph, spec);
        let parent = reach::bfs(graph, &roots);
        let mut budget = AllocBudget::default();

        for &n in parent.keys() {
            let f = &graph.fns[n];
            // Snapshot-resident accessor returning an owned container?
            let own_leak = f.impl_type.as_deref().is_some_and(|t| SNAPSHOT_RESIDENT.contains(&t))
                && matches!(f.ret.as_deref(), Some("String" | "Vec"));

            for site in &f.allocs {
                match site.class {
                    AllocClass::Bounded => budget.bounded += 1,
                    AllocClass::DataProportional => budget.data_proportional += 1,
                    AllocClass::Unbounded => budget.unbounded += 1,
                }

                if spec.serve_path
                    && site.class == AllocClass::Unbounded
                    && seen.insert((f.file.clone(), site.line, "alloc-budget"))
                {
                    let chain = reach::chain_to(graph, &parent, n).join(" → ");
                    findings.push(Finding {
                        rule: "alloc-budget",
                        file: f.file.clone(),
                        line: site.line,
                        message: format!(
                            "unbounded per-request allocation: loop-carried `{what}` growth on \
                             un-capacity-hinted `{recv}`, reachable from {label}: {chain} \
                             ({file}:{line}); add a with_capacity/reserve hint or hoist a \
                             reusable buffer",
                            what = site.what,
                            recv = site.receiver.join("."),
                            label = spec.label,
                            chain = chain,
                            file = f.file,
                            line = site.line,
                        ),
                        waived: false,
                    });
                }

                let self_clone = own_leak
                    && CLONE_FAMILY.contains(&site.what)
                    && site.receiver.first().is_some_and(|r| r == "self");
                if self_clone {
                    budget.borrow_not_own += 1;
                    if spec.serve_path && seen.insert((f.file.clone(), site.line, "borrow-not-own"))
                    {
                        let chain = reach::chain_to(graph, &parent, n).join(" → ");
                        findings.push(Finding {
                            rule: "borrow-not-own",
                            file: f.file.clone(),
                            line: site.line,
                            message: format!(
                                "snapshot-resident accessor {name} returns an owned `{ret}` \
                                 built by `{what}` on `{recv}`, reachable from {label}: {chain} \
                                 ({file}:{line}); lend a &str/slice instead so the zero-copy \
                                 snapshot layout can borrow from the buffer",
                                name = graph.display(n),
                                ret = f.ret.as_deref().unwrap_or("String"),
                                what = site.what,
                                recv = site.receiver.join("."),
                                label = spec.label,
                                chain = chain,
                                file = f.file,
                                line = site.line,
                            ),
                            waived: false,
                        });
                    }
                }
            }
        }
        out.per_entry.push(budget);
    }

    findings.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    findings.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    out.findings = findings;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::{extract, FileItems};
    use crate::scanner;

    fn file(krate: &str, path: &str, src: &str) -> (String, FileItems) {
        let scan = scanner::scan(src);
        let toks = scanner::strip_test_regions(scan.tokens);
        (path.to_string(), extract(krate, path, &toks))
    }

    fn graph(files: Vec<(String, FileItems)>) -> CallGraph {
        CallGraph::build(&files.into_iter().collect())
    }

    fn entry_index(label: &str) -> usize {
        ENTRY_POINTS.iter().position(|e| e.label == label).expect("known entry")
    }

    #[test]
    fn unbounded_growth_reachable_from_serve_entry_is_flagged_with_chain() {
        let g = graph(vec![
            file(
                "serve",
                "crates/serve/src/server.rs",
                "use snaps_core::gather;\npub fn search() { gather(); }\n",
            ),
            file(
                "core",
                "crates/core/src/lib.rs",
                "pub fn gather() -> Vec<u32> {\n\
                     let mut out = Vec::new();\n\
                     for i in items() { out.push(i); }\n\
                     out\n\
                 }\n",
            ),
        ]);
        let out = check(&g);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        let f = &out.findings[0];
        assert_eq!(f.rule, "alloc-budget");
        assert_eq!(f.file, "crates/core/src/lib.rs");
        assert!(f.message.contains("GET /search"), "{}", f.message);
        assert!(
            f.message.contains("serve::server::search → core::gather"),
            "chain printed: {}",
            f.message
        );
        let b = out.per_entry[entry_index("GET /search")];
        assert_eq!(b.unbounded, 1);
        assert!(b.bounded >= 1, "the Vec::new ctor is a bounded site: {b:?}");
    }

    #[test]
    fn capacity_hinted_growth_is_bounded_and_clean() {
        let g = graph(vec![file(
            "serve",
            "crates/serve/src/server.rs",
            "pub fn search() {\n\
                 let mut out = Vec::with_capacity(8);\n\
                 for i in items() { out.push(i); }\n\
             }\n",
        )]);
        let out = check(&g);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        let b = out.per_entry[entry_index("GET /search")];
        assert_eq!(b.unbounded, 0);
        assert_eq!(b.bounded, 2, "ctor + hinted push: {b:?}");
    }

    #[test]
    fn snapshot_accessor_returning_owned_clone_is_borrow_not_own() {
        let g = graph(vec![
            file(
                "serve",
                "crates/serve/src/server.rs",
                "use snaps_query::engine_name;\npub fn search() { engine_name(); }\n",
            ),
            file(
                "query",
                "crates/query/src/process.rs",
                "pub struct SearchEngine { meta: String }\n\
                 impl SearchEngine {\n\
                     pub fn engine_name(&self) -> String { self.meta.clone() }\n\
                 }\n\
                 pub fn engine_name(e: &SearchEngine) -> String { e.engine_name() }\n",
            ),
        ]);
        let out = check(&g);
        let f = out
            .findings
            .iter()
            .find(|f| f.rule == "borrow-not-own")
            .expect("borrow-not-own finding");
        assert!(f.message.contains("SearchEngine"), "{}", f.message);
        assert!(f.message.contains("GET /search"), "{}", f.message);
        assert!(f.message.contains("lend a &str/slice"), "{}", f.message);
        let b = out.per_entry[entry_index("GET /search")];
        assert_eq!(b.borrow_not_own, 1);
    }

    #[test]
    fn non_serve_entries_count_budgets_but_raise_no_findings() {
        let g = graph(vec![file(
            "bench",
            "crates/bench/src/main.rs",
            "fn main() {\n\
                 let mut out = Vec::new();\n\
                 for i in items() { out.push(i); }\n\
             }\n",
        )]);
        let out = check(&g);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        let b = out.per_entry[entry_index("pipeline mains")];
        assert_eq!(b.unbounded, 1, "budget still counted: {b:?}");
    }

    #[test]
    fn borrowed_return_does_not_trip_borrow_not_own() {
        let g = graph(vec![
            file(
                "serve",
                "crates/serve/src/server.rs",
                "use snaps_query::engine_name;\npub fn search() { engine_name(); }\n",
            ),
            file(
                "query",
                "crates/query/src/process.rs",
                "pub struct SearchEngine { meta: String }\n\
                 impl SearchEngine {\n\
                     pub fn engine_name(&self) -> &str { &self.meta }\n\
                 }\n\
                 pub fn engine_name(e: &SearchEngine) -> &str { e.engine_name() }\n",
            ),
        ]);
        let out = check(&g);
        assert!(out.findings.iter().all(|f| f.rule != "borrow-not-own"), "{:?}", out.findings);
    }
}
