//! Pass 3a: lock-order and blocking-under-lock analysis.
//!
//! Built on the item model's lock hold regions (keyed per
//! [`crate::items::LockSite::key`]) and the call graph. For every declared
//! entry point the pass propagates a **may-held set** of lock keys over
//! the call edges to a fixpoint: a callee inherits every key its caller
//! may hold at the call site. Two rule families read the result:
//!
//! - **lock-order**: an edge `A → B` is recorded whenever a function
//!   acquires key `B` while `A` is in its may-held set (or in a lexically
//!   enclosing hold region). A cycle in the resulting key graph —
//!   including a self-loop, i.e. re-acquiring a key already held — is a
//!   potential deadlock, reported with the full entry→acquisition chain
//!   for every edge in the cycle.
//! - **blocking-under-lock** (serve entries only): a queue wait (`recv`,
//!   `join`, `Condvar::wait`), sleep, or I/O call while any key is held.
//!   `Condvar::wait(guard)` is exempt for the region whose guard it
//!   consumes — the wait releases exactly that mutex.
//!
//! Approximations (see DESIGN.md §10.4): lock keys name the owning
//! type+field, not the instance — per-shard locks collapse onto their
//! accessor key; there is no alias analysis, so a closure-parameter
//! receiver keys by the parameter name; held-set propagation skips
//! method-fallback calls with std-collection names, mirroring the
//! lock-discipline exemption ([`reach::LOCK_EXEMPT_METHODS`]).

use crate::callgraph::CallGraph;
use crate::items::{CallTarget, FnItem};
use crate::reach::{self, EntrySpec, ENTRY_POINTS, LOCK_EXEMPT_METHODS};
use crate::rules::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// Method names treated as blocking: queue/thread waits and synchronous
/// I/O. A call to one of these while a lock key is held stalls every other
/// thread contending on that lock.
const BLOCKING_METHODS: &[&str] = &[
    "accept",
    "connect",
    "flush",
    "join",
    "park",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "recv",
    "recv_timeout",
    "sleep",
    "sync_all",
    "sync_data",
    "wait",
    "wait_timeout",
    "wait_while",
    "write_all",
];

/// `Condvar` waits release the mutex whose guard they consume.
const CONDVAR_WAITS: &[&str] = &["wait", "wait_timeout", "wait_while"];

/// Per-entry lock-graph statistics, aligned with [`ENTRY_POINTS`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LockStats {
    /// Distinct lock keys acquired in the entry's reachable set.
    pub nodes: usize,
    /// "Acquired B while holding A" edges.
    pub edges: usize,
    /// Cycles (including self-loops) in the entry's lock-order graph.
    pub cycles: usize,
}

/// Outcome of the pass: findings plus per-entry statistics.
#[derive(Debug, Default)]
pub(crate) struct LockOutcome {
    /// lock-order and blocking-under-lock findings.
    pub findings: Vec<Finding>,
    /// Per-entry stats, in entry-table order.
    pub per_entry: Vec<LockStats>,
    /// Union of lock keys acquired in any entry's reachable set — the set
    /// the pass-4 shard-safety rule treats as order-checked.
    pub known_keys: BTreeSet<String>,
}

/// Is the may-held set propagated through this call site? Mirrors the
/// lock-discipline rule: method-fallback calls with std-collection names
/// are guard operations (`map.insert(..)`), not workspace calls.
fn propagates(call_target: &CallTarget) -> bool {
    match call_target {
        CallTarget::Method(name) => !LOCK_EXEMPT_METHODS.contains(&name.as_str()),
        CallTarget::Path(_) => true,
    }
}

/// Lock keys of `f`'s own hold regions that strictly contain token `tok`.
/// A lock site's own region never contains its own acquisition token, so
/// passing a lock's `region.0` yields exactly the lexically enclosing
/// regions.
fn own_held_at(f: &FnItem, tok: usize) -> BTreeSet<String> {
    f.locks.iter().filter(|l| l.region.0 < tok && tok < l.region.1).map(|l| l.key.clone()).collect()
}

/// Propagate may-held sets to a fixpoint over the reachable subgraph.
/// Returns `node → inherited held keys`. Every reachable node is processed
/// at least once — a function deep in the graph contributes its *own* hold
/// regions even when nothing is held on the way down to it — and is
/// re-processed whenever its inherited set grows.
fn held_fixpoint(
    graph: &CallGraph,
    reachable: &BTreeSet<usize>,
) -> BTreeMap<usize, BTreeSet<String>> {
    let mut held: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    for &n in reachable {
        held.insert(n, BTreeSet::new());
    }
    let mut queue: Vec<usize> = reachable.iter().copied().collect();
    while let Some(n) = queue.pop() {
        let f = &graph.fns[n];
        let inherited = held.get(&n).cloned().unwrap_or_default();
        for call in &f.calls {
            if !propagates(&call.target) {
                continue;
            }
            let mut at = inherited.clone();
            at.extend(own_held_at(f, call.tok));
            if at.is_empty() {
                continue;
            }
            for &t in &graph.resolve(n, call).targets {
                if !reachable.contains(&t) {
                    continue;
                }
                let slot = held.entry(t).or_default();
                if !at.is_subset(slot) {
                    slot.extend(at.iter().cloned());
                    queue.push(t);
                }
            }
        }
    }
    held
}

/// One recorded lock-order edge witness: the function and line where the
/// second key was acquired.
#[derive(Debug, Clone)]
struct Witness {
    node: usize,
    line: usize,
}

/// Run the pass over every declared entry point.
#[must_use]
pub(crate) fn check(graph: &CallGraph) -> LockOutcome {
    let mut out = LockOutcome::default();
    // Cycle findings dedup across entries by sorted key set; blocking
    // findings by (file, line, held keys). First (table-order) entry wins.
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut blocking: BTreeMap<(String, usize, String), Finding> = BTreeMap::new();

    for spec in ENTRY_POINTS {
        let roots = reach::roots_of(graph, spec);
        let parent = reach::bfs(graph, &roots);
        let reachable: BTreeSet<usize> = parent.keys().copied().collect();
        let held = held_fixpoint(graph, &reachable);

        // Collect this entry's lock nodes and order edges.
        let mut nodes: BTreeSet<String> = BTreeSet::new();
        let mut edges: BTreeMap<(String, String), Witness> = BTreeMap::new();
        for &n in &reachable {
            let f = &graph.fns[n];
            let inherited = held.get(&n).cloned().unwrap_or_default();
            for lock in &f.locks {
                nodes.insert(lock.key.clone());
                let mut held_here = inherited.clone();
                held_here.extend(own_held_at(f, lock.region.0));
                for a in held_here {
                    edges
                        .entry((a, lock.key.clone()))
                        .or_insert(Witness { node: n, line: lock.line });
                }
            }
        }

        out.known_keys.extend(nodes.iter().cloned());
        let cycles = cycle_components(&edges);
        out.per_entry.push(LockStats {
            nodes: nodes.len(),
            edges: edges.len(),
            cycles: cycles.len(),
        });

        for scc in &cycles {
            if !seen_cycles.insert(scc.clone()) {
                continue;
            }
            out.findings.push(cycle_finding(graph, &parent, spec, scc, &edges));
        }

        if spec.serve_path {
            check_blocking(graph, &parent, &reachable, &held, spec, &mut blocking);
        }
    }

    out.findings.extend(blocking.into_values());
    out.findings.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    out
}

/// Strongly connected components of the key graph that contain a cycle:
/// components of size ≥ 2 plus self-loop singletons. Keys sorted within
/// each component; components sorted by first key.
fn cycle_components(edges: &BTreeMap<(String, String), Witness>) -> Vec<Vec<String>> {
    let keys: BTreeSet<&String> = edges.keys().flat_map(|(a, b)| [a, b]).collect();
    // Transitive closure per key — the key graph is tiny (a handful of
    // owning-type fields), so quadratic closure beats a Tarjan here.
    let mut closure: BTreeMap<&String, BTreeSet<&String>> = BTreeMap::new();
    for &k in &keys {
        let mut seen: BTreeSet<&String> = BTreeSet::new();
        let mut stack: Vec<&String> = vec![k];
        while let Some(u) = stack.pop() {
            for (a, b) in edges.keys() {
                if a == u && seen.insert(b) {
                    stack.push(b);
                }
            }
        }
        closure.insert(k, seen);
    }
    let mut comps: BTreeSet<Vec<String>> = BTreeSet::new();
    for &k in &keys {
        let reaches_self = closure[k].contains(k);
        if !reaches_self {
            continue;
        }
        let scc: Vec<String> =
            closure[k].iter().filter(|&&m| closure[m].contains(k)).map(|m| (*m).clone()).collect();
        comps.insert(scc);
    }
    comps.into_iter().collect()
}

/// Build the diagnostic for one lock-order cycle: the key ring plus the
/// full entry→acquisition chain for every in-cycle edge.
fn cycle_finding(
    graph: &CallGraph,
    parent: &BTreeMap<usize, usize>,
    spec: &EntrySpec,
    scc: &[String],
    edges: &BTreeMap<(String, String), Witness>,
) -> Finding {
    let in_scc = |k: &String| scc.contains(k);
    let ring = if scc.len() == 1 {
        format!("{k} → {k}", k = scc[0])
    } else {
        let mut r = scc.join(" → ");
        r.push_str(" → ");
        r.push_str(&scc[0]);
        r
    };
    let mut clauses: Vec<String> = Vec::new();
    let mut site: Option<(String, usize)> = None;
    for ((a, b), w) in edges.iter() {
        if !in_scc(a) || !in_scc(b) {
            continue;
        }
        let f = &graph.fns[w.node];
        if site.is_none() {
            site = Some((f.file.clone(), w.line));
        }
        clauses.push(format!(
            "{chain} acquires {b} at {file}:{line} while holding {a}",
            chain = reach::chain_to(graph, parent, w.node).join(" → "),
            file = f.file,
            line = w.line,
        ));
    }
    let (file, line) = site.unwrap_or_default();
    Finding {
        rule: "lock-order",
        file,
        line,
        message: format!(
            "potential deadlock from {}: lock-order cycle {ring}; {}",
            spec.label,
            clauses.join("; ")
        ),
        waived: false,
    }
}

/// Blocking-under-lock over one serve entry's reachable set. A blocking
/// call fires when any key is held at the site — inherited keys always
/// count; an own region is exempt only for the `Condvar` wait consuming
/// its guard.
fn check_blocking(
    graph: &CallGraph,
    parent: &BTreeMap<usize, usize>,
    reachable: &BTreeSet<usize>,
    held: &BTreeMap<usize, BTreeSet<String>>,
    spec: &EntrySpec,
    out: &mut BTreeMap<(String, usize, String), Finding>,
) {
    for &n in reachable {
        let f = &graph.fns[n];
        let inherited = held.get(&n).cloned().unwrap_or_default();
        for call in &f.calls {
            let name = match &call.target {
                CallTarget::Method(m) => m.as_str(),
                CallTarget::Path(p) => {
                    if p.iter().any(|s| s == "fs") {
                        p.last().map_or("", String::as_str)
                    } else {
                        match p.last() {
                            Some(last) if BLOCKING_METHODS.contains(&last.as_str()) => last,
                            _ => continue,
                        }
                    }
                }
            };
            let is_fs = matches!(&call.target, CallTarget::Path(p) if p.iter().any(|s| s == "fs"));
            if !is_fs && !BLOCKING_METHODS.contains(&name) {
                continue;
            }
            let mut held_here = inherited.clone();
            for lock in &f.locks {
                if lock.region.0 < call.tok && call.tok < lock.region.1 {
                    let exempt = CONDVAR_WAITS.contains(&name)
                        && lock.bound.is_some()
                        && lock.bound == call.arg0;
                    if !exempt {
                        held_here.insert(lock.key.clone());
                    }
                }
            }
            if held_here.is_empty() {
                continue;
            }
            let keys = held_here.into_iter().collect::<Vec<_>>().join(", ");
            let dedup = (f.file.clone(), call.line, keys.clone());
            if out.contains_key(&dedup) {
                continue;
            }
            let what = if is_fs { format!("std::fs::{name}") } else { format!(".{name}()") };
            let finding = Finding {
                rule: "blocking-under-lock",
                file: f.file.clone(),
                line: call.line,
                message: format!(
                    "blocking call {what} while holding {keys}, reachable from {}: {chain} \
                     ({}:{})",
                    spec.label,
                    f.file,
                    call.line,
                    chain = reach::chain_to(graph, parent, n).join(" → "),
                ),
                waived: false,
            };
            out.insert(dedup, finding);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(pairs: &[(&str, &str)]) -> BTreeMap<(String, String), Witness> {
        pairs
            .iter()
            .map(|(a, b)| ((a.to_string(), b.to_string()), Witness { node: 0, line: 1 }))
            .collect()
    }

    #[test]
    fn cycle_components_classify_dags_loops_and_sccs() {
        let own = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(cycle_components(&edges(&[("A", "B")])).is_empty(), "a DAG has no cycle");
        assert_eq!(cycle_components(&edges(&[("A", "B"), ("B", "A")])), vec![own(&["A", "B"])]);
        assert_eq!(cycle_components(&edges(&[("A", "A")])), vec![own(&["A"])], "self-loop");
        // A→B→C with a back-edge C→B: only {B, C} is strongly connected.
        let comps = cycle_components(&edges(&[("A", "B"), ("B", "C"), ("C", "B")]));
        assert_eq!(comps, vec![own(&["B", "C"])]);
    }
}
