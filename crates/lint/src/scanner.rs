//! A hand-rolled Rust token scanner.
//!
//! The rule engine needs to know whether `HashMap` or `unwrap` appears *as
//! code* — a mention inside a comment, a string literal, a raw string, or a
//! char literal must never fire a rule. Rather than pulling in a full parser
//! (the lint gate is deliberately dependency-free so it builds before
//! anything else in the offline container), this module lexes just enough
//! of Rust's surface syntax to separate three streams:
//!
//! * significant tokens — identifiers and punctuation, with line numbers;
//! * `// snaps-lint: allow(...)` waiver annotations, with the line they
//!   apply to;
//! * everything else (whitespace, literals, comments) — discarded.
//!
//! A post-pass, [`strip_test_regions`], removes the token range of every
//! `#[cfg(test)]` / `#[test]` / `#[bench]` item so test code (which uses
//! `unwrap` and friends legitimately) is invisible to the rules.

/// One significant token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (raw identifiers are unescaped: `r#type`
    /// scans as `type`).
    Ident(String),
    /// A single punctuation character; multi-char operators arrive as
    /// consecutive tokens (`::` is two `Punct(':')`).
    Punct(char),
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// 1-based line number.
    pub line: usize,
    /// The token.
    pub tok: Tok,
}

/// A parsed `// snaps-lint: allow(rule, ...) -- reason` waiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// Line the comment sits on.
    pub line: usize,
    /// Line whose findings it waives: its own line when code precedes the
    /// comment, otherwise the next line.
    pub applies_to: usize,
    /// Waived rule names, as written.
    pub rules: Vec<String>,
    /// The mandatory `-- reason` text (empty when missing; see `error`).
    pub reason: String,
    /// Why the annotation itself is malformed, if it is.
    pub error: Option<String>,
}

/// Scanner output: token stream plus waiver annotations.
#[derive(Debug, Default)]
pub struct Scan {
    /// Significant tokens in source order.
    pub tokens: Vec<Spanned>,
    /// Waiver annotations in source order.
    pub annotations: Vec<Annotation>,
}

/// Prefix that marks a waiver comment.
pub(crate) const ANNOTATION_PREFIX: &str = "snaps-lint:";

/// Lex `src` into significant tokens and waiver annotations.
#[must_use]
pub fn scan(src: &str) -> Scan {
    let bytes = src.as_bytes();
    let mut out = Scan::default();
    let mut i = 0usize;
    let mut line = 1usize;
    // Line of the most recently emitted token, to decide whether a waiver
    // comment trails code (applies to its own line) or stands alone
    // (applies to the next line).
    let mut last_tok_line = 0usize;

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let text = src.get(start..i).unwrap_or("");
                if let Some(ann) = parse_annotation(text, line, last_tok_line == line) {
                    out.annotations.push(ann);
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, nesting-aware.
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                i = skip_string(bytes, i, &mut line);
            }
            b'r' | b'b' | b'c' if is_literal_prefix(bytes, i) => {
                i = skip_prefixed_literal(bytes, i, &mut line);
            }
            b'\'' => {
                i = skip_char_or_lifetime(bytes, i, &mut line);
            }
            _ if b.is_ascii_digit() => {
                i = skip_number(bytes, i);
            }
            _ if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric() || bytes[i] >= 0x80)
                {
                    i += 1;
                }
                let ident = src.get(start..i).unwrap_or("").to_string();
                out.tokens.push(Spanned { line, tok: Tok::Ident(ident) });
                last_tok_line = line;
            }
            _ => {
                out.tokens.push(Spanned { line, tok: Tok::Punct(b as char) });
                last_tok_line = line;
                i += 1;
            }
        }
    }
    out
}

/// Is the `r`/`b`/`c` at `i` the start of a string/char-literal prefix
/// (`r"`, `r#"`, `b"`, `b'`, `br"`, `c"`, …) rather than an identifier?
fn is_literal_prefix(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    // Up to two prefix letters (`br`, `cr`).
    while j < bytes.len() && j - i < 2 && matches!(bytes[j], b'r' | b'b' | b'c') {
        j += 1;
    }
    match bytes.get(j) {
        Some(b'"') | Some(b'\'') => true,
        Some(b'#') => {
            // `r#"` raw string vs `r#ident` raw identifier.
            let mut k = j;
            while bytes.get(k) == Some(&b'#') {
                k += 1;
            }
            bytes.get(k) == Some(&b'"')
        }
        _ => false,
    }
}

/// Skip a prefixed literal starting at `i` (`r"…"`, `r#"…"#`, `b'…'`,
/// `br#"…"#`, …); returns the index after it.
fn skip_prefixed_literal(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    let mut raw = false;
    while i < bytes.len() && matches!(bytes[i], b'r' | b'b' | b'c') {
        raw |= bytes[i] == b'r';
        i += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    match bytes.get(i) {
        Some(b'"') if raw => {
            // Raw string: ends at `"` followed by `hashes` `#`s; no escapes.
            i += 1;
            while i < bytes.len() {
                if bytes[i] == b'\n' {
                    *line += 1;
                    i += 1;
                } else if bytes[i] == b'"'
                    && bytes[i + 1..].iter().take(hashes).filter(|&&c| c == b'#').count() == hashes
                {
                    return i + 1 + hashes;
                } else {
                    i += 1;
                }
            }
            i
        }
        Some(b'"') => skip_string(bytes, i, line),
        Some(b'\'') => skip_char_or_lifetime(bytes, i, line),
        _ => i,
    }
}

/// Skip a `"…"` string with escapes; `i` points at the opening quote.
fn skip_string(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                // An escaped newline (line continuation) still ends a line.
                if bytes.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skip a char literal or a lifetime; `i` points at the `'`.
fn skip_char_or_lifetime(bytes: &[u8], i: usize, line: &mut usize) -> usize {
    // `'\…'` is always a char literal.
    if bytes.get(i + 1) == Some(&b'\\') {
        let mut j = i + 2;
        // Skip the escape head (covers \u{…} too: scan to the closing quote).
        while j < bytes.len() && bytes[j] != b'\'' {
            j += 1;
        }
        return j + 1;
    }
    // `'x'` char literal vs `'label` lifetime: a lifetime's ident run is not
    // followed by a closing quote.
    let mut j = i + 1;
    while j < bytes.len()
        && (bytes[j] == b'_' || bytes[j].is_ascii_alphanumeric() || bytes[j] >= 0x80)
    {
        j += 1;
    }
    if j > i + 1 && bytes.get(j) == Some(&b'\'') {
        return j + 1; // 'x'
    }
    if j == i + 1 {
        // `'('`-style single punctuation char literal.
        if bytes.get(i + 1) == Some(&b'\n') {
            *line += 1;
        }
        if bytes.get(i + 2) == Some(&b'\'') {
            return i + 3;
        }
        return i + 1; // lone quote; treat as consumed
    }
    j // lifetime: ident consumed, emit nothing
}

/// Skip a numeric literal (digits, `_`, type suffixes, hex/bin, `1.5` but
/// not `1..5`).
fn skip_number(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'_'
            || b.is_ascii_alphanumeric()
            || (b == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit))
        {
            i += 1;
        } else {
            break;
        }
    }
    i
}

/// Parse a line comment's text into an [`Annotation`], if it is one.
fn parse_annotation(text: &str, line: usize, code_before: bool) -> Option<Annotation> {
    // Doc comments (`///`, `//!`) reach here with a leading `/` or `!`.
    let text = text.trim_start_matches(['/', '!']).trim();
    let rest = text.strip_prefix(ANNOTATION_PREFIX)?.trim();
    let applies_to = if code_before { line } else { line + 1 };
    let mut ann =
        Annotation { line, applies_to, rules: Vec::new(), reason: String::new(), error: None };

    let Some(inner) = rest.strip_prefix("allow") else {
        ann.error = Some(format!("expected `allow(<rule>) -- <reason>`, got `{rest}`"));
        return Some(ann);
    };
    let inner = inner.trim_start();
    let Some(inner) = inner.strip_prefix('(') else {
        ann.error = Some("missing `(` after `allow`".to_string());
        return Some(ann);
    };
    let Some(close) = inner.find(')') else {
        ann.error = Some("missing `)` in allow list".to_string());
        return Some(ann);
    };
    ann.rules = inner[..close]
        .split(',')
        .map(str::trim)
        .filter(|r| !r.is_empty())
        .map(str::to_string)
        .collect();
    if ann.rules.is_empty() {
        ann.error = Some("empty allow list".to_string());
        return Some(ann);
    }
    let tail = inner[close + 1..].trim();
    match tail.strip_prefix("--") {
        Some(reason) if !reason.trim().is_empty() => ann.reason = reason.trim().to_string(),
        _ => {
            ann.error = Some("missing `-- <reason>` justification".to_string());
        }
    }
    Some(ann)
}

/// Remove the token ranges of `#[cfg(test)]`, `#[test]`, and `#[bench]`
/// items, so rules never fire on test code.
#[must_use]
pub fn strip_test_regions(tokens: Vec<Spanned>) -> Vec<Spanned> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].tok == Tok::Punct('#')
            && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
        {
            let (attr_end, is_test) = parse_attr(&tokens, i);
            if is_test {
                i = skip_attributed_item(&tokens, attr_end);
                continue;
            }
            // Keep the attribute tokens (e.g. `#[derive(...)]`) — harmless.
            out.extend_from_slice(&tokens[i..attr_end]);
            i = attr_end;
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// Parse the `#[...]` starting at `i`; returns (index after `]`, is-test).
fn parse_attr(tokens: &[Spanned], i: usize) -> (usize, bool) {
    let mut j = i + 2; // past `#` `[`
    let mut depth = 1usize;
    let mut idents: Vec<&str> = Vec::new();
    while j < tokens.len() && depth > 0 {
        match &tokens[j].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => depth -= 1,
            Tok::Ident(id) => idents.push(id),
            Tok::Punct(_) => {}
        }
        j += 1;
    }
    let is_test = match idents.first().copied() {
        Some("test" | "bench") => true,
        Some("cfg") => idents.contains(&"test"),
        _ => false,
    };
    (j, is_test)
}

/// Skip the item following a test attribute: any further attributes, then
/// either a `;`-terminated item or a braced item (to its matching `}`).
fn skip_attributed_item(tokens: &[Spanned], mut i: usize) -> usize {
    // Further attributes on the same item.
    while i < tokens.len()
        && tokens[i].tok == Tok::Punct('#')
        && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
    {
        let (end, _) = parse_attr(tokens, i);
        i = end;
    }
    let mut depth = 0usize;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            Tok::Punct(';') if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                Tok::Punct(_) => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_are_invisible() {
        let src = r###"
// HashMap in a comment
/* Instant::now() in a block /* nested */ comment */
let s = "HashMap::new() unwrap()";
let r = r#"thread_rng() "quoted" panic!"#;
let c = '"'; let u = unsafe_free;
"###;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(ids.contains(&"unsafe_free".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ids = idents("fn f<'a>(s: &'a str) { let c = 'x'; let n = '\\n'; let p = '('; }");
        assert!(ids.contains(&"str".to_string()));
        // Char literal contents never become identifiers.
        assert!(!ids.contains(&"x".to_string()), "{ids:?}");
        let ids2 = idents("let v = vec!['{', '}'];");
        assert_eq!(ids2, vec!["let", "v", "vec"]);
    }

    #[test]
    fn line_numbers_track_multiline_literals() {
        let src = "let a = \"line\nline\nline\";\nlet target = HashMap;";
        let s = scan(src);
        let hm =
            s.tokens.iter().find(|t| t.tok == Tok::Ident("HashMap".into())).expect("HashMap token");
        assert_eq!(hm.line, 4);
    }

    #[test]
    fn line_numbers_track_escaped_newline_continuations() {
        // A `\`-continued string still spans two source lines.
        let src = "let a = \"first \\\n         second\";\nlet target = HashMap;";
        let s = scan(src);
        let hm =
            s.tokens.iter().find(|t| t.tok == Tok::Ident("HashMap".into())).expect("HashMap token");
        assert_eq!(hm.line, 3);
    }

    #[test]
    fn annotation_parsed_with_reason() {
        let src = "let m = HashMap::new(); // snaps-lint: allow(hash-iter) -- keys only probed\n";
        let s = scan(src);
        assert_eq!(s.annotations.len(), 1);
        let a = &s.annotations[0];
        assert_eq!(a.rules, vec!["hash-iter"]);
        assert_eq!(a.reason, "keys only probed");
        assert_eq!(a.applies_to, 1, "trailing comment covers its own line");
        assert!(a.error.is_none());
    }

    #[test]
    fn standalone_annotation_covers_next_line() {
        let src =
            "// snaps-lint: allow(hash-iter, wall-clock) -- why not\nlet m = HashMap::new();\n";
        let s = scan(src);
        let a = &s.annotations[0];
        assert_eq!(a.applies_to, 2);
        assert_eq!(a.rules, vec!["hash-iter", "wall-clock"]);
    }

    #[test]
    fn annotation_without_reason_is_error() {
        let s = scan("// snaps-lint: allow(hash-iter)\n");
        assert!(s.annotations[0].error.is_some());
    }

    #[test]
    fn annotation_in_string_ignored() {
        let s = scan("let x = \"// snaps-lint: allow(hash-iter) -- nope\";\n");
        assert!(s.annotations.is_empty());
    }

    #[test]
    fn cfg_test_module_stripped() {
        let src = "
fn real() { keep_me(); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { drop_me.unwrap(); }
}
fn after() { also_kept(); }
";
        let toks = strip_test_regions(scan(src).tokens);
        let ids: Vec<String> = toks
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                Tok::Punct(_) => None,
            })
            .collect();
        assert!(ids.contains(&"keep_me".to_string()));
        assert!(ids.contains(&"also_kept".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"drop_me".to_string()));
    }

    #[test]
    fn non_test_attrs_kept() {
        let src = "#[derive(Debug, Clone)]\nstruct S { x: HashMap }";
        let toks = strip_test_regions(scan(src).tokens);
        let ids: Vec<String> = toks
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                Tok::Punct(_) => None,
            })
            .collect();
        assert!(ids.contains(&"HashMap".to_string()));
        assert!(ids.contains(&"Debug".to_string()));
    }

    #[test]
    fn cfg_all_test_stripped() {
        let src =
            "#[cfg(all(test, feature = \"x\"))]\nmod t { fn f() { bad.unwrap(); } }\nfn keep() {}";
        let toks = strip_test_regions(scan(src).tokens);
        let ids: Vec<String> = toks
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                Tok::Punct(_) => None,
            })
            .collect();
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"keep".to_string()));
    }

    #[test]
    fn raw_identifier_unescaped() {
        let ids = idents("let r#type = 1; let raw = r#\"string\"#;");
        assert!(ids.contains(&"type".to_string()));
        assert!(!ids.contains(&"string".to_string()));
    }

    #[test]
    fn raw_strings_never_seed_pass4_sources() {
        // Pass-4 source and write patterns quoted inside a raw string —
        // including a multi-hash one wrapping an embedded `r#"…"#` and a
        // bare `"` — must produce no tokens, and line tracking must
        // resume correctly after the literal so later sites anchor right.
        let src = "let doc = r##\"Instant::now()\nfor k in m {} FOUND.lock().push(1)\n\
                   r#\"HashMap\"# a \" quote\"##;\nlet target = SystemTime;";
        let s = scan(src);
        let ids: Vec<String> = s
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(i) => Some(i.clone()),
                Tok::Punct(_) => None,
            })
            .collect();
        assert_eq!(ids, vec!["let", "doc", "let", "target", "SystemTime"], "{ids:?}");
        let st = s
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("SystemTime".into()))
            .expect("SystemTime token");
        assert_eq!(st.line, 4, "line count spans the multi-line raw string");
    }
}
