//! Cross-crate call graph over the item model from [`crate::items`].
//!
//! Nodes are every function extracted from non-test files; edges come from
//! resolving each call site against the workspace. Resolution is
//! deliberately an *over-approximation* — sound for reachability rules,
//! which must never miss a path:
//!
//! - path calls resolve through the caller's `use`-map, `snaps_*` crate
//!   prefixes, `crate`/`self`/`super`, `Type::method` associated paths,
//!   and bare same-crate names;
//! - method calls `recv.name(..)` resolve to **every** workspace
//!   `impl`/`trait` function of that name (no type inference), so a chain
//!   through a method call can never be dropped;
//! - paths that resolve into `std`/external crates resolve to nothing.
//!
//! Everything is keyed and ordered by `BTreeMap`s and sorted vectors, so
//! graph construction is deterministic and the report bytes are stable.

use crate::items::{CallSite, CallTarget, FileItems, FnItem};
use std::collections::BTreeMap;

/// How a call site resolved.
#[derive(Debug, Clone, Default)]
pub struct Resolution {
    /// Node indices of every possible callee (sorted, deduped).
    pub targets: Vec<usize>,
    /// The call resolved by method-name fallback rather than by path.
    pub via_method_fallback: bool,
}

/// The workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// Every function node; index = node id.
    pub fns: Vec<FnItem>,
    /// Resolved adjacency: `edges[n]` = sorted, deduped callee node ids.
    pub edges: Vec<Vec<usize>>,
    /// Per-file `use`-maps (leaf identifier → full import path).
    uses: BTreeMap<String, BTreeMap<String, Vec<String>>>,
    /// name → node ids (all functions).
    by_name: BTreeMap<String, Vec<usize>>,
    /// name → node ids restricted to `impl`/`trait` functions.
    methods_by_name: BTreeMap<String, Vec<usize>>,
    /// (crate, name) → node ids.
    by_crate_name: BTreeMap<(String, String), Vec<usize>>,
    /// (impl type, name) → node ids.
    by_type_name: BTreeMap<(String, String), Vec<usize>>,
}

impl CallGraph {
    /// Build the graph from every file's item model.
    #[must_use]
    pub fn build(files: &BTreeMap<String, FileItems>) -> Self {
        let mut fns: Vec<FnItem> = Vec::new();
        let mut uses = BTreeMap::new();
        for (file, items) in files {
            uses.insert(file.clone(), items.uses.clone());
            fns.extend(items.fns.iter().cloned());
        }
        let mut g = CallGraph {
            edges: vec![Vec::new(); fns.len()],
            fns,
            uses,
            by_name: BTreeMap::new(),
            methods_by_name: BTreeMap::new(),
            by_crate_name: BTreeMap::new(),
            by_type_name: BTreeMap::new(),
        };
        for (idx, f) in g.fns.iter().enumerate() {
            g.by_name.entry(f.name.clone()).or_default().push(idx);
            g.by_crate_name.entry((f.krate.clone(), f.name.clone())).or_default().push(idx);
            if let Some(t) = &f.impl_type {
                g.methods_by_name.entry(f.name.clone()).or_default().push(idx);
                g.by_type_name.entry((t.clone(), f.name.clone())).or_default().push(idx);
            }
        }
        for caller in 0..g.fns.len() {
            let mut out: Vec<usize> = Vec::new();
            for call in &g.fns[caller].calls.clone() {
                out.extend(g.resolve(caller, call).targets);
            }
            out.sort_unstable();
            out.dedup();
            g.edges[caller] = out;
        }
        g
    }

    /// Total number of resolved edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// The canonical display name of a node:
    /// `<crate>::<module>::[Type::]<name>`.
    #[must_use]
    pub fn display(&self, idx: usize) -> String {
        self.fns.get(idx).map_or_else(String::new, |f| {
            let mut s = f.krate.clone();
            if !f.module.is_empty() {
                s.push_str("::");
                s.push_str(&f.module);
            }
            if let Some(t) = &f.impl_type {
                s.push_str("::");
                s.push_str(t);
            }
            s.push_str("::");
            s.push_str(&f.name);
            s
        })
    }

    /// Resolve one call site of `caller` to workspace node ids.
    #[must_use]
    pub fn resolve(&self, caller: usize, call: &CallSite) -> Resolution {
        let Some(f) = self.fns.get(caller) else { return Resolution::default() };
        match &call.target {
            CallTarget::Method(name) => {
                let mut targets = self.methods_by_name.get(name).cloned().unwrap_or_default();
                // Same-crate preference: when the caller's own crate defines
                // a method of this name, the receiver is overwhelmingly a
                // local type — restrict the fallback to those candidates
                // instead of fanning out across the whole workspace. This
                // trades a sliver of soundness for far fewer false
                // cross-crate edges (documented in DESIGN.md §10).
                let same_crate: Vec<usize> = targets
                    .iter()
                    .copied()
                    .filter(|&t| self.fns.get(t).is_some_and(|c| c.krate == f.krate))
                    .collect();
                if !same_crate.is_empty() {
                    targets = same_crate;
                }
                targets.sort_unstable();
                targets.dedup();
                Resolution { targets, via_method_fallback: true }
            }
            CallTarget::Path(segs) => {
                let targets = self.resolve_path(f, segs);
                Resolution { targets, via_method_fallback: false }
            }
        }
    }

    /// Resolve a path call made from function `f`.
    fn resolve_path(&self, f: &FnItem, segs: &[String]) -> Vec<usize> {
        let empty = BTreeMap::new();
        let use_map = self.uses.get(&f.file).unwrap_or(&empty);

        // Expand the first segment through the file's use-map, when imported.
        let mut path: Vec<String> = segs.to_vec();
        if let Some(first) = path.first() {
            if !is_path_root(first) {
                if let Some(full) = use_map.get(first) {
                    let mut expanded = full.clone();
                    expanded.extend(path.iter().skip(1).cloned());
                    path = expanded;
                }
            }
        }

        // Determine the crate the path points into, if decidable.
        let mut krate: Option<String> = None;
        loop {
            match path.first().map(String::as_str) {
                Some(s) if s.starts_with("snaps_") => {
                    krate = Some(s.trim_start_matches("snaps_").to_string());
                    path.remove(0);
                }
                Some("crate") | Some("self") | Some("super") => {
                    krate = Some(f.krate.clone());
                    path.remove(0);
                    continue; // strip repeated `super::super::`
                }
                Some("std") | Some("core") | Some("alloc") => return Vec::new(),
                _ => {}
            }
            break;
        }

        let Some(name) = path.last().cloned() else { return Vec::new() };
        let qualifier = path.len().checked_sub(2).and_then(|i| path.get(i)).cloned();

        // `Self::helper(..)` — the caller's own impl type.
        let qualifier = match qualifier.as_deref() {
            Some("Self") => f.impl_type.clone(),
            _ => qualifier,
        };

        let mut out: Vec<usize> = Vec::new();
        if let Some(q) = qualifier.as_deref().filter(|q| is_type_name(q)) {
            // `Type::method(..)` — associated path; crate-agnostic because
            // types travel through re-exports and `use` renames.
            out.extend(self.by_type_name.get(&(q.to_string(), name.clone())).into_iter().flatten());
        } else if let Some(k) = krate {
            out.extend(self.by_crate_name.get(&(k, name.clone())).into_iter().flatten());
        } else if path.len() == 1 {
            // Bare `helper(..)` — same crate unless imported from elsewhere
            // (the import case was expanded above).
            out.extend(
                self.by_crate_name.get(&(f.krate.clone(), name.clone())).into_iter().flatten(),
            );
        } else {
            // `module::helper(..)` with an unknowable root: assume the
            // caller's own crate (module paths across crates always carry a
            // `snaps_*` or use-imported root, handled above).
            out.extend(
                self.by_crate_name.get(&(f.krate.clone(), name.clone())).into_iter().flatten(),
            );
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Is this segment a path root keyword rather than an importable name?
fn is_path_root(s: &str) -> bool {
    matches!(s, "crate" | "self" | "super" | "std" | "core" | "alloc") || s.starts_with("snaps_")
}

/// Heuristic: capitalised first letter ⇒ a type name (workspace style
/// never capitalises modules or functions).
fn is_type_name(s: &str) -> bool {
    s.chars().next().is_some_and(char::is_uppercase)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;
    use crate::scanner;

    fn file(krate: &str, path: &str, src: &str) -> (String, FileItems) {
        let scan = scanner::scan(src);
        let toks = scanner::strip_test_regions(scan.tokens);
        (path.to_string(), extract(krate, path, &toks))
    }

    fn graph(files: Vec<(String, FileItems)>) -> CallGraph {
        CallGraph::build(&files.into_iter().collect())
    }

    fn node(g: &CallGraph, krate: &str, name: &str) -> usize {
        g.fns
            .iter()
            .position(|f| f.krate == krate && f.name == name)
            .unwrap_or_else(|| panic!("no node {krate}::{name}"))
    }

    #[test]
    fn cross_crate_path_call_resolves_via_use_map() {
        let g = graph(vec![
            file(
                "serve",
                "crates/serve/src/server.rs",
                "use snaps_query::run_query;\nfn search() { run_query(); }\n",
            ),
            file("query", "crates/query/src/lib.rs", "pub fn run_query() {}\n"),
        ]);
        let s = node(&g, "serve", "search");
        let q = node(&g, "query", "run_query");
        assert_eq!(g.edges[s], vec![q]);
    }

    #[test]
    fn fully_qualified_snaps_path_resolves() {
        let g = graph(vec![
            file("serve", "crates/serve/src/lib.rs", "fn f() { snaps_query::process::go(); }\n"),
            file("query", "crates/query/src/process.rs", "pub fn go() {}\n"),
        ]);
        assert_eq!(g.edges[node(&g, "serve", "f")], vec![node(&g, "query", "go")]);
    }

    #[test]
    fn method_call_falls_back_to_all_impl_fns() {
        let g = graph(vec![
            file("serve", "crates/serve/src/lib.rs", "fn f(x: X) { x.lookup(); }\n"),
            file(
                "index",
                "crates/index/src/lib.rs",
                "pub struct A;\nimpl A { pub fn lookup(&self) {} }\n\
                 pub struct B;\nimpl B { pub fn lookup(&self) {} }\n",
            ),
        ]);
        let f = node(&g, "serve", "f");
        assert_eq!(g.edges[f].len(), 2, "both lookup impls are fallback targets");
        let call = &g.fns[f].calls[0];
        assert!(g.resolve(f, call).via_method_fallback);
    }

    #[test]
    fn method_fallback_prefers_same_crate_candidates() {
        let g = graph(vec![
            file(
                "obs",
                "crates/obs/src/lib.rs",
                "pub struct Tree;\nimpl Tree { pub fn record(&self) {} }\n\
                 fn go(t: Tree) { t.record(); }\n",
            ),
            file(
                "model",
                "crates/model/src/dataset.rs",
                "pub struct Dataset;\nimpl Dataset { pub fn record(&self) {} }\n",
            ),
        ]);
        let go = node(&g, "obs", "go");
        assert_eq!(
            g.edges[go],
            vec![node(&g, "obs", "record")],
            "the obs-local record shadows the cross-crate fallback"
        );
    }

    #[test]
    fn type_qualified_call_resolves_to_impl() {
        let g = graph(vec![
            file(
                "serve",
                "crates/serve/src/lib.rs",
                "use snaps_query::QueryRecord;\nfn f() { QueryRecord::try_new(); }\n",
            ),
            file(
                "query",
                "crates/query/src/query.rs",
                "pub struct QueryRecord;\nimpl QueryRecord { pub fn try_new() {} }\n",
            ),
        ]);
        assert_eq!(g.edges[node(&g, "serve", "f")], vec![node(&g, "query", "try_new")]);
    }

    #[test]
    fn std_paths_resolve_to_nothing() {
        let g = graph(vec![file(
            "serve",
            "crates/serve/src/lib.rs",
            "use std::fs::read;\nfn f() { read(); std::mem::take(); }\n",
        )]);
        assert!(g.edges[node(&g, "serve", "f")].is_empty());
    }

    #[test]
    fn crate_and_self_prefixes_stay_local() {
        let g = graph(vec![
            file(
                "query",
                "crates/query/src/process.rs",
                "pub fn outer() { crate::helper(); self::helper(); }\npub fn helper() {}\n",
            ),
            file("core", "crates/core/src/lib.rs", "pub fn helper() {}\n"),
        ]);
        let o = node(&g, "query", "outer");
        assert_eq!(g.edges[o], vec![node(&g, "query", "helper")]);
    }

    #[test]
    fn display_names_are_canonical() {
        let g = graph(vec![file(
            "core",
            "crates/core/src/pedigree.rs",
            "pub struct PedigreeGraph;\nimpl PedigreeGraph { pub fn get(&self) {} }\n",
        )]);
        assert_eq!(g.display(0), "core::pedigree::PedigreeGraph::get");
    }
}
