//! Pass 4b: shard-safety for the declared parallel-stage roots.
//!
//! [`SHARD_ROOTS`] declares the functions the planned parallel pipeline
//! will run per-shard: blocking candidate generation, pairwise comparison,
//! dependency-graph construction, and the merge reduction. For everything
//! reachable from a root (over the same filtered call edges the dataflow
//! passes trust — [`crate::taint::filtered_edges`]) the pass rejects the
//! mutation patterns that stop being safe the moment two shards run the
//! code concurrently:
//!
//! - **writes to shared `static` state** — a mutating call whose receiver
//!   chain is rooted at an interior-mutability `static`
//!   ([`crate::items::StaticItem`]);
//! - **non-commutative accumulation through a lock guard** — `push`,
//!   `insert`, `+=`, … whose receiver passes through a `lock()`/`read()`/
//!   `write()` segment (directly or via the guard's `let` binding): the
//!   final state depends on shard arrival order;
//! - **non-commutative atomics** — `store`/`swap`/`compare_exchange` on a
//!   shared atomic (`self`-rooted, static-rooted, or guard-rooted);
//!   commutative RMWs (`fetch_add`/`fetch_sub`/`fetch_min`/`fetch_max`)
//!   are interleaving-invariant and deliberately exempt;
//! - **lock keys outside the pass-3 lock-order graph** — a lock acquired
//!   in a shard closure but on no declared entry path has never been
//!   checked for ordering cycles, so parallelising around it is unproven.
//!
//! Everything else is exclusive by construction: in safe Rust a `&mut`
//! receiver cannot be shared between shards, so per-shard accumulators
//! (`Vec::push` on a local, `+=` on an owned float) never fire.

use crate::callgraph::CallGraph;
use crate::items::MutWriteSite;
use crate::reach::{self, ENTRY_POINTS};
use crate::rules::Finding;
use crate::taint::{bfs_over, filtered_edges};
use std::collections::{BTreeMap, BTreeSet};

/// One declared parallel-stage root function.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardRoot {
    /// Pipeline stage name used in diagnostics and the report.
    pub stage: &'static str,
    /// Short crate name the root lives in.
    pub krate: &'static str,
    /// Enclosing `impl` type, when the root is a method.
    pub impl_type: Option<&'static str>,
    /// Root function name.
    pub function: &'static str,
}

/// The declared shard roots (kept in sync with DESIGN.md §10.5): the four
/// stages ROADMAP item 1 wants to fan out across shards.
pub(crate) const SHARD_ROOTS: &[ShardRoot] = &[
    ShardRoot {
        stage: "blocking",
        krate: "blocking",
        impl_type: None,
        function: "candidate_pairs",
    },
    ShardRoot { stage: "comparison", krate: "core", impl_type: None, function: "node_similarity" },
    ShardRoot {
        stage: "dependency-graph",
        krate: "core",
        impl_type: Some("DependencyGraph"),
        function: "build",
    },
    ShardRoot {
        stage: "merge-reduction",
        krate: "core",
        impl_type: None,
        function: "confirm_intra_entity_links",
    },
];

/// Per-root statistics for the report's `shard_roots` section.
#[derive(Debug, Clone)]
pub struct ShardRootStat {
    /// Declared stage name.
    pub stage: &'static str,
    /// Display name of the matched root function (declared `crate::fn`
    /// path when nothing matched).
    pub root: String,
    /// Number of function nodes matching the declaration.
    pub matched: usize,
    /// Size of the root's reachable closure over filtered call edges.
    pub reachable: usize,
    /// Shard-safety violation sites inside the closure.
    pub violations: usize,
}

/// Outcome of the pass: findings, per-entry violation counts, per-root
/// statistics.
#[derive(Debug, Default)]
pub(crate) struct ShardOutcome {
    /// shard-safety findings.
    pub findings: Vec<Finding>,
    /// Per-entry count of violation sites inside the entry's reachable
    /// set, in entry-table order.
    pub per_entry: Vec<usize>,
    /// Per-root statistics, in [`SHARD_ROOTS`] table order.
    pub roots: Vec<ShardRootStat>,
}

/// Atomic operations whose final state depends on execution order.
/// `fetch_add`-family RMWs commute and are exempt by design.
const NONCOMMUTATIVE_ATOMICS: &[&str] =
    &["compare_exchange", "compare_exchange_weak", "store", "swap"];

/// Receiver-chain segments that mark the write as going through a shared
/// lock guard.
const GUARD_SEGMENTS: &[&str] = &["lock()", "read()", "write()"];

/// Why this write is shard-unsafe, or `None` when the receiver is
/// exclusive (local or `&mut`-rooted) and the op is not a shared atomic.
fn shared_write_reason(w: &MutWriteSite, shared_statics: &BTreeMap<String, String>) -> Option<String> {
    let root = w.receiver.first().map(String::as_str);
    let static_decl = root.and_then(|r| shared_statics.get(r));
    let guard_rooted = w.receiver.iter().any(|s| GUARD_SEGMENTS.contains(&s.as_str()))
        || w.via.as_deref().is_some_and(|v| GUARD_SEGMENTS.contains(&v));
    if NONCOMMUTATIVE_ATOMICS.contains(&w.op.as_str()) {
        if static_decl.is_some() || guard_rooted || root == Some("self") {
            return Some(format!("non-commutative atomic `{}`", w.op));
        }
        return None;
    }
    if let Some(decl) = static_decl {
        return Some(format!(
            "`{}` into shared static `{}` (declared at {decl})",
            w.op,
            root.unwrap_or_default()
        ));
    }
    if guard_rooted {
        return Some(format!("non-commutative `{}` through a shared lock guard", w.op));
    }
    None
}

/// Run the shard-safety pass. `shared_statics` maps every
/// interior-mutability `static` in the workspace to its declaration site
/// (`file:line`); `known_lock_keys` is the union of lock keys the pass-3
/// lock-order graph covers.
#[must_use]
pub(crate) fn check(
    graph: &CallGraph,
    shared_statics: &BTreeMap<String, String>,
    known_lock_keys: &BTreeSet<String>,
) -> ShardOutcome {
    let adj = filtered_edges(graph);
    let mut matched: Vec<Vec<usize>> = Vec::new();
    let mut parents: Vec<BTreeMap<usize, usize>> = Vec::new();
    for root in SHARD_ROOTS {
        let roots: Vec<usize> = graph
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.krate == root.krate
                    && f.name == root.function
                    && f.impl_type.as_deref() == root.impl_type
            })
            .map(|(i, _)| i)
            .collect();
        parents.push(bfs_over(&adj, &roots));
        matched.push(roots);
    }

    // Node → first (table-order) root covering it, for chain attribution;
    // every violation site is reported and counted exactly once.
    let mut covered: BTreeMap<usize, usize> = BTreeMap::new();
    for (ri, parent) in parents.iter().enumerate() {
        for &n in parent.keys() {
            covered.entry(n).or_insert(ri);
        }
    }

    let mut site_count: BTreeMap<usize, usize> = BTreeMap::new();
    let mut findings: Vec<Finding> = Vec::new();
    for (&n, &ri) in &covered {
        let f = &graph.fns[n];
        let root = &SHARD_ROOTS[ri];
        let chain = reach::chain_to(graph, &parents[ri], n).join(" → ");
        let mut count = 0usize;
        for w in &f.mut_writes {
            let Some(why) = shared_write_reason(w, shared_statics) else { continue };
            count += 1;
            findings.push(Finding {
                rule: "shard-safety",
                file: f.file.clone(),
                line: w.line,
                message: format!(
                    "shard-unsafe write in {name}, reachable from the {stage} stage root: \
                     {why} at {file}:{line}; parallel shards would race on it ({chain})",
                    name = graph.display(n),
                    stage = root.stage,
                    file = f.file,
                    line = w.line,
                ),
                waived: false,
            });
        }
        for l in &f.locks {
            if known_lock_keys.contains(&l.key) {
                continue;
            }
            count += 1;
            findings.push(Finding {
                rule: "shard-safety",
                file: f.file.clone(),
                line: l.line,
                message: format!(
                    "lock key {key} acquired in {name} ({file}:{line}), reachable from the \
                     {stage} stage root ({chain}), is not in the pass-3 lock-order graph: \
                     hang the stage's locks off a declared entry point before parallelising",
                    key = l.key,
                    name = graph.display(n),
                    file = f.file,
                    line = l.line,
                    stage = root.stage,
                ),
                waived: false,
            });
        }
        if count > 0 {
            site_count.insert(n, count);
        }
    }

    let mut out = ShardOutcome::default();
    for (ri, root) in SHARD_ROOTS.iter().enumerate() {
        let display = matched[ri].first().map_or_else(
            || format!("{}::{}", root.krate, root.function),
            |&n| graph.display(n),
        );
        out.roots.push(ShardRootStat {
            stage: root.stage,
            root: display,
            matched: matched[ri].len(),
            reachable: parents[ri].len(),
            violations: parents[ri].keys().filter_map(|n| site_count.get(n)).sum(),
        });
    }
    for spec in ENTRY_POINTS {
        let roots = reach::roots_of(graph, spec);
        let parent = reach::bfs(graph, &roots);
        out.per_entry.push(parent.keys().filter_map(|n| site_count.get(n)).sum());
    }

    findings.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    findings.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    out.findings = findings;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::{extract, FileItems};
    use crate::scanner;

    fn ws(files: Vec<(&str, &str, &str)>) -> (CallGraph, BTreeMap<String, String>) {
        let map: BTreeMap<String, FileItems> = files
            .into_iter()
            .map(|(krate, path, src)| {
                let scan = scanner::scan(src);
                let toks = scanner::strip_test_regions(scan.tokens);
                (path.to_string(), extract(krate, path, &toks))
            })
            .collect();
        let statics = map
            .iter()
            .flat_map(|(path, f)| f.statics.iter().map(move |s| (s, path)))
            .filter(|(s, _)| s.interior_mut)
            .map(|(s, path)| (s.name.clone(), format!("{path}:{}", s.line)))
            .collect();
        (CallGraph::build(&map), statics)
    }

    fn keys(v: &[&str]) -> BTreeSet<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn stat<'a>(out: &'a ShardOutcome, stage: &str) -> &'a ShardRootStat {
        out.roots.iter().find(|r| r.stage == stage).expect("declared stage")
    }

    #[test]
    fn shared_static_push_fires_on_the_blocking_root() {
        let (g, statics) = ws(vec![(
            "blocking",
            "crates/blocking/src/pairs.rs",
            "use std::sync::Mutex;\n\
             static FOUND: Mutex<Vec<u32>> = Mutex::new(Vec::new());\n\
             pub fn candidate_pairs() { FOUND.lock().push(1); }\n",
        )]);
        assert_eq!(
            statics.get("FOUND").map(String::as_str),
            Some("crates/blocking/src/pairs.rs:2"),
            "declaration site recorded"
        );
        let out = check(&g, &statics, &keys(&["blocking.FOUND"]));
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        let f = &out.findings[0];
        assert_eq!(f.rule, "shard-safety");
        assert!(
            f.message.contains("shared static `FOUND` (declared at crates/blocking/src/pairs.rs:2)"),
            "{}",
            f.message
        );
        assert!(f.message.contains("blocking stage root"), "{}", f.message);
        assert!(f.message.contains("blocking::pairs::candidate_pairs"), "{}", f.message);
        let s = stat(&out, "blocking");
        assert_eq!((s.matched, s.violations), (1, 1));
    }

    #[test]
    fn local_accumulator_is_clean() {
        let (g, statics) = ws(vec![(
            "blocking",
            "crates/blocking/src/pairs.rs",
            "pub fn candidate_pairs() { let mut v: Vec<u32> = Vec::new(); \
             v.push(1); v.truncate(0); }\n",
        )]);
        let out = check(&g, &statics, &BTreeSet::new());
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(stat(&out, "blocking").violations, 0);
    }

    #[test]
    fn guard_bound_push_and_compound_assign_fire() {
        let (g, statics) = ws(vec![(
            "core",
            "crates/core/src/merge.rs",
            "pub struct Acc { sink: std::sync::Mutex<Vec<f32>>, total: std::sync::Mutex<f32> }\n\
             pub fn node_similarity(a: &Acc) { let mut g = a.sink.lock(); g.push(1.0); }\n\
             pub fn confirm_intra_entity_links(a: &Acc) { \
             let mut t = a.total.lock(); *t += 1.0; }\n",
        )]);
        let out = check(&g, &statics, &keys(&["core.sink", "core.total"]));
        assert_eq!(out.findings.len(), 2, "{:?}", out.findings);
        assert!(out.findings.iter().all(|f| f.message.contains("shared lock guard")));
        assert!(
            out.findings.iter().any(|f| f.message.contains("`+=`")),
            "compound assignment reported: {:?}",
            out.findings
        );
        assert_eq!(stat(&out, "comparison").violations, 1);
        assert_eq!(stat(&out, "merge-reduction").violations, 1);
    }

    #[test]
    fn self_rooted_atomic_store_fires_but_fetch_add_is_exempt() {
        let src = "pub struct Flags { ready: std::sync::atomic::AtomicBool }\n\
             impl Flags { pub fn poke(&self) { self.ready.store(true, Relaxed); } }\n\
             pub struct Tally { n: std::sync::atomic::AtomicU64 }\n\
             impl Tally { pub fn bump(&self) { self.n.fetch_add(1, Relaxed); } }\n\
             pub fn node_similarity(f: &Flags, t: &Tally) { f.poke(); t.bump(); }\n";
        let (g, statics) = ws(vec![("core", "crates/core/src/similarity.rs", src)]);
        let out = check(&g, &statics, &BTreeSet::new());
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert!(out.findings[0].message.contains("non-commutative atomic `store`"));
    }

    #[test]
    fn lock_key_outside_the_lockorder_graph_fires_until_declared() {
        let src = "pub struct S { m: std::sync::Mutex<u32> }\n\
             pub fn candidate_pairs(s: &S) { let g = s.m.lock(); drop(g); }\n";
        let (g, statics) = ws(vec![("blocking", "crates/blocking/src/pairs.rs", src)]);
        let out = check(&g, &statics, &BTreeSet::new());
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert!(out.findings[0].message.contains("not in the pass-3 lock-order graph"));
        let out = check(&g, &statics, &keys(&["blocking.m"]));
        assert!(out.findings.is_empty(), "declared key is clean: {:?}", out.findings);
    }

    #[test]
    fn per_entry_counts_cover_the_pipeline_main() {
        let (g, statics) = ws(vec![
            (
                "bench",
                "crates/bench/src/main.rs",
                "use snaps_blocking::candidate_pairs;\nfn main() { candidate_pairs(); }\n",
            ),
            (
                "blocking",
                "crates/blocking/src/pairs.rs",
                "use std::sync::Mutex;\n\
                 static FOUND: Mutex<Vec<u32>> = Mutex::new(Vec::new());\n\
                 pub fn candidate_pairs() { FOUND.lock().push(1); }\n",
            ),
        ]);
        let out = check(&g, &statics, &keys(&["blocking.FOUND"]));
        assert_eq!(out.per_entry.len(), ENTRY_POINTS.len());
        let mains = ENTRY_POINTS.iter().position(|e| e.label == "pipeline mains").expect("entry");
        assert_eq!(out.per_entry[mains], 1);
        assert_eq!(out.per_entry.iter().sum::<usize>(), 1);
    }

    #[test]
    fn unmatched_roots_report_zero_matched_without_findings() {
        let (g, statics) =
            ws(vec![("query", "crates/query/src/lib.rs", "pub fn run_query() {}\n")]);
        let out = check(&g, &statics, &BTreeSet::new());
        assert!(out.findings.is_empty());
        for s in &out.roots {
            assert_eq!((s.matched, s.reachable, s.violations), (0, 0, 0), "{}", s.stage);
        }
        assert_eq!(stat(&out, "blocking").root, "blocking::candidate_pairs");
    }
}
