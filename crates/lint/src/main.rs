//! CLI entry point for `snaps-lint`.
//!
//! ```text
//! snaps-lint [--root DIR] [--report PATH] [--schema PATH] [--list-rules] [--quiet]
//! ```
//!
//! Exit codes: 0 = clean, 1 = unwaived findings, 2 = usage or I/O error.

use snaps_lint::{report, workspace};
use std::path::PathBuf;
// The lint binary is the one place the tool itself needs an exit status.
use std::process::ExitCode; // snaps-lint: allow(process-net) -- ExitCode is the lint's own verdict channel

struct Args {
    root: Option<PathBuf>,
    report: Option<PathBuf>,
    schema: Option<PathBuf>,
    list_rules: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { root: None, report: None, schema: None, list_rules: false, quiet: false };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root requires a directory argument")?;
                args.root = Some(PathBuf::from(v));
            }
            "--report" => {
                let v = it.next().ok_or("--report requires a file argument")?;
                args.report = Some(PathBuf::from(v));
            }
            "--schema" => {
                let v = it.next().ok_or("--schema requires a file argument")?;
                args.schema = Some(PathBuf::from(v));
            }
            "--list-rules" => args.list_rules = true,
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => {
                return Err("usage: snaps-lint [--root DIR] [--report PATH] [--schema PATH] \
                            [--list-rules] [--quiet]"
                    .to_string())
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        print!("{}", report::rule_listing());
        return ExitCode::SUCCESS;
    }

    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("snaps-lint: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match workspace::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "snaps-lint: no workspace Cargo.toml found above {} (use --root)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let result = match workspace::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("snaps-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.report {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("snaps-lint: cannot create {}: {e}", parent.display());
                    return ExitCode::from(2);
                }
            }
        }
        if let Err(e) = std::fs::write(path, result.to_json()) {
            eprintln!("snaps-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    // The extracted wire schema is its own artifact: the exact bytes the
    // drift gate compares against results/SNAPSHOT_schema.json.
    if let Some(path) = &args.schema {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("snaps-lint: cannot create {}: {e}", parent.display());
                    return ExitCode::from(2);
                }
            }
        }
        if let Err(e) = std::fs::write(path, &result.wire.schema_json) {
            eprintln!("snaps-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if !args.quiet {
        print!("{}", result.to_console());
    }
    if result.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
