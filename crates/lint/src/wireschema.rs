//! Pass 5: wire-schema extraction, encode/decode symmetry, and the
//! snapshot format-compatibility gate.
//!
//! The snapshot file is the contract between the offline ER phase and the
//! serve path, and the remaining roadmap items (delta snapshots, zero-copy
//! layout) are format changes to that contract — so the contract itself
//! must be machine-checked. This pass symbolically walks every
//! `encode_*`/`write_*`/`decode_*`/`read_*` function inside the wire
//! perimeter ([`WIRE_FILES`]) and extracts, per snapshot section, the
//! ordered sequence of wire primitives each direction produces or
//! consumes: helper calls that take the `Writer`/`Reader` (such as
//! `write_strings` or `decode_keyword_map`) are inlined under the caller's
//! chain, and a `len_u32` count write (or a `Reader::len` count read)
//! followed by a loop folds into a single length-prefixed `seq`. Three
//! rule families come out of the two walks:
//!
//! - **wire-symmetry** — the writer and reader sequences for a section
//!   must match in primitive type, order, and length-prefix convention; a
//!   mismatch is reported as a field-level diff carrying both call chains;
//! - **wire-drift** — the extracted layout is rendered as the
//!   byte-deterministic golden `results/SNAPSHOT_schema.json`; any layout
//!   change relative to the committed golden without a `FORMAT_VERSION`
//!   bump is a finding, and a bumped layout regenerates the golden under
//!   `SNAPS_UPDATE_SCHEMA=1` (mirroring the prom golden's regen flow);
//! - **wire-totality** — every decode loop bound must come from a
//!   bounds-checked length (`Reader::len`) or a `try_from`-checked
//!   conversion, never a raw `u32`/`u64` read, so no wire field can drive
//!   an unchecked allocation or loop.
//!
//! Section ids and `FORMAT_VERSION` are numeric literals, which the token
//! scanner deliberately drops; those values are re-read from the raw
//! source text of `mod section { const NAME: u32 = N; }` and the
//! `const FORMAT_VERSION: u32 = N;` line.

use crate::report::json_str;
use crate::rules::Finding;
use crate::scanner::{Spanned, Tok};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Repo-relative files that make up the snapshot wire codec. The walk is
/// closed over these files: every section encoder/decoder and every helper
/// they call lives here (the same perimeter numflow uses for casts).
pub const WIRE_FILES: &[&str] = &["crates/serve/src/snapshot.rs", "crates/serve/src/wire.rs"];

/// Repo-relative path of the committed wire-schema golden.
pub const SCHEMA_PATH: &str = "results/SNAPSHOT_schema.json";

/// Environment variable that authorises regenerating the golden after a
/// `FORMAT_VERSION` bump (same contract as the prom golden's update flag).
pub const UPDATE_ENV: &str = "SNAPS_UPDATE_SCHEMA";

/// One wire-perimeter file handed to [`check`]: its repo-relative path,
/// raw source (for the numeric literals the scanner drops), and the
/// test-stripped token stream.
#[derive(Debug)]
pub struct FileInput {
    /// Repo-relative path with `/` separators.
    pub rel: String,
    /// Raw file contents.
    pub src: String,
    /// Token stream after `strip_test_regions`.
    pub tokens: Vec<Spanned>,
}

/// Per-section statistics for the report's `wire` block.
#[derive(Debug, Clone)]
pub struct WireSectionStat {
    /// Section id from `mod section` (0 when the const is missing).
    pub id: u32,
    /// Section const name (`META`, `GRAPH`, …).
    pub name: String,
    /// Encoder function registered in `to_bytes` (empty when missing).
    pub encoder: String,
    /// Decoder function registered in `from_bytes` (empty when missing).
    pub decoder: String,
    /// Top-level field count of the extracted sequence.
    pub fields: usize,
}

/// Pass-5 outcome rolled into the [`crate::report::Report`].
#[derive(Debug, Default)]
pub struct WireStats {
    /// `FORMAT_VERSION` value read from the wire perimeter source.
    pub format_version: Option<u32>,
    /// Extracted sections sorted by (id, name).
    pub sections: Vec<WireSectionStat>,
    /// The rendered wire-schema JSON (the golden's exact bytes).
    pub schema_json: String,
}

/// Findings plus statistics from one pass-5 run.
#[derive(Debug, Default)]
pub struct WireOutcome {
    /// wire-symmetry / wire-drift / wire-totality findings.
    pub findings: Vec<Finding>,
    /// Statistics for the report and the schema golden bytes.
    pub stats: WireStats,
}

// ---------------------------------------------------------------------------
// Wire-op model
// ---------------------------------------------------------------------------

/// A wire primitive, named after the `Writer`/`Reader` method that carries
/// it (the two sides share method names by construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Prim {
    U8,
    U32,
    U64,
    I32,
    F64,
    Bool,
    OptI32,
    Str,
}

impl Prim {
    fn of_method(m: &str) -> Option<Prim> {
        match m {
            "u8" => Some(Prim::U8),
            "u32" => Some(Prim::U32),
            "u64" => Some(Prim::U64),
            "i32" => Some(Prim::I32),
            "f64" => Some(Prim::F64),
            "bool" => Some(Prim::Bool),
            "opt_i32" => Some(Prim::OptI32),
            "string" => Some(Prim::Str),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Prim::U8 => "u8",
            Prim::U32 => "u32",
            Prim::U64 => "u64",
            Prim::I32 => "i32",
            Prim::F64 => "f64",
            Prim::Bool => "bool",
            Prim::OptI32 => "opt_i32",
            Prim::Str => "str",
        }
    }

    /// Width as a JSON value: byte count for fixed-width primitives, a
    /// quoted expression for variable-width ones.
    fn width_json(self) -> &'static str {
        match self {
            Prim::U8 | Prim::Bool => "1",
            Prim::U32 | Prim::I32 => "4",
            Prim::U64 | Prim::F64 => "8",
            Prim::OptI32 => "\"1|5\"",
            Prim::Str => "\"4+len\"",
        }
    }
}

/// One extracted wire operation, with the call chain that produced it.
#[derive(Debug, Clone)]
struct Op {
    kind: OpKind,
    file: String,
    line: usize,
    /// Call chain from the section codec down to the op's function.
    chain: Vec<String>,
    /// Creation order, used to fold a raw count read into its loop.
    uid: usize,
}

#[derive(Debug, Clone)]
enum OpKind {
    Prim(Prim),
    /// A repeated group. `prefixed` = the element count travels on the
    /// wire as a `u32` immediately before the elements.
    Seq {
        prefixed: bool,
        body: Vec<Op>,
    },
}

fn describe(op: &Op) -> String {
    match &op.kind {
        OpKind::Prim(p) => p.name().to_string(),
        OpKind::Seq { prefixed, body } => {
            let inner = body.iter().map(describe).collect::<Vec<_>>().join(" ");
            if *prefixed {
                format!("seq[{inner}]")
            } else {
                format!("unprefixed-seq[{inner}]")
            }
        }
    }
}

fn chain_of(op: &Op) -> String {
    op.chain.join(" -> ")
}

fn prefix_chain(mut op: Op, caller: &str) -> Op {
    op.chain.insert(0, caller.to_string());
    if let OpKind::Seq { body, .. } = &mut op.kind {
        let inner = std::mem::take(body);
        *body = inner.into_iter().map(|o| prefix_chain(o, caller)).collect();
    }
    op
}

// ---------------------------------------------------------------------------
// Token utilities
// ---------------------------------------------------------------------------

fn ident(toks: &[Spanned], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct(toks: &[Spanned], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}

fn line_at(toks: &[Spanned], i: usize) -> usize {
    toks.get(i).map_or(0, |t| t.line)
}

/// `i` points at an `open` delimiter; returns the index one past its
/// matching `close` (or `toks.len()` when unbalanced).
fn skip_balanced(toks: &[Spanned], i: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < toks.len() {
        match punct(toks, j) {
            Some(c) if c == open => depth += 1,
            Some(c) if c == close => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// `i` points at a `for` keyword. Returns (last identifier of the iterated
/// expression, body-start index, index of the closing `}`). The bound
/// identifier is what a `0..n` range arrives as after the scanner drops
/// numeric literals: `( . . n )`.
fn loop_parts(toks: &[Spanned], i: usize) -> Option<(Option<String>, usize, usize)> {
    let mut bound: Option<String> = None;
    let mut seen_in = false;
    let mut j = i + 1;
    while j < toks.len() {
        if punct(toks, j) == Some('(') {
            j = skip_balanced(toks, j, '(', ')');
            continue;
        }
        if punct(toks, j) == Some('{') {
            let end = skip_balanced(toks, j, '{', '}');
            return Some((bound, j + 1, end.saturating_sub(1)));
        }
        if let Some(id) = ident(toks, j) {
            if id == "in" {
                seen_in = true;
            } else if seen_in {
                bound = Some(id.to_string());
            }
        }
        j += 1;
    }
    None
}

// ---------------------------------------------------------------------------
// Function table
// ---------------------------------------------------------------------------

/// A free function in the wire perimeter, with its `Writer`/`Reader`
/// bindings (parameters plus `let w = Writer::…(…)` locals) pre-resolved.
#[derive(Debug, Clone)]
struct FnDef {
    name: String,
    file: String,
    line: usize,
    /// Binding names that hold the `Writer`.
    writers: BTreeSet<String>,
    /// Binding names that hold the `Reader`.
    readers: BTreeSet<String>,
    /// Takes a `Writer` parameter — an encode helper worth inlining.
    has_writer_param: bool,
    /// Takes a `Reader` parameter — a decode helper worth inlining.
    has_reader_param: bool,
    body: Vec<Spanned>,
}

/// Split a parameter list on top-level commas (nesting-aware for the
/// `(`/`[`/`<` families a type can contain).
fn split_params(params: &[Spanned]) -> Vec<&[Spanned]> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for (k, t) in params.iter().enumerate() {
        if let Tok::Punct(c) = t.tok {
            match c {
                '(' | '[' | '<' => depth += 1,
                ')' | ']' | '>' => depth -= 1,
                ',' if depth == 0 => {
                    parts.push(&params[start..k]);
                    start = k + 1;
                }
                _ => {}
            }
        }
    }
    if start < params.len() {
        parts.push(&params[start..]);
    }
    parts
}

/// Extract every free `fn` in one file. `impl` blocks are skipped whole:
/// the `Writer`/`Reader` methods *are* the primitives, so walking their
/// bodies would double-count every op.
fn parse_fns(rel: &str, toks: &[Spanned], out: &mut BTreeMap<String, FnDef>) {
    let mut i = 0usize;
    while i < toks.len() {
        match ident(toks, i) {
            Some("impl") => {
                let mut j = i + 1;
                while j < toks.len() && punct(toks, j) != Some('{') {
                    j += 1;
                }
                i = skip_balanced(toks, j, '{', '}');
            }
            Some("fn") => {
                let Some(name) = ident(toks, i + 1) else {
                    i += 2;
                    continue;
                };
                let name = name.to_string();
                let line = line_at(toks, i);
                let mut j = i + 2;
                if punct(toks, j) == Some('<') {
                    j = skip_balanced(toks, j, '<', '>');
                }
                if punct(toks, j) != Some('(') {
                    i = j.max(i + 2);
                    continue;
                }
                let params_end = skip_balanced(toks, j, '(', ')');
                let params = &toks[j + 1..params_end.saturating_sub(1).max(j + 1)];
                let mut writers = BTreeSet::new();
                let mut readers = BTreeSet::new();
                let (mut has_writer_param, mut has_reader_param) = (false, false);
                for part in split_params(params) {
                    let mut names = part.iter().filter_map(|t| match &t.tok {
                        Tok::Ident(s) if s != "mut" => Some(s.as_str()),
                        _ => None,
                    });
                    let Some(binding) = names.next() else { continue };
                    let ty_has = |what: &str| {
                        part.iter().any(|t| matches!(&t.tok, Tok::Ident(s) if s == what))
                    };
                    if ty_has("Writer") {
                        writers.insert(binding.to_string());
                        has_writer_param = true;
                    }
                    if ty_has("Reader") {
                        readers.insert(binding.to_string());
                        has_reader_param = true;
                    }
                }
                // Find the body: scan past the return type (no braces can
                // appear before the body block in these files).
                let mut k = params_end;
                while k < toks.len() && punct(toks, k) != Some('{') && punct(toks, k) != Some(';') {
                    k += 1;
                }
                if punct(toks, k) != Some('{') {
                    i = k;
                    continue;
                }
                let body_end = skip_balanced(toks, k, '{', '}');
                let body: Vec<Spanned> =
                    toks[k + 1..body_end.saturating_sub(1).max(k + 1)].to_vec();
                // Locals: `let [mut] name = Writer::…(…)` / `Reader::…(…)`.
                for p in 0..body.len() {
                    let target = match ident(&body, p) {
                        Some("Writer") => Some(&mut writers),
                        Some("Reader") => Some(&mut readers),
                        _ => None,
                    };
                    let Some(set) = target else { continue };
                    if punct(&body, p + 1) == Some(':')
                        && punct(&body, p + 2) == Some(':')
                        && punct(&body, p + 4) == Some('(')
                        && p >= 2
                        && punct(&body, p - 1) == Some('=')
                    {
                        if let Some(n) = ident(&body, p - 2) {
                            set.insert(n.to_string());
                        }
                    }
                }
                out.insert(
                    name.clone(),
                    FnDef {
                        name,
                        file: rel.to_string(),
                        line,
                        writers,
                        readers,
                        has_writer_param,
                        has_reader_param,
                        body,
                    },
                );
                i = body_end;
            }
            _ => i += 1,
        }
    }
}

// ---------------------------------------------------------------------------
// Symbolic walks
// ---------------------------------------------------------------------------

/// What backs a decoder-local integer binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BoundKind {
    /// `Reader::len(min_elem_bytes)` or a `try_from`-checked conversion.
    Checked,
    /// A raw `u32`/`u64` read; `uid`/`line` identify the count op so a
    /// loop over it can fold the prefix and report wire-totality.
    Unchecked { uid: usize, line: usize },
}

struct Extractor {
    fns: BTreeMap<String, FnDef>,
    enc_memo: BTreeMap<String, Vec<Op>>,
    dec_memo: BTreeMap<String, (Vec<Op>, Vec<Finding>)>,
    stack: Vec<String>,
    uid: usize,
}

impl Extractor {
    fn op(&mut self, def: &FnDef, line: usize, kind: OpKind) -> Op {
        self.uid += 1;
        Op { kind, file: def.file.clone(), line, chain: vec![def.name.clone()], uid: self.uid }
    }

    fn encode_ops(&mut self, name: &str) -> Vec<Op> {
        if let Some(ops) = self.enc_memo.get(name) {
            return ops.clone();
        }
        if self.stack.iter().any(|s| s == name) {
            return Vec::new(); // recursion guard: cut the cycle
        }
        let Some(def) = self.fns.get(name).cloned() else { return Vec::new() };
        self.stack.push(name.to_string());
        let ops = self.walk_enc(&def, &def.body);
        self.stack.pop();
        self.enc_memo.insert(name.to_string(), ops.clone());
        ops
    }

    fn walk_enc(&mut self, def: &FnDef, toks: &[Spanned]) -> Vec<Op> {
        let mut out: Vec<Op> = Vec::new();
        let mut i = 0usize;
        while i < toks.len() {
            let Some(id) = ident(toks, i) else {
                i += 1;
                continue;
            };
            // `w.<method>(…)` on a known writer binding.
            if def.writers.contains(id)
                && punct(toks, i + 1) == Some('.')
                && punct(toks, i + 3) == Some('(')
            {
                let m = ident(toks, i + 2).unwrap_or("");
                let args_end = skip_balanced(toks, i + 3, '(', ')');
                let ln = line_at(toks, i);
                if m == "u32" && ident(toks, i + 4) == Some("len_u32") {
                    // A count write. `w.u32(len_u32(..)); for … { … }`
                    // folds into one length-prefixed seq; a bare count
                    // (meta's entity/edge tallies) stays a plain u32.
                    if punct(toks, args_end) == Some(';')
                        && ident(toks, args_end + 1) == Some("for")
                    {
                        if let Some((_, bstart, close)) = loop_parts(toks, args_end + 1) {
                            let body = self.walk_enc(def, &toks[bstart..close]);
                            let op = self.op(def, ln, OpKind::Seq { prefixed: true, body });
                            out.push(op);
                            i = close + 1;
                            continue;
                        }
                    }
                    let op = self.op(def, ln, OpKind::Prim(Prim::U32));
                    out.push(op);
                    i = args_end;
                    continue;
                }
                if let Some(p) = Prim::of_method(m) {
                    let op = self.op(def, ln, OpKind::Prim(p));
                    out.push(op);
                }
                i = args_end;
                continue;
            }
            // A loop with no preceding count write: the elements travel
            // without a length prefix (symmetry will flag the reader side).
            if id == "for" {
                if let Some((_, bstart, close)) = loop_parts(toks, i) {
                    let body = self.walk_enc(def, &toks[bstart..close]);
                    if !body.is_empty() {
                        let ln = line_at(toks, i);
                        let op = self.op(def, ln, OpKind::Seq { prefixed: false, body });
                        out.push(op);
                    }
                    i = close + 1;
                    continue;
                }
            }
            // Helper call that takes the writer: inline its ops.
            if punct(toks, i + 1) == Some('(')
                && (i == 0 || punct(toks, i - 1) != Some('.'))
                && id != def.name
                && self.fns.get(id).is_some_and(|f| f.has_writer_param)
            {
                let helper = id.to_string();
                let args_end = skip_balanced(toks, i + 1, '(', ')');
                for op in self.encode_ops(&helper) {
                    out.push(prefix_chain(op, &def.name));
                }
                i = args_end;
                continue;
            }
            i += 1;
        }
        out
    }

    fn decode_ops(&mut self, name: &str) -> (Vec<Op>, Vec<Finding>) {
        if let Some(cached) = self.dec_memo.get(name) {
            return cached.clone();
        }
        if self.stack.iter().any(|s| s == name) {
            return (Vec::new(), Vec::new());
        }
        let Some(def) = self.fns.get(name).cloned() else { return (Vec::new(), Vec::new()) };
        self.stack.push(name.to_string());
        let mut bindings: BTreeMap<String, BoundKind> = BTreeMap::new();
        let mut findings = Vec::new();
        let ops = self.walk_dec(&def, &def.body, &mut bindings, &mut findings);
        self.stack.pop();
        self.dec_memo.insert(name.to_string(), (ops.clone(), findings.clone()));
        (ops, findings)
    }

    fn walk_dec(
        &mut self,
        def: &FnDef,
        toks: &[Spanned],
        bindings: &mut BTreeMap<String, BoundKind>,
        findings: &mut Vec<Finding>,
    ) -> Vec<Op> {
        let mut out: Vec<Op> = Vec::new();
        // The binding a running `let` statement will assign, so a raw
        // `r.u32()` count read can be associated with its name.
        let mut pending_let: Option<String> = None;
        let mut i = 0usize;
        while i < toks.len() {
            if punct(toks, i) == Some(';') {
                pending_let = None;
                i += 1;
                continue;
            }
            // `(0..n).map(…)` — numeric literals vanish in the scan, so the
            // range arrives as `( . . n )`.
            if punct(toks, i) == Some('(')
                && punct(toks, i + 1) == Some('.')
                && punct(toks, i + 2) == Some('.')
                && punct(toks, i + 4) == Some(')')
                && punct(toks, i + 5) == Some('.')
                && ident(toks, i + 6) == Some("map")
                && punct(toks, i + 7) == Some('(')
            {
                if let Some(b) = ident(toks, i + 3).map(str::to_string) {
                    let args_end = skip_balanced(toks, i + 7, '(', ')');
                    let ln = line_at(toks, i);
                    let body = self.walk_dec(
                        def,
                        &toks[i + 8..args_end.saturating_sub(1)],
                        bindings,
                        findings,
                    );
                    if !body.is_empty() {
                        self.push_seq(def, ln, Some(&b), body, &mut out, bindings, findings);
                    }
                    i = args_end;
                    continue;
                }
            }
            let Some(id) = ident(toks, i) else {
                i += 1;
                continue;
            };
            if id == "let" {
                let mut j = i + 1;
                if ident(toks, j) == Some("mut") {
                    j += 1;
                }
                pending_let = ident(toks, j).map(str::to_string);
                i = j + 1;
                continue;
            }
            // `r.<method>(…)` on a known reader binding.
            if def.readers.contains(id)
                && punct(toks, i + 1) == Some('.')
                && punct(toks, i + 3) == Some('(')
            {
                let m = ident(toks, i + 2).unwrap_or("").to_string();
                let args_end = skip_balanced(toks, i + 3, '(', ')');
                let ln = line_at(toks, i);
                if m == "len" {
                    // `let n = r.len(min)?;` — a bounds-checked count; it
                    // consumes the u32 prefix itself, so no op is recorded.
                    if let Some(n) = pending_let.take() {
                        bindings.insert(n, BoundKind::Checked);
                    }
                    i = args_end;
                    continue;
                }
                if let Some(p) = Prim::of_method(&m) {
                    let op = self.op(def, ln, OpKind::Prim(p));
                    let uid = op.uid;
                    out.push(op);
                    if matches!(p, Prim::U32 | Prim::U64) {
                        if let Some(n) = pending_let.clone() {
                            let kind = if laundered(toks, i) {
                                BoundKind::Checked
                            } else {
                                BoundKind::Unchecked { uid, line: ln }
                            };
                            bindings.insert(n, kind);
                        }
                    }
                }
                i = args_end;
                continue;
            }
            if id == "for" {
                if let Some((bound, bstart, close)) = loop_parts(toks, i) {
                    let ln = line_at(toks, i);
                    let body = self.walk_dec(def, &toks[bstart..close], bindings, findings);
                    if !body.is_empty() {
                        self.push_seq(
                            def,
                            ln,
                            bound.as_deref(),
                            body,
                            &mut out,
                            bindings,
                            findings,
                        );
                    }
                    i = close + 1;
                    continue;
                }
            }
            // Helper call that takes the reader: inline ops and findings.
            if punct(toks, i + 1) == Some('(')
                && (i == 0 || punct(toks, i - 1) != Some('.'))
                && id != def.name
                && self.fns.get(id).is_some_and(|f| f.has_reader_param)
            {
                let helper = id.to_string();
                let args_end = skip_balanced(toks, i + 1, '(', ')');
                let (ops, helper_findings) = self.decode_ops(&helper);
                findings.extend(helper_findings);
                for op in ops {
                    out.push(prefix_chain(op, &def.name));
                }
                i = args_end;
                continue;
            }
            i += 1;
        }
        out
    }

    /// Record a decode loop as a seq, classifying its bound: a checked
    /// bound means the u32 prefix was consumed by `Reader::len`; an
    /// unchecked bound is a wire-totality finding whose raw count read is
    /// folded into the seq (it still prefixes the elements on the wire);
    /// an unknown bound means no prefix travels at all.
    #[allow(clippy::too_many_arguments)]
    fn push_seq(
        &mut self,
        def: &FnDef,
        line: usize,
        bound: Option<&str>,
        body: Vec<Op>,
        out: &mut Vec<Op>,
        bindings: &BTreeMap<String, BoundKind>,
        findings: &mut Vec<Finding>,
    ) {
        let prefixed = match bound.and_then(|b| bindings.get(b)) {
            Some(BoundKind::Checked) => true,
            Some(BoundKind::Unchecked { uid, line: count_line }) => {
                findings.push(Finding {
                    rule: "wire-totality",
                    file: def.file.clone(),
                    line: *count_line,
                    message: format!(
                        "decode loop bound `{}` in {} comes from an unchecked integer read on \
                         line {count_line}; take counts via Reader::len(min_elem_bytes) or a \
                         try_from-checked conversion so a corrupt snapshot cannot drive an \
                         unbounded allocation or loop",
                        bound.unwrap_or("?"),
                        def.name
                    ),
                    waived: false,
                });
                if out.last().is_some_and(|o| o.uid == *uid) {
                    out.pop();
                }
                true
            }
            None => false,
        };
        let op = self.op(def, line, OpKind::Seq { prefixed, body });
        out.push(op);
    }
}

/// Was the reader call at `toks[i]` wrapped in a checked conversion
/// (`usize::try_from(r.u32()?)`, a `checked_*` helper)?
fn laundered(toks: &[Spanned], i: usize) -> bool {
    i >= 2
        && punct(toks, i - 1) == Some('(')
        && ident(toks, i - 2)
            .is_some_and(|h| h == "try_from" || h == "try_into" || h.starts_with("checked_"))
}

// ---------------------------------------------------------------------------
// Section mapping and raw-source constants
// ---------------------------------------------------------------------------

/// Find the encoder and decoder registered for each section const by
/// shape: `(section::ID, encode_x(…))` in the `to_bytes` table and
/// `decode_x(find(&sections, section::ID)…)` in `from_bytes`.
fn section_mappings(toks: &[Spanned]) -> (BTreeMap<String, String>, BTreeMap<String, String>) {
    let mut enc = BTreeMap::new();
    let mut dec = BTreeMap::new();
    for i in 0..toks.len() {
        if ident(toks, i) != Some("section")
            || punct(toks, i + 1) != Some(':')
            || punct(toks, i + 2) != Some(':')
        {
            continue;
        }
        let Some(id_name) = ident(toks, i + 3) else { continue };
        if punct(toks, i + 4) == Some(',') && punct(toks, i + 6) == Some('(') {
            if let Some(f) = ident(toks, i + 5) {
                enc.insert(id_name.to_string(), f.to_string());
            }
        }
        if i >= 7
            && punct(toks, i - 1) == Some(',')
            && ident(toks, i - 2) == Some("sections")
            && punct(toks, i - 3) == Some('&')
            && punct(toks, i - 4) == Some('(')
            && ident(toks, i - 5) == Some("find")
            && punct(toks, i - 6) == Some('(')
        {
            if let Some(f) = ident(toks, i - 7) {
                dec.insert(id_name.to_string(), f.to_string());
            }
        }
    }
    (enc, dec)
}

/// Parse `const NAME: u32 = N;` from one source line.
fn parse_const_u32(line: &str) -> Option<(String, u32)> {
    let t = line.trim();
    let after = t.split_once("const ")?.1;
    let (name, rest) = after.split_once(':')?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("u32")?.trim_start();
    let value = rest.strip_prefix('=')?.trim().trim_end_matches(';').trim();
    let value = value.replace('_', "").parse().ok()?;
    Some((name.trim().to_string(), value))
}

/// Section-id consts from the raw source of `mod section { … }`. The
/// scanner drops numeric literals, so the values must come from the text.
fn parse_section_consts(src: &str) -> BTreeMap<String, (u32, usize)> {
    let mut out = BTreeMap::new();
    let Some(start) = src.find("mod section") else { return out };
    let Some(open_rel) = src.get(start..).and_then(|s| s.find('{')) else { return out };
    let open = start + open_rel;
    let mut depth = 0usize;
    let mut end = src.len();
    for (k, c) in src.get(open..).unwrap_or("").char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    end = open + k;
                    break;
                }
            }
            _ => {}
        }
    }
    let mut offset = 0usize;
    for (ln0, l) in src.lines().enumerate() {
        if offset > open && offset < end {
            if let Some((name, value)) = parse_const_u32(l) {
                out.insert(name, (value, ln0 + 1));
            }
        }
        offset += l.len() + 1;
    }
    out
}

/// `const FORMAT_VERSION: u32 = N;` value and line from raw source.
fn parse_format_version(src: &str) -> Option<(u32, usize)> {
    for (ln0, l) in src.lines().enumerate() {
        if let Some((name, value)) = parse_const_u32(l) {
            if name == "FORMAT_VERSION" {
                return Some((value, ln0 + 1));
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Symmetry
// ---------------------------------------------------------------------------

/// Structural compare of the encoder and decoder sequences. Returns false
/// after pushing a finding for the first divergence (field path, both
/// descriptions, both call chains, both sites).
fn compare_ops(
    sec: &str,
    id: u32,
    enc: &[Op],
    dec: &[Op],
    path: &str,
    out: &mut Vec<Finding>,
) -> bool {
    for k in 0..enc.len().max(dec.len()) {
        let at = format!("{path}[{k}]");
        match (enc.get(k), dec.get(k)) {
            (Some(e), None) => {
                out.push(Finding {
                    rule: "wire-symmetry",
                    file: e.file.clone(),
                    line: e.line,
                    message: format!(
                        "section {sec} (id {id}) field {at}: encoder writes {} ({} at {}:{}) \
                         but the decoder reads nothing there — it consumes {} of {} fields",
                        describe(e),
                        chain_of(e),
                        e.file,
                        e.line,
                        dec.len(),
                        enc.len()
                    ),
                    waived: false,
                });
                return false;
            }
            (None, Some(d)) => {
                out.push(Finding {
                    rule: "wire-symmetry",
                    file: d.file.clone(),
                    line: d.line,
                    message: format!(
                        "section {sec} (id {id}) field {at}: decoder reads {} ({} at {}:{}) \
                         but the encoder writes nothing there — it produces {} of {} fields",
                        describe(d),
                        chain_of(d),
                        d.file,
                        d.line,
                        enc.len(),
                        dec.len()
                    ),
                    waived: false,
                });
                return false;
            }
            (Some(e), Some(d)) => match (&e.kind, &d.kind) {
                (OpKind::Prim(pe), OpKind::Prim(pd)) if pe == pd => {}
                (
                    OpKind::Seq { prefixed: fe, body: be },
                    OpKind::Seq { prefixed: fd, body: bd },
                ) => {
                    if fe != fd {
                        out.push(Finding {
                            rule: "wire-symmetry",
                            file: d.file.clone(),
                            line: d.line,
                            message: format!(
                                "section {sec} (id {id}) field {at}: length-prefix convention \
                                 differs — encoder {} {} ({} at {}:{}), decoder {} {} ({} at \
                                 {}:{})",
                                if *fe {
                                    "writes a u32 count before"
                                } else {
                                    "writes no count before"
                                },
                                describe(e),
                                chain_of(e),
                                e.file,
                                e.line,
                                if *fd {
                                    "expects a u32 count before"
                                } else {
                                    "expects no count before"
                                },
                                describe(d),
                                chain_of(d),
                                d.file,
                                d.line
                            ),
                            waived: false,
                        });
                        return false;
                    }
                    if !compare_ops(sec, id, be, bd, &at, out) {
                        return false;
                    }
                }
                _ => {
                    out.push(Finding {
                        rule: "wire-symmetry",
                        file: d.file.clone(),
                        line: d.line,
                        message: format!(
                            "section {sec} (id {id}) field {at}: encoder writes {} ({} at \
                             {}:{}) but decoder reads {} ({} at {}:{})",
                            describe(e),
                            chain_of(e),
                            e.file,
                            e.line,
                            describe(d),
                            chain_of(d),
                            d.file,
                            d.line
                        ),
                        waived: false,
                    });
                    return false;
                }
            },
            (None, None) => {}
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Schema golden and drift gate
// ---------------------------------------------------------------------------

struct SectionSchema {
    id: u32,
    name: String,
    encoder: Option<String>,
    decoder: Option<String>,
    fields: Vec<Op>,
}

fn field_json(op: &Op) -> String {
    match &op.kind {
        OpKind::Prim(p) => format!("{{\"op\": \"{}\", \"width\": {}}}", p.name(), p.width_json()),
        OpKind::Seq { prefixed, body } => {
            let of = body.iter().map(field_json).collect::<Vec<_>>().join(", ");
            let prefix = if *prefixed { "\"u32\"" } else { "null" };
            format!("{{\"op\": \"seq\", \"prefix\": {prefix}, \"of\": [{of}]}}")
        }
    }
}

fn render_schema(format_version: Option<u32>, sections: &[SectionSchema]) -> String {
    let opt_str = |v: &Option<String>| match v {
        Some(s) => json_str(s),
        None => "null".to_string(),
    };
    let mut s = String::new();
    s.push_str(
        "{\n  \"meta\": {\n    \"tool\": \"snaps-lint\",\n    \"schema\": \"snapshot-wire\",\n",
    );
    match format_version {
        Some(v) => {
            let _ = writeln!(s, "    \"format_version\": {v}");
        }
        None => s.push_str("    \"format_version\": null\n"),
    }
    s.push_str("  },\n  \"sections\": [\n");
    let n = sections.len();
    for (i, sec) in sections.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"id\": {},", sec.id);
        let _ = writeln!(s, "      \"name\": {},", json_str(&sec.name));
        let _ = writeln!(s, "      \"encoder\": {},", opt_str(&sec.encoder));
        let _ = writeln!(s, "      \"decoder\": {},", opt_str(&sec.decoder));
        s.push_str("      \"fields\": [\n");
        let m = sec.fields.len();
        for (j, f) in sec.fields.iter().enumerate() {
            let fcomma = if j + 1 < m { "," } else { "" };
            let _ = writeln!(s, "        {}{fcomma}", field_json(f));
        }
        s.push_str("      ]\n");
        let _ = writeln!(s, "    }}{comma}");
    }
    s.push_str("  ]\n}\n");
    s
}

fn first_diff(committed: &str, fresh: &str) -> String {
    for (k, (o, n)) in committed.lines().zip(fresh.lines()).enumerate() {
        if o != n {
            return format!(
                "first difference at schema line {}: committed `{}` vs extracted `{}`",
                k + 1,
                o.trim(),
                n.trim()
            );
        }
    }
    format!(
        "committed golden has {} lines, extracted schema {}",
        committed.lines().count(),
        fresh.lines().count()
    )
}

/// The drift gate. A missing golden is not a finding (CI's byte-compare
/// step catches a deleted one); an unchanged golden is clean; a changed
/// layout at the same `FORMAT_VERSION` is a hard finding; a bumped version
/// regenerates the golden under [`UPDATE_ENV`] and is a stale-golden
/// finding without it.
fn check_drift(
    root: &Path,
    fresh: &str,
    version: Option<u32>,
    anchor: (&str, usize),
    findings: &mut Vec<Finding>,
) {
    let path = root.join(SCHEMA_PATH);
    let Ok(committed) = fs::read_to_string(&path) else { return };
    if committed == fresh {
        return;
    }
    let committed_version = committed
        .lines()
        .find_map(|l| l.trim().strip_prefix("\"format_version\": "))
        .and_then(|v| v.trim().trim_end_matches(',').parse::<u32>().ok());
    let bumped = version.is_some() && committed_version != version;
    let update = std::env::var(UPDATE_ENV).is_ok_and(|v| !v.is_empty() && v != "0");
    if bumped && update {
        let _ = fs::write(&path, fresh);
        return;
    }
    let (file, line) = anchor;
    let message = if bumped {
        format!(
            "snapshot wire-schema golden is stale: FORMAT_VERSION is {} but {SCHEMA_PATH} \
             still describes format_version {}; regenerate the golden by re-running \
             snaps-lint with {UPDATE_ENV}=1",
            version.unwrap_or(0),
            committed_version.map_or_else(|| "null".to_string(), |v| v.to_string()),
        )
    } else {
        format!(
            "snapshot wire layout changed without a FORMAT_VERSION bump (still {}): {}; bump \
             FORMAT_VERSION in {file} and regenerate {SCHEMA_PATH} with {UPDATE_ENV}=1",
            committed_version.map_or_else(|| "?".to_string(), |v| v.to_string()),
            first_diff(&committed, fresh),
        )
    };
    findings.push(Finding {
        rule: "wire-drift",
        file: file.to_string(),
        line,
        message,
        waived: false,
    });
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

/// Run pass 5 over the wire-perimeter files of the workspace at `root`.
#[must_use]
pub fn check(root: &Path, inputs: &[FileInput]) -> WireOutcome {
    let mut fns = BTreeMap::new();
    for f in inputs {
        parse_fns(&f.rel, &f.tokens, &mut fns);
    }
    let mut consts: BTreeMap<String, (u32, usize)> = BTreeMap::new();
    let mut version: Option<u32> = None;
    let mut anchor: (String, usize) =
        inputs.first().map_or_else(|| ("(wire)".to_string(), 1), |f| (f.rel.clone(), 1));
    let mut enc_map: BTreeMap<String, String> = BTreeMap::new();
    let mut dec_map: BTreeMap<String, String> = BTreeMap::new();
    for f in inputs {
        consts.extend(parse_section_consts(&f.src));
        if let Some((v, ln)) = parse_format_version(&f.src) {
            version = Some(v);
            anchor = (f.rel.clone(), ln);
        }
        let (e, d) = section_mappings(&f.tokens);
        enc_map.extend(e);
        dec_map.extend(d);
    }

    let mut ext = Extractor {
        fns,
        enc_memo: BTreeMap::new(),
        dec_memo: BTreeMap::new(),
        stack: Vec::new(),
        uid: 0,
    };
    let names: BTreeSet<String> = enc_map.keys().chain(dec_map.keys()).cloned().collect();
    let mut findings: Vec<Finding> = Vec::new();
    let mut schema_secs: Vec<SectionSchema> = Vec::new();
    for name in &names {
        let id = consts.get(name).map_or(0, |&(v, _)| v);
        let enc_fn = enc_map.get(name).cloned();
        let dec_fn = dec_map.get(name).cloned();
        let enc_ops = enc_fn.as_deref().map(|f| ext.encode_ops(f)).unwrap_or_default();
        let (dec_ops, totality) = dec_fn.as_deref().map(|f| ext.decode_ops(f)).unwrap_or_default();
        findings.extend(totality);
        match (&enc_fn, &dec_fn) {
            (Some(e), None) => {
                let (file, line) = ext
                    .fns
                    .get(e)
                    .map_or_else(|| (anchor.0.clone(), 1), |d| (d.file.clone(), d.line));
                findings.push(Finding {
                    rule: "wire-symmetry",
                    file,
                    line,
                    message: format!(
                        "section {name} (id {id}) has encoder {e} registered in to_bytes but \
                         no decoder in from_bytes: every written section must be readable"
                    ),
                    waived: false,
                });
            }
            (None, Some(d)) => {
                let (file, line) = ext
                    .fns
                    .get(d)
                    .map_or_else(|| (anchor.0.clone(), 1), |f| (f.file.clone(), f.line));
                findings.push(Finding {
                    rule: "wire-symmetry",
                    file,
                    line,
                    message: format!(
                        "section {name} (id {id}) has decoder {d} registered in from_bytes but \
                         no encoder in to_bytes: the reader expects a section nothing writes"
                    ),
                    waived: false,
                });
            }
            (Some(_), Some(_)) => {
                compare_ops(name, id, &enc_ops, &dec_ops, "", &mut findings);
            }
            (None, None) => {}
        }
        let fields = if enc_ops.is_empty() { dec_ops } else { enc_ops };
        schema_secs.push(SectionSchema {
            id,
            name: name.clone(),
            encoder: enc_fn,
            decoder: dec_fn,
            fields,
        });
    }
    schema_secs.sort_by(|a, b| (a.id, a.name.as_str()).cmp(&(b.id, b.name.as_str())));
    let schema_json = render_schema(version, &schema_secs);
    if !schema_secs.is_empty() {
        check_drift(root, &schema_json, version, (&anchor.0, anchor.1), &mut findings);
    }

    // Helpers shared by several sections (decode_sim backs three) replay
    // their memoized findings once per section: dedupe exact repeats.
    let mut seen: BTreeSet<(&'static str, String, usize, String)> = BTreeSet::new();
    findings.retain(|f| seen.insert((f.rule, f.file.clone(), f.line, f.message.clone())));

    let sections = schema_secs
        .iter()
        .map(|s| WireSectionStat {
            id: s.id,
            name: s.name.clone(),
            encoder: s.encoder.clone().unwrap_or_default(),
            decoder: s.decoder.clone().unwrap_or_default(),
            fields: s.fields.len(),
        })
        .collect();
    WireOutcome { findings, stats: WireStats { format_version: version, sections, schema_json } }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner;

    fn input(rel: &str, src: &str) -> FileInput {
        let scan = scanner::scan(src);
        FileInput {
            rel: rel.to_string(),
            src: src.to_string(),
            tokens: scanner::strip_test_regions(scan.tokens),
        }
    }

    const CLEAN: &str = r#"
const FORMAT_VERSION: u32 = 1;
mod section {
    pub(crate) const META: u32 = 1;
}
fn encode_meta(m: &Meta) -> Vec<u8> {
    let mut w = Writer::new();
    w.f64(m.threshold);
    w.u32(len_u32(m.names.len()));
    for name in &m.names {
        w.string(name);
    }
    w.into_bytes()
}
fn decode_meta(bytes: &[u8]) -> Result<Meta, SnapshotError> {
    let mut r = Reader::new(bytes);
    let threshold = r.f64()?;
    let n = r.len(4)?;
    let names = (0..n).map(|_| r.string()).collect::<Result<Vec<_>, _>>()?;
    Ok(Meta { threshold, names })
}
fn to_bytes(m: &Meta) -> Vec<u8> {
    assemble(vec![(section::META, encode_meta(m))])
}
fn from_bytes(bytes: &[u8]) -> Result<Meta, SnapshotError> {
    let sections = parse(bytes)?;
    decode_meta(find(&sections, section::META)?)
}
"#;

    #[test]
    fn clean_codec_extracts_symmetric_section() {
        let out = check(Path::new("/nonexistent"), &[input("crates/serve/src/snapshot.rs", CLEAN)]);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.stats.format_version, Some(1));
        assert_eq!(out.stats.sections.len(), 1);
        let s = &out.stats.sections[0];
        assert_eq!((s.id, s.name.as_str()), (1, "META"));
        assert_eq!((s.encoder.as_str(), s.decoder.as_str()), ("encode_meta", "decode_meta"));
        assert_eq!(s.fields, 2, "f64 + length-prefixed seq");
        assert!(out.stats.schema_json.contains("\"op\": \"seq\", \"prefix\": \"u32\""));
        assert!(out.stats.schema_json.contains("\"op\": \"str\", \"width\": \"4+len\""));
    }

    #[test]
    fn asymmetric_element_type_and_unchecked_bound_both_fire() {
        let src = CLEAN
            .replace("let n = r.len(4)?;", "let n = r.u32()? as usize;")
            .replace("map(|_| r.string())", "map(|_| r.u64())");
        let out = check(Path::new("/nonexistent"), &[input("crates/serve/src/snapshot.rs", &src)]);
        let rules: Vec<&str> = out.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"wire-totality"), "{:?}", out.findings);
        assert!(rules.contains(&"wire-symmetry"), "{:?}", out.findings);
        let sym = out.findings.iter().find(|f| f.rule == "wire-symmetry").expect("symmetry");
        assert!(sym.message.contains("str"), "{}", sym.message);
        assert!(sym.message.contains("u64"), "{}", sym.message);
        assert!(sym.message.contains("encode_meta"), "both chains: {}", sym.message);
        assert!(sym.message.contains("decode_meta"), "both chains: {}", sym.message);
    }

    #[test]
    fn missing_decoder_is_a_symmetry_finding() {
        let src = CLEAN.replace("decode_meta(find(&sections, section::META)?)", "todo(bytes)");
        let out = check(Path::new("/nonexistent"), &[input("crates/serve/src/snapshot.rs", &src)]);
        let sym: Vec<_> = out.findings.iter().filter(|f| f.rule == "wire-symmetry").collect();
        assert_eq!(sym.len(), 1, "{sym:?}");
        assert!(sym[0].message.contains("no decoder"), "{}", sym[0].message);
    }

    #[test]
    fn helper_inlining_carries_the_caller_chain() {
        let src = r#"
const FORMAT_VERSION: u32 = 1;
mod section {
    pub(crate) const G: u32 = 7;
}
fn write_pair(w: &mut Writer, s: &str) {
    w.string(s);
    w.u8(0);
}
fn encode_g(g: &G) -> Vec<u8> {
    let mut w = Writer::new();
    write_pair(&mut w, &g.name);
    w.into_bytes()
}
fn decode_g(bytes: &[u8]) -> Result<G, E> {
    let mut r = Reader::new(bytes);
    let name = r.string()?;
    let flag = r.bool()?;
    Ok(G { name, flag })
}
fn to_bytes(g: &G) -> Vec<u8> { assemble(vec![(section::G, encode_g(g))]) }
fn from_bytes(b: &[u8]) -> Result<G, E> {
    let sections = parse(b)?;
    decode_g(find(&sections, section::G)?)
}
"#;
        let out = check(Path::new("/nonexistent"), &[input("crates/serve/src/snapshot.rs", src)]);
        let sym: Vec<_> = out.findings.iter().filter(|f| f.rule == "wire-symmetry").collect();
        assert_eq!(sym.len(), 1, "u8 vs bool diverge: {sym:?}");
        assert!(sym[0].message.contains("encode_g -> write_pair"), "{}", sym[0].message);
        assert!(sym[0].message.contains("field [1]"), "{}", sym[0].message);
    }

    #[test]
    fn schema_rendering_is_deterministic_and_balanced() {
        let a = check(Path::new("/nonexistent"), &[input("crates/serve/src/snapshot.rs", CLEAN)]);
        let b = check(Path::new("/nonexistent"), &[input("crates/serve/src/snapshot.rs", CLEAN)]);
        assert_eq!(a.stats.schema_json, b.stats.schema_json);
        let json = &a.stats.schema_json;
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.ends_with('\n'));
    }

    #[test]
    fn const_parsing_reads_values_the_scanner_drops() {
        let consts = parse_section_consts(CLEAN);
        assert_eq!(consts.get("META").map(|&(v, _)| v), Some(1));
        assert_eq!(parse_format_version(CLEAN).map(|(v, _)| v), Some(1));
        assert_eq!(parse_const_u32("pub(crate) const GRAPH: u32 = 2;"), Some(("GRAPH".into(), 2)));
        assert_eq!(parse_const_u32("const BIG: u32 = 1_000;"), Some(("BIG".into(), 1000)));
        assert_eq!(parse_const_u32("const F: u64 = 1;"), None, "only u32 section ids");
    }

    #[test]
    fn empty_inputs_produce_an_empty_outcome() {
        let out = check(Path::new("/nonexistent"), &[]);
        assert!(out.findings.is_empty());
        assert!(out.stats.sections.is_empty());
        assert_eq!(out.stats.format_version, None);
    }
}
