//! Pass 4a: determinism-taint dataflow.
//!
//! Seeds taint at the nondeterminism-source expressions recorded by the
//! item model ([`crate::items::TaintSite`]): unordered `HashMap`/`HashSet`
//! iteration, `Instant`/`SystemTime` reads, `thread::current()` identity,
//! seed-free RNG construction, and pointer-address observation. A function
//! is **tainted** when it contains a source or transitively calls a
//! tainted function — callers inherit their callees' nondeterminism
//! because the callee's return value or side effects may depend on it.
//!
//! A **flow** is an entry-reachable tainted function with a call edge into
//! a sink function (one defined in the snapshot writer, the wire codec, or
//! a JSON/report serialiser file — [`SINK_FILES`]), or a tainted function
//! defined in a sink file itself. The diagnostic prints the full
//! entry→function chain plus the taint path down to the seeding source,
//! mirroring the panic-reachability rule.
//!
//! Sources seed only in the result-affecting crates
//! ([`RESULT_AFFECTING`]): timing in `serve`/`obs`/`bench` is operational
//! (latency histograms, trace spans, stage timers) and never feeds
//! resolution output, and the token-level `hash-iter`/`wall-clock`/
//! `entropy` rules already ban these sources inside the perimeter — this
//! pass catches the interprocedural escapes those per-line rules cannot
//! see, and pins where a waived source actually ends up.

use crate::callgraph::CallGraph;
use crate::items::CallTarget;
use crate::reach::{self, ENTRY_POINTS, LOCK_EXEMPT_METHODS};
use crate::rules::{Finding, RESULT_AFFECTING};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Files whose functions are serialisation sinks: bytes they produce land
/// in the snapshot, the wire image, or a JSON report, so nondeterministic
/// input becomes nondeterministic output.
pub(crate) const SINK_FILES: &[&str] = &[
    "crates/obs/src/json.rs",
    "crates/obs/src/report.rs",
    "crates/serve/src/json.rs",
    "crates/serve/src/snapshot.rs",
    "crates/serve/src/wire.rs",
];

/// Outcome of the pass: findings plus per-entry flow counts.
#[derive(Debug, Default)]
pub(crate) struct TaintOutcome {
    /// determinism-taint findings, anchored at the seeding source site.
    pub findings: Vec<Finding>,
    /// Per-entry count of (tainted function, sink) pairs, in entry-table
    /// order.
    pub per_entry: Vec<usize>,
}

/// Call adjacency restricted to edges the dataflow passes trust: method
/// -fallback calls with std-collection names are guard/collection
/// operations (`map.insert(..)`), not workspace calls — the same exemption
/// the lock passes apply ([`LOCK_EXEMPT_METHODS`]).
pub(crate) fn filtered_edges(graph: &CallGraph) -> Vec<Vec<usize>> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); graph.fns.len()];
    for (n, slot) in adj.iter_mut().enumerate() {
        let mut out: Vec<usize> = Vec::new();
        for call in &graph.fns[n].calls {
            if let CallTarget::Method(name) = &call.target {
                if LOCK_EXEMPT_METHODS.contains(&name.as_str()) {
                    continue;
                }
            }
            out.extend(graph.resolve(n, call).targets);
        }
        out.sort_unstable();
        out.dedup();
        *slot = out;
    }
    adj
}

/// Multi-root BFS over an explicit adjacency (same contract as
/// [`reach::bfs`]: returns `node → parent`, roots map to themselves,
/// deterministic visit order).
pub(crate) fn bfs_over(adj: &[Vec<usize>], roots: &[usize]) -> BTreeMap<usize, usize> {
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &r in roots {
        if parent.insert(r, r).is_none() {
            queue.push_back(r);
        }
    }
    while let Some(n) = queue.pop_front() {
        for &m in adj.get(n).map_or(&[][..], Vec::as_slice) {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(m) {
                e.insert(n);
                queue.push_back(m);
            }
        }
    }
    parent
}

/// Follow `toward_source` from `n` down to the seeding source function.
/// Returns the source node and the full path `n → … → source`.
fn walk_to_source(toward_source: &BTreeMap<usize, usize>, n: usize) -> (usize, Vec<usize>) {
    let mut path = vec![n];
    let mut cur = n;
    while let Some(&next) = toward_source.get(&cur) {
        if next == cur {
            break;
        }
        path.push(next);
        cur = next;
    }
    (cur, path)
}

/// Run the determinism-taint pass over every declared entry point.
#[must_use]
pub(crate) fn check(graph: &CallGraph) -> TaintOutcome {
    let adj = filtered_edges(graph);

    // Source functions: a recorded nondeterminism site inside the
    // result-affecting perimeter.
    let sources: Vec<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.taints.is_empty() && RESULT_AFFECTING.contains(&f.krate.as_str()))
        .map(|(i, _)| i)
        .collect();

    // Reverse BFS from the sources: every transitive caller is tainted;
    // the parent map doubles as the next hop on each node's path to a
    // source.
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); graph.fns.len()];
    for (n, outs) in adj.iter().enumerate() {
        for &m in outs {
            rev[m].push(n);
        }
    }
    let toward_source = bfs_over(&rev, &sources);

    let sinks: BTreeSet<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| SINK_FILES.contains(&f.file.as_str()))
        .map(|(i, _)| i)
        .collect();

    let mut out = TaintOutcome::default();
    // Dedup across entries by (source file, source line, sink); the first
    // (table-order) entry wins, so the diagnostic names the most
    // user-facing route.
    let mut seen: BTreeSet<(String, usize, String)> = BTreeSet::new();
    let mut findings: Vec<Finding> = Vec::new();

    for spec in ENTRY_POINTS {
        let roots = reach::roots_of(graph, spec);
        let parent = reach::bfs(graph, &roots);
        let mut flows = 0usize;
        for &n in parent.keys() {
            if !toward_source.contains_key(&n) {
                continue; // untainted
            }
            // Sinks this tainted function feeds: itself when defined in a
            // sink file, otherwise its direct callees there.
            let fed: Vec<usize> = if sinks.contains(&n) {
                vec![n]
            } else {
                adj[n].iter().copied().filter(|t| sinks.contains(t)).collect()
            };
            if fed.is_empty() {
                continue;
            }
            let (src, taint_path) = walk_to_source(&toward_source, n);
            let sf = &graph.fns[src];
            let (what, sline) = sf
                .taints
                .first()
                .map_or(("nondeterminism source", sf.line), |t| (t.what, t.line));
            for &sink in &fed {
                flows += 1;
                let key = (sf.file.clone(), sline, graph.display(sink));
                if seen.contains(&key) {
                    continue;
                }
                let mut entry_chain = reach::chain_to(graph, &parent, n);
                if sink != n {
                    entry_chain.push(graph.display(sink));
                }
                let taint_chain =
                    taint_path.iter().map(|&m| graph.display(m)).collect::<Vec<_>>().join(" → ");
                findings.push(Finding {
                    rule: "determinism-taint",
                    file: sf.file.clone(),
                    line: sline,
                    message: format!(
                        "{what} taints serialized sink {sink_name} from {label}: {chain}; \
                         nondeterminism flows in via {taint_chain} ({file}:{sline})",
                        sink_name = graph.display(sink),
                        label = spec.label,
                        chain = entry_chain.join(" → "),
                        file = sf.file,
                    ),
                    waived: false,
                });
                seen.insert(key);
            }
        }
        out.per_entry.push(flows);
    }

    findings.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    findings.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    out.findings = findings;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::{extract, FileItems};
    use crate::scanner;

    fn file(krate: &str, path: &str, src: &str) -> (String, FileItems) {
        let scan = scanner::scan(src);
        let toks = scanner::strip_test_regions(scan.tokens);
        (path.to_string(), extract(krate, path, &toks))
    }

    fn graph(files: Vec<(String, FileItems)>) -> CallGraph {
        CallGraph::build(&files.into_iter().collect())
    }

    fn entry_index(label: &str) -> usize {
        ENTRY_POINTS.iter().position(|e| e.label == label).expect("known entry")
    }

    #[test]
    fn hash_iteration_flow_into_snapshot_reported_with_both_chains() {
        let g = graph(vec![
            file(
                "bench",
                "crates/bench/src/main.rs",
                "use snaps_core::resolve;\nuse snaps_serve::save;\n\
                 fn main() { resolve(); save(); }\n",
            ),
            file(
                "core",
                "crates/core/src/lib.rs",
                "use std::collections::HashMap;\n\
                 pub fn resolve() { let m: HashMap<u32, u32> = HashMap::new(); \
                 for k in m { drop(k); } }\n",
            ),
            file("serve", "crates/serve/src/snapshot.rs", "pub fn save() {}\n"),
        ]);
        let out = check(&g);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        let f = &out.findings[0];
        assert_eq!(f.rule, "determinism-taint");
        assert_eq!(f.file, "crates/core/src/lib.rs");
        assert!(f.message.contains("`HashMap`/`HashSet` iteration"), "{}", f.message);
        assert!(f.message.contains("pipeline mains"), "{}", f.message);
        assert!(f.message.contains("serve::snapshot::save"), "{}", f.message);
        assert!(f.message.contains("bench::main → core::resolve"), "taint path: {}", f.message);
        assert_eq!(out.per_entry.len(), ENTRY_POINTS.len());
        assert_eq!(out.per_entry[entry_index("pipeline mains")], 1);
        assert_eq!(out.per_entry.iter().sum::<usize>(), 1, "no other entry sees the flow");
    }

    #[test]
    fn btreemap_iteration_is_clean() {
        let g = graph(vec![
            file(
                "bench",
                "crates/bench/src/main.rs",
                "use snaps_core::resolve;\nuse snaps_serve::save;\n\
                 fn main() { resolve(); save(); }\n",
            ),
            file(
                "core",
                "crates/core/src/lib.rs",
                "use std::collections::BTreeMap;\n\
                 pub fn resolve() { let m: BTreeMap<u32, u32> = BTreeMap::new(); \
                 for k in m { drop(k); } }\n",
            ),
            file("serve", "crates/serve/src/snapshot.rs", "pub fn save() {}\n"),
        ]);
        let out = check(&g);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.per_entry.iter().sum::<usize>(), 0);
    }

    #[test]
    fn sources_outside_the_result_affecting_perimeter_do_not_seed() {
        // Operational timing in serve (latency measurement around a
        // snapshot write) is not a determinism hazard.
        let g = graph(vec![
            file(
                "serve",
                "crates/serve/src/server.rs",
                "use crate::snapshot::save;\n\
                 pub fn search() { let t = std::time::Instant::now(); save(); drop(t); }\n",
            ),
            file("serve", "crates/serve/src/snapshot.rs", "pub fn save() {}\n"),
        ]);
        let out = check(&g);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn tainted_function_defined_in_a_sink_file_is_itself_a_flow() {
        let g = graph(vec![
            file(
                "serve",
                "crates/serve/src/snapshot.rs",
                "use snaps_core::resolve;\npub fn load() { resolve(); }\n",
            ),
            file(
                "core",
                "crates/core/src/lib.rs",
                "use std::collections::HashSet;\n\
                 pub fn resolve() { let s: HashSet<u32> = HashSet::new(); \
                 for k in s { drop(k); } }\n",
            ),
        ]);
        let out = check(&g);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert!(out.findings[0].message.contains("snapshot load"), "{}", out.findings[0].message);
        assert_eq!(out.per_entry[entry_index("snapshot load")], 1);
    }
}
