//! `snaps-lint`: the workspace invariant checker.
//!
//! A std-only static-analysis tool that enforces the project's four
//! machine-checked invariant families over every `.rs` file and Cargo
//! manifest in the workspace:
//!
//! - **determinism** — no randomised iteration order, wall-clock reads, or
//!   OS entropy in result-affecting crates;
//! - **panic-freedom** — no `unwrap`/`expect`/panicking macros/unguarded
//!   indexing on the serve request path and snapshot load path;
//! - **containment** — threads, subprocesses, and sockets stay at the
//!   system edge; `unsafe` nowhere;
//! - **layering** — the crate dependency graph follows a fixed DAG.
//!
//! Matching runs over a real token scan ([`scanner`]) so rule keywords in
//! comments or string literals never fire, and `#[cfg(test)]` regions are
//! stripped first. Violations are waived only by an inline
//! `// snaps-lint: allow(<rule>) -- <reason>` annotation, and the total
//! annotation count is budgeted workspace-wide.
//!
//! Since the v2 analyzer the lint runs in two passes: pass 1 extracts a
//! per-file item model ([`items`]) and builds a cross-crate call graph
//! ([`callgraph`]) rooted at the declared entry points; pass 2 layers
//! transitive graph rules ([`reach`]) — panic-reachability,
//! lock-discipline, dead-pub — and waiver-staleness on top of the token
//! rules. The v3 analyzer adds a third pass over the same graph:
//! lock-order cycles and blocking-under-lock ([`lockorder`]) and a
//! numeric-cast dataflow rule on the snapshot path ([`numflow`]). The v4
//! analyzer adds a fourth pass preparing the parallel sharded pipeline:
//! an interprocedural determinism-taint dataflow from nondeterminism
//! sources into serialisation sinks ([`taint`]) and a shard-safety rule
//! over the declared parallel-stage roots ([`shardsafe`]), plus a
//! crate-root `#![forbid(unsafe_code)]` presence check. The v5 analyzer
//! adds a fifth pass guarding the snapshot file-format contract: a
//! wire-schema extractor ([`wireschema`]) symbolically walks the section
//! encoders and decoders, enforces encode/decode symmetry and decode-loop
//! totality, and gates layout drift against the committed
//! `results/SNAPSHOT_schema.json` golden unless `FORMAT_VERSION` is
//! bumped. The v6 analyzer adds a sixth pass paving the zero-copy serve
//! path: an allocation-flow rule ([`allocflow`]) that classifies every
//! allocation site reachable from an entry point on a boundedness lattice
//! (bounded / data-proportional / unbounded-per-request), records a
//! per-entry allocation budget, and flags snapshot-resident accessors
//! that clone owned `String`/`Vec` values out of snapshot state instead
//! of lending borrows.

#![forbid(unsafe_code)]

pub mod allocflow;
pub mod callgraph;
pub mod items;
pub mod layering;
pub mod lockorder;
pub mod numflow;
pub mod reach;
pub mod report;
pub mod rules;
pub mod scanner;
pub mod shardsafe;
pub mod taint;
pub mod wireschema;
pub mod workspace;

pub use report::Report;
pub use rules::{FileClass, Finding, ALLOW_BUDGET, RULES};
