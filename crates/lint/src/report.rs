//! Machine-readable JSON report, following the `snaps-obs` RunReport
//! conventions: hand-rolled serialisation, stable key order, no timestamps
//! or hostnames, so two runs over the same tree emit byte-identical reports.

use crate::reach::EntryStats;
use crate::rules::{Finding, RuleInfo, ALLOW_BUDGET, RULES};
use crate::scanner::Annotation;
use crate::shardsafe::ShardRootStat;
use crate::wireschema::WireStats;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Call-graph statistics for the report's `callgraph` section.
#[derive(Debug, Default)]
pub struct CallGraphStats {
    /// Number of function nodes in the workspace call graph.
    pub nodes: usize,
    /// Number of resolved call edges.
    pub edges: usize,
    /// Per-entry-point reachability, in entry-table order.
    pub entry_points: Vec<EntryStats>,
    /// Per-shard-root statistics from the pass-4 shard-safety rule, in
    /// declaration order.
    pub shard_roots: Vec<ShardRootStat>,
}

/// Aggregated outcome of a lint run, ready to print or serialise.
#[derive(Debug)]
pub struct Report {
    /// Workspace root the run scanned (repo-relative paths hang off it).
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of manifests checked for layering.
    pub manifests_checked: usize,
    /// Every finding, waived or not, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Every allow-annotation seen, as (file, annotation), sorted by
    /// (file, line).
    pub allows: Vec<(String, Annotation)>,
    /// Call-graph statistics from the pass-2 analyzer.
    pub callgraph: CallGraphStats,
    /// Wire-schema statistics from the pass-5 analyzer (the schema golden
    /// bytes live in `wire.schema_json`, not in this report).
    pub wire: WireStats,
}

impl Report {
    /// Unwaived findings — the ones that fail the build.
    #[must_use]
    pub fn active_findings(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| !f.waived).collect()
    }

    /// Number of waived findings.
    #[must_use]
    pub(crate) fn waived_count(&self) -> usize {
        self.findings.iter().filter(|f| f.waived).count()
    }

    /// A run is clean when nothing unwaived fired and the allow budget holds.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.active_findings().is_empty()
    }

    /// Unwaived panic-reachability findings — the number CI refuses to see
    /// grow relative to the committed report.
    #[must_use]
    pub fn reachable_panics(&self) -> usize {
        self.active_findings().iter().filter(|f| f.rule == "panic-reachability").count()
    }

    /// Lock-order cycle findings, *including waived ones*: a waived
    /// deadlock is still a deadlock, so the CI gate on this number cannot
    /// be bypassed with an annotation.
    #[must_use]
    pub fn lock_cycles(&self) -> usize {
        self.findings.iter().filter(|f| f.rule == "lock-order").count()
    }

    /// Determinism-taint findings, *including waived ones* — the CI gate
    /// on this number cannot be bypassed with an annotation.
    #[must_use]
    pub fn taint_flows(&self) -> usize {
        self.findings.iter().filter(|f| f.rule == "determinism-taint").count()
    }

    /// Shard-safety findings, *including waived ones* — same
    /// annotation-proof CI gate as `lock_cycles`.
    #[must_use]
    pub fn shard_violations(&self) -> usize {
        self.findings.iter().filter(|f| f.rule == "shard-safety").count()
    }

    /// Wire-symmetry findings, *including waived ones* — an annotated
    /// encoder/decoder mismatch still corrupts snapshots, so the CI gate
    /// counts waived findings too.
    #[must_use]
    pub fn wire_asymmetries(&self) -> usize {
        self.findings.iter().filter(|f| f.rule == "wire-symmetry").count()
    }

    /// Wire-totality findings, *including waived ones* — same
    /// annotation-proof CI gate as `lock_cycles`.
    #[must_use]
    pub fn wire_totality(&self) -> usize {
        self.findings.iter().filter(|f| f.rule == "wire-totality").count()
    }

    /// Wire-drift findings, *including waived ones*: a layout change
    /// without a `FORMAT_VERSION` bump cannot be annotated away.
    #[must_use]
    pub fn wire_drift(&self) -> usize {
        self.findings.iter().filter(|f| f.rule == "wire-drift").count()
    }

    /// Unbounded-per-request allocation findings, *including waived
    /// ones* — a waived unbounded allocation still grows per request, so
    /// the CI hard zero gate cannot be bypassed with an annotation.
    #[must_use]
    pub fn alloc_unbounded(&self) -> usize {
        self.findings.iter().filter(|f| f.rule == "alloc-budget").count()
    }

    /// Borrow-not-own findings, *including waived ones* — same
    /// annotation-proof CI gate as `alloc_unbounded`.
    #[must_use]
    pub fn borrow_not_own(&self) -> usize {
        self.findings.iter().filter(|f| f.rule == "borrow-not-own").count()
    }

    /// Sort findings and allows into the canonical report order.
    pub fn normalise(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
        });
        self.allows.sort_by(|a, b| (a.0.as_str(), a.1.line).cmp(&(b.0.as_str(), b.1.line)));
    }

    /// Render the JSON report.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut per_rule: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
        for r in RULES {
            per_rule.insert(r.name, (0, 0));
        }
        for f in &self.findings {
            let slot = per_rule.entry(f.rule).or_insert((0, 0));
            if f.waived {
                slot.1 += 1;
            } else {
                slot.0 += 1;
            }
        }

        let mut s = String::new();
        s.push_str("{\n  \"meta\": {\n");
        let _ = writeln!(s, "    \"tool\": \"snaps-lint\",");
        let _ = writeln!(s, "    \"schema_version\": 6,");
        let _ = writeln!(s, "    \"root\": {},", json_str(&self.root));
        let _ = writeln!(s, "    \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(s, "    \"manifests_checked\": {}", self.manifests_checked);
        s.push_str("  },\n  \"callgraph\": {\n");
        let _ = writeln!(s, "    \"nodes\": {},", self.callgraph.nodes);
        let _ = writeln!(s, "    \"edges\": {},", self.callgraph.edges);
        s.push_str("    \"entry_points\": [\n");
        let n = self.callgraph.entry_points.len();
        for (i, e) in self.callgraph.entry_points.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let _ = writeln!(
                s,
                "      {{\"label\": {}, \"serve_path\": {}, \"roots\": {}, \"reachable\": {}, \
                 \"reachable_panics\": {}, \"lock_nodes\": {}, \"lock_edges\": {}, \
                 \"lock_cycles\": {}, \"cast_sites\": {}, \"taint_flows\": {}, \
                 \"shard_violations\": {}, \"alloc_bounded\": {}, \"alloc_data\": {}, \
                 \"alloc_unbounded\": {}, \"borrow_not_own\": {}}}{comma}",
                json_str(&e.label),
                e.serve_path,
                e.roots,
                e.reachable,
                e.reachable_panics,
                e.lock_nodes,
                e.lock_edges,
                e.lock_cycles,
                e.cast_sites,
                e.taint_flows,
                e.shard_violations,
                e.alloc_bounded,
                e.alloc_data,
                e.alloc_unbounded,
                e.borrow_not_own
            );
        }
        s.push_str("    ],\n    \"shard_roots\": [\n");
        let n = self.callgraph.shard_roots.len();
        for (i, r) in self.callgraph.shard_roots.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let _ = writeln!(
                s,
                "      {{\"stage\": {}, \"root\": {}, \"matched\": {}, \"reachable\": {}, \
                 \"violations\": {}}}{comma}",
                json_str(r.stage),
                json_str(&r.root),
                r.matched,
                r.reachable,
                r.violations
            );
        }
        s.push_str("    ]\n  },\n  \"wire\": {\n");
        match self.wire.format_version {
            Some(v) => {
                let _ = writeln!(s, "    \"format_version\": {v},");
            }
            None => s.push_str("    \"format_version\": null,\n"),
        }
        s.push_str("    \"sections\": [\n");
        let n = self.wire.sections.len();
        for (i, sec) in self.wire.sections.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let _ = writeln!(
                s,
                "      {{\"id\": {}, \"name\": {}, \"encoder\": {}, \"decoder\": {}, \
                 \"fields\": {}}}{comma}",
                sec.id,
                json_str(&sec.name),
                json_str(&sec.encoder),
                json_str(&sec.decoder),
                sec.fields
            );
        }
        s.push_str("    ]\n  },\n  \"rules\": {\n");
        let n = per_rule.len();
        for (i, (name, (active, waived))) in per_rule.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let _ = writeln!(
                s,
                "    {}: {{\"findings\": {active}, \"waived\": {waived}}}{comma}",
                json_str(name)
            );
        }
        s.push_str("  },\n  \"findings\": [\n");
        let n = self.findings.len();
        for (i, f) in self.findings.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"waived\": {}, \"message\": {}}}{comma}",
                json_str(f.rule),
                json_str(&f.file),
                f.line,
                f.waived,
                json_str(&f.message)
            );
        }
        s.push_str("  ],\n  \"allows\": [\n");
        let n = self.allows.len();
        for (i, (file, a)) in self.allows.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let rules = a.rules.iter().map(|r| json_str(r)).collect::<Vec<_>>().join(", ");
            let _ = writeln!(
                s,
                "    {{\"file\": {}, \"line\": {}, \"rules\": [{rules}], \"reason\": {}}}{comma}",
                json_str(file),
                a.line,
                json_str(&a.reason)
            );
        }
        s.push_str("  ],\n  \"summary\": {\n");
        let _ = writeln!(s, "    \"findings\": {},", self.active_findings().len());
        let _ = writeln!(s, "    \"waived\": {},", self.waived_count());
        let _ = writeln!(s, "    \"allows\": {},", self.allows.len());
        let _ = writeln!(s, "    \"allow_budget\": {ALLOW_BUDGET},");
        let _ = writeln!(s, "    \"reachable_panics\": {},", self.reachable_panics());
        let _ = writeln!(s, "    \"lock_cycles\": {},", self.lock_cycles());
        let _ = writeln!(s, "    \"taint_flows\": {},", self.taint_flows());
        let _ = writeln!(s, "    \"shard_violations\": {},", self.shard_violations());
        let _ = writeln!(s, "    \"wire_sections\": {},", self.wire.sections.len());
        let _ = writeln!(s, "    \"wire_asymmetries\": {},", self.wire_asymmetries());
        let _ = writeln!(s, "    \"wire_totality\": {},", self.wire_totality());
        let _ = writeln!(s, "    \"wire_drift\": {},", self.wire_drift());
        let _ = writeln!(s, "    \"alloc_unbounded\": {},", self.alloc_unbounded());
        let _ = writeln!(s, "    \"borrow_not_own\": {},", self.borrow_not_own());
        let _ = writeln!(s, "    \"clean\": {}", self.clean());
        s.push_str("  }\n}\n");
        s
    }

    /// Render the human-readable console output (diagnostics + summary).
    #[must_use]
    pub fn to_console(&self) -> String {
        let mut s = String::new();
        for f in &self.findings {
            if f.waived {
                continue;
            }
            let _ = writeln!(s, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        let _ = writeln!(
            s,
            "snaps-lint: {} files, {} manifests; callgraph {} nodes / {} edges; \
             {} findings, {} waived, {}/{} allows{}",
            self.files_scanned,
            self.manifests_checked,
            self.callgraph.nodes,
            self.callgraph.edges,
            self.active_findings().len(),
            self.waived_count(),
            self.allows.len(),
            ALLOW_BUDGET,
            if self.clean() { "; clean" } else { "" },
        );
        for e in &self.callgraph.entry_points {
            let _ = writeln!(
                s,
                "  entry {}: {} roots, {} reachable, {} reachable panic sites; locks: {} \
                 keys, {} order edges, {} cycles; {} cast sites; {} taint flows, {} shard \
                 violations; allocs {}/{}/{} (bounded/data/unbounded), {} owned-clone \
                 accessors",
                e.label,
                e.roots,
                e.reachable,
                e.reachable_panics,
                e.lock_nodes,
                e.lock_edges,
                e.lock_cycles,
                e.cast_sites,
                e.taint_flows,
                e.shard_violations,
                e.alloc_bounded,
                e.alloc_data,
                e.alloc_unbounded,
                e.borrow_not_own
            );
        }
        for r in &self.callgraph.shard_roots {
            let _ = writeln!(
                s,
                "  shard root {} ({}): {} matched, {} reachable, {} violations",
                r.root, r.stage, r.matched, r.reachable, r.violations
            );
        }
        if !self.wire.sections.is_empty() {
            let _ = writeln!(
                s,
                "  wire format v{}: {} sections, {} asymmetries, {} totality, {} drift",
                self.wire.format_version.map_or_else(|| "?".to_string(), |v| v.to_string()),
                self.wire.sections.len(),
                self.wire_asymmetries(),
                self.wire_totality(),
                self.wire_drift()
            );
        }
        s
    }
}

/// List every rule with its rationale (for `--list-rules`).
#[must_use]
pub fn rule_listing() -> String {
    let mut s = String::new();
    let width = RULES.iter().map(|r| r.name.len()).max().unwrap_or(0);
    for RuleInfo { name, description } in RULES {
        let _ = writeln!(
            s,
            "{name:width$}  {}",
            description.split_whitespace().collect::<Vec<_>>().join(" ")
        );
    }
    s
}

/// Escape a string into a JSON string literal (with quotes).
#[must_use]
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            root: ".".to_string(),
            files_scanned: 2,
            manifests_checked: 1,
            findings: vec![
                Finding {
                    rule: "hash-iter",
                    file: "b.rs".into(),
                    line: 3,
                    message: "HashMap".into(),
                    waived: false,
                },
                Finding {
                    rule: "panic-path",
                    file: "a.rs".into(),
                    line: 9,
                    message: "unwrap".into(),
                    waived: true,
                },
            ],
            allows: vec![(
                "a.rs".into(),
                Annotation {
                    line: 9,
                    applies_to: 9,
                    rules: vec!["panic-path".into()],
                    reason: "test \"quoted\"".into(),
                    error: None,
                },
            )],
            callgraph: CallGraphStats {
                nodes: 4,
                edges: 3,
                entry_points: vec![EntryStats {
                    label: "GET /search".into(),
                    serve_path: true,
                    roots: 1,
                    reachable: 3,
                    reachable_panics: 0,
                    lock_nodes: 1,
                    lock_edges: 0,
                    lock_cycles: 0,
                    cast_sites: 2,
                    taint_flows: 0,
                    shard_violations: 0,
                    alloc_bounded: 4,
                    alloc_data: 2,
                    alloc_unbounded: 0,
                    borrow_not_own: 0,
                }],
                shard_roots: vec![ShardRootStat {
                    stage: "blocking",
                    root: "blocking::pairs::candidate_pairs".into(),
                    matched: 1,
                    reachable: 5,
                    violations: 0,
                }],
            },
            wire: WireStats {
                format_version: Some(1),
                sections: vec![crate::wireschema::WireSectionStat {
                    id: 1,
                    name: "META".into(),
                    encoder: "encode_meta".into(),
                    decoder: "decode_meta".into(),
                    fields: 7,
                }],
                schema_json: String::new(),
            },
        }
    }

    #[test]
    fn json_is_valid_shape_and_escaped() {
        let mut r = sample();
        r.normalise();
        let json = r.to_json();
        assert!(json.contains("\"tool\": \"snaps-lint\""));
        assert!(json.contains("\"schema_version\": 6"));
        assert!(json.contains("\"taint_flows\": 0, \"shard_violations\": 0"));
        assert!(json.contains("\"label\": \"GET /search\", \"serve_path\": true"));
        assert!(json.contains(
            "\"alloc_bounded\": 4, \"alloc_data\": 2, \"alloc_unbounded\": 0, \
             \"borrow_not_own\": 0"
        ));
        assert!(json.contains("\"alloc_unbounded\": 0,"));
        assert!(json.contains("\"stage\": \"blocking\""));
        assert!(json.contains("\"format_version\": 1"));
        assert!(json.contains(
            "{\"id\": 1, \"name\": \"META\", \"encoder\": \"encode_meta\", \
             \"decoder\": \"decode_meta\", \"fields\": 7}"
        ));
        assert!(json.contains("\"wire_sections\": 1,"));
        assert!(json.contains("\"wire_asymmetries\": 0,"));
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("test \\\"quoted\\\""));
        // Normalised order puts a.rs before b.rs.
        let a = json.find("\"file\": \"a.rs\"").expect("a.rs present");
        let b = json.find("\"file\": \"b.rs\"").expect("b.rs present");
        assert!(a < b);
        // Braces balance — cheap structural sanity outside a real parser.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn waived_findings_do_not_fail_the_run() {
        let mut r = sample();
        r.findings.remove(0);
        assert!(r.clean());
        assert_eq!(r.waived_count(), 1);
    }

    #[test]
    fn console_output_skips_waived() {
        let r = sample();
        let text = r.to_console();
        assert!(text.contains("b.rs:3: [hash-iter]"));
        assert!(!text.contains("a.rs:9"));
    }

    #[test]
    fn json_str_escapes_control_chars() {
        assert_eq!(json_str("a\u{1}b"), "\"a\\u0001b\"");
        assert_eq!(json_str("tab\there"), "\"tab\\there\"");
    }

    #[test]
    fn rule_listing_names_every_rule() {
        let listing = rule_listing();
        for r in RULES {
            assert!(listing.contains(r.name));
        }
    }
}
