//! Crate-layering rule: the workspace dependency graph must follow a fixed
//! DAG so low-level crates can never grow upward dependencies (e.g. `core`
//! depending on `serve`).
//!
//! Two independent checks back the rule:
//!
//! 1. **Manifests** — each `crates/<name>/Cargo.toml` `[dependencies]`
//!    section may only name `snaps-*` crates from that crate's allowed list.
//! 2. **Sources** — any `snaps_*` identifier in non-test code (a
//!    `use snaps_query::…` or fully-qualified path) must also be in the
//!    allowed list, so a manifest edit cannot smuggle a layer violation in
//!    through a re-export.

use crate::rules::Finding;

/// The allowed dependency DAG: crate short name → `snaps-*` crates it may
/// depend on. Crates absent from a list are forbidden dependencies.
pub(crate) const ALLOWED_DEPS: &[(&str, &[&str])] = &[
    ("obs", &[]),
    ("strsim", &[]),
    ("ml", &[]),
    ("graph", &[]),
    ("lint", &[]),
    ("model", &["strsim"]),
    ("datagen", &["model", "strsim"]),
    ("blocking", &["model", "strsim"]),
    ("anonymise", &["model", "strsim"]),
    ("core", &["obs", "model", "strsim", "blocking", "graph"]),
    ("index", &["obs", "model", "strsim", "core"]),
    ("pedigree", &["obs", "model", "core"]),
    ("query", &["obs", "model", "strsim", "core", "index"]),
    ("baselines", &["model", "strsim", "blocking", "core", "graph", "ml"]),
    (
        "eval",
        &[
            "obs",
            "model",
            "strsim",
            "datagen",
            "blocking",
            "core",
            "index",
            "query",
            "pedigree",
            "baselines",
            "ml",
        ],
    ),
    ("serve", &["obs", "model", "strsim", "core", "index", "query", "pedigree", "datagen"]),
    (
        "bench",
        &[
            "obs",
            "model",
            "strsim",
            "datagen",
            "blocking",
            "anonymise",
            "core",
            "index",
            "query",
            "pedigree",
            "baselines",
            "eval",
            "graph",
            "ml",
            "serve",
        ],
    ),
    // The facade re-exports the whole pipeline; everything except the lint
    // tool itself is fair game.
    (
        "snaps",
        &[
            "obs",
            "model",
            "strsim",
            "datagen",
            "blocking",
            "anonymise",
            "core",
            "index",
            "query",
            "pedigree",
            "baselines",
            "eval",
            "graph",
            "ml",
            "serve",
            "bench",
        ],
    ),
];

/// Look up the allowed dependency list for a crate. Unknown crates get an
/// empty list, so a brand-new crate must be registered here before it may
/// depend on anything — a deliberate speed bump.
#[must_use]
pub fn allowed_for(crate_name: &str) -> &'static [&'static str] {
    ALLOWED_DEPS.iter().find(|(n, _)| *n == crate_name).map_or(&[], |(_, deps)| deps)
}

/// Is `crate_name` registered in the DAG at all?
#[must_use]
pub fn is_registered(crate_name: &str) -> bool {
    ALLOWED_DEPS.iter().any(|(n, _)| *n == crate_name)
}

/// Check a `Cargo.toml` body for forbidden `snaps-*` dependencies.
///
/// The parse is deliberately minimal: section headers are `[...]` lines and
/// a dependency line starts with the dependency name (`snaps-core.workspace
/// = true` or `snaps-core = { … }`). That covers every manifest in this
/// workspace; the source-level check catches anything fancier.
#[must_use]
pub fn check_manifest(crate_name: &str, manifest_path: &str, toml: &str) -> Vec<Finding> {
    let allowed = allowed_for(crate_name);
    let mut out = Vec::new();
    let mut in_deps = false;
    for (idx, raw) in toml.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            // Runtime deps only: dev-dependencies never ship, and test code
            // is outside the determinism/layering perimeter anyway.
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps {
            continue;
        }
        let Some(rest) = line.strip_prefix("snaps-") else { continue };
        let dep: String =
            rest.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
        if !allowed.contains(&dep.as_str()) {
            out.push(Finding {
                rule: "layering",
                file: manifest_path.to_string(),
                line: idx + 1,
                message: format!(
                    "crate '{crate_name}' must not depend on 'snaps-{dep}' (allowed: {allowed:?})"
                ),
                waived: false,
            });
        }
    }
    out
}

/// Check one `snaps_*` identifier seen in `crate_name`'s non-test source.
/// Returns the violated dependency short name, if any.
#[must_use]
pub fn check_use_ident(crate_name: &str, ident: &str) -> Option<String> {
    let dep = ident.strip_prefix("snaps_")?;
    // A crate's own bin targets import its lib by name — a self-reference,
    // not a dependency edge.
    if dep.is_empty() || dep == crate_name || allowed_for(crate_name).contains(&dep) {
        return None;
    }
    Some(dep.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_within_dag_is_clean() {
        let toml = "[package]\nname = \"snaps-index\"\n\n[dependencies]\nsnaps-core.workspace = true\nsnaps-model.workspace = true\n";
        assert!(check_manifest("index", "crates/index/Cargo.toml", toml).is_empty());
    }

    #[test]
    fn upward_dependency_is_flagged() {
        let toml = "[dependencies]\nsnaps-serve.workspace = true\n";
        let f = check_manifest("core", "crates/core/Cargo.toml", toml);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "layering");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn dev_dependencies_are_ignored() {
        let toml = "[dev-dependencies]\nsnaps-serve.workspace = true\n";
        assert!(check_manifest("core", "crates/core/Cargo.toml", toml).is_empty());
    }

    #[test]
    fn use_ident_checked_against_dag() {
        assert_eq!(check_use_ident("core", "snaps_serve"), Some("serve".to_string()));
        assert_eq!(check_use_ident("core", "snaps_model"), None);
        assert_eq!(check_use_ident("core", "not_snaps"), None);
        // Self-reference from a bin target is not a dependency edge.
        assert_eq!(check_use_ident("serve", "snaps_serve"), None);
    }

    #[test]
    fn unknown_crate_gets_empty_allowance() {
        assert!(allowed_for("brand-new").is_empty());
        assert!(!is_registered("brand-new"));
        assert!(is_registered("core"));
    }

    #[test]
    fn dag_is_acyclic_and_closed() {
        // Every allowed dep must itself be registered, and reachability from
        // any crate must never return to itself.
        for (name, deps) in ALLOWED_DEPS {
            for d in *deps {
                assert!(is_registered(d), "{name} allows unregistered dep {d}");
            }
            let mut stack: Vec<&str> = deps.to_vec();
            let mut seen: Vec<&str> = Vec::new();
            while let Some(d) = stack.pop() {
                assert_ne!(d, *name, "cycle through {name}");
                if !seen.contains(&d) {
                    seen.push(d);
                    stack.extend_from_slice(allowed_for(d));
                }
            }
        }
    }
}
