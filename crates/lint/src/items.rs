//! Pass 1 of the workspace analyzer: a lightweight item model per file.
//!
//! Parses the stripped significant-token stream from [`crate::scanner`]
//! into function items (with their call sites, panic sites, and lock
//! sites), public items (for the dead-pub rule), and a `use`-map (leaf
//! identifier → full import path) that [`crate::callgraph`] consults when
//! resolving call targets. This is deliberately *not* a Rust parser: it is
//! a linear cursor walk that understands just enough structure — `mod` /
//! `impl` / `trait` / `fn` nesting, attribute and generics skipping,
//! balanced delimiters — to attribute every call and panic site to the
//! function that contains it. Macro-definition bodies (`macro_rules!`) are
//! opaque to the model.

use crate::scanner::{Spanned, Tok};
use std::collections::BTreeMap;

/// What a call site names, before resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTarget {
    /// A path call: `foo(..)`, `module::foo(..)`, `Type::method(..)`,
    /// `snaps_core::pedigree::build(..)` — segments as written.
    Path(Vec<String>),
    /// A method call `recv.name(..)`: only the method name is knowable
    /// without type inference, so resolution falls back to *every*
    /// workspace `impl`/`trait` function of that name.
    Method(String),
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// What the call names.
    pub target: CallTarget,
    /// 1-based source line.
    pub line: usize,
    /// Index of the call's name token in the file's stripped token stream
    /// (used to test containment in a lock's hold region).
    pub tok: usize,
    /// First argument when it is a bare identifier (`wait(q)` → `q`); used
    /// by the Condvar-wait exemption in the blocking-under-lock rule.
    pub arg0: Option<String>,
}

/// One potentially panicking expression inside a function body.
#[derive(Debug, Clone)]
pub(crate) struct PanicSite {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description (`.unwrap()`, `assert!`, …).
    pub what: &'static str,
}

/// One `.lock()` call and the token range its guard is assumed held for:
/// to the end of the enclosing block (or a `drop(<guard>)`) when
/// let-bound, to the end of the statement when temporary.
#[derive(Debug, Clone)]
pub(crate) struct LockSite {
    /// 1-based source line of the `.lock()` call.
    pub line: usize,
    /// Half-open token-index range `(lock_tok, region_end)` of the hold.
    pub region: (usize, usize),
    /// Stable identity of the lock: `Owner.field` where `Owner` is the
    /// enclosing `impl` type (or the crate name in a free function) and
    /// `field` is the last receiver-chain segment before `.lock()` —
    /// `self.inner.lock()` in `impl ConnQueue` → `ConnQueue.inner`.
    /// Accessor calls keep a `()` suffix (`SimCache.shard()`); bare-ident
    /// receivers are resolved one `let`/`for` binding backwards.
    pub key: String,
    /// Name of the let-bound guard variable, when there is one
    /// (`let q = self.inner.lock()…` → `q`); consulted by the
    /// Condvar-wait exemption.
    pub bound: Option<String>,
}

/// One nondeterminism-source expression inside a function body: unordered
/// hash iteration, wall-clock reads, thread identity, seed-free RNG
/// construction, or pointer-address observation. Seeds the pass-4
/// determinism-taint dataflow.
#[derive(Debug, Clone)]
pub(crate) struct TaintSite {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description (`HashMap iteration`, `Instant::now()`, …).
    pub what: &'static str,
}

/// One mutating write inside a function body: a mutating-method call
/// (`push`, `insert`, `extend`, …), a non-commutative atomic operation
/// (`store`, `swap`, `compare_exchange`), or a compound assignment
/// (`+=`, `*=`, …). Consumed by the pass-4 shard-safety rule.
#[derive(Debug, Clone)]
pub(crate) struct MutWriteSite {
    /// 1-based source line.
    pub line: usize,
    /// Receiver chain, outermost-first, `()` suffix on call segments
    /// (`self.sink.lock().push(x)` → `["self", "sink", "lock()"]`). Empty
    /// when the left-hand side is not a recognisable chain.
    pub receiver: Vec<String>,
    /// The mutating operation (`push`, `store`, `+=`, …).
    pub op: String,
    /// For a single bare-ident receiver, the last non-adapter segment of
    /// the expression it was bound from (`let g = shard.lock();
    /// g.push(x)` → `lock()`), when one binding back resolves.
    pub via: Option<String>,
}

/// Boundedness of one allocation site, the pass-6 alloc-budget lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AllocClass {
    /// Constant-size work: a container constructor, a capacity-hinted
    /// container (`with_capacity` / upgraded by `reserve`), or growth
    /// outside any loop. Cost is independent of request and data size.
    Bounded,
    /// Scales with result/snapshot size: clones, `to_string`/`to_owned`/
    /// `to_vec`, `format!`, `collect`, or loop growth through a field or
    /// parameter whose capacity discipline is the caller's.
    DataProportional,
    /// Loop-carried growth of a container this function constructed with
    /// no capacity hint: per-request growth with no bound.
    Unbounded,
}

/// One allocation-capable expression inside a function body. Consumed by
/// the pass-6 allocflow rules (alloc-budget, borrow-not-own).
#[derive(Debug, Clone)]
pub(crate) struct AllocSite {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description (`Vec::new`, `clone()`, `push`, …).
    pub what: &'static str,
    /// Boundedness class.
    pub class: AllocClass,
    /// Receiver chain for clone-family and growth sites
    /// (`self.name.clone()` → `["self", "name"]`), outermost-first; empty
    /// for constructors and macros. Clone-family chains feed the
    /// borrow-not-own receiver resolution.
    pub receiver: Vec<String>,
}

/// A module-level `static` item, with whether its type names an
/// interior-mutability container (`Mutex`, `RwLock`, `Atomic*`, `Cell`,
/// `RefCell`, `OnceLock`, `LazyLock`, `OnceCell`, `UnsafeCell`) — the only
/// kind of `static` writable from safe code.
#[derive(Debug, Clone)]
pub(crate) struct StaticItem {
    /// Item name.
    pub name: String,
    /// 1-based line of the declaration.
    pub line: usize,
    /// The declared type mentions an interior-mutability container.
    pub interior_mut: bool,
}

/// One numeric `as` cast inside a function body.
#[derive(Debug, Clone)]
pub struct CastSite {
    /// 1-based source line of the `as` keyword.
    pub line: usize,
    /// Source type, when the intra-procedural type environment (parameter
    /// and `let` annotations, known-return-type methods) can name it.
    pub from: Option<String>,
    /// Target primitive type as written after `as`.
    pub to: String,
    /// The operand is the result of a recognized checked-conversion helper
    /// (`try_from` / `try_into` / `len_u32` / `try_*` / `checked_*`),
    /// possibly through `unwrap_or`-style adapters.
    pub checked: bool,
}

/// One function (or trait-method declaration) in the item model.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Short crate name (`core`, `serve`, …).
    pub krate: String,
    /// `::`-joined module path within the crate (empty at the crate root;
    /// `bin::snaps_serve` for `src/bin/snaps_serve.rs`).
    pub module: String,
    /// Enclosing `impl Type` / `trait Type` name, if any.
    pub impl_type: Option<String>,
    /// Function name.
    pub name: String,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Declared `pub` (unrestricted).
    pub is_pub: bool,
    /// Every call expression in the body, in token order.
    pub calls: Vec<CallSite>,
    /// Every panic-capable expression in the body.
    pub(crate) panics: Vec<PanicSite>,
    /// Every `.lock()` hold region in the body.
    pub(crate) locks: Vec<LockSite>,
    /// Every numeric `as` cast in the body, in token order.
    pub casts: Vec<CastSite>,
    /// Every nondeterminism-source expression in the body.
    pub(crate) taints: Vec<TaintSite>,
    /// Every mutating write in the body, in token order.
    pub(crate) mut_writes: Vec<MutWriteSite>,
    /// Every allocation site in the body, in token order (pass 6).
    pub(crate) allocs: Vec<AllocSite>,
    /// Head identifier of the declared return type (`-> String` →
    /// `Some("String")`, `-> Vec<u8>` → `Some("Vec")`); `None` for
    /// borrowed returns (`-> &str`), unit returns, and bodyless
    /// declarations. Consumed by the borrow-not-own rule.
    pub(crate) ret: Option<String>,
}

/// A `pub` item declaration (dead-pub candidate). Restricted visibility
/// (`pub(crate)`, `pub(super)`, …) is excluded by construction.
#[derive(Debug, Clone)]
pub(crate) struct PubItem {
    /// Item kind keyword (`fn`, `struct`, `enum`, `trait`, `type`,
    /// `const`, `static`).
    pub kind: &'static str,
    /// Item name.
    pub name: String,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line of the declaration.
    pub line: usize,
}

/// The item model of one file.
#[derive(Debug, Clone, Default)]
pub struct FileItems {
    /// Every function, in source order.
    pub fns: Vec<FnItem>,
    /// Every unrestricted-`pub` item, in source order.
    pub(crate) pub_items: Vec<PubItem>,
    /// Leaf identifier → full import path, from `use` declarations.
    pub uses: BTreeMap<String, Vec<String>>,
    /// Every module-level `static`, in source order.
    pub(crate) statics: Vec<StaticItem>,
    /// Identifiers appearing in unrestricted-`pub` declaration surfaces:
    /// `pub fn` signatures and `pub struct`/`enum`/`type` bodies. A pub
    /// type named here is pinned to `pub` by rustc's `private_interfaces`
    /// lint, so the dead-pub rule exempts it — it lives and dies with the
    /// item that exposes it.
    pub(crate) sig_idents: std::collections::BTreeSet<String>,
}

/// Keywords that can directly precede `(` without being a call.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "fn", "let", "else",
    "mut", "ref", "box", "await", "yield", "unsafe", "dyn", "impl", "where", "pub", "use", "mod",
    "struct", "enum", "trait", "type", "const", "static", "crate", "super", "break", "continue",
    "Self", "self",
];

/// Identifiers that legally precede `[` in type or expression position —
/// the same set as the token-level `index-guard` rule plus `let` (slice
/// patterns).
const NOT_INDEXABLE: &[&str] = &[
    "mut", "dyn", "impl", "const", "ref", "move", "as", "in", "else", "return", "break", "match",
    "if", "where", "let",
];

/// Primitive numeric types that can appear as an `as` cast target.
const NUMERIC_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Methods whose return type is knowable without inference, used to type
/// the source of `x.len() as u32`-style casts.
const METHOD_RETURNS: &[(&str, &str)] = &[
    ("as_micros", "u128"),
    ("as_millis", "u128"),
    ("as_nanos", "u128"),
    ("as_secs", "u64"),
    ("capacity", "usize"),
    ("count", "usize"),
    ("count_ones", "u32"),
    ("f32", "f32"),
    ("f64", "f64"),
    ("finish", "u64"),
    ("i16", "i16"),
    ("i32", "i32"),
    ("i64", "i64"),
    ("ilog2", "u32"),
    ("leading_zeros", "u32"),
    ("len", "usize"),
    ("to_bits", "u64"),
    ("trailing_zeros", "u32"),
    ("u16", "u16"),
    ("u32", "u32"),
    ("u64", "u64"),
    ("u8", "u8"),
];

/// Value adapters that pass their receiver's payload through unchanged —
/// skipped when walking a cast operand or a binding expression back to the
/// call that produced the value.
const CHAIN_ADAPTERS: &[&str] = &[
    "as_mut",
    "as_ref",
    "borrow",
    "clone",
    "copied",
    "expect",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
];

/// Is `name` a recognized checked-conversion helper? Matched by signature
/// convention: the exact names `try_from`/`try_into`/`len_u32` plus the
/// `try_*`/`checked_*` prefix families.
fn is_checked_helper(name: &str) -> bool {
    matches!(name, "try_from" | "try_into" | "len_u32")
        || name.starts_with("try_")
        || name.starts_with("checked_")
}

/// Methods that observe a collection in storage order — nondeterministic
/// on a `HashMap`/`HashSet` receiver.
const ITER_METHODS: &[&str] = &[
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "iter",
    "iter_mut",
    "keys",
    "retain",
    "values",
    "values_mut",
];

/// Seed-free RNG constructors (ambient-entropy entry points); calling one
/// makes the function a nondeterminism source.
const RNG_SOURCES: &[&str] = &["from_entropy", "getrandom", "thread_rng"];

/// Interior-mutability containers: the only way safe code writes through a
/// shared reference or a `static`. `Atomic*` is matched by prefix.
const INTERIOR_MUT_TYPES: &[&str] =
    &["Cell", "LazyLock", "Mutex", "OnceCell", "OnceLock", "RefCell", "RwLock", "UnsafeCell"];

/// Mutating collection/accumulator methods whose effect on a shared sink
/// is order-sensitive (appends, keyed overwrites, removals).
const MUT_METHODS: &[&str] = &[
    "append",
    "clear",
    "extend",
    "insert",
    "pop",
    "pop_front",
    "push",
    "push_back",
    "push_front",
    "remove",
    "truncate",
];

/// Growth methods on std containers: each call may reallocate its
/// receiver. The subset of mutators the alloc-budget rule classifies by
/// loop depth and capacity-hint state (`push_str` grows `String` but is
/// not order-sensitive, so it is absent from [`MUT_METHODS`]).
const GROWTH_METHODS: &[&str] = &[
    "append",
    "extend",
    "extend_from_slice",
    "insert",
    "push",
    "push_back",
    "push_front",
    "push_str",
];

/// Clone-family methods: each produces an owned copy of its receiver's
/// data. Recorded with the receiver chain for borrow-not-own resolution.
const CLONE_METHODS: &[(&str, &str)] = &[
    ("clone", "clone()"),
    ("to_owned", "to_owned()"),
    ("to_string", "to_string()"),
    ("to_vec", "to_vec()"),
];

/// Container types that take a capacity hint (`with_capacity`/`reserve`)
/// — the bindings the capacity-hint prepass tracks. Tree containers
/// (`BTreeMap`/`BTreeSet`) allocate per node and cannot be hinted, so
/// their loop growth classifies as data-proportional, not unbounded.
const HINTABLE_CONTAINERS: &[&str] = &["String", "Vec", "VecDeque"];

/// Order-sensitive atomic operations. Commutative read-modify-writes
/// (`fetch_add`, `fetch_sub`, `fetch_min`, `fetch_max`) are deliberately
/// excluded: their final state is interleaving-invariant.
const NONCOMMUTATIVE_ATOMICS: &[&str] =
    &["compare_exchange", "compare_exchange_weak", "store", "swap"];

/// Macros that panic in release builds (`debug_assert*` compile out).
const PANIC_MACROS: &[(&str, &str)] = &[
    ("panic", "panic!"),
    ("unreachable", "unreachable!"),
    ("todo", "todo!"),
    ("unimplemented", "unimplemented!"),
    ("assert", "assert!"),
    ("assert_eq", "assert_eq!"),
    ("assert_ne", "assert_ne!"),
];

/// Derive the `::`-joined module path of a repo-relative `.rs` file within
/// its crate (`src/lib.rs` → ``, `src/server.rs` → `server`,
/// `src/bin/snaps_serve.rs` → `bin::snaps_serve`, `src/foo/mod.rs` → `foo`).
#[must_use]
pub(crate) fn module_of(file: &str) -> String {
    let Some(pos) = file.find("src/") else { return String::new() };
    let rel = &file[pos + 4..];
    let rel = rel.strip_suffix(".rs").unwrap_or(rel);
    let mut parts: Vec<&str> = rel.split('/').collect();
    if parts.last() == Some(&"mod") {
        parts.pop();
    }
    if parts.len() == 1 && matches!(parts.first(), Some(&"lib") | Some(&"main")) {
        parts.pop();
    }
    parts.join("::")
}

/// Extract the item model of one non-test file from its stripped tokens.
#[must_use]
pub fn extract(krate: &str, file: &str, tokens: &[Spanned]) -> FileItems {
    // `.read()`/`.write()` are treated as lock acquisitions only in files
    // that mention RwLock at all — the names are far too common otherwise
    // (`io::Read::read`, wire writers).
    let has_rwlock = tokens.iter().any(|t| matches!(&t.tok, Tok::Ident(s) if s == "RwLock"));
    let mut p = Parser {
        toks: tokens,
        krate: krate.to_string(),
        file: file.to_string(),
        has_rwlock,
        out: FileItems::default(),
    };
    p.parse_scope(0, &module_of(file), None);
    p.out
}

struct Parser<'a> {
    toks: &'a [Spanned],
    krate: String,
    file: String,
    has_rwlock: bool,
    out: FileItems,
}

impl Parser<'_> {
    fn ident(&self, i: usize) -> Option<&str> {
        match self.toks.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn punct(&self, i: usize) -> Option<char> {
        match self.toks.get(i).map(|t| &t.tok) {
            Some(Tok::Punct(c)) => Some(*c),
            _ => None,
        }
    }

    fn line(&self, i: usize) -> usize {
        self.toks.get(i).map_or(0, |t| t.line)
    }

    /// Skip a balanced `open`…`close` pair starting at `i` (which must sit
    /// on `open`); returns the index just past the matching `close`.
    fn skip_balanced(&self, i: usize, open: char, close: char) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < self.toks.len() {
            match self.punct(j) {
                Some(c) if c == open => depth += 1,
                Some(c) if c == close => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Skip a generics list starting at `i` (on `<`); `->` arrows inside do
    /// not close the list. Returns the index just past the matching `>`.
    fn skip_generics(&self, i: usize) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < self.toks.len() {
            match self.punct(j) {
                Some('<') => depth += 1,
                Some('>') if self.punct(j.wrapping_sub(1)) == Some('-') => {} // part of `->`
                Some('>') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Skip an attribute starting at `i` (on `#`); handles `#[..]` and
    /// `#![..]`. Returns the index just past the closing `]`.
    fn skip_attr(&self, i: usize) -> usize {
        let mut j = i + 1;
        if self.punct(j) == Some('!') {
            j += 1;
        }
        if self.punct(j) == Some('[') {
            return self.skip_balanced(j, '[', ']');
        }
        j
    }

    /// Parse items until the scope's closing `}` (or end of stream).
    /// Returns the index just past the `}`.
    fn parse_scope(&mut self, mut i: usize, module: &str, impl_type: Option<&str>) -> usize {
        let mut is_pub = false;
        while i < self.toks.len() {
            match &self.toks.get(i).map(|t| t.tok.clone()) {
                Some(Tok::Punct('#')) => {
                    i = self.skip_attr(i);
                    continue;
                }
                Some(Tok::Punct('}')) => return i + 1,
                Some(Tok::Punct('{')) => {
                    i = self.skip_balanced(i, '{', '}');
                    is_pub = false;
                    continue;
                }
                Some(Tok::Punct(_)) | None => {
                    i += 1;
                    continue;
                }
                Some(Tok::Ident(id)) => match id.as_str() {
                    "pub" => {
                        if self.punct(i + 1) == Some('(') {
                            // Restricted visibility: not a workspace-pub item.
                            i = self.skip_balanced(i + 1, '(', ')');
                            is_pub = false;
                        } else {
                            is_pub = true;
                            i += 1;
                        }
                    }
                    "use" => {
                        i = self.parse_use(i + 1);
                        is_pub = false;
                    }
                    "mod" => {
                        let name = self.ident(i + 1).unwrap_or("").to_string();
                        i += 2;
                        if self.punct(i) == Some('{') {
                            let inner =
                                if module.is_empty() { name } else { format!("{module}::{name}") };
                            i = self.parse_scope(i + 1, &inner, None);
                        } else if self.punct(i) == Some(';') {
                            i += 1;
                        }
                        is_pub = false;
                    }
                    "impl" => {
                        i = self.parse_impl(i + 1, module);
                        is_pub = false;
                    }
                    "trait" => {
                        let name = self.ident(i + 1).unwrap_or("").to_string();
                        if is_pub && !name.is_empty() {
                            self.push_pub("trait", &name, self.line(i));
                        }
                        let mut j = i + 2;
                        while j < self.toks.len() && self.punct(j) != Some('{') {
                            if self.punct(j) == Some('<') {
                                j = self.skip_generics(j);
                            } else {
                                j += 1;
                            }
                        }
                        i = self.parse_scope(j + 1, module, Some(&name));
                        is_pub = false;
                    }
                    "fn" => {
                        i = self.parse_fn(i, module, impl_type, is_pub);
                        is_pub = false;
                    }
                    "struct" | "enum" | "union" => {
                        let kind = if id == "enum" { "enum" } else { "struct" };
                        let name = self.ident(i + 1).unwrap_or("").to_string();
                        if is_pub && !name.is_empty() {
                            self.push_pub(kind, &name, self.line(i));
                        }
                        let end = self.skip_type_body(i + 2);
                        if is_pub {
                            self.collect_sig_idents(i + 2, end);
                        }
                        i = end;
                        is_pub = false;
                    }
                    "type" => {
                        let name = self.ident(i + 1).unwrap_or("").to_string();
                        if is_pub && !name.is_empty() && impl_type.is_none() {
                            self.push_pub("type", &name, self.line(i));
                        }
                        let end = self.skip_to_semi(i + 2);
                        if is_pub && impl_type.is_none() {
                            self.collect_sig_idents(i + 2, end);
                        }
                        i = end;
                        is_pub = false;
                    }
                    "const" | "static" => {
                        if self.ident(i + 1) == Some("fn") {
                            i = self.parse_fn(i + 1, module, impl_type, is_pub);
                            is_pub = false;
                            continue;
                        }
                        let mut j = i + 1;
                        if self.ident(j) == Some("mut") {
                            j += 1;
                        }
                        let name = self.ident(j).unwrap_or("").to_string();
                        let kind = if id == "const" { "const" } else { "static" };
                        // `const` inside an impl/trait is an associated item,
                        // not an independent API surface.
                        if is_pub && !name.is_empty() && name != "_" && impl_type.is_none() {
                            self.push_pub(kind, &name, self.line(i));
                        }
                        let end = self.skip_to_semi(j + 1);
                        if id == "static" && !name.is_empty() && impl_type.is_none() {
                            let interior_mut = (j + 1..end).any(|k| {
                                self.ident(k).is_some_and(|t| {
                                    INTERIOR_MUT_TYPES.contains(&t) || t.starts_with("Atomic")
                                })
                            });
                            self.out.statics.push(StaticItem {
                                name,
                                line: self.line(i),
                                interior_mut,
                            });
                        }
                        i = end;
                        is_pub = false;
                    }
                    "macro_rules" => {
                        let mut j = i + 1; // `!`
                        while j < self.toks.len()
                            && !matches!(self.punct(j), Some('{') | Some('(') | Some('['))
                        {
                            j += 1;
                        }
                        i = match self.punct(j) {
                            Some('{') => self.skip_balanced(j, '{', '}'),
                            Some('(') => self.skip_balanced(j, '(', ')'),
                            Some('[') => self.skip_balanced(j, '[', ']'),
                            _ => j,
                        };
                        is_pub = false;
                    }
                    _ => i += 1, // modifiers (`unsafe`, `async`, `extern`, …) and stray idents
                },
            }
        }
        i
    }

    fn push_pub(&mut self, kind: &'static str, name: &str, line: usize) {
        self.out.pub_items.push(PubItem {
            kind,
            name: name.to_string(),
            file: self.file.clone(),
            line,
        });
    }

    /// Record every identifier in `[start, end)` as part of a pub
    /// declaration surface (signature or type body).
    fn collect_sig_idents(&mut self, start: usize, end: usize) {
        for t in &self.toks[start.min(self.toks.len())..end.min(self.toks.len())] {
            if let Tok::Ident(id) = &t.tok {
                self.out.sig_idents.insert(id.clone());
            }
        }
    }

    /// Skip a struct/enum/union body starting just past the name: generics,
    /// optional where-clause, then `{..}`, `(..);`, or `;`.
    fn skip_type_body(&self, mut i: usize) -> usize {
        while i < self.toks.len() {
            match self.punct(i) {
                Some('<') => i = self.skip_generics(i),
                Some('{') => return self.skip_balanced(i, '{', '}'),
                Some('(') => {
                    i = self.skip_balanced(i, '(', ')');
                    // tuple struct: a `;` (possibly after a where-clause) ends it
                }
                Some(';') => return i + 1,
                _ => i += 1,
            }
        }
        i
    }

    /// Skip to the `;` ending a const/static/type item, stepping over any
    /// balanced braces, brackets, or parens in the initialiser.
    fn skip_to_semi(&self, mut i: usize) -> usize {
        while i < self.toks.len() {
            match self.punct(i) {
                Some(';') => return i + 1,
                Some('{') => i = self.skip_balanced(i, '{', '}'),
                Some('[') => i = self.skip_balanced(i, '[', ']'),
                Some('(') => i = self.skip_balanced(i, '(', ')'),
                Some('<') => i = self.skip_generics(i),
                _ => i += 1,
            }
        }
        i
    }

    /// Parse a `use` declaration starting just past the `use` keyword,
    /// recording leaf-name → full-path entries. Returns the index past `;`.
    fn parse_use(&mut self, i: usize) -> usize {
        let end = self.skip_to_semi(i);
        let mut prefix: Vec<String> = Vec::new();
        self.parse_use_tree(i, end.saturating_sub(1), &mut prefix);
        end
    }

    /// Parse one use-tree between `i` and `end` (exclusive) with the given
    /// path prefix. Handles `a::b`, groups `{..}`, renames `as x`, and `*`.
    fn parse_use_tree(&mut self, mut i: usize, end: usize, prefix: &mut Vec<String>) {
        let depth_at_entry = prefix.len();
        while i < end {
            match &self.toks.get(i).map(|t| t.tok.clone()) {
                Some(Tok::Ident(id)) if id == "as" => {
                    // rename: map the alias to the path collected so far
                    if let Some(alias) = self.ident(i + 1) {
                        self.out.uses.insert(alias.to_string(), prefix.clone());
                    }
                    i += 2;
                    prefix.truncate(depth_at_entry);
                }
                Some(Tok::Ident(id)) => {
                    prefix.push(id.clone());
                    i += 1;
                    // leaf if not followed by `::`
                    let sep = self.punct(i) == Some(':') && self.punct(i + 1) == Some(':');
                    if sep {
                        i += 2;
                        if self.punct(i) == Some('{') {
                            let group_end = self.skip_balanced(i, '{', '}');
                            self.parse_use_tree(i + 1, group_end - 1, prefix);
                            i = group_end;
                            prefix.truncate(depth_at_entry);
                        }
                    } else {
                        // `a::b as c` is handled by the `as` arm; otherwise
                        // this ident is the imported name.
                        if self.ident(i) != Some("as") {
                            if let Some(leaf) = prefix.last().cloned() {
                                self.out.uses.insert(leaf, prefix.clone());
                            }
                            prefix.truncate(depth_at_entry);
                        }
                    }
                }
                Some(Tok::Punct(',')) => {
                    prefix.truncate(depth_at_entry);
                    i += 1;
                }
                Some(Tok::Punct('*')) => i += 1, // glob: nothing to record
                _ => i += 1,
            }
        }
        prefix.truncate(depth_at_entry);
    }

    /// Parse an `impl` header starting just past the keyword and recurse
    /// into its body with the implemented type's name.
    fn parse_impl(&mut self, mut i: usize, module: &str) -> usize {
        if self.punct(i) == Some('<') {
            i = self.skip_generics(i);
        }
        let mut last_ident = String::new();
        while i < self.toks.len() {
            match &self.toks.get(i).map(|t| t.tok.clone()) {
                Some(Tok::Ident(id)) if id == "for" => {
                    last_ident.clear(); // the type comes after `for`
                    i += 1;
                }
                Some(Tok::Ident(id)) if id == "where" => {
                    // skip the where-clause up to the body
                    while i < self.toks.len() && self.punct(i) != Some('{') {
                        if self.punct(i) == Some('<') {
                            i = self.skip_generics(i);
                        } else {
                            i += 1;
                        }
                    }
                }
                Some(Tok::Ident(id)) => {
                    last_ident = id.clone();
                    i += 1;
                }
                Some(Tok::Punct('<')) => i = self.skip_generics(i),
                Some(Tok::Punct('(')) => i = self.skip_balanced(i, '(', ')'),
                Some(Tok::Punct('{')) => {
                    return self.parse_scope(i + 1, module, Some(&last_ident));
                }
                Some(Tok::Punct(';')) => return i + 1, // `impl Trait for T;` (never in practice)
                _ => i += 1,
            }
        }
        i
    }

    /// Parse a `fn` item starting at the `fn` keyword. Returns the index
    /// past the body's `}` (or past `;` for bodyless trait declarations).
    fn parse_fn(&mut self, i: usize, module: &str, impl_type: Option<&str>, is_pub: bool) -> usize {
        let line = self.line(i);
        let Some(name) = self.ident(i + 1).map(str::to_string) else { return i + 1 };
        // Scan the signature for the body `{` or a `;`; `;` inside array
        // types (`[u8; 4]`) is shielded by bracket-depth tracking.
        let mut j = i + 2;
        let mut bracket_depth = 0usize;
        let body_start = loop {
            if j >= self.toks.len() {
                break None;
            }
            match self.punct(j) {
                Some('<') => {
                    j = self.skip_generics(j);
                    continue;
                }
                Some('[') => bracket_depth += 1,
                Some(']') => bracket_depth = bracket_depth.saturating_sub(1),
                Some('{') if bracket_depth == 0 => break Some(j),
                Some(';') if bracket_depth == 0 => break None,
                _ => {}
            }
            j += 1;
        };
        let mut item = FnItem {
            krate: self.krate.clone(),
            module: module.to_string(),
            impl_type: impl_type.map(str::to_string),
            name: name.clone(),
            file: self.file.clone(),
            line,
            is_pub,
            calls: Vec::new(),
            panics: Vec::new(),
            locks: Vec::new(),
            casts: Vec::new(),
            taints: Vec::new(),
            mut_writes: Vec::new(),
            allocs: Vec::new(),
            ret: self.return_head(i + 2, body_start.unwrap_or(j)),
        };
        if is_pub && name != "main" {
            self.push_pub("fn", &name, line);
            self.collect_sig_idents(i + 2, body_start.unwrap_or(j));
        }
        let Some(start) = body_start else {
            self.out.fns.push(item);
            return j + 1;
        };
        let end = self.skip_balanced(start, '{', '}');
        let env = self.type_env(i + 2, start, end.saturating_sub(1));
        let hashes = self.hash_env(i + 2, end.saturating_sub(1));
        let containers = self.container_env(i + 2, end.saturating_sub(1));
        self.analyze_body(start + 1, end.saturating_sub(1), &mut item, &env, &hashes, &containers);
        self.out.fns.push(item);
        end
    }

    /// Head identifier of the declared return type in the signature span
    /// `[sig_start, sig_end)`: the first identifier after the `->` arrow
    /// following the parameter list (`-> Vec<u8>` → `Vec`). Borrowed
    /// returns (`-> &str`) and missing arrows resolve to `None`. Arrows
    /// inside the parameter list (closure-typed parameters) are shielded
    /// by skipping the balanced parens first.
    fn return_head(&self, sig_start: usize, sig_end: usize) -> Option<String> {
        let mut r = sig_start;
        while r < sig_end {
            match self.punct(r) {
                Some('<') => r = self.skip_generics(r),
                Some('(') => {
                    r = self.skip_balanced(r, '(', ')');
                    break;
                }
                _ => r += 1,
            }
        }
        while r < sig_end {
            if self.punct(r) == Some('-') && self.punct(r + 1) == Some('>') {
                if self.punct(r + 2) == Some('&') {
                    return None; // borrowed return: not owned
                }
                return self.ident(r + 2).map(str::to_string);
            }
            r += 1;
        }
        None
    }

    /// Capacity-hint state of the function-local container bindings:
    /// `let [mut] x[: Vec<T>] = Vec::new()` / `String::new()` / `vec![..]` maps `x`
    /// to `false` (unhinted), `with_capacity` to `true`, and a later
    /// `x.reserve(..)` / `x.reserve_exact(..)` upgrades the binding to
    /// hinted. Fields and parameters are absent by construction — their
    /// capacity discipline belongs to the owner, so growth through them
    /// classifies as data-proportional, never unbounded.
    fn container_env(&self, sig_start: usize, body_end: usize) -> BTreeMap<String, bool> {
        let mut out: BTreeMap<String, bool> = BTreeMap::new();
        for k in sig_start..body_end {
            let Some(x) = self.ident(k) else { continue };
            if matches!(x, "reserve" | "reserve_exact")
                && self.punct(k.wrapping_sub(1)) == Some('.')
                && self.punct(k + 1) == Some('(')
            {
                if let Some(base) = self.ident(k.wrapping_sub(2)) {
                    out.insert(base.to_string(), true);
                }
                continue;
            }
            if self.punct(k.wrapping_sub(1)) == Some(':') {
                continue; // `a::b` — path segment, not a binding
            }
            // Initialiser start: `x = rhs`, or `x: Vec<u32> = rhs` with the
            // type ascription (a single `:`, never the `::` of a path)
            // skipped to its `=` under angle-bracket tracking.
            let r = if self.punct(k + 1) == Some('=') {
                k + 2
            } else if self.punct(k + 1) == Some(':') && self.punct(k + 2) != Some(':') {
                match self.skip_type_ascription(k + 2, body_end) {
                    Some(eq) => eq + 1,
                    None => continue,
                }
            } else {
                continue;
            };
            // `x = vec![..]` — zero capacity hint unless upgraded later.
            if self.ident(r) == Some("vec") && self.punct(r + 1) == Some('!') {
                out.insert(x.to_string(), false);
                continue;
            }
            // `x = <Container>::{new, with_capacity, default}(..)`.
            let Some(container) = self.ident(r) else { continue };
            if !HINTABLE_CONTAINERS.contains(&container)
                || self.punct(r + 1) != Some(':')
                || self.punct(r + 2) != Some(':')
            {
                continue;
            }
            match self.ident(r + 3) {
                Some("new" | "default") => {
                    out.insert(x.to_string(), false);
                }
                Some("with_capacity") => {
                    out.insert(x.to_string(), true);
                }
                _ => {}
            }
        }
        out
    }

    /// From the first token of a `let` type ascription, the index of the
    /// `=` that ends it — `<`/`>` tracked so generic arguments' commas and
    /// nested paths don't confuse the scan. `None` when the binding has no
    /// initialiser (`;` at depth zero) or the annotation is implausibly
    /// long for a container binding.
    fn skip_type_ascription(&self, from: usize, body_end: usize) -> Option<usize> {
        let mut angle = 0i32;
        for j in from..body_end.min(from + 24) {
            match self.punct(j) {
                Some('<') => angle += 1,
                Some('>') => angle -= 1,
                Some('=') if angle == 0 => return Some(j),
                Some(';') | Some('{') if angle == 0 => return None,
                _ => {}
            }
        }
        None
    }

    /// Identifiers bound to a `HashMap`/`HashSet` within this function:
    /// parameter or `let` annotations naming the type, plus
    /// `let x = HashMap::…` initialisers. Function-local only — hash-typed
    /// *fields* are covered by the file-level `hash-iter` token rule.
    fn hash_env(&self, sig_start: usize, body_end: usize) -> std::collections::BTreeSet<String> {
        let mut out = std::collections::BTreeSet::new();
        let is_hash = |id: Option<&str>| matches!(id, Some("HashMap") | Some("HashSet"));
        for k in sig_start..body_end {
            let Some(x) = self.ident(k) else { continue };
            if self.punct(k.wrapping_sub(1)) == Some(':') {
                continue; // `a::b` — path segment, not a binding
            }
            // `x: [&mut] HashMap<..>` (parameter or let annotation).
            if self.punct(k + 1) == Some(':') && self.punct(k + 2) != Some(':') {
                let mut t = k + 2;
                while matches!(self.punct(t), Some('&')) || self.ident(t) == Some("mut") {
                    t += 1;
                }
                if is_hash(self.ident(t)) {
                    out.insert(x.to_string());
                }
            }
            // `let [mut] x = HashMap::…` initialiser.
            if self.punct(k + 1) == Some('=')
                && is_hash(self.ident(k + 2))
                && self.punct(k + 3) == Some(':')
            {
                out.insert(x.to_string());
            }
        }
        out
    }

    /// Build the intra-procedural type environment: parameter annotations
    /// from the signature span plus `let x: T = …` annotations in the body,
    /// restricted to primitive numeric/char/bool types. Shadowing keeps the
    /// last annotation — good enough for a lint.
    fn type_env(
        &self,
        sig_start: usize,
        body_start: usize,
        body_end: usize,
    ) -> BTreeMap<String, String> {
        let mut env = BTreeMap::new();
        let primitive = |ty: Option<&str>| {
            ty.filter(|t| NUMERIC_TARGETS.contains(t) || *t == "char" || *t == "bool")
                .map(str::to_string)
        };
        // `name: Type` pairs in the signature (a `::` path separator is not
        // an annotation; references and `mut` are skipped).
        for k in sig_start..body_start {
            let Some(x) = self.ident(k) else { continue };
            if self.punct(k + 1) != Some(':') || self.punct(k + 2) == Some(':') {
                continue;
            }
            if self.punct(k.wrapping_sub(1)) == Some(':') {
                continue; // `a::b` — `b` is a path segment, not a binding
            }
            let mut t = k + 2;
            while matches!(self.punct(t), Some('&')) || self.ident(t) == Some("mut") {
                t += 1;
            }
            if let Some(ty) = primitive(self.ident(t)) {
                env.insert(x.to_string(), ty);
            }
        }
        // `let [mut] x: T = …` in the body.
        for k in body_start..body_end {
            if self.ident(k) != Some("let") {
                continue;
            }
            let mut n = k + 1;
            if self.ident(n) == Some("mut") {
                n += 1;
            }
            let Some(x) = self.ident(n) else { continue };
            if self.punct(n + 1) != Some(':') || self.punct(n + 2) == Some(':') {
                continue;
            }
            let mut t = n + 2;
            while matches!(self.punct(t), Some('&')) || self.ident(t) == Some("mut") {
                t += 1;
            }
            if let Some(ty) = primitive(self.ident(t)) {
                env.insert(x.to_string(), ty);
            }
        }
        env
    }

    /// Walk a function body `[start, end)` collecting call, panic, lock,
    /// cast, and allocation sites. `env` is the function's
    /// intra-procedural type environment (see [`Parser::type_env`]);
    /// `containers` the capacity-hint state of its local container
    /// bindings (see [`Parser::container_env`]).
    ///
    /// Loop depth is tracked through `for`/`while`/`loop` keywords: the
    /// next `{` after one opens a loop body, and any site inside an open
    /// loop body is loop-carried. Closure bodies passed to iterator
    /// adapters are not loops to this model — a missed `for_each` growth
    /// classifies bounded (a false negative), never unbounded.
    fn analyze_body(
        &self,
        start: usize,
        end: usize,
        item: &mut FnItem,
        env: &BTreeMap<String, String>,
        hashes: &std::collections::BTreeSet<String>,
        containers: &BTreeMap<String, bool>,
    ) {
        let mut depth = 0usize; // brace depth relative to the body
        let mut loop_stack: Vec<usize> = Vec::new(); // depths of open loop bodies
        let mut pending_loop = false; // saw for/while/loop, body `{` not yet open
        let mut i = start;
        while i < end {
            match &self.toks.get(i).map(|t| t.tok.clone()) {
                Some(Tok::Punct('{')) => {
                    depth += 1;
                    if pending_loop {
                        loop_stack.push(depth);
                        pending_loop = false;
                    }
                }
                Some(Tok::Punct('}')) => {
                    if loop_stack.last() == Some(&depth) {
                        loop_stack.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                Some(Tok::Punct(op @ ('+' | '-' | '*' | '/' | '%')))
                    if self.punct(i + 1) == Some('=') =>
                {
                    self.compound_assign(i, *op, start, item);
                }
                Some(Tok::Punct('[')) => {
                    let prev_ident_ok = self
                        .ident(i.wrapping_sub(1))
                        .is_some_and(|id| !NOT_INDEXABLE.contains(&id));
                    let prev_punct_ok =
                        matches!(self.punct(i.wrapping_sub(1)), Some(')') | Some(']') | Some('?'));
                    if i > start && (prev_ident_ok || prev_punct_ok) {
                        item.panics
                            .push(PanicSite { line: self.line(i), what: "unguarded `[..]` index" });
                    }
                }
                Some(Tok::Ident(id)) => {
                    if matches!(id.as_str(), "for" | "while" | "loop") {
                        pending_loop = true;
                    }
                    if let Some((_, what)) = PANIC_MACROS.iter().find(|(m, _)| m == id) {
                        if self.punct(i + 1) == Some('!') {
                            item.panics.push(PanicSite { line: self.line(i), what });
                            i += 2;
                            continue;
                        }
                    }
                    if self.punct(i + 1) == Some('!') && matches!(id.as_str(), "format" | "vec") {
                        let (what, class) = if id == "format" {
                            ("format!", AllocClass::DataProportional)
                        } else {
                            ("vec![]", AllocClass::Bounded)
                        };
                        item.allocs.push(AllocSite {
                            line: self.line(i),
                            what,
                            class,
                            receiver: Vec::new(),
                        });
                    }
                    if id == "as" && i > start {
                        if let Some(to) = self.ident(i + 1).filter(|t| NUMERIC_TARGETS.contains(t))
                        {
                            let (from, checked) = self.cast_source(i, start, env);
                            item.casts.push(CastSite {
                                line: self.line(i),
                                from,
                                to: to.to_string(),
                                checked,
                            });
                        }
                    }
                    self.taint_site(i, start, hashes, item);
                    if self.is_call_head(i) {
                        let is_method = self.punct(i.wrapping_sub(1)) == Some('.');
                        if is_method
                            && (MUT_METHODS.contains(&id.as_str())
                                || NONCOMMUTATIVE_ATOMICS.contains(&id.as_str()))
                        {
                            let receiver = self.receiver_chain(i - 1, start.saturating_sub(1));
                            let via = match receiver.as_slice() {
                                [base] if !base.ends_with("()") => {
                                    self.resolve_binding(base, start, i)
                                }
                                _ => None,
                            };
                            item.mut_writes.push(MutWriteSite {
                                line: self.line(i),
                                receiver,
                                op: id.clone(),
                                via,
                            });
                        }
                        if is_method {
                            self.alloc_site(i, id, start, !loop_stack.is_empty(), containers, item);
                        }
                        let arg0 = if self.punct(i + 1) == Some('(')
                            && matches!(self.punct(i + 3), Some(',') | Some(')'))
                        {
                            self.ident(i + 2).map(str::to_string)
                        } else {
                            None
                        };
                        if is_method {
                            if id == "unwrap" || id == "expect" {
                                let what = if id == "unwrap" { ".unwrap()" } else { ".expect()" };
                                item.panics.push(PanicSite { line: self.line(i), what });
                            }
                            let is_lock = id == "lock"
                                || (self.has_rwlock && matches!(id.as_str(), "read" | "write"));
                            if is_lock {
                                let (region, bound) = self.lock_region(i, start, end, depth);
                                let key = self.lock_key(i, start, item);
                                item.locks.push(LockSite {
                                    line: self.line(i),
                                    region,
                                    key,
                                    bound,
                                });
                            }
                            item.calls.push(CallSite {
                                target: CallTarget::Method(id.clone()),
                                line: self.line(i),
                                tok: i,
                                arg0,
                            });
                        } else if !NON_CALL_IDENTS.contains(&id.as_str())
                            && self.ident(i.wrapping_sub(1)) != Some("fn")
                        {
                            let path = self.collect_path_backward(i);
                            if let [.., container, ctor] = path.as_slice() {
                                let hit = match (container.as_str(), ctor.as_str()) {
                                    (_, "with_capacity") => {
                                        Some(("with_capacity", AllocClass::Bounded))
                                    }
                                    ("Vec", "new") => Some(("Vec::new", AllocClass::Bounded)),
                                    ("String", "new") => Some(("String::new", AllocClass::Bounded)),
                                    ("VecDeque", "new") => {
                                        Some(("VecDeque::new", AllocClass::Bounded))
                                    }
                                    ("Box", "new") => Some(("Box::new", AllocClass::Bounded)),
                                    ("String", "from") => {
                                        Some(("String::from", AllocClass::DataProportional))
                                    }
                                    _ => None,
                                };
                                if let Some((what, class)) = hit {
                                    item.allocs.push(AllocSite {
                                        line: self.line(i),
                                        what,
                                        class,
                                        receiver: Vec::new(),
                                    });
                                }
                            }
                            item.calls.push(CallSite {
                                target: CallTarget::Path(path),
                                line: self.line(i),
                                tok: i,
                                arg0,
                            });
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    /// Record a nondeterminism source when the identifier at `i` begins
    /// one: hash iteration, `Instant`/`SystemTime::now`, thread identity,
    /// a seed-free RNG constructor, or a pointer-address observation.
    /// `start` is the first body token (the receiver-chain floor is just
    /// before it). Format-string `{:p}` pointer printing is invisible to
    /// the stripped token stream; `as_ptr`/`addr_of` act as its proxy.
    fn taint_site(
        &self,
        i: usize,
        start: usize,
        hashes: &std::collections::BTreeSet<String>,
        item: &mut FnItem,
    ) {
        let Some(id) = self.ident(i) else { return };
        let qualifies = |b: &str| {
            self.punct(i + 1) == Some(':')
                && self.punct(i + 2) == Some(':')
                && self.ident(i + 3) == Some(b)
        };
        let mut hit = |line: usize, what: &'static str| item.taints.push(TaintSite { line, what });
        match id {
            "Instant" if qualifies("now") => hit(self.line(i), "`Instant::now()`"),
            "SystemTime" if qualifies("now") => hit(self.line(i), "`SystemTime::now()`"),
            "thread" if qualifies("current") => hit(self.line(i), "`thread::current()`"),
            "OsRng" => hit(self.line(i), "seed-free RNG (`OsRng`)"),
            _ if RNG_SOURCES.contains(&id) && self.is_call_head(i) => {
                hit(self.line(i), "seed-free RNG constructor");
            }
            "random"
                if self.is_call_head(i)
                    && self.punct(i.wrapping_sub(1)) == Some(':')
                    && self.punct(i.wrapping_sub(2)) == Some(':')
                    && self.ident(i.wrapping_sub(3)) == Some("rand") =>
            {
                hit(self.line(i), "seed-free RNG constructor");
            }
            "as_ptr" | "as_mut_ptr"
                if self.punct(i.wrapping_sub(1)) == Some('.') && self.is_call_head(i) =>
            {
                hit(self.line(i), "pointer address (`as_ptr`)");
            }
            "addr_of" | "addr_of_mut" if self.is_call_head(i) => {
                hit(self.line(i), "pointer address (`addr_of`)");
            }
            // `for x in h { … }` over a hash-bound identifier.
            "in" => {
                let mut j = i + 1;
                while matches!(self.punct(j), Some('&')) || self.ident(j) == Some("mut") {
                    j += 1;
                }
                if self.ident(j).is_some_and(|x| hashes.contains(x))
                    && self.punct(j + 1) == Some('{')
                {
                    hit(self.line(i), "`HashMap`/`HashSet` iteration");
                }
            }
            // `h.iter()`-style calls on a hash-bound receiver.
            _ if ITER_METHODS.contains(&id)
                && self.punct(i.wrapping_sub(1)) == Some('.')
                && self.is_call_head(i) =>
            {
                let chain = self.receiver_chain(i - 1, start.saturating_sub(1));
                if chain.iter().any(|s| hashes.contains(s.trim_end_matches("()"))) {
                    hit(self.line(i), "`HashMap`/`HashSet` iteration");
                }
            }
            _ => {}
        }
    }

    /// Record the compound assignment whose operator char sits at `i`
    /// (`self.total += x`, `acc[k] *= y`) as a mutating write.
    fn compound_assign(&self, i: usize, op: char, start: usize, item: &mut FnItem) {
        let floor = start.saturating_sub(1);
        let k = i.wrapping_sub(1);
        // End of the left-hand side: a bare/chained identifier, or an
        // index expression whose base is one.
        let lhs_end = if self.punct(k) == Some(']') {
            let mut depth = 0usize;
            let mut j = k;
            loop {
                match self.punct(j) {
                    Some(']') => depth += 1,
                    Some('[') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if j <= floor {
                    return;
                }
                j -= 1;
            }
            j.wrapping_sub(1)
        } else {
            k
        };
        let Some(base) = self.ident(lhs_end) else { return };
        let mut receiver = if lhs_end > floor && self.punct(lhs_end.wrapping_sub(1)) == Some('.') {
            self.receiver_chain(lhs_end - 1, floor)
        } else {
            Vec::new()
        };
        receiver.push(base.to_string());
        let via = match receiver.as_slice() {
            [b] if !b.ends_with("()") => self.resolve_binding(b, start, i),
            _ => None,
        };
        item.mut_writes.push(MutWriteSite {
            line: self.line(i),
            receiver,
            op: format!("{op}="),
            via,
        });
    }

    /// Record the allocation site begun by the method-call identifier at
    /// `i`, if it is one: container growth (classified by loop depth and
    /// the receiver's capacity-hint state), a clone-family copy (receiver
    /// chain kept for borrow-not-own), or a `collect`.
    fn alloc_site(
        &self,
        i: usize,
        id: &str,
        start: usize,
        in_loop: bool,
        containers: &BTreeMap<String, bool>,
        item: &mut FnItem,
    ) {
        if let Some(what) = GROWTH_METHODS.iter().copied().find(|m| *m == id) {
            let receiver = self.receiver_chain(i - 1, start.saturating_sub(1));
            let class = match receiver.as_slice() {
                // A known local binding: unhinted growth inside a loop is
                // the unbounded class; a capacity hint bounds it.
                [base] if !base.ends_with("()") => match (containers.get(base.as_str()), in_loop) {
                    (Some(false), true) => AllocClass::Unbounded,
                    (None, true) => AllocClass::DataProportional,
                    _ => AllocClass::Bounded,
                },
                // Field/parameter/chained receivers: the capacity
                // discipline is the owner's, so loop growth scales with
                // data but is never charged as unbounded here.
                _ if in_loop => AllocClass::DataProportional,
                _ => AllocClass::Bounded,
            };
            item.allocs.push(AllocSite { line: self.line(i), what, class, receiver });
        } else if let Some((_, what)) = CLONE_METHODS.iter().find(|(m, _)| *m == id) {
            let receiver = self.receiver_chain(i - 1, start.saturating_sub(1));
            item.allocs.push(AllocSite {
                line: self.line(i),
                what,
                class: AllocClass::DataProportional,
                receiver,
            });
        } else if id == "collect" {
            item.allocs.push(AllocSite {
                line: self.line(i),
                what: "collect()",
                class: AllocClass::DataProportional,
                receiver: Vec::new(),
            });
        }
    }

    /// Is the identifier at `i` the head of a call — followed by `(`,
    /// optionally through a turbofish `::<..>`?
    fn is_call_head(&self, i: usize) -> bool {
        if self.punct(i + 1) == Some('(') {
            return true;
        }
        if self.punct(i + 1) == Some(':')
            && self.punct(i + 2) == Some(':')
            && self.punct(i + 3) == Some('<')
        {
            let j = self.skip_generics(i + 3);
            return self.punct(j) == Some('(');
        }
        false
    }

    /// Collect the `::`-separated path ending at the identifier `i`,
    /// walking backwards (`snaps_core :: pedigree :: build` → three
    /// segments).
    fn collect_path_backward(&self, i: usize) -> Vec<String> {
        let mut segs = vec![self.ident(i).unwrap_or("").to_string()];
        let mut j = i;
        while j >= 3
            && self.punct(j - 1) == Some(':')
            && self.punct(j - 2) == Some(':')
            && self.ident(j - 3).is_some()
        {
            segs.insert(0, self.ident(j - 3).unwrap_or("").to_string());
            j -= 3;
        }
        segs
    }

    /// Compute the hold region of the `.lock()` whose name token is at `i`,
    /// plus the guard's binding name when it is let-bound.
    ///
    /// A let-bound guard is held to the end of the enclosing block (or an
    /// explicit `drop(<name>)`); a temporary guard to the end of the
    /// statement. `depth` is the brace depth of the lock site relative to
    /// the body.
    fn lock_region(
        &self,
        i: usize,
        body_start: usize,
        body_end: usize,
        depth: usize,
    ) -> ((usize, usize), Option<String>) {
        // Find the statement start: the nearest `;`, `{`, or `}` behind us.
        let mut s = i;
        while s > body_start {
            if matches!(self.punct(s - 1), Some(';') | Some('{') | Some('}')) {
                break;
            }
            s -= 1;
        }
        // Let-bound? Capture the bound name when it is a plain identifier
        // *and* the binding actually holds the guard: after `.lock(..)` the
        // chain may only continue through guard-preserving adapters
        // (`unwrap`/`expect`/`unwrap_or_else`, `?`) before the statement
        // ends. `let v = m.lock().get(k);` binds `.get`'s result — the
        // guard itself is a temporary dropped at the `;`.
        let mut bound: Option<Option<String>> = None; // Some(name?) when let-bound
        let mut k = s;
        while k < i {
            if self.ident(k) == Some("let") {
                let mut n = k + 1;
                if self.ident(n) == Some("mut") {
                    n += 1;
                }
                if self.ident(n).is_some() && self.punct(n + 1) == Some('=') {
                    let mut c = self.skip_balanced(i + 1, '(', ')');
                    loop {
                        if self.punct(c) == Some('?') {
                            c += 1;
                        } else if self.punct(c) == Some('.')
                            && matches!(
                                self.ident(c + 1),
                                Some("unwrap") | Some("expect") | Some("unwrap_or_else")
                            )
                            && self.punct(c + 2) == Some('(')
                        {
                            c = self.skip_balanced(c + 2, '(', ')');
                        } else {
                            break;
                        }
                    }
                    if matches!(self.punct(c), Some(';')) {
                        bound = Some(self.ident(n).map(str::to_string));
                    }
                }
                break;
            }
            k += 1;
        }
        let bound_name = bound.clone().flatten();
        let mut d = depth;
        let mut j = i;
        while j < body_end {
            match self.punct(j) {
                Some('{') => d += 1,
                Some('}') => {
                    if d == 0 {
                        return ((i, j), bound_name); // body ends
                    }
                    d -= 1;
                    if d < depth {
                        return ((i, j), bound_name); // enclosing block closes
                    }
                }
                Some(';') if bound.is_none() && d == depth && j > i => {
                    return ((i, j), bound_name); // temporary guard: statement ends
                }
                _ => {}
            }
            // `drop(<name>)` releases a named guard early.
            if let Some(Some(name)) = &bound {
                if self.ident(j) == Some("drop")
                    && self.punct(j + 1) == Some('(')
                    && self.ident(j + 2) == Some(name.as_str())
                    && self.punct(j + 3) == Some(')')
                {
                    return ((i, j), bound_name);
                }
            }
            j += 1;
        }
        ((i, body_end), bound_name)
    }

    /// Find the `(` matching the `)` at `i`, scanning backward but never
    /// past `floor`.
    fn matching_open_back(&self, i: usize, floor: usize) -> Option<usize> {
        let mut depth = 0usize;
        let mut j = i;
        loop {
            match self.punct(j) {
                Some(')') => depth += 1,
                Some('(') => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
            if j <= floor {
                return None;
            }
            j -= 1;
        }
    }

    /// Collect the `.`-separated receiver chain ending just before the `.`
    /// at `dot`, outermost-first: `self.inner.lock()` → `["self",
    /// "inner"]`. Call segments keep a `()` suffix: `self.shard(k).lock()`
    /// → `["self", "shard()"]`.
    fn receiver_chain(&self, dot: usize, floor: usize) -> Vec<String> {
        let mut segs: Vec<String> = Vec::new();
        let mut j = dot; // always on a '.'
        while j > floor {
            let k = j - 1; // token before the '.'
            if self.punct(k) == Some(')') {
                let Some(open) = self.matching_open_back(k, floor) else { break };
                if open <= floor {
                    break;
                }
                let Some(name) = self.ident(open - 1) else { break };
                segs.push(format!("{name}()"));
                if open >= 2 && open - 1 > floor && self.punct(open - 2) == Some('.') {
                    j = open - 2;
                    continue;
                }
            } else if let Some(name) = self.ident(k) {
                segs.push(name.to_string());
                if k > floor && self.punct(k - 1) == Some('.') {
                    j = k - 1;
                    continue;
                }
            }
            break;
        }
        segs.reverse();
        segs
    }

    /// Derive the stable lock key for the `.lock()` whose name token is at
    /// `i`: `Owner.field`, with `Owner` the enclosing impl type or the
    /// crate name. A single bare-ident receiver is resolved one binding
    /// backwards (`let Some(m) = self.shard(k)` … `m.lock()` →
    /// `SimCache.shard()`); an unresolvable receiver keeps its own name
    /// (closure parameters, in particular).
    fn lock_key(&self, i: usize, body_start: usize, item: &FnItem) -> String {
        let owner = item.impl_type.clone().unwrap_or_else(|| item.krate.clone());
        let floor = body_start.saturating_sub(1);
        let mut name = String::from("<expr>");
        if i >= 1 && self.punct(i - 1) == Some('.') {
            let segs = self.receiver_chain(i - 1, floor);
            match segs.as_slice() {
                [] => {}
                [base] => {
                    if base.ends_with("()") {
                        name.clone_from(base);
                    } else {
                        name = self
                            .resolve_binding(base, body_start, i)
                            .unwrap_or_else(|| base.clone());
                    }
                }
                [.., last] => name.clone_from(last),
            }
        }
        format!("{owner}.{name}")
    }

    /// Resolve a bare-ident lock receiver to the field or accessor it was
    /// bound from: the closest preceding `let [mut] [Some(/Ok(] x [)] =
    /// expr` or `for x in expr` before token `before`, taking the binding
    /// expression's last non-adapter segment. Returns `None` when no
    /// binding is found (e.g. closure parameters).
    fn resolve_binding(&self, x: &str, body_start: usize, before: usize) -> Option<String> {
        let mut found: Option<String> = None;
        let mut k = body_start;
        while k < before {
            if self.ident(k) == Some("for")
                && self.ident(k + 1) == Some(x)
                && self.ident(k + 2) == Some("in")
            {
                if let Some(n) = self.binding_expr_name(k + 3, before) {
                    found = Some(n);
                }
                k += 3;
                continue;
            }
            if self.ident(k) == Some("let") {
                // locate `x` within the pattern, skipping `mut`, a wrapping
                // `Some(`/`Ok(`, and references
                let mut n = k + 1;
                let limit = (k + 6).min(before);
                let mut hit: Option<usize> = None;
                while n < limit {
                    if self.ident(n) == Some(x) {
                        hit = Some(n);
                        break;
                    }
                    match self.ident(n) {
                        Some("mut" | "Some" | "Ok" | "ref") => n += 1,
                        None if matches!(self.punct(n), Some('(' | '&')) => n += 1,
                        _ => break,
                    }
                }
                if let Some(h) = hit {
                    let mut e = h + 1;
                    while self.punct(e) == Some(')') {
                        e += 1; // close the wrapping pattern
                    }
                    if self.punct(e) == Some('=') {
                        if let Some(nm) = self.binding_expr_name(e + 1, before) {
                            found = Some(nm);
                        }
                    }
                }
            }
            k += 1;
        }
        found
    }

    /// The last non-adapter segment of the field/method chain starting at
    /// `p` (`&self.shards` → `shards`; `self.shard(key)` → `shard()`;
    /// `self.inner.as_ref()?` → `inner`). `self` alone resolves to nothing.
    fn binding_expr_name(&self, mut p: usize, end: usize) -> Option<String> {
        while matches!(self.punct(p), Some('&' | '*')) || self.ident(p) == Some("mut") {
            p += 1;
        }
        let mut segs: Vec<String> = Vec::new();
        while p < end {
            let Some(id) = self.ident(p) else { break };
            let mut seg = id.to_string();
            p += 1;
            if self.punct(p) == Some('(') {
                p = self.skip_balanced(p, '(', ')');
                seg.push_str("()");
            }
            segs.push(seg);
            if self.punct(p) == Some('?') {
                p += 1;
            }
            if self.punct(p) == Some('.') {
                p += 1;
            } else {
                break;
            }
        }
        while segs.last().is_some_and(|s| CHAIN_ADAPTERS.contains(&s.trim_end_matches("()"))) {
            segs.pop();
        }
        segs.last().filter(|s| s.as_str() != "self").cloned()
    }

    /// Determine the source type of the `as` cast at `as_idx` (best
    /// effort) and whether its operand came through a checked-conversion
    /// helper. Walks backward over `?` and value adapters to the producing
    /// call or identifier.
    fn cast_source(
        &self,
        as_idx: usize,
        floor: usize,
        env: &BTreeMap<String, String>,
    ) -> (Option<String>, bool) {
        let mut j = as_idx - 1;
        loop {
            while j > floor && self.punct(j) == Some('?') {
                j -= 1;
            }
            if self.punct(j) == Some(')') {
                let Some(open) = self.matching_open_back(j, floor) else { return (None, false) };
                if open <= floor {
                    return (None, false);
                }
                let Some(name) = self.ident(open - 1) else {
                    return (None, false); // plain parenthesised expression
                };
                // `u32::from(x)` / `u32::try_from(x)` — the qualifier names
                // the produced type.
                let qual = (open >= 4
                    && self.punct(open - 2) == Some(':')
                    && self.punct(open - 3) == Some(':'))
                .then(|| self.ident(open - 4))
                .flatten()
                .filter(|q| NUMERIC_TARGETS.contains(q))
                .map(str::to_string);
                let table = || {
                    METHOD_RETURNS.iter().find(|(m, _)| *m == name).map(|(_, ty)| (*ty).to_string())
                };
                if is_checked_helper(name) {
                    return (qual.or_else(table), true);
                }
                if CHAIN_ADAPTERS.contains(&name)
                    && open >= 3
                    && open - 1 > floor
                    && self.punct(open - 2) == Some('.')
                {
                    j = open - 3; // step past `.adapter(…)` to its receiver
                    continue;
                }
                return (qual.or_else(table), false);
            }
            if let Some(x) = self.ident(j) {
                if j > floor && self.punct(j - 1) == Some('.') {
                    return (None, false); // field access: type unknown
                }
                return (env.get(x).cloned(), false);
            }
            return (None, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner;

    fn model(src: &str) -> FileItems {
        let scan = scanner::scan(src);
        let toks = scanner::strip_test_regions(scan.tokens);
        extract("core", "crates/core/src/x.rs", &toks)
    }

    #[test]
    fn module_paths() {
        assert_eq!(module_of("crates/serve/src/lib.rs"), "");
        assert_eq!(module_of("crates/serve/src/server.rs"), "server");
        assert_eq!(module_of("crates/serve/src/bin/snaps_serve.rs"), "bin::snaps_serve");
        assert_eq!(module_of("src/main.rs"), "");
        assert_eq!(module_of("crates/core/src/foo/mod.rs"), "foo");
        assert_eq!(module_of("crates/core/src/foo/bar.rs"), "foo::bar");
    }

    #[test]
    fn fn_and_calls_extracted() {
        let m = model(
            "pub fn outer(x: u8) -> u8 { helper(x); snaps_query::process::run(x); x.finish() }\n\
             fn helper(_x: u8) {}\n",
        );
        assert_eq!(m.fns.len(), 2);
        let outer = &m.fns[0];
        assert_eq!(outer.name, "outer");
        assert!(outer.is_pub);
        assert_eq!(outer.calls.len(), 3);
        assert_eq!(outer.calls[0].target, CallTarget::Path(vec!["helper".into()]));
        assert_eq!(
            outer.calls[1].target,
            CallTarget::Path(vec!["snaps_query".into(), "process".into(), "run".into()])
        );
        assert_eq!(outer.calls[2].target, CallTarget::Method("finish".into()));
    }

    #[test]
    fn impl_and_trait_methods_carry_type() {
        let m = model(
            "struct S;\nimpl S { pub fn a(&self) {} }\n\
             impl Default for S { fn default() -> Self { S } }\n\
             trait T { fn decl(&self); fn provided(&self) { self.decl() } }\n",
        );
        let names: Vec<(Option<&str>, &str)> =
            m.fns.iter().map(|f| (f.impl_type.as_deref(), f.name.as_str())).collect();
        assert_eq!(
            names,
            vec![
                (Some("S"), "a"),
                (Some("S"), "default"),
                (Some("T"), "decl"),
                (Some("T"), "provided"),
            ]
        );
    }

    #[test]
    fn panic_sites_found() {
        let m = model(
            "fn f(v: &[u8], i: usize) -> u8 { let x = v[i]; maybe().unwrap(); assert!(i > 0); x }\n",
        );
        let whats: Vec<&str> = m.fns[0].panics.iter().map(|p| p.what).collect();
        assert_eq!(whats, vec!["unguarded `[..]` index", ".unwrap()", "assert!"]);
    }

    #[test]
    fn guarded_get_is_not_a_panic_site() {
        let m = model("fn f(v: &[u8], i: usize) -> Option<u8> { v.get(i).copied() }\n");
        assert!(m.fns[0].panics.is_empty(), "{:?}", m.fns[0].panics);
        // but .get is still a call site (method fallback)
        assert!(m.fns[0].calls.iter().any(|c| c.target == CallTarget::Method("get".into())));
    }

    #[test]
    fn use_map_resolves_leaves_groups_and_renames() {
        let m = model(
            "use snaps_query::process::run;\nuse snaps_model::{EntityId, Gender};\n\
             use std::collections::BTreeMap as Map;\n",
        );
        assert_eq!(
            m.uses.get("run"),
            Some(&vec!["snaps_query".to_string(), "process".to_string(), "run".to_string()])
        );
        assert_eq!(
            m.uses.get("Gender"),
            Some(&vec!["snaps_model".to_string(), "Gender".to_string()])
        );
        assert_eq!(
            m.uses.get("Map"),
            Some(&vec!["std".to_string(), "collections".to_string(), "BTreeMap".to_string()])
        );
    }

    #[test]
    fn let_bound_lock_held_to_block_end() {
        let m = model(
            "fn f(&self) { { let mut g = self.m.lock(); g.push(1); } self.after(); }\n\
             struct X;\n",
        );
        let f = &m.fns[0];
        assert_eq!(f.locks.len(), 1);
        let (lo, hi) = f.locks[0].region;
        let push = f.calls.iter().find(|c| c.target == CallTarget::Method("push".into())).unwrap();
        let after =
            f.calls.iter().find(|c| c.target == CallTarget::Method("after".into())).unwrap();
        assert!(push.tok > lo && push.tok < hi, "push inside hold region");
        assert!(after.tok > hi, "call after block is outside the region");
    }

    #[test]
    fn temporary_lock_ends_at_statement() {
        let m = model("fn f(&self) { let v = self.m.lock().get(1); self.after(v); }\n");
        let f = &m.fns[0];
        assert_eq!(f.locks.len(), 1);
        let (_, hi) = f.locks[0].region;
        let get = f.calls.iter().find(|c| c.target == CallTarget::Method("get".into())).unwrap();
        let after =
            f.calls.iter().find(|c| c.target == CallTarget::Method("after".into())).unwrap();
        // the temporary guard covers `.get(` but is dropped at the `;`
        assert!(get.tok < hi, "get under the temporary guard");
        assert!(after.tok > hi, "next statement outside");
    }

    #[test]
    fn drop_releases_named_guard() {
        let m = model("fn f(&self) { let g = self.m.lock(); g.push(1); drop(g); self.after(); }\n");
        let f = &m.fns[0];
        let (_, hi) = f.locks[0].region;
        let after =
            f.calls.iter().find(|c| c.target == CallTarget::Method("after".into())).unwrap();
        assert!(after.tok > hi, "drop(g) ends the region before after()");
    }

    #[test]
    fn lock_keys_owner_field_and_accessor_binding() {
        let m = model(
            "struct SimCache;\n\
             impl SimCache {\n\
                 fn insert(&self) { let g = self.shards.lock(); g.push(1); }\n\
                 fn get(&self, k: u64) { let shard = self.shard(k); let g = shard.lock(); \
                   g.push(1); }\n\
             }\n\
             fn probe(q: &Q) { let g = q.m.lock(); g.push(1); }\n",
        );
        let keys: Vec<&str> =
            m.fns.iter().flat_map(|f| f.locks.iter().map(|l| l.key.as_str())).collect();
        // owner.field; a bare-ident receiver resolves one binding back to
        // its accessor; a free fn's owner is the crate.
        assert_eq!(keys, vec!["SimCache.shards", "SimCache.shard()", "core.m"]);
    }

    #[test]
    fn lock_bound_name_recorded_for_let_guards_only() {
        let m = model(
            "fn f(&self) { let g = self.m.lock(); g.push(1); }\n\
             fn t(&self) { self.m.lock().push(1); }\n",
        );
        assert_eq!(m.fns[0].locks[0].bound.as_deref(), Some("g"));
        assert_eq!(m.fns[1].locks[0].bound, None, "temporary guard has no binding");
    }

    #[test]
    fn cast_sites_typed_from_env_method_table_and_qualifier() {
        let m = model(
            "fn f(x: u64, v: &[u8]) -> u64 {\n\
                 let a = x as u32;\n\
                 let b = v.len() as u64;\n\
                 let c = u32::try_from(x).unwrap_or(0) as u64;\n\
                 let d = self.total as u32;\n\
                 u64::from(a) + b + c + u64::from(d)\n\
             }\n",
        );
        let view: Vec<(Option<&str>, &str, bool)> =
            m.fns[0].casts.iter().map(|c| (c.from.as_deref(), c.to.as_str(), c.checked)).collect();
        assert_eq!(
            view,
            vec![
                (Some("u64"), "u32", false),   // parameter annotation
                (Some("usize"), "u64", false), // .len() return table
                (Some("u32"), "u64", true),    // checked helper behind an adapter
                (None, "u32", false),          // field access: type unknown
            ]
        );
    }

    #[test]
    fn call_arg0_captured_for_bare_idents() {
        let m = model("fn f(&self) { self.cv.wait(guard); self.cv.notify_all(); done(a, b); }\n");
        let f = &m.fns[0];
        let by_name = |want: &str| {
            f.calls
                .iter()
                .find(|c| match &c.target {
                    CallTarget::Method(n) => n == want,
                    CallTarget::Path(p) => p.last().is_some_and(|s| s == want),
                })
                .unwrap()
        };
        assert_eq!(by_name("wait").arg0.as_deref(), Some("guard"));
        assert_eq!(by_name("notify_all").arg0, None);
        assert_eq!(by_name("done").arg0.as_deref(), Some("a"));
    }

    #[test]
    fn pub_items_recorded_and_restricted_pub_skipped() {
        let m = model(
            "pub struct A;\npub(crate) struct B;\npub enum C { X }\npub trait D {}\n\
             pub type E = u8;\npub const F: u8 = 0;\npub fn g() {}\nfn h() {}\n",
        );
        let names: Vec<&str> = m.pub_items.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["A", "C", "D", "E", "F", "g"]);
    }

    #[test]
    fn nested_mod_paths_compose() {
        let m = model("mod inner { pub fn deep() {} }\n");
        assert_eq!(m.fns[0].module, "x::inner");
        assert_eq!(m.fns[0].name, "deep");
    }

    #[test]
    fn taint_sites_hash_iteration_time_thread_rng_pointer() {
        let m = model(
            "fn f(h: HashMap<String, u32>) {\n\
                 for v in h.values() { use_it(v); }\n\
                 let t = Instant::now();\n\
                 let w = SystemTime::now();\n\
                 let id = thread::current().id();\n\
                 let r = thread_rng();\n\
                 let p = t.as_ptr();\n\
             }\n",
        );
        let whats: Vec<&str> = m.fns[0].taints.iter().map(|t| t.what).collect();
        assert_eq!(
            whats,
            vec![
                "`HashMap`/`HashSet` iteration",
                "`Instant::now()`",
                "`SystemTime::now()`",
                "`thread::current()`",
                "seed-free RNG constructor",
                "pointer address (`as_ptr`)",
            ]
        );
    }

    #[test]
    fn hash_iteration_needs_a_hash_bound_receiver() {
        let m = model(
            "fn clean(b: &BTreeMap<String, u32>) { for v in b.values() { use_it(v); } }\n\
             fn local() { let m = HashMap::new(); for k in m.keys() { use_it(k); } }\n\
             fn for_loop(s: HashSet<u32>) { for x in s { use_it(x); } }\n",
        );
        assert!(m.fns[0].taints.is_empty(), "BTreeMap iteration is ordered");
        assert_eq!(m.fns[1].taints.len(), 1, "initialiser binding tracked");
        assert_eq!(m.fns[2].taints.len(), 1, "bare for-loop over a HashSet");
    }

    #[test]
    fn mut_writes_capture_receiver_chain_and_binding() {
        let m = model(
            "fn f(&self) {\n\
                 self.sink.lock().push(1);\n\
                 let mut g = self.shard.lock();\n\
                 g.insert(1, 2);\n\
                 self.total += 1.0;\n\
                 local.push(3);\n\
             }\n",
        );
        let w = &m.fns[0].mut_writes;
        assert_eq!(w.len(), 4, "{w:?}");
        assert_eq!(w[0].op, "push");
        assert_eq!(w[0].receiver, vec!["self", "sink", "lock()"]);
        assert_eq!(w[1].op, "insert");
        assert_eq!(w[1].receiver, vec!["g"]);
        assert_eq!(w[1].via.as_deref(), Some("lock()"), "guard resolved to its binding");
        assert_eq!(w[2].op, "+=");
        assert_eq!(w[2].receiver, vec!["self", "total"]);
        assert_eq!(w[3].receiver, vec!["local"]);
        assert_eq!(w[3].via, None, "unbound local stays unresolved");
    }

    #[test]
    fn compound_assign_on_index_expression() {
        let m = model("fn f(acc: &mut [f64], k: usize) { acc[k] += 1.0; }\n");
        let w = &m.fns[0].mut_writes;
        assert_eq!(w.len(), 1, "{w:?}");
        assert_eq!(w[0].op, "+=");
        assert_eq!(w[0].receiver, vec!["acc"]);
    }

    #[test]
    fn atomic_store_recorded_but_fetch_add_exempt() {
        let m =
            model("fn f(&self) { self.seq.store(1, Relaxed); self.seq.fetch_add(1, Relaxed); }\n");
        let ops: Vec<&str> = m.fns[0].mut_writes.iter().map(|w| w.op.as_str()).collect();
        assert_eq!(ops, vec!["store"], "fetch_add is commutative, store is not");
    }

    #[test]
    fn statics_recorded_with_interior_mutability() {
        let m = model(
            "static SINK: Mutex<Vec<u32>> = Mutex::new(Vec::new());\n\
             static COUNT: AtomicU64 = AtomicU64::new(0);\n\
             static NAME: &str = \"x\";\n\
             const K: u32 = 3;\n",
        );
        let view: Vec<(&str, bool)> =
            m.statics.iter().map(|s| (s.name.as_str(), s.interior_mut)).collect();
        assert_eq!(view, vec![("SINK", true), ("COUNT", true), ("NAME", false)]);
    }

    #[test]
    fn test_regions_are_invisible() {
        let m = model("fn live() {}\n#[cfg(test)]\nmod tests { fn dead() { x.unwrap(); } }\n");
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].name, "live");
    }

    #[test]
    fn return_heads_owned_vs_borrowed() {
        let m = model(
            "fn a() -> String { String::new() }\n\
             fn b(s: &str) -> &str { s }\n\
             fn c() -> Vec<u8> { Vec::new() }\n\
             fn d() {}\n\
             fn e<T: Fn() -> u32>(g: T) -> Vec<u8> { drop(g); Vec::new() }\n",
        );
        let rets: Vec<Option<&str>> = m.fns.iter().map(|f| f.ret.as_deref()).collect();
        assert_eq!(rets, vec![Some("String"), None, Some("Vec"), None, Some("Vec")]);
    }

    #[test]
    fn alloc_sites_classified_by_loop_and_hint() {
        let m = model(
            "fn f(items: &[u32]) -> Vec<u32> {\n\
                 let mut out = Vec::new();\n\
                 for x in items { out.push(*x); }\n\
                 let mut hinted = Vec::with_capacity(8);\n\
                 while go() { hinted.push(1); }\n\
                 let mut once = Vec::new();\n\
                 once.push(1);\n\
                 out\n\
             }\n",
        );
        let view: Vec<(&str, AllocClass)> =
            m.fns[0].allocs.iter().map(|a| (a.what, a.class)).collect();
        assert_eq!(
            view,
            vec![
                ("Vec::new", AllocClass::Bounded),
                ("push", AllocClass::Unbounded), // unhinted local, loop-carried
                ("with_capacity", AllocClass::Bounded),
                ("push", AllocClass::Bounded), // capacity-hinted local
                ("Vec::new", AllocClass::Bounded),
                ("push", AllocClass::Bounded), // outside any loop
            ]
        );
    }

    #[test]
    fn reserve_upgrades_a_binding_to_hinted() {
        let m = model(
            "fn f(items: &[u32]) {\n\
                 let mut out = Vec::new();\n\
                 out.reserve(items.len());\n\
                 for x in items { out.push(*x); }\n\
             }\n",
        );
        assert!(
            m.fns[0].allocs.iter().all(|a| a.class != AllocClass::Unbounded),
            "{:?}",
            m.fns[0].allocs
        );
    }

    #[test]
    fn growth_through_field_or_param_is_data_proportional() {
        let m = model(
            "fn f(&mut self, xs: &[u8], out: &mut String) {\n\
                 for x in xs { self.buf.push(*x); out.push_str(\"y\"); }\n\
             }\n",
        );
        let classes: Vec<AllocClass> = m.fns[0].allocs.iter().map(|a| a.class).collect();
        assert_eq!(classes, vec![AllocClass::DataProportional, AllocClass::DataProportional]);
    }

    #[test]
    fn clone_family_records_receiver_chain() {
        let m = model(
            "struct SearchEngine;\n\
             impl SearchEngine {\n\
                 fn name(&self) -> String { self.meta.name.clone() }\n\
             }\n",
        );
        let a = &m.fns[0].allocs;
        assert_eq!(a.len(), 1, "{a:?}");
        assert_eq!(a[0].what, "clone()");
        assert_eq!(a[0].class, AllocClass::DataProportional);
        assert_eq!(a[0].receiver, vec!["self", "meta", "name"]);
        assert_eq!(m.fns[0].ret.as_deref(), Some("String"));
    }

    #[test]
    fn macro_and_ctor_alloc_sites() {
        let m = model(
            "fn f(n: u32) -> String {\n\
                 let v = vec![1, 2];\n\
                 let b = Box::new(n);\n\
                 let s = String::from(\"x\");\n\
                 let c: Vec<u32> = v.iter().copied().collect();\n\
                 drop((b, c));\n\
                 format!(\"{n} {s}\")\n\
             }\n",
        );
        let view: Vec<(&str, AllocClass)> =
            m.fns[0].allocs.iter().map(|a| (a.what, a.class)).collect();
        assert_eq!(
            view,
            vec![
                ("vec![]", AllocClass::Bounded),
                ("Box::new", AllocClass::Bounded),
                ("String::from", AllocClass::DataProportional),
                ("collect()", AllocClass::DataProportional),
                ("format!", AllocClass::DataProportional),
            ]
        );
    }
}
