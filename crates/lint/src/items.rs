//! Pass 1 of the workspace analyzer: a lightweight item model per file.
//!
//! Parses the stripped significant-token stream from [`crate::scanner`]
//! into function items (with their call sites, panic sites, and lock
//! sites), public items (for the dead-pub rule), and a `use`-map (leaf
//! identifier → full import path) that [`crate::callgraph`] consults when
//! resolving call targets. This is deliberately *not* a Rust parser: it is
//! a linear cursor walk that understands just enough structure — `mod` /
//! `impl` / `trait` / `fn` nesting, attribute and generics skipping,
//! balanced delimiters — to attribute every call and panic site to the
//! function that contains it. Macro-definition bodies (`macro_rules!`) are
//! opaque to the model.

use crate::scanner::{Spanned, Tok};
use std::collections::BTreeMap;

/// What a call site names, before resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTarget {
    /// A path call: `foo(..)`, `module::foo(..)`, `Type::method(..)`,
    /// `snaps_core::pedigree::build(..)` — segments as written.
    Path(Vec<String>),
    /// A method call `recv.name(..)`: only the method name is knowable
    /// without type inference, so resolution falls back to *every*
    /// workspace `impl`/`trait` function of that name.
    Method(String),
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// What the call names.
    pub target: CallTarget,
    /// 1-based source line.
    pub line: usize,
    /// Index of the call's name token in the file's stripped token stream
    /// (used to test containment in a lock's hold region).
    pub tok: usize,
}

/// One potentially panicking expression inside a function body.
#[derive(Debug, Clone)]
pub(crate) struct PanicSite {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description (`.unwrap()`, `assert!`, …).
    pub what: &'static str,
}

/// One `.lock()` call and the token range its guard is assumed held for:
/// to the end of the enclosing block (or a `drop(<guard>)`) when
/// let-bound, to the end of the statement when temporary.
#[derive(Debug, Clone)]
pub(crate) struct LockSite {
    /// 1-based source line of the `.lock()` call.
    pub line: usize,
    /// Half-open token-index range `(lock_tok, region_end)` of the hold.
    pub region: (usize, usize),
}

/// One function (or trait-method declaration) in the item model.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Short crate name (`core`, `serve`, …).
    pub krate: String,
    /// `::`-joined module path within the crate (empty at the crate root;
    /// `bin::snaps_serve` for `src/bin/snaps_serve.rs`).
    pub module: String,
    /// Enclosing `impl Type` / `trait Type` name, if any.
    pub impl_type: Option<String>,
    /// Function name.
    pub name: String,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Declared `pub` (unrestricted).
    pub is_pub: bool,
    /// Every call expression in the body, in token order.
    pub calls: Vec<CallSite>,
    /// Every panic-capable expression in the body.
    pub(crate) panics: Vec<PanicSite>,
    /// Every `.lock()` hold region in the body.
    pub(crate) locks: Vec<LockSite>,
}

/// A `pub` item declaration (dead-pub candidate). Restricted visibility
/// (`pub(crate)`, `pub(super)`, …) is excluded by construction.
#[derive(Debug, Clone)]
pub(crate) struct PubItem {
    /// Item kind keyword (`fn`, `struct`, `enum`, `trait`, `type`,
    /// `const`, `static`).
    pub kind: &'static str,
    /// Item name.
    pub name: String,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line of the declaration.
    pub line: usize,
}

/// The item model of one file.
#[derive(Debug, Clone, Default)]
pub struct FileItems {
    /// Every function, in source order.
    pub fns: Vec<FnItem>,
    /// Every unrestricted-`pub` item, in source order.
    pub(crate) pub_items: Vec<PubItem>,
    /// Leaf identifier → full import path, from `use` declarations.
    pub uses: BTreeMap<String, Vec<String>>,
    /// Identifiers appearing in unrestricted-`pub` declaration surfaces:
    /// `pub fn` signatures and `pub struct`/`enum`/`type` bodies. A pub
    /// type named here is pinned to `pub` by rustc's `private_interfaces`
    /// lint, so the dead-pub rule exempts it — it lives and dies with the
    /// item that exposes it.
    pub(crate) sig_idents: std::collections::BTreeSet<String>,
}

/// Keywords that can directly precede `(` without being a call.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "fn", "let", "else",
    "mut", "ref", "box", "await", "yield", "unsafe", "dyn", "impl", "where", "pub", "use", "mod",
    "struct", "enum", "trait", "type", "const", "static", "crate", "super", "break", "continue",
    "Self", "self",
];

/// Identifiers that legally precede `[` in type or expression position —
/// the same set as the token-level `index-guard` rule plus `let` (slice
/// patterns).
const NOT_INDEXABLE: &[&str] = &[
    "mut", "dyn", "impl", "const", "ref", "move", "as", "in", "else", "return", "break", "match",
    "if", "where", "let",
];

/// Macros that panic in release builds (`debug_assert*` compile out).
const PANIC_MACROS: &[(&str, &str)] = &[
    ("panic", "panic!"),
    ("unreachable", "unreachable!"),
    ("todo", "todo!"),
    ("unimplemented", "unimplemented!"),
    ("assert", "assert!"),
    ("assert_eq", "assert_eq!"),
    ("assert_ne", "assert_ne!"),
];

/// Derive the `::`-joined module path of a repo-relative `.rs` file within
/// its crate (`src/lib.rs` → ``, `src/server.rs` → `server`,
/// `src/bin/snaps_serve.rs` → `bin::snaps_serve`, `src/foo/mod.rs` → `foo`).
#[must_use]
pub(crate) fn module_of(file: &str) -> String {
    let Some(pos) = file.find("src/") else { return String::new() };
    let rel = &file[pos + 4..];
    let rel = rel.strip_suffix(".rs").unwrap_or(rel);
    let mut parts: Vec<&str> = rel.split('/').collect();
    if parts.last() == Some(&"mod") {
        parts.pop();
    }
    if parts.len() == 1 && matches!(parts.first(), Some(&"lib") | Some(&"main")) {
        parts.pop();
    }
    parts.join("::")
}

/// Extract the item model of one non-test file from its stripped tokens.
#[must_use]
pub fn extract(krate: &str, file: &str, tokens: &[Spanned]) -> FileItems {
    let mut p = Parser {
        toks: tokens,
        krate: krate.to_string(),
        file: file.to_string(),
        out: FileItems::default(),
    };
    p.parse_scope(0, &module_of(file), None);
    p.out
}

struct Parser<'a> {
    toks: &'a [Spanned],
    krate: String,
    file: String,
    out: FileItems,
}

impl Parser<'_> {
    fn ident(&self, i: usize) -> Option<&str> {
        match self.toks.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn punct(&self, i: usize) -> Option<char> {
        match self.toks.get(i).map(|t| &t.tok) {
            Some(Tok::Punct(c)) => Some(*c),
            _ => None,
        }
    }

    fn line(&self, i: usize) -> usize {
        self.toks.get(i).map_or(0, |t| t.line)
    }

    /// Skip a balanced `open`…`close` pair starting at `i` (which must sit
    /// on `open`); returns the index just past the matching `close`.
    fn skip_balanced(&self, i: usize, open: char, close: char) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < self.toks.len() {
            match self.punct(j) {
                Some(c) if c == open => depth += 1,
                Some(c) if c == close => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Skip a generics list starting at `i` (on `<`); `->` arrows inside do
    /// not close the list. Returns the index just past the matching `>`.
    fn skip_generics(&self, i: usize) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < self.toks.len() {
            match self.punct(j) {
                Some('<') => depth += 1,
                Some('>') if self.punct(j.wrapping_sub(1)) == Some('-') => {} // part of `->`
                Some('>') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Skip an attribute starting at `i` (on `#`); handles `#[..]` and
    /// `#![..]`. Returns the index just past the closing `]`.
    fn skip_attr(&self, i: usize) -> usize {
        let mut j = i + 1;
        if self.punct(j) == Some('!') {
            j += 1;
        }
        if self.punct(j) == Some('[') {
            return self.skip_balanced(j, '[', ']');
        }
        j
    }

    /// Parse items until the scope's closing `}` (or end of stream).
    /// Returns the index just past the `}`.
    fn parse_scope(&mut self, mut i: usize, module: &str, impl_type: Option<&str>) -> usize {
        let mut is_pub = false;
        while i < self.toks.len() {
            match &self.toks.get(i).map(|t| t.tok.clone()) {
                Some(Tok::Punct('#')) => {
                    i = self.skip_attr(i);
                    continue;
                }
                Some(Tok::Punct('}')) => return i + 1,
                Some(Tok::Punct('{')) => {
                    i = self.skip_balanced(i, '{', '}');
                    is_pub = false;
                    continue;
                }
                Some(Tok::Punct(_)) | None => {
                    i += 1;
                    continue;
                }
                Some(Tok::Ident(id)) => match id.as_str() {
                    "pub" => {
                        if self.punct(i + 1) == Some('(') {
                            // Restricted visibility: not a workspace-pub item.
                            i = self.skip_balanced(i + 1, '(', ')');
                            is_pub = false;
                        } else {
                            is_pub = true;
                            i += 1;
                        }
                    }
                    "use" => {
                        i = self.parse_use(i + 1);
                        is_pub = false;
                    }
                    "mod" => {
                        let name = self.ident(i + 1).unwrap_or("").to_string();
                        i += 2;
                        if self.punct(i) == Some('{') {
                            let inner =
                                if module.is_empty() { name } else { format!("{module}::{name}") };
                            i = self.parse_scope(i + 1, &inner, None);
                        } else if self.punct(i) == Some(';') {
                            i += 1;
                        }
                        is_pub = false;
                    }
                    "impl" => {
                        i = self.parse_impl(i + 1, module);
                        is_pub = false;
                    }
                    "trait" => {
                        let name = self.ident(i + 1).unwrap_or("").to_string();
                        if is_pub && !name.is_empty() {
                            self.push_pub("trait", &name, self.line(i));
                        }
                        let mut j = i + 2;
                        while j < self.toks.len() && self.punct(j) != Some('{') {
                            if self.punct(j) == Some('<') {
                                j = self.skip_generics(j);
                            } else {
                                j += 1;
                            }
                        }
                        i = self.parse_scope(j + 1, module, Some(&name));
                        is_pub = false;
                    }
                    "fn" => {
                        i = self.parse_fn(i, module, impl_type, is_pub);
                        is_pub = false;
                    }
                    "struct" | "enum" | "union" => {
                        let kind = if id == "enum" { "enum" } else { "struct" };
                        let name = self.ident(i + 1).unwrap_or("").to_string();
                        if is_pub && !name.is_empty() {
                            self.push_pub(kind, &name, self.line(i));
                        }
                        let end = self.skip_type_body(i + 2);
                        if is_pub {
                            self.collect_sig_idents(i + 2, end);
                        }
                        i = end;
                        is_pub = false;
                    }
                    "type" => {
                        let name = self.ident(i + 1).unwrap_or("").to_string();
                        if is_pub && !name.is_empty() && impl_type.is_none() {
                            self.push_pub("type", &name, self.line(i));
                        }
                        let end = self.skip_to_semi(i + 2);
                        if is_pub && impl_type.is_none() {
                            self.collect_sig_idents(i + 2, end);
                        }
                        i = end;
                        is_pub = false;
                    }
                    "const" | "static" => {
                        if self.ident(i + 1) == Some("fn") {
                            i = self.parse_fn(i + 1, module, impl_type, is_pub);
                            is_pub = false;
                            continue;
                        }
                        let mut j = i + 1;
                        if self.ident(j) == Some("mut") {
                            j += 1;
                        }
                        let name = self.ident(j).unwrap_or("").to_string();
                        let kind = if id == "const" { "const" } else { "static" };
                        // `const` inside an impl/trait is an associated item,
                        // not an independent API surface.
                        if is_pub && !name.is_empty() && name != "_" && impl_type.is_none() {
                            self.push_pub(kind, &name, self.line(i));
                        }
                        i = self.skip_to_semi(j + 1);
                        is_pub = false;
                    }
                    "macro_rules" => {
                        let mut j = i + 1; // `!`
                        while j < self.toks.len()
                            && !matches!(self.punct(j), Some('{') | Some('(') | Some('['))
                        {
                            j += 1;
                        }
                        i = match self.punct(j) {
                            Some('{') => self.skip_balanced(j, '{', '}'),
                            Some('(') => self.skip_balanced(j, '(', ')'),
                            Some('[') => self.skip_balanced(j, '[', ']'),
                            _ => j,
                        };
                        is_pub = false;
                    }
                    _ => i += 1, // modifiers (`unsafe`, `async`, `extern`, …) and stray idents
                },
            }
        }
        i
    }

    fn push_pub(&mut self, kind: &'static str, name: &str, line: usize) {
        self.out.pub_items.push(PubItem {
            kind,
            name: name.to_string(),
            file: self.file.clone(),
            line,
        });
    }

    /// Record every identifier in `[start, end)` as part of a pub
    /// declaration surface (signature or type body).
    fn collect_sig_idents(&mut self, start: usize, end: usize) {
        for t in &self.toks[start.min(self.toks.len())..end.min(self.toks.len())] {
            if let Tok::Ident(id) = &t.tok {
                self.out.sig_idents.insert(id.clone());
            }
        }
    }

    /// Skip a struct/enum/union body starting just past the name: generics,
    /// optional where-clause, then `{..}`, `(..);`, or `;`.
    fn skip_type_body(&self, mut i: usize) -> usize {
        while i < self.toks.len() {
            match self.punct(i) {
                Some('<') => i = self.skip_generics(i),
                Some('{') => return self.skip_balanced(i, '{', '}'),
                Some('(') => {
                    i = self.skip_balanced(i, '(', ')');
                    // tuple struct: a `;` (possibly after a where-clause) ends it
                }
                Some(';') => return i + 1,
                _ => i += 1,
            }
        }
        i
    }

    /// Skip to the `;` ending a const/static/type item, stepping over any
    /// balanced braces, brackets, or parens in the initialiser.
    fn skip_to_semi(&self, mut i: usize) -> usize {
        while i < self.toks.len() {
            match self.punct(i) {
                Some(';') => return i + 1,
                Some('{') => i = self.skip_balanced(i, '{', '}'),
                Some('[') => i = self.skip_balanced(i, '[', ']'),
                Some('(') => i = self.skip_balanced(i, '(', ')'),
                Some('<') => i = self.skip_generics(i),
                _ => i += 1,
            }
        }
        i
    }

    /// Parse a `use` declaration starting just past the `use` keyword,
    /// recording leaf-name → full-path entries. Returns the index past `;`.
    fn parse_use(&mut self, i: usize) -> usize {
        let end = self.skip_to_semi(i);
        let mut prefix: Vec<String> = Vec::new();
        self.parse_use_tree(i, end.saturating_sub(1), &mut prefix);
        end
    }

    /// Parse one use-tree between `i` and `end` (exclusive) with the given
    /// path prefix. Handles `a::b`, groups `{..}`, renames `as x`, and `*`.
    fn parse_use_tree(&mut self, mut i: usize, end: usize, prefix: &mut Vec<String>) {
        let depth_at_entry = prefix.len();
        while i < end {
            match &self.toks.get(i).map(|t| t.tok.clone()) {
                Some(Tok::Ident(id)) if id == "as" => {
                    // rename: map the alias to the path collected so far
                    if let Some(alias) = self.ident(i + 1) {
                        self.out.uses.insert(alias.to_string(), prefix.clone());
                    }
                    i += 2;
                    prefix.truncate(depth_at_entry);
                }
                Some(Tok::Ident(id)) => {
                    prefix.push(id.clone());
                    i += 1;
                    // leaf if not followed by `::`
                    let sep = self.punct(i) == Some(':') && self.punct(i + 1) == Some(':');
                    if sep {
                        i += 2;
                        if self.punct(i) == Some('{') {
                            let group_end = self.skip_balanced(i, '{', '}');
                            self.parse_use_tree(i + 1, group_end - 1, prefix);
                            i = group_end;
                            prefix.truncate(depth_at_entry);
                        }
                    } else {
                        // `a::b as c` is handled by the `as` arm; otherwise
                        // this ident is the imported name.
                        if self.ident(i) != Some("as") {
                            if let Some(leaf) = prefix.last().cloned() {
                                self.out.uses.insert(leaf, prefix.clone());
                            }
                            prefix.truncate(depth_at_entry);
                        }
                    }
                }
                Some(Tok::Punct(',')) => {
                    prefix.truncate(depth_at_entry);
                    i += 1;
                }
                Some(Tok::Punct('*')) => i += 1, // glob: nothing to record
                _ => i += 1,
            }
        }
        prefix.truncate(depth_at_entry);
    }

    /// Parse an `impl` header starting just past the keyword and recurse
    /// into its body with the implemented type's name.
    fn parse_impl(&mut self, mut i: usize, module: &str) -> usize {
        if self.punct(i) == Some('<') {
            i = self.skip_generics(i);
        }
        let mut last_ident = String::new();
        while i < self.toks.len() {
            match &self.toks.get(i).map(|t| t.tok.clone()) {
                Some(Tok::Ident(id)) if id == "for" => {
                    last_ident.clear(); // the type comes after `for`
                    i += 1;
                }
                Some(Tok::Ident(id)) if id == "where" => {
                    // skip the where-clause up to the body
                    while i < self.toks.len() && self.punct(i) != Some('{') {
                        if self.punct(i) == Some('<') {
                            i = self.skip_generics(i);
                        } else {
                            i += 1;
                        }
                    }
                }
                Some(Tok::Ident(id)) => {
                    last_ident = id.clone();
                    i += 1;
                }
                Some(Tok::Punct('<')) => i = self.skip_generics(i),
                Some(Tok::Punct('(')) => i = self.skip_balanced(i, '(', ')'),
                Some(Tok::Punct('{')) => {
                    return self.parse_scope(i + 1, module, Some(&last_ident));
                }
                Some(Tok::Punct(';')) => return i + 1, // `impl Trait for T;` (never in practice)
                _ => i += 1,
            }
        }
        i
    }

    /// Parse a `fn` item starting at the `fn` keyword. Returns the index
    /// past the body's `}` (or past `;` for bodyless trait declarations).
    fn parse_fn(&mut self, i: usize, module: &str, impl_type: Option<&str>, is_pub: bool) -> usize {
        let line = self.line(i);
        let Some(name) = self.ident(i + 1).map(str::to_string) else { return i + 1 };
        // Scan the signature for the body `{` or a `;`; `;` inside array
        // types (`[u8; 4]`) is shielded by bracket-depth tracking.
        let mut j = i + 2;
        let mut bracket_depth = 0usize;
        let body_start = loop {
            if j >= self.toks.len() {
                break None;
            }
            match self.punct(j) {
                Some('<') => {
                    j = self.skip_generics(j);
                    continue;
                }
                Some('[') => bracket_depth += 1,
                Some(']') => bracket_depth = bracket_depth.saturating_sub(1),
                Some('{') if bracket_depth == 0 => break Some(j),
                Some(';') if bracket_depth == 0 => break None,
                _ => {}
            }
            j += 1;
        };
        let mut item = FnItem {
            krate: self.krate.clone(),
            module: module.to_string(),
            impl_type: impl_type.map(str::to_string),
            name: name.clone(),
            file: self.file.clone(),
            line,
            is_pub,
            calls: Vec::new(),
            panics: Vec::new(),
            locks: Vec::new(),
        };
        if is_pub && name != "main" {
            self.push_pub("fn", &name, line);
            self.collect_sig_idents(i + 2, body_start.unwrap_or(j));
        }
        let Some(start) = body_start else {
            self.out.fns.push(item);
            return j + 1;
        };
        let end = self.skip_balanced(start, '{', '}');
        self.analyze_body(start + 1, end.saturating_sub(1), &mut item);
        self.out.fns.push(item);
        end
    }

    /// Walk a function body `[start, end)` collecting call, panic, and lock
    /// sites.
    fn analyze_body(&self, start: usize, end: usize, item: &mut FnItem) {
        let mut depth = 0usize; // brace depth relative to the body
        let mut i = start;
        while i < end {
            match &self.toks.get(i).map(|t| t.tok.clone()) {
                Some(Tok::Punct('{')) => depth += 1,
                Some(Tok::Punct('}')) => depth = depth.saturating_sub(1),
                Some(Tok::Punct('[')) => {
                    let prev_ident_ok = self
                        .ident(i.wrapping_sub(1))
                        .is_some_and(|id| !NOT_INDEXABLE.contains(&id));
                    let prev_punct_ok =
                        matches!(self.punct(i.wrapping_sub(1)), Some(')') | Some(']') | Some('?'));
                    if i > start && (prev_ident_ok || prev_punct_ok) {
                        item.panics
                            .push(PanicSite { line: self.line(i), what: "unguarded `[..]` index" });
                    }
                }
                Some(Tok::Ident(id)) => {
                    if let Some((_, what)) = PANIC_MACROS.iter().find(|(m, _)| m == id) {
                        if self.punct(i + 1) == Some('!') {
                            item.panics.push(PanicSite { line: self.line(i), what });
                            i += 2;
                            continue;
                        }
                    }
                    if self.is_call_head(i) {
                        let is_method = self.punct(i.wrapping_sub(1)) == Some('.');
                        if is_method {
                            if id == "unwrap" || id == "expect" {
                                let what = if id == "unwrap" { ".unwrap()" } else { ".expect()" };
                                item.panics.push(PanicSite { line: self.line(i), what });
                            }
                            if id == "lock" {
                                let region = self.lock_region(i, start, end, depth);
                                item.locks.push(LockSite { line: self.line(i), region });
                            }
                            item.calls.push(CallSite {
                                target: CallTarget::Method(id.clone()),
                                line: self.line(i),
                                tok: i,
                            });
                        } else if !NON_CALL_IDENTS.contains(&id.as_str())
                            && self.ident(i.wrapping_sub(1)) != Some("fn")
                        {
                            let path = self.collect_path_backward(i);
                            item.calls.push(CallSite {
                                target: CallTarget::Path(path),
                                line: self.line(i),
                                tok: i,
                            });
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    /// Is the identifier at `i` the head of a call — followed by `(`,
    /// optionally through a turbofish `::<..>`?
    fn is_call_head(&self, i: usize) -> bool {
        if self.punct(i + 1) == Some('(') {
            return true;
        }
        if self.punct(i + 1) == Some(':')
            && self.punct(i + 2) == Some(':')
            && self.punct(i + 3) == Some('<')
        {
            let j = self.skip_generics(i + 3);
            return self.punct(j) == Some('(');
        }
        false
    }

    /// Collect the `::`-separated path ending at the identifier `i`,
    /// walking backwards (`snaps_core :: pedigree :: build` → three
    /// segments).
    fn collect_path_backward(&self, i: usize) -> Vec<String> {
        let mut segs = vec![self.ident(i).unwrap_or("").to_string()];
        let mut j = i;
        while j >= 3
            && self.punct(j - 1) == Some(':')
            && self.punct(j - 2) == Some(':')
            && self.ident(j - 3).is_some()
        {
            segs.insert(0, self.ident(j - 3).unwrap_or("").to_string());
            j -= 3;
        }
        segs
    }

    /// Compute the hold region of the `.lock()` whose name token is at `i`.
    ///
    /// A let-bound guard is held to the end of the enclosing block (or an
    /// explicit `drop(<name>)`); a temporary guard to the end of the
    /// statement. `depth` is the brace depth of the lock site relative to
    /// the body.
    fn lock_region(
        &self,
        i: usize,
        body_start: usize,
        body_end: usize,
        depth: usize,
    ) -> (usize, usize) {
        // Find the statement start: the nearest `;`, `{`, or `}` behind us.
        let mut s = i;
        while s > body_start {
            if matches!(self.punct(s - 1), Some(';') | Some('{') | Some('}')) {
                break;
            }
            s -= 1;
        }
        // Let-bound? Capture the bound name when it is a plain identifier
        // *and* the binding actually holds the guard: after `.lock(..)` the
        // chain may only continue through guard-preserving adapters
        // (`unwrap`/`expect`/`unwrap_or_else`, `?`) before the statement
        // ends. `let v = m.lock().get(k);` binds `.get`'s result — the
        // guard itself is a temporary dropped at the `;`.
        let mut bound: Option<Option<String>> = None; // Some(name?) when let-bound
        let mut k = s;
        while k < i {
            if self.ident(k) == Some("let") {
                let mut n = k + 1;
                if self.ident(n) == Some("mut") {
                    n += 1;
                }
                if self.ident(n).is_some() && self.punct(n + 1) == Some('=') {
                    let mut c = self.skip_balanced(i + 1, '(', ')');
                    loop {
                        if self.punct(c) == Some('?') {
                            c += 1;
                        } else if self.punct(c) == Some('.')
                            && matches!(
                                self.ident(c + 1),
                                Some("unwrap") | Some("expect") | Some("unwrap_or_else")
                            )
                            && self.punct(c + 2) == Some('(')
                        {
                            c = self.skip_balanced(c + 2, '(', ')');
                        } else {
                            break;
                        }
                    }
                    if matches!(self.punct(c), Some(';')) {
                        bound = Some(self.ident(n).map(str::to_string));
                    }
                }
                break;
            }
            k += 1;
        }
        let mut d = depth;
        let mut j = i;
        while j < body_end {
            match self.punct(j) {
                Some('{') => d += 1,
                Some('}') => {
                    if d == 0 {
                        return (i, j); // body ends
                    }
                    d -= 1;
                    if d < depth {
                        return (i, j); // enclosing block closes
                    }
                }
                Some(';') if bound.is_none() && d == depth && j > i => {
                    return (i, j); // temporary guard: statement ends
                }
                _ => {}
            }
            // `drop(<name>)` releases a named guard early.
            if let Some(Some(name)) = &bound {
                if self.ident(j) == Some("drop")
                    && self.punct(j + 1) == Some('(')
                    && self.ident(j + 2) == Some(name.as_str())
                    && self.punct(j + 3) == Some(')')
                {
                    return (i, j);
                }
            }
            j += 1;
        }
        (i, body_end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner;

    fn model(src: &str) -> FileItems {
        let scan = scanner::scan(src);
        let toks = scanner::strip_test_regions(scan.tokens);
        extract("core", "crates/core/src/x.rs", &toks)
    }

    #[test]
    fn module_paths() {
        assert_eq!(module_of("crates/serve/src/lib.rs"), "");
        assert_eq!(module_of("crates/serve/src/server.rs"), "server");
        assert_eq!(module_of("crates/serve/src/bin/snaps_serve.rs"), "bin::snaps_serve");
        assert_eq!(module_of("src/main.rs"), "");
        assert_eq!(module_of("crates/core/src/foo/mod.rs"), "foo");
        assert_eq!(module_of("crates/core/src/foo/bar.rs"), "foo::bar");
    }

    #[test]
    fn fn_and_calls_extracted() {
        let m = model(
            "pub fn outer(x: u8) -> u8 { helper(x); snaps_query::process::run(x); x.finish() }\n\
             fn helper(_x: u8) {}\n",
        );
        assert_eq!(m.fns.len(), 2);
        let outer = &m.fns[0];
        assert_eq!(outer.name, "outer");
        assert!(outer.is_pub);
        assert_eq!(outer.calls.len(), 3);
        assert_eq!(outer.calls[0].target, CallTarget::Path(vec!["helper".into()]));
        assert_eq!(
            outer.calls[1].target,
            CallTarget::Path(vec!["snaps_query".into(), "process".into(), "run".into()])
        );
        assert_eq!(outer.calls[2].target, CallTarget::Method("finish".into()));
    }

    #[test]
    fn impl_and_trait_methods_carry_type() {
        let m = model(
            "struct S;\nimpl S { pub fn a(&self) {} }\n\
             impl Default for S { fn default() -> Self { S } }\n\
             trait T { fn decl(&self); fn provided(&self) { self.decl() } }\n",
        );
        let names: Vec<(Option<&str>, &str)> =
            m.fns.iter().map(|f| (f.impl_type.as_deref(), f.name.as_str())).collect();
        assert_eq!(
            names,
            vec![
                (Some("S"), "a"),
                (Some("S"), "default"),
                (Some("T"), "decl"),
                (Some("T"), "provided"),
            ]
        );
    }

    #[test]
    fn panic_sites_found() {
        let m = model(
            "fn f(v: &[u8], i: usize) -> u8 { let x = v[i]; maybe().unwrap(); assert!(i > 0); x }\n",
        );
        let whats: Vec<&str> = m.fns[0].panics.iter().map(|p| p.what).collect();
        assert_eq!(whats, vec!["unguarded `[..]` index", ".unwrap()", "assert!"]);
    }

    #[test]
    fn guarded_get_is_not_a_panic_site() {
        let m = model("fn f(v: &[u8], i: usize) -> Option<u8> { v.get(i).copied() }\n");
        assert!(m.fns[0].panics.is_empty(), "{:?}", m.fns[0].panics);
        // but .get is still a call site (method fallback)
        assert!(m.fns[0].calls.iter().any(|c| c.target == CallTarget::Method("get".into())));
    }

    #[test]
    fn use_map_resolves_leaves_groups_and_renames() {
        let m = model(
            "use snaps_query::process::run;\nuse snaps_model::{EntityId, Gender};\n\
             use std::collections::BTreeMap as Map;\n",
        );
        assert_eq!(
            m.uses.get("run"),
            Some(&vec!["snaps_query".to_string(), "process".to_string(), "run".to_string()])
        );
        assert_eq!(
            m.uses.get("Gender"),
            Some(&vec!["snaps_model".to_string(), "Gender".to_string()])
        );
        assert_eq!(
            m.uses.get("Map"),
            Some(&vec!["std".to_string(), "collections".to_string(), "BTreeMap".to_string()])
        );
    }

    #[test]
    fn let_bound_lock_held_to_block_end() {
        let m = model(
            "fn f(&self) { { let mut g = self.m.lock(); g.push(1); } self.after(); }\n\
             struct X;\n",
        );
        let f = &m.fns[0];
        assert_eq!(f.locks.len(), 1);
        let (lo, hi) = f.locks[0].region;
        let push = f.calls.iter().find(|c| c.target == CallTarget::Method("push".into())).unwrap();
        let after =
            f.calls.iter().find(|c| c.target == CallTarget::Method("after".into())).unwrap();
        assert!(push.tok > lo && push.tok < hi, "push inside hold region");
        assert!(after.tok > hi, "call after block is outside the region");
    }

    #[test]
    fn temporary_lock_ends_at_statement() {
        let m = model("fn f(&self) { let v = self.m.lock().get(1); self.after(v); }\n");
        let f = &m.fns[0];
        assert_eq!(f.locks.len(), 1);
        let (_, hi) = f.locks[0].region;
        let get = f.calls.iter().find(|c| c.target == CallTarget::Method("get".into())).unwrap();
        let after =
            f.calls.iter().find(|c| c.target == CallTarget::Method("after".into())).unwrap();
        // the temporary guard covers `.get(` but is dropped at the `;`
        assert!(get.tok < hi, "get under the temporary guard");
        assert!(after.tok > hi, "next statement outside");
    }

    #[test]
    fn drop_releases_named_guard() {
        let m = model("fn f(&self) { let g = self.m.lock(); g.push(1); drop(g); self.after(); }\n");
        let f = &m.fns[0];
        let (_, hi) = f.locks[0].region;
        let after =
            f.calls.iter().find(|c| c.target == CallTarget::Method("after".into())).unwrap();
        assert!(after.tok > hi, "drop(g) ends the region before after()");
    }

    #[test]
    fn pub_items_recorded_and_restricted_pub_skipped() {
        let m = model(
            "pub struct A;\npub(crate) struct B;\npub enum C { X }\npub trait D {}\n\
             pub type E = u8;\npub const F: u8 = 0;\npub fn g() {}\nfn h() {}\n",
        );
        let names: Vec<&str> = m.pub_items.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["A", "C", "D", "E", "F", "g"]);
    }

    #[test]
    fn nested_mod_paths_compose() {
        let m = model("mod inner { pub fn deep() {} }\n");
        assert_eq!(m.fns[0].module, "x::inner");
        assert_eq!(m.fns[0].name, "deep");
    }

    #[test]
    fn test_regions_are_invisible() {
        let m = model("fn live() {}\n#[cfg(test)]\nmod tests { fn dead() { x.unwrap(); } }\n");
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].name, "live");
    }
}
