//! Pass 2 graph rules: transitive reachability from declared entry points.
//!
//! The entry-point table below mirrors the service surface of the paper's
//! online half (§Online Query): the three serve handlers, the health
//! probe, the snapshot load path, plus the offline `main`s for coverage
//! statistics. Three rule families run on top of the call graph:
//!
//! - **panic-reachability**: a panic site (unwrap/expect/panic-family
//!   macro/unguarded index) transitively reachable from a serve-path
//!   entry point is a finding, with the full call chain in the
//!   diagnostic. Files already under the token-level `panic-path` rule
//!   (the serve request-path files) are skipped — their sites are flagged
//!   directly by the token rules.
//! - **lock-discipline**: a `.lock()` guard held across a call into
//!   another workspace crate, within the serve-path reachable set.
//!   Method-name fallback calls whose name collides with std
//!   collection/iterator APIs are exempt (path-qualified calls are always
//!   checked) — see [`LOCK_EXEMPT_METHODS`].
//! - **dead-pub**: an unrestricted-`pub` item with zero identifier
//!   references in any *other* workspace file.

use crate::callgraph::CallGraph;
use crate::items::{CallTarget, FileItems};
use crate::rules::Finding;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One declared entry point of the workspace.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EntrySpec {
    /// Human-readable label used in diagnostics and the report.
    pub label: &'static str,
    /// Short crate name the entry function lives in.
    pub krate: &'static str,
    /// Module the function is expected in (`None` = any module). When no
    /// function matches the module, matching falls back to the whole crate
    /// so relocated handlers stay covered.
    pub module: Option<&'static str>,
    /// Entry function name.
    pub function: &'static str,
    /// The entry serves live traffic: panic-reachability and
    /// lock-discipline findings are raised from it.
    pub serve_path: bool,
}

/// The declared entry points (kept in sync with DESIGN.md §10).
pub(crate) const ENTRY_POINTS: &[EntrySpec] = &[
    EntrySpec {
        label: "GET /search",
        krate: "serve",
        module: Some("server"),
        function: "search",
        serve_path: true,
    },
    EntrySpec {
        label: "GET /pedigree",
        krate: "serve",
        module: Some("server"),
        function: "pedigree",
        serve_path: true,
    },
    EntrySpec {
        label: "GET /metrics",
        krate: "serve",
        module: Some("server"),
        function: "metrics",
        serve_path: true,
    },
    EntrySpec {
        label: "GET /healthz",
        krate: "serve",
        module: Some("server"),
        function: "healthz",
        serve_path: true,
    },
    EntrySpec {
        label: "GET /debug/traces",
        krate: "serve",
        module: Some("server"),
        function: "debug_traces",
        serve_path: true,
    },
    EntrySpec {
        label: "GET /debug/slow",
        krate: "serve",
        module: Some("server"),
        function: "debug_slow",
        serve_path: true,
    },
    EntrySpec {
        label: "GET /metrics?format=prom",
        krate: "serve",
        module: Some("server"),
        function: "metrics_prom",
        serve_path: true,
    },
    EntrySpec {
        label: "snapshot load",
        krate: "serve",
        module: Some("snapshot"),
        function: "load",
        serve_path: true,
    },
    EntrySpec {
        label: "snaps-serve main",
        krate: "serve",
        module: None,
        function: "main",
        serve_path: false,
    },
    EntrySpec {
        label: "pipeline mains",
        krate: "bench",
        module: None,
        function: "main",
        serve_path: false,
    },
];

/// Method names exempt from the lock-discipline method fallback: they
/// collide with std collection/iterator/sync APIs, so a guard method call
/// like `map.get(..)` would otherwise false-positive against every
/// workspace `impl fn` of the same name. Path-qualified calls are always
/// checked; workspace-distinctive names (`incr`, `record`, `lookup`, …)
/// stay in force.
pub(crate) const LOCK_EXEMPT_METHODS: &[&str] = &[
    "get",
    "get_mut",
    "len",
    "is_empty",
    "insert",
    "remove",
    "push",
    "pop",
    "iter",
    "iter_mut",
    "clone",
    "contains",
    "contains_key",
    "entry",
    "or_default",
    "keys",
    "values",
    "last",
    "first",
];

/// Reachability statistics for one entry point (reported per run).
#[derive(Debug, Clone)]
pub struct EntryStats {
    /// Entry label.
    pub label: String,
    /// Whether this entry is on the request-serving path (per-request
    /// gates — panic freedom, the alloc-budget hard zero — apply only
    /// when true; mains and loaders run once and only carry budgets).
    pub serve_path: bool,
    /// Number of root functions matching the spec.
    pub roots: usize,
    /// Size of the transitively reachable function set.
    pub reachable: usize,
    /// Distinct panic sites reachable from this entry (pre-waiver; zero
    /// for non-serve entries, which raise no findings).
    pub reachable_panics: usize,
    /// Distinct lock keys acquired anywhere in the reachable set (pass 3).
    pub lock_nodes: usize,
    /// "Acquired B while holding A" edges in this entry's lock-order
    /// graph (pass 3).
    pub lock_edges: usize,
    /// Cycles (including self-loops) in this entry's lock-order graph
    /// (pass 3; zero means deadlock-free under the model).
    pub lock_cycles: usize,
    /// Numeric `as` cast sites in the reachable set (pass 3).
    pub cast_sites: usize,
    /// Determinism-taint flows — (tainted function, serialisation sink)
    /// pairs — in the reachable set (pass 4).
    pub taint_flows: usize,
    /// Shard-safety violation sites in the reachable set (pass 4).
    pub shard_violations: usize,
    /// Constant-size or capacity-hinted allocation sites in the reachable
    /// set (pass 6).
    pub alloc_bounded: usize,
    /// Allocation sites scaling with result/snapshot size (pass 6).
    pub alloc_data: usize,
    /// Loop-carried growth sites with no capacity hint (pass 6; hard zero
    /// gate on the serve path).
    pub alloc_unbounded: usize,
    /// Snapshot-resident accessors returning owned clones (pass 6).
    pub borrow_not_own: usize,
}

/// Outcome of the graph-rule pass.
#[derive(Debug, Default)]
pub(crate) struct ReachOutcome {
    /// Findings from all three graph rule families.
    pub findings: Vec<Finding>,
    /// Per-entry-point statistics, in table order.
    pub entry_stats: Vec<EntryStats>,
}

/// Root node ids matching an entry spec.
pub(crate) fn roots_of(graph: &CallGraph, spec: &EntrySpec) -> Vec<usize> {
    let by_module: Vec<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.krate == spec.krate
                && f.name == spec.function
                && f.impl_type.is_none()
                && spec.module.is_none_or(|m| f.module == m)
        })
        .map(|(i, _)| i)
        .collect();
    if !by_module.is_empty() || spec.module.is_none() {
        return by_module;
    }
    // Fall back to any module in the crate so a relocated handler is still
    // rooted (the workspace self-test pins the expected locations).
    graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.krate == spec.krate && f.name == spec.function && f.impl_type.is_none())
        .map(|(i, _)| i)
        .collect()
}

/// Multi-root BFS; returns `node → parent` (roots map to themselves),
/// visiting in sorted order so chains are deterministic.
pub(crate) fn bfs(graph: &CallGraph, roots: &[usize]) -> BTreeMap<usize, usize> {
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &r in roots {
        if parent.insert(r, r).is_none() {
            queue.push_back(r);
        }
    }
    while let Some(n) = queue.pop_front() {
        for &m in graph.edges.get(n).map_or(&[][..], Vec::as_slice) {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(m) {
                e.insert(n);
                queue.push_back(m);
            }
        }
    }
    parent
}

/// The call chain from an entry root down to `node`, as display names.
pub(crate) fn chain_to(
    graph: &CallGraph,
    parent: &BTreeMap<usize, usize>,
    node: usize,
) -> Vec<String> {
    let mut rev = vec![node];
    let mut cur = node;
    while let Some(&p) = parent.get(&cur) {
        if p == cur {
            break;
        }
        rev.push(p);
        cur = p;
    }
    rev.reverse();
    rev.into_iter().map(|n| graph.display(n)).collect()
}

/// Run every graph rule. `panic_free_files` are the files already covered
/// by the token-level panic rules (skipped here to avoid double findings).
#[must_use]
pub(crate) fn check(graph: &CallGraph, panic_free_files: &BTreeSet<String>) -> ReachOutcome {
    let mut out = ReachOutcome::default();
    // (file, line, what) → finding; first (table-order) entry wins, so the
    // diagnostic names the most user-facing route to the panic.
    let mut panic_findings: BTreeMap<(String, usize, &'static str), Finding> = BTreeMap::new();
    let mut serve_reachable: BTreeSet<usize> = BTreeSet::new();

    for spec in ENTRY_POINTS {
        let roots = roots_of(graph, spec);
        let parent = bfs(graph, &roots);
        let mut entry_panics: BTreeSet<(String, usize)> = BTreeSet::new();

        if spec.serve_path {
            for &node in parent.keys() {
                serve_reachable.insert(node);
                let f = &graph.fns[node];
                if panic_free_files.contains(&f.file) {
                    continue;
                }
                for p in &f.panics {
                    entry_panics.insert((f.file.clone(), p.line));
                    let key = (f.file.clone(), p.line, p.what);
                    if panic_findings.contains_key(&key) {
                        continue;
                    }
                    let chain = chain_to(graph, &parent, node).join(" → ");
                    panic_findings.insert(
                        key,
                        Finding {
                            rule: "panic-reachability",
                            file: f.file.clone(),
                            line: p.line,
                            message: format!(
                                "{} is reachable from {}: {chain} ({}:{})",
                                p.what, spec.label, f.file, p.line
                            ),
                            waived: false,
                        },
                    );
                }
            }
        }

        out.entry_stats.push(EntryStats {
            label: spec.label.to_string(),
            serve_path: spec.serve_path,
            roots: roots.len(),
            reachable: parent.len(),
            reachable_panics: entry_panics.len(),
            lock_nodes: 0, // filled by pass 3 (lockorder)
            lock_edges: 0,
            lock_cycles: 0,
            cast_sites: 0,       // filled by pass 3 (numflow)
            taint_flows: 0,      // filled by pass 4 (taint)
            shard_violations: 0, // filled by pass 4 (shardsafe)
            alloc_bounded: 0,    // filled by pass 6 (allocflow)
            alloc_data: 0,
            alloc_unbounded: 0,
            borrow_not_own: 0,
        });
    }

    out.findings.extend(panic_findings.into_values());
    out.findings.extend(check_lock_discipline(graph, &serve_reachable));
    out
}

/// Lock-discipline over the serve-path reachable set: no guard held across
/// a call into another workspace crate.
fn check_lock_discipline(graph: &CallGraph, serve_reachable: &BTreeSet<usize>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for &node in serve_reachable {
        let f = &graph.fns[node];
        for lock in &f.locks {
            for call in &f.calls {
                if call.tok <= lock.region.0 || call.tok >= lock.region.1 {
                    continue;
                }
                if let CallTarget::Method(name) = &call.target {
                    if LOCK_EXEMPT_METHODS.contains(&name.as_str()) {
                        continue;
                    }
                }
                let res = graph.resolve(node, call);
                let cross: BTreeSet<&str> = res
                    .targets
                    .iter()
                    .filter_map(|&t| graph.fns.get(t))
                    .filter(|callee| callee.krate != f.krate)
                    .map(|callee| callee.krate.as_str())
                    .collect();
                if let Some(k) = cross.into_iter().next() {
                    findings.push(Finding {
                        rule: "lock-discipline",
                        file: f.file.clone(),
                        line: call.line,
                        message: format!(
                            "call into crate '{k}' while the lock taken on line {} is held \
                             (in {}); release the guard first",
                            lock.line,
                            graph.display(node)
                        ),
                        waived: false,
                    });
                }
            }
        }
    }
    findings.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    findings.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    findings
}

/// Dead-pub rule: an unrestricted-`pub` item whose name never appears in
/// any other workspace file (tests and examples count as references, so
/// externally exercised API stays alive).
///
/// Exemption: a pub *type* named in the declaration surface of another pub
/// item — a `pub fn` signature or a `pub struct`/`enum`/`type` body — is
/// never flagged. Callers of the exposing item use the type without ever
/// writing its name (`let rows = run_ablation(..)`), yet rustc's
/// `private_interfaces` lint pins it to `pub`. Such a type lives and dies
/// with its exposer: if the exposer itself is dead, *it* is flagged, and
/// once it is removed the type loses its exemption on the next run.
#[must_use]
pub fn check_dead_pub(
    files: &BTreeMap<String, FileItems>,
    idents_by_file: &BTreeMap<String, BTreeSet<String>>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for items in files.values() {
        for item in &items.pub_items {
            let referenced = idents_by_file
                .iter()
                .any(|(file, idents)| file != &item.file && idents.contains(&item.name))
                || (matches!(item.kind, "struct" | "enum" | "trait" | "type")
                    && files.values().any(|f| f.sig_idents.contains(&item.name)));
            if !referenced {
                findings.push(Finding {
                    rule: "dead-pub",
                    file: item.file.clone(),
                    line: item.line,
                    message: format!(
                        "pub {} `{}` has no references outside {}; delete it or narrow \
                         the visibility",
                        item.kind, item.name, item.file
                    ),
                    waived: false,
                });
            }
        }
    }
    findings.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;
    use crate::scanner;

    fn file(krate: &str, path: &str, src: &str) -> (String, FileItems) {
        let scan = scanner::scan(src);
        let toks = scanner::strip_test_regions(scan.tokens);
        (path.to_string(), extract(krate, path, &toks))
    }

    fn graph(files: Vec<(String, FileItems)>) -> CallGraph {
        CallGraph::build(&files.into_iter().collect())
    }

    #[test]
    fn panic_two_crates_away_reported_with_chain() {
        let g = graph(vec![
            file(
                "serve",
                "crates/serve/src/server.rs",
                "use snaps_query::run_query;\npub fn search() { run_query(); }\n",
            ),
            file(
                "query",
                "crates/query/src/lib.rs",
                "use snaps_core::lookup;\npub fn run_query() { lookup(); }\n",
            ),
            file("core", "crates/core/src/lib.rs", "pub fn lookup() { maybe().unwrap(); }\n"),
        ]);
        let out = check(&g, &BTreeSet::new());
        let f =
            out.findings.iter().find(|f| f.rule == "panic-reachability").expect("panic finding");
        assert_eq!(f.file, "crates/core/src/lib.rs");
        assert!(f.message.contains("GET /search"), "{}", f.message);
        assert!(
            f.message.contains("serve::server::search → query::run_query → core::lookup"),
            "full chain printed: {}",
            f.message
        );
    }

    #[test]
    fn panic_free_files_are_skipped() {
        let g = graph(vec![file(
            "serve",
            "crates/serve/src/server.rs",
            "pub fn search() { x.unwrap(); }\n",
        )]);
        let skip: BTreeSet<String> = ["crates/serve/src/server.rs".to_string()].into();
        let out = check(&g, &skip);
        assert!(out.findings.iter().all(|f| f.rule != "panic-reachability"), "{:?}", out.findings);
    }

    #[test]
    fn unreachable_panic_not_reported() {
        let g = graph(vec![
            file("serve", "crates/serve/src/server.rs", "pub fn search() {}\n"),
            file("core", "crates/core/src/lib.rs", "pub fn offline_only() { x.unwrap(); }\n"),
        ]);
        let out = check(&g, &BTreeSet::new());
        assert!(out.findings.iter().all(|f| f.rule != "panic-reachability"));
    }

    #[test]
    fn entry_stats_cover_every_declared_entry() {
        let g = graph(vec![file("serve", "crates/serve/src/server.rs", "pub fn search() {}\n")]);
        let out = check(&g, &BTreeSet::new());
        assert_eq!(out.entry_stats.len(), ENTRY_POINTS.len());
        let search = &out.entry_stats[0];
        assert_eq!(search.label, "GET /search");
        assert_eq!(search.roots, 1);
        assert_eq!(search.reachable, 1);
    }

    #[test]
    fn lock_across_crate_call_flagged_and_released_guard_ok() {
        let src_bad = "use snaps_obs::bump;\n\
             pub fn search(&self) { let g = self.m.lock(); g.push(1); bump(); }\n";
        let src_ok = "use snaps_obs::bump;\n\
             pub fn search(&self) { { let g = self.m.lock(); g.push(1); } bump(); }\n";
        for (src, expect) in [(src_bad, true), (src_ok, false)] {
            let g = graph(vec![
                file("serve", "crates/serve/src/server.rs", src),
                file("obs", "crates/obs/src/lib.rs", "pub fn bump() {}\n"),
            ]);
            let out = check(&g, &BTreeSet::new());
            let fired = out.findings.iter().any(|f| f.rule == "lock-discipline");
            assert_eq!(fired, expect, "{src}: {:?}", out.findings);
        }
    }

    #[test]
    fn lock_exempt_method_names_do_not_fire() {
        // `.get(` under a lock method-matches PedigreeGraph::get but is an
        // std collection name — exempted from the fallback.
        let g = graph(vec![
            file(
                "serve",
                "crates/serve/src/server.rs",
                "pub fn search(&self) { let g = self.m.lock(); g.get(1); }\n",
            ),
            file(
                "core",
                "crates/core/src/pedigree.rs",
                "pub struct PedigreeGraph;\nimpl PedigreeGraph { pub fn get(&self) {} }\n",
            ),
        ]);
        let out = check(&g, &BTreeSet::new());
        assert!(out.findings.iter().all(|f| f.rule != "lock-discipline"), "{:?}", out.findings);
    }

    #[test]
    fn dead_pub_flagged_and_referenced_item_kept() {
        let files: BTreeMap<String, FileItems> = [
            file(
                "index",
                "crates/index/src/lib.rs",
                "pub fn used_elsewhere() {}\npub fn never_used() {}\n",
            ),
            file("serve", "crates/serve/src/lib.rs", "fn f() { used_elsewhere(); }\n"),
        ]
        .into_iter()
        .collect();
        let mut idents: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        idents.insert(
            "crates/index/src/lib.rs".into(),
            ["used_elsewhere", "never_used"].iter().map(|s| s.to_string()).collect(),
        );
        idents.insert(
            "crates/serve/src/lib.rs".into(),
            ["used_elsewhere"].iter().map(|s| s.to_string()).collect(),
        );
        let findings = check_dead_pub(&files, &idents);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("never_used"));
    }

    #[test]
    fn signature_exposed_type_exempt_from_dead_pub_but_orphan_type_flagged() {
        // `Row` is never named by eval's callers — they write
        // `let rows = run(..)` — but rustc pins it to `pub` because the
        // externally used `run` returns it. `Orphan` has no exposer.
        let src = "pub struct Row { pub n: usize }\n\
                   pub struct Orphan { pub n: usize }\n\
                   pub struct Nested { pub rows: Vec<Row> }\n\
                   pub fn run() -> Vec<Row> { Vec::new() }\n\
                   pub fn wrap() -> Nested { Nested { rows: run() } }\n";
        let files: BTreeMap<String, FileItems> = [
            file("eval", "crates/eval/src/lib.rs", src),
            file("bench", "crates/bench/src/lib.rs", "fn f() { run(); wrap(); }\n"),
        ]
        .into_iter()
        .collect();
        let mut idents: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        idents.insert(
            "crates/eval/src/lib.rs".into(),
            ["Row", "Orphan", "Nested", "run", "wrap"].iter().map(|s| s.to_string()).collect(),
        );
        idents.insert(
            "crates/bench/src/lib.rs".into(),
            ["run", "wrap"].iter().map(|s| s.to_string()).collect(),
        );
        let findings = check_dead_pub(&files, &idents);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("Orphan"), "{findings:?}");
    }
}
