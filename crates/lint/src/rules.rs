//! The rule catalogue and the per-file checking engine.
//!
//! Every rule has a stable kebab-case name — the name users write in
//! `// snaps-lint: allow(<rule>) -- <reason>` waivers and the name the JSON
//! report keys findings by. Rules fire on the significant-token stream from
//! [`crate::scanner`], so matches inside comments and string literals are
//! impossible by construction, and test code is stripped before checking.

use crate::scanner::{Annotation, Scan, Spanned, Tok};

/// How a file is classified, which decides the rules that apply to it.
#[derive(Debug, Clone, Default)]
pub struct FileClass {
    /// Short crate name (`core`, `serve`, …; `snaps` for the facade).
    pub crate_name: String,
    /// Output of this crate feeds ER results or snapshot bytes: the
    /// determinism rules apply.
    pub result_affecting: bool,
    /// The file is on the serve request path or the snapshot load path:
    /// the panic-freedom rules apply.
    pub panic_free: bool,
    /// Integration tests, benches, examples: only `no-unsafe` applies.
    pub test_code: bool,
}

/// One rule violation (possibly waived by an annotation).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule name.
    pub rule: &'static str,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable diagnostic.
    pub message: String,
    /// Whether an inline allow-annotation waives it.
    pub waived: bool,
}

/// A rule's name and rationale, for `--list-rules` and the report.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable kebab-case rule name.
    pub name: &'static str,
    /// One-line rationale.
    pub description: &'static str,
}

/// The full rule catalogue.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "hash-iter",
        description: "no HashMap/HashSet in result-affecting crates: their iteration order \
                      is randomised per process and leaks into ER output and snapshot bytes \
                      (use BTreeMap/BTreeSet or explicitly sorted iteration)",
    },
    RuleInfo {
        name: "wall-clock",
        description: "no Instant/SystemTime in result-affecting crates: timing must never \
                      influence resolution results",
    },
    RuleInfo {
        name: "entropy",
        description: "no RNG-from-entropy (thread_rng/from_entropy/OsRng/getrandom) in \
                      result-affecting crates: all randomness must be seeded",
    },
    RuleInfo {
        name: "panic-path",
        description: "no unwrap/expect/panic!/unreachable!/todo!/unimplemented! on the serve \
                      request path or the snapshot load path: map errors to typed responses",
    },
    RuleInfo {
        name: "index-guard",
        description: "no unguarded slice/collection indexing on the serve request path or the \
                      snapshot load path: use get()/get_mut() and handle the None",
    },
    RuleInfo {
        name: "thread-containment",
        description: "std::thread only in serve/bench/obs: concurrency stays at the system \
                      edge, resolution code is single-threaded and deterministic",
    },
    RuleInfo {
        name: "process-net",
        description: "std::process and std::net only in serve/bench: library crates never \
                      touch sockets or subprocesses",
    },
    RuleInfo {
        name: "no-unsafe",
        description: "unsafe nowhere in the workspace (backs the workspace-level \
                      `unsafe_code = deny`)",
    },
    RuleInfo {
        name: "layering",
        description: "crate dependencies must follow the allowed DAG (e.g. core must never \
                      depend on serve); checked from Cargo manifests and use-statements",
    },
    RuleInfo {
        name: "annotation",
        description: "allow-annotations must name known rules and carry a `-- <reason>`; \
                      malformed waivers are findings themselves (never waivable)",
    },
    RuleInfo {
        name: "allow-budget",
        description: "the workspace-wide count of allow-annotations must stay within budget; \
                      waivers are exceptions, not a lifestyle (never waivable)",
    },
    RuleInfo {
        name: "panic-reachability",
        description: "no unwrap/expect/panic-family macro/unguarded index transitively \
                      reachable from a serve entry point: the diagnostic prints the full \
                      call chain from the entry to the panic site",
    },
    RuleInfo {
        name: "dead-pub",
        description: "pub items with zero references in any other workspace file are dead \
                      API surface: delete them or narrow the visibility (paper-named API \
                      may be kept via a documented waiver; types named in a pub signature \
                      are exempt — they are pinned to pub by rustc's private_interfaces \
                      lint and live or die with their exposer)",
    },
    RuleInfo {
        name: "lock-discipline",
        description: "no .lock() guard held across a call into another workspace crate on \
                      the serve path: cross-crate work under a lock serialises the worker \
                      pool and risks deadlock",
    },
    RuleInfo {
        name: "waiver-staleness",
        description: "a waiver whose rule no longer fires on its line is dead weight that \
                      hides future violations; remove it (never waivable)",
    },
    RuleInfo {
        name: "lock-order",
        description: "the lock-order graph (keys = owning type+field, edges = acquired B \
                      while holding A, walked from the declared entry points) must be \
                      acyclic: a cycle — including re-acquiring a held key — is a \
                      potential deadlock, reported with the full entry→site chain for \
                      every edge in the cycle",
    },
    RuleInfo {
        name: "blocking-under-lock",
        description: "no queue wait (recv/join/Condvar::wait), sleep, or synchronous I/O \
                      while a lock guard is live on a serve entry path: a blocked holder \
                      convoys every thread contending on the lock (Condvar::wait is exempt \
                      for the guard it consumes)",
    },
    RuleInfo {
        name: "determinism-taint",
        description: "no nondeterminism source (HashMap/HashSet iteration, Instant/SystemTime, \
                      thread identity, seed-free RNG, pointer addresses) in a result-affecting \
                      crate may flow along the call graph into the snapshot writer, the wire \
                      codec, or a JSON serialiser; the diagnostic prints the entry chain and \
                      the taint path down to the seeding source",
    },
    RuleInfo {
        name: "shard-safety",
        description: "functions reachable from a declared parallel-stage root (blocking, \
                      comparison, dependency-graph, merge-reduction) must not write shared \
                      state: no mutation of interior-mutability statics, no non-commutative \
                      accumulation through a lock guard, no store/swap/compare_exchange on \
                      shared atomics (fetch_add-family RMWs commute and are exempt), and no \
                      lock key outside the pass-3 lock-order graph",
    },
    RuleInfo {
        name: "forbid-unsafe",
        description: "every crate root must carry #![forbid(unsafe_code)] so dropping the \
                      attribute (not just writing unsafe) is itself a violation; belt to the \
                      no-unsafe rule's braces",
    },
    RuleInfo {
        name: "numeric-cast",
        description: "no narrowing `as` cast on the snapshot path (the wire codec files \
                      plus serve-reachable serve/core code): lengths, offsets, and \
                      checksums must go through try_from or a recognized len_u32-style \
                      checked helper; widening casts are clean",
    },
    RuleInfo {
        name: "wire-symmetry",
        description: "every snapshot section's encoder and decoder must produce \
                      mirror-image wire sequences: same primitive types, same order, same \
                      length-prefix convention, with helper calls inlined through the call \
                      graph; a mismatch is reported as a field-level diff carrying both \
                      call chains, and a section registered in only one direction is \
                      itself a finding",
    },
    RuleInfo {
        name: "wire-drift",
        description: "the wire layout extracted from the snapshot codec must match the \
                      committed results/SNAPSHOT_schema.json golden; any layout change \
                      requires a FORMAT_VERSION bump plus a SNAPS_UPDATE_SCHEMA=1 \
                      regeneration, so the snapshot contract can never drift silently \
                      under existing readers",
    },
    RuleInfo {
        name: "wire-totality",
        description: "every decode loop bound must come from a bounds-checked length \
                      (Reader::len) or a try_from-checked conversion, never a raw \
                      u32/u64 read: no wire field may drive an unchecked allocation or \
                      loop on the snapshot load path",
    },
    RuleInfo {
        name: "alloc-budget",
        description: "every allocation site reachable from a serve entry point is \
                      classified bounded / data-proportional / unbounded-per-request; \
                      loop-carried growth on a container constructed without a capacity \
                      hint in the same fn is unbounded and fails the hard zero gate — \
                      add with_capacity/reserve or hoist a reusable buffer; the \
                      bounded/data-proportional budgets are ratcheted per entry",
    },
    RuleInfo {
        name: "borrow-not-own",
        description: "a fn reachable from a serve entry, defined on a snapshot-resident \
                      type (SearchEngine, PedigreeGraph, the indexes), must not return \
                      an owned String/Vec built by clone/to_owned/to_string/to_vec on \
                      self state: lend &str/slices instead so the zero-copy snapshot \
                      layout can borrow from the buffer",
    },
];

/// Maximum allow-annotations tolerated workspace-wide. Lowered from 40 to
/// 16 once the waiver-staleness rule guaranteed the set can only shrink:
/// the workspace carries 10 real waivers today (token-rule exceptions plus
/// documented paper-named API kept alive under `dead-pub`), so 16 leaves
/// headroom without inviting a waiver lifestyle.
pub const ALLOW_BUDGET: usize = 16;

/// Crates whose output feeds ER results or snapshot bytes.
pub const RESULT_AFFECTING: &[&str] =
    &["core", "query", "pedigree", "index", "graph", "model", "strsim", "blocking"];

/// Crates allowed to use `std::thread`.
pub(crate) const THREAD_ALLOWED: &[&str] = &["serve", "bench", "obs"];

/// Crates allowed to use `std::process` / `std::net`.
pub(crate) const PROCESS_NET_ALLOWED: &[&str] = &["serve", "bench"];

/// Files (crate-relative, within `serve`) that must be panic-free: the
/// request path and the snapshot load path.
pub const PANIC_FREE_SERVE_FILES: &[&str] = &[
    "src/server.rs",
    "src/http.rs",
    "src/json.rs",
    "src/snapshot.rs",
    "src/wire.rs",
    "src/lib.rs",
];

/// Is `name` a known rule name (for validating annotations)?
#[must_use]
pub fn is_known_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// Rules that can never be waived.
#[must_use]
pub fn is_waivable(name: &str) -> bool {
    !matches!(name, "annotation" | "allow-budget" | "waiver-staleness")
}

fn ident_at(tokens: &[Spanned], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[Spanned], i: usize) -> Option<char> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Is `tokens[i]` followed by `::`?
fn followed_by_path_sep(tokens: &[Spanned], i: usize) -> bool {
    punct_at(tokens, i + 1) == Some(':') && punct_at(tokens, i + 2) == Some(':')
}

/// Run every token-level rule over one file's stripped token stream.
#[must_use]
pub fn check_tokens(class: &FileClass, file: &str, tokens: &[Spanned]) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut push = |rule: &'static str, line: usize, message: String| {
        out.push(Finding { rule, file: file.to_string(), line, message, waived: false });
    };

    let thread_ok = THREAD_ALLOWED.contains(&class.crate_name.as_str());
    let procnet_ok = PROCESS_NET_ALLOWED.contains(&class.crate_name.as_str());

    for i in 0..tokens.len() {
        let line = tokens[i].line;
        let Some(id) = ident_at(tokens, i) else {
            // Unguarded indexing: `expr[...]` — a `[` directly after an
            // identifier, `)`, `]`, or `?` is an index or slice expression.
            // Keywords that legally precede `[` in type or expression
            // position (`&mut [u8]`, `return [a, b]`, …) are excluded.
            const NOT_INDEXABLE: &[&str] = &[
                "mut", "dyn", "impl", "const", "ref", "move", "as", "in", "else", "return",
                "break", "match", "if", "where",
            ];
            if class.panic_free
                && !class.test_code
                && punct_at(tokens, i) == Some('[')
                && i > 0
                && (ident_at(tokens, i - 1).is_some_and(|id| !NOT_INDEXABLE.contains(&id))
                    || matches!(punct_at(tokens, i - 1), Some(')') | Some(']') | Some('?')))
            {
                push(
                    "index-guard",
                    line,
                    "indexing can panic on out-of-range input; use get()/get_mut()".to_string(),
                );
            }
            continue;
        };

        // no-unsafe applies everywhere, including tests and benches.
        if id == "unsafe" {
            push("no-unsafe", line, "unsafe code is banned workspace-wide".to_string());
            continue;
        }
        if class.test_code {
            continue;
        }

        if class.result_affecting {
            match id {
                "HashMap" | "HashSet" | "hash_map" | "hash_set" => push(
                    "hash-iter",
                    line,
                    format!("{id} in a result-affecting crate: iteration order is randomised per process"),
                ),
                "Instant" | "SystemTime" => push(
                    "wall-clock",
                    line,
                    format!("{id} in a result-affecting crate: results must not depend on time"),
                ),
                "thread_rng" | "from_entropy" | "OsRng" | "getrandom" => push(
                    "entropy",
                    line,
                    format!("{id} draws OS entropy: all randomness in result-affecting crates must be seeded"),
                ),
                _ => {}
            }
        }

        if class.panic_free {
            match id {
                "unwrap" | "expect"
                    if punct_at(tokens, i.wrapping_sub(1)) == Some('.')
                        && punct_at(tokens, i + 1) == Some('(') =>
                {
                    push(
                        "panic-path",
                        line,
                        format!(".{id}() on the panic-free path: return a typed error instead"),
                    );
                }
                "panic" | "unreachable" | "todo" | "unimplemented"
                    if punct_at(tokens, i + 1) == Some('!') =>
                {
                    push(
                        "panic-path",
                        line,
                        format!("{id}! on the panic-free path: return a typed error instead"),
                    );
                }
                _ => {}
            }
        }

        // `std::thread` / `std::process` / `std::net` are matched with their
        // `std` prefix so a local module merely named `process` or `net`
        // (e.g. `snaps_query::process`) cannot false-positive. The import
        // site always names the `std::` path, so evasion via re-import would
        // itself be flagged.
        if id == "std" && followed_by_path_sep(tokens, i) {
            match ident_at(tokens, i + 3) {
                Some("thread") if !thread_ok => push(
                    "thread-containment",
                    line,
                    format!("std::thread use outside {THREAD_ALLOWED:?}"),
                ),
                Some(m @ ("process" | "net")) if !procnet_ok => push(
                    "process-net",
                    line,
                    format!("std::{m} use outside {PROCESS_NET_ALLOWED:?}"),
                ),
                _ => {}
            }
        }
        if !procnet_ok && matches!(id, "TcpListener" | "TcpStream" | "UdpSocket") {
            push("process-net", line, format!("{id} use outside {PROCESS_NET_ALLOWED:?}"));
        }
    }
    out
}

/// Validate annotations and apply them to `findings`: a finding whose line
/// is covered by an annotation naming its rule becomes `waived`. Malformed
/// or unknown-rule annotations are findings of the `annotation` rule.
pub fn apply_annotations(file: &str, annotations: &[Annotation], findings: &mut Vec<Finding>) {
    for ann in annotations {
        if let Some(err) = &ann.error {
            findings.push(Finding {
                rule: "annotation",
                file: file.to_string(),
                line: ann.line,
                message: format!("malformed allow-annotation: {err}"),
                waived: false,
            });
            continue;
        }
        for rule in &ann.rules {
            if !is_known_rule(rule) {
                findings.push(Finding {
                    rule: "annotation",
                    file: file.to_string(),
                    line: ann.line,
                    message: format!("allow-annotation names unknown rule '{rule}'"),
                    waived: false,
                });
            } else if !is_waivable(rule) {
                findings.push(Finding {
                    rule: "annotation",
                    file: file.to_string(),
                    line: ann.line,
                    message: format!("rule '{rule}' cannot be waived"),
                    waived: false,
                });
            }
        }
    }
    for f in findings.iter_mut() {
        if f.waived || !is_waivable(f.rule) {
            continue;
        }
        f.waived = annotations.iter().any(|a| {
            a.error.is_none() && a.applies_to == f.line && a.rules.iter().any(|r| r == f.rule)
        });
    }
}

/// Scan + strip + check + waive one file's source text.
#[must_use]
pub fn check_source(class: &FileClass, file: &str, src: &str) -> (Vec<Finding>, Vec<Annotation>) {
    let Scan { tokens, annotations } = crate::scanner::scan(src);
    let tokens = crate::scanner::strip_test_regions(tokens);
    let mut findings = check_tokens(class, file, &tokens);
    apply_annotations(file, &annotations, &mut findings);
    (findings, annotations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_class() -> FileClass {
        FileClass {
            crate_name: "core".into(),
            result_affecting: true,
            panic_free: false,
            test_code: false,
        }
    }

    fn panic_class() -> FileClass {
        FileClass {
            crate_name: "serve".into(),
            result_affecting: false,
            panic_free: true,
            test_code: false,
        }
    }

    fn rules_fired(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().filter(|f| !f.waived).map(|f| f.rule).collect()
    }

    #[test]
    fn hash_map_fires_in_result_crate_only() {
        let src = "use std::collections::HashMap;\n";
        let (f, _) = check_source(&result_class(), "x.rs", src);
        assert_eq!(rules_fired(&f), vec!["hash-iter"]);
        let serve = FileClass { crate_name: "serve".into(), ..FileClass::default() };
        let (f, _) = check_source(&serve, "x.rs", src);
        assert!(f.is_empty());
    }

    #[test]
    fn unwrap_fires_only_as_method_call() {
        let (f, _) = check_source(&panic_class(), "x.rs", "let v = x.unwrap();\n");
        assert_eq!(rules_fired(&f), vec!["panic-path"]);
        // An identifier merely named unwrap_all is not a call to unwrap.
        let (f, _) = check_source(&panic_class(), "x.rs", "let unwrap_all = 3; f(unwrap_all);\n");
        assert!(f.is_empty());
    }

    #[test]
    fn macros_fire() {
        let (f, _) =
            check_source(&panic_class(), "x.rs", "fn f() { panic!(\"boom\"); unreachable!() }\n");
        assert_eq!(rules_fired(&f), vec!["panic-path", "panic-path"]);
    }

    #[test]
    fn indexing_flagged_but_array_types_are_not() {
        let (f, _) = check_source(&panic_class(), "x.rs", "let x = buf[i];\n");
        assert_eq!(rules_fired(&f), vec!["index-guard"]);
        let (f, _) = check_source(&panic_class(), "x.rs", "fn f(b: &[u8]) -> [u8; 4] { g(b) }\n");
        assert!(f.is_empty(), "{f:?}");
        let (f, _) = check_source(&panic_class(), "x.rs", "fn f(b: &mut [u8]) {}\n");
        assert!(f.is_empty(), "slice type after mut: {f:?}");
        let (f, _) = check_source(&panic_class(), "x.rs", "let v = vec![1, 2];\n");
        assert!(f.is_empty(), "macro bang before bracket: {f:?}");
    }

    #[test]
    fn waiver_on_same_line_works() {
        let src = "use std::collections::HashMap; // snaps-lint: allow(hash-iter) -- probe only\n";
        let (f, anns) = check_source(&result_class(), "x.rs", src);
        assert!(f.iter().all(|x| x.waived), "{f:?}");
        assert_eq!(anns.len(), 1);
    }

    #[test]
    fn waiver_with_unknown_rule_rejected() {
        let src = "// snaps-lint: allow(no-such-rule) -- whatever\nlet x = 1;\n";
        let (f, _) = check_source(&result_class(), "x.rs", src);
        assert_eq!(rules_fired(&f), vec!["annotation"]);
    }

    #[test]
    fn unwaivable_rules_stay() {
        let src = "// snaps-lint: allow(allow-budget) -- nice try\nlet x = 1;\n";
        let (f, _) = check_source(&result_class(), "x.rs", src);
        assert_eq!(rules_fired(&f), vec!["annotation"]);
    }

    #[test]
    fn thread_and_net_containment() {
        let core = FileClass { crate_name: "core".into(), ..FileClass::default() };
        let (f, _) = check_source(&core, "x.rs", "fn f() { std::thread::spawn(|| {}); }\n");
        assert_eq!(rules_fired(&f), vec!["thread-containment"]);
        let (f, _) = check_source(&core, "x.rs", "use std::net::TcpStream;\n");
        // `net::` path plus the TcpStream identifier each fire once.
        assert_eq!(rules_fired(&f), vec!["process-net", "process-net"]);
        let obs = FileClass { crate_name: "obs".into(), ..FileClass::default() };
        let (f, _) = check_source(&obs, "x.rs", "fn f() { std::thread::spawn(|| {}); }\n");
        assert!(f.is_empty());
    }

    #[test]
    fn unsafe_fires_even_in_test_code() {
        let class = FileClass { test_code: true, ..FileClass::default() };
        let (f, _) = check_source(
            &class,
            "x.rs",
            "fn f() { unsafe { core::hint::unreachable_unchecked() } }\n",
        );
        assert_eq!(rules_fired(&f), vec!["no-unsafe"]);
    }

    #[test]
    fn test_module_is_invisible_to_rules() {
        let src = "
fn ok() {}
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() { HashMap::new(); x.unwrap(); }
}
";
        let (f, _) = check_source(&result_class(), "x.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }
}
