//! The similarity-aware index S (paper §6, after Christen et al.).
//!
//! For every indexed string value, all other values that share at least one
//! bigram and reach a Jaro-Winkler similarity of `s_t` are pre-computed, so
//! approximate matching at query time is a hash lookup. Query values never
//! seen before are compared once against the bigram-sharing candidates and
//! the result is cached "to speed-up future queries of the same value" (§7)
//! — in a sharded, bounded [`SimCache`] so concurrent readers share one
//! index through `&self` and novel query strings cannot grow memory without
//! limit.

use std::collections::BTreeMap;
use std::sync::Arc;

use snaps_obs::Obs;
use snaps_strsim::jaro_winkler;
use snaps_strsim::qgram::bigrams;

use crate::simcache::{SimCache, DEFAULT_CACHE_CAPACITY};

/// A value's pre-computed approximate matches: `(value, similarity)`,
/// sorted descending by similarity.
pub type Matches = Vec<(String, f64)>;

/// The similarity-aware index.
///
/// Pre-computed matches of *indexed* values are immutable after
/// [`build`](Self::build); matches of unseen *query* values live in a
/// bounded memoisation cache. Both are readable through `&self`, so one
/// index can serve many threads.
#[derive(Debug)]
pub struct SimilarityIndex {
    /// Minimum similarity retained (`s_t`).
    s_t: f64,
    /// Indexed values in insertion order.
    values: Vec<String>,
    /// Bigram → indices into `values` (postings lists).
    postings: BTreeMap<String, Vec<u32>>,
    /// value → its matches among `values` (immutable after build).
    matches: BTreeMap<String, Arc<Matches>>,
    /// Bounded memo for query values not among `values`.
    cache: SimCache,
}

impl Clone for SimilarityIndex {
    /// Clones the index structure; the query-value cache starts empty (it
    /// is a per-instance memo, not part of the index's logical content).
    fn clone(&self) -> Self {
        Self {
            s_t: self.s_t,
            values: self.values.clone(),
            postings: self.postings.clone(),
            matches: self.matches.clone(),
            cache: SimCache::new(self.cache.capacity()),
        }
    }
}

impl SimilarityIndex {
    /// Pre-compute the index over `values` with threshold `s_t`.
    ///
    /// # Panics
    /// Panics unless `0 < s_t < 1` (the paper's setting is `0.5`).
    #[must_use]
    pub fn build<'v>(values: impl IntoIterator<Item = &'v str>, s_t: f64) -> Self {
        assert!(s_t > 0.0 && s_t < 1.0, "s_t must be in (0,1)");
        let mut idx = Self {
            s_t,
            values: Vec::new(),
            postings: BTreeMap::new(),
            matches: BTreeMap::new(),
            cache: SimCache::new(DEFAULT_CACHE_CAPACITY),
        };
        for v in values {
            idx.insert_value(v);
        }
        // Pre-compute every indexed value's matches.
        let all: Vec<String> = idx.values.clone();
        for v in &all {
            let m = idx.compute_matches(v);
            idx.matches.insert(v.clone(), Arc::new(m));
        }
        idx
    }

    /// Restore an index from its serialised parts (snapshot loading):
    /// threshold, indexed values, and each value's pre-computed matches.
    /// Postings are rebuilt from the values — they are derived data.
    ///
    /// # Errors
    /// Rejects an out-of-range `s_t` and match lists that do not carry
    /// exactly one entry per indexed value. Snapshot checksums catch random
    /// corruption, but the loader still refuses structurally invalid parts
    /// instead of panicking on the serve path.
    pub fn try_from_parts(
        s_t: f64,
        values: Vec<String>,
        matches: Vec<(String, Matches)>,
    ) -> Result<Self, &'static str> {
        if !(s_t > 0.0 && s_t < 1.0) {
            return Err("s_t must be in (0,1)");
        }
        let mut idx = Self {
            s_t,
            values: Vec::new(),
            postings: BTreeMap::new(),
            matches: BTreeMap::new(),
            cache: SimCache::new(DEFAULT_CACHE_CAPACITY),
        };
        for v in &values {
            idx.insert_value(v);
        }
        for (v, m) in matches {
            if !idx.values.iter().any(|x| x == &v) {
                return Err("match entry for un-indexed value");
            }
            idx.matches.insert(v, Arc::new(m));
        }
        if idx.matches.len() != idx.values.len() {
            return Err("one match list required per indexed value");
        }
        Ok(idx)
    }

    /// [`Self::try_from_parts`] for offline builders that trust their input.
    ///
    /// # Panics
    /// Panics where `try_from_parts` would return an error.
    #[must_use]
    pub fn from_parts(s_t: f64, values: Vec<String>, matches: Vec<(String, Matches)>) -> Self {
        match Self::try_from_parts(s_t, values, matches) {
            Ok(idx) => idx,
            Err(e) => panic!("invalid index parts: {e}"),
        }
    }

    /// Replace the query-value cache with one holding `capacity` entries
    /// (zero is clamped to the cache's minimum).
    #[must_use]
    // snaps-lint: allow(dead-pub) -- public tuning knob for the paper's cache-size experiments
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = SimCache::new(capacity);
        self
    }

    /// Wire the cache's `index.sim_cache.*` counters to `obs`.
    pub fn instrument(&mut self, obs: &Obs) {
        self.cache.instrument(obs);
    }

    /// Number of indexed values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the index holds no values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The similarity threshold `s_t`.
    #[must_use]
    pub fn s_t(&self) -> f64 {
        self.s_t
    }

    /// Indexed values in insertion order.
    #[must_use]
    pub fn indexed_values(&self) -> &[String] {
        &self.values
    }

    /// Every indexed value with its pre-computed matches, in ascending
    /// value order (serialisation support).
    pub fn precomputed(&self) -> impl Iterator<Item = (&str, &Matches)> {
        self.matches.iter().map(|(v, m)| (v.as_str(), m.as_ref()))
    }

    /// Entries currently memoised for unseen query values.
    #[must_use]
    #[cfg(test)]
    pub(crate) fn cached_queries(&self) -> usize {
        self.cache.len()
    }

    /// Total stored match pairs (the index's size driver — the reason `s_t`
    /// is not set lower, §6).
    #[must_use]
    #[cfg(test)]
    pub(crate) fn stored_pairs(&self) -> usize {
        self.matches.values().map(|m| m.len()).sum()
    }

    fn insert_value(&mut self, v: &str) {
        if v.is_empty() || self.values.iter().any(|x| x == v) {
            return;
        }
        // Postings ids are u32; past 2^32 values further inserts are dropped
        // rather than panicking (real datasets are orders of magnitude off).
        let Ok(id) = u32::try_from(self.values.len()) else { return };
        self.values.push(v.to_string());
        for bg in bigrams(v) {
            self.postings.entry(bg).or_default().push(id);
        }
    }

    /// Candidates sharing at least one bigram with `v`.
    fn candidates(&self, v: &str) -> Vec<u32> {
        let mut ids: Vec<u32> =
            bigrams(v).iter().filter_map(|bg| self.postings.get(bg)).flatten().copied().collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    fn compute_matches(&self, v: &str) -> Matches {
        let mut out: Matches = self
            .candidates(v)
            .into_iter()
            .filter_map(|id| self.values.get(id as usize))
            .filter(|cand| cand.as_str() != v)
            .filter_map(|cand| {
                let s = jaro_winkler(v, cand);
                (s >= self.s_t).then(|| (cand.clone(), s))
            })
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// The pre-computed matches of an indexed value, if present.
    #[must_use]
    pub fn lookup(&self, v: &str) -> Option<&Matches> {
        self.matches.get(v).map(Arc::as_ref)
    }

    /// Matches for any value: pre-computed when indexed, otherwise computed
    /// against the bigram-sharing candidates and memoised in the bounded
    /// cache (the §7 online extension — the unseen value itself is *not*
    /// added to the postings, it is a query string, not data).
    ///
    /// Takes `&self`: safe to call from many threads on one shared index.
    #[must_use]
    pub fn lookup_or_compute(&self, v: &str) -> Arc<Matches> {
        if let Some(m) = self.matches.get(v) {
            return Arc::clone(m);
        }
        if let Some(m) = self.cache.get(v) {
            return m;
        }
        let m = Arc::new(self.compute_matches(v));
        self.cache.insert(v, Arc::clone(&m));
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> SimilarityIndex {
        SimilarityIndex::build(["macdonald", "mcdonald", "macdougall", "martin", "tweedie"], 0.5)
    }

    #[test]
    fn exact_values_indexed() {
        let i = idx();
        assert_eq!(i.len(), 5);
        assert!(i.lookup("macdonald").is_some());
        assert!(i.lookup("nosuch").is_none());
    }

    #[test]
    fn similar_values_found_sorted() {
        let i = idx();
        let m = i.lookup("macdonald").unwrap();
        assert!(!m.is_empty());
        assert_eq!(m[0].0, "mcdonald", "most similar first: {m:?}");
        for w in m.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // Self is never among the matches.
        assert!(m.iter().all(|(v, _)| v != "macdonald"));
    }

    #[test]
    fn threshold_respected() {
        let i = idx();
        for v in ["macdonald", "martin", "tweedie"] {
            for (_, s) in i.lookup(v).unwrap() {
                assert!(*s >= 0.5);
            }
        }
    }

    #[test]
    fn dissimilar_not_matched() {
        let i = idx();
        let m = i.lookup("tweedie").unwrap();
        assert!(m.iter().all(|(v, _)| v != "martin"), "{m:?}");
    }

    #[test]
    fn unseen_query_value_cached() {
        let i = idx();
        assert!(i.lookup("macdonalds").is_none());
        let m = i.lookup_or_compute("macdonalds");
        assert!(m.iter().any(|(v, _)| v == "macdonald"));
        // Second lookup hits the memo and agrees.
        assert_eq!(i.cached_queries(), 1);
        assert_eq!(i.lookup_or_compute("macdonalds"), m);
        assert_eq!(i.cached_queries(), 1);
        // The query string was not added as an indexed value.
        assert_eq!(i.len(), 5);
        assert!(i.lookup("macdonalds").is_none(), "not among pre-computed");
        let others = i.lookup("macdonald").unwrap();
        assert!(others.iter().all(|(v, _)| v != "macdonalds"));
    }

    #[test]
    fn indexed_lookup_or_compute_skips_cache() {
        let i = idx();
        let m = i.lookup_or_compute("macdonald");
        assert_eq!(&*m, i.lookup("macdonald").unwrap());
        assert_eq!(i.cached_queries(), 0, "indexed values never enter the cache");
    }

    #[test]
    fn cache_capacity_bounds_memoisation() {
        let i = idx().with_cache_capacity(16);
        for n in 0..1000 {
            let _ = i.lookup_or_compute(&format!("query{n}"));
        }
        assert!(i.cached_queries() <= 16 + 16, "bounded: {}", i.cached_queries());
        assert_eq!(i.len(), 5, "indexed values untouched");
    }

    #[test]
    fn shared_index_answers_identically_across_threads() {
        let i = std::sync::Arc::new(idx());
        let expected = i.lookup_or_compute("macdonalds");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let i = std::sync::Arc::clone(&i);
                let expected = expected.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        assert_eq!(i.lookup_or_compute("macdonalds"), expected);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn clone_preserves_index_but_not_memo() {
        let i = idx();
        let _ = i.lookup_or_compute("macdonalds");
        let c = i.clone();
        assert_eq!(c.len(), i.len());
        assert_eq!(c.stored_pairs(), i.stored_pairs());
        assert_eq!(c.cached_queries(), 0);
    }

    #[test]
    fn from_parts_round_trips() {
        let i = idx();
        let values = i.indexed_values().to_vec();
        let matches: Vec<(String, Matches)> =
            i.precomputed().map(|(v, m)| (v.to_owned(), m.clone())).collect();
        let restored = SimilarityIndex::from_parts(i.s_t(), values, matches);
        assert_eq!(restored.len(), i.len());
        for v in restored.indexed_values() {
            assert_eq!(restored.lookup(v), i.lookup(v), "{v}");
        }
        // Derived postings work: unseen values still match.
        let m = restored.lookup_or_compute("macdonalds");
        assert!(m.iter().any(|(v, _)| v == "macdonald"));
    }

    #[test]
    fn duplicates_and_empties_ignored() {
        let i = SimilarityIndex::build(["ann", "ann", ""], 0.5);
        assert_eq!(i.len(), 1);
    }

    #[test]
    #[should_panic(expected = "s_t must be in (0,1)")]
    fn invalid_threshold_panics() {
        let _ = SimilarityIndex::build(["a"], 1.0);
    }

    #[test]
    fn stored_pairs_counts() {
        let i = idx();
        assert!(i.stored_pairs() >= 2, "mac* family yields pairs");
        let higher = SimilarityIndex::build(
            ["macdonald", "mcdonald", "macdougall", "martin", "tweedie"],
            0.9,
        );
        assert!(higher.stored_pairs() < i.stored_pairs(), "higher s_t stores less");
    }
}
