//! The similarity-aware index S (paper §6, after Christen et al.).
//!
//! For every indexed string value, all other values that share at least one
//! bigram and reach a Jaro-Winkler similarity of `s_t` are pre-computed, so
//! approximate matching at query time is a hash lookup. Query values never
//! seen before are compared once against the bigram-sharing candidates and
//! the result is cached "to speed-up future queries of the same value" (§7).

use std::collections::HashMap;

use snaps_strsim::jaro_winkler;
use snaps_strsim::qgram::bigrams;

/// A value's pre-computed approximate matches: `(value, similarity)`,
/// sorted descending by similarity.
pub type Matches = Vec<(String, f64)>;

/// The similarity-aware index.
#[derive(Debug, Clone)]
pub struct SimilarityIndex {
    /// Minimum similarity retained (`s_t`).
    s_t: f64,
    /// Indexed values in insertion order.
    values: Vec<String>,
    /// Bigram → indices into `values` (postings lists).
    postings: HashMap<String, Vec<u32>>,
    /// value → its matches among `values`.
    matches: HashMap<String, Matches>,
}

impl SimilarityIndex {
    /// Pre-compute the index over `values` with threshold `s_t`.
    ///
    /// # Panics
    /// Panics unless `0 < s_t < 1` (the paper's setting is `0.5`).
    #[must_use]
    pub fn build<'v>(values: impl IntoIterator<Item = &'v str>, s_t: f64) -> Self {
        assert!(s_t > 0.0 && s_t < 1.0, "s_t must be in (0,1)");
        let mut idx = Self {
            s_t,
            values: Vec::new(),
            postings: HashMap::new(),
            matches: HashMap::new(),
        };
        for v in values {
            idx.insert_value(v);
        }
        // Pre-compute every indexed value's matches.
        let all: Vec<String> = idx.values.clone();
        for v in &all {
            let m = idx.compute_matches(v);
            idx.matches.insert(v.clone(), m);
        }
        idx
    }

    /// Number of indexed values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the index holds no values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total stored match pairs (the index's size driver — the reason `s_t`
    /// is not set lower, §6).
    #[must_use]
    pub fn stored_pairs(&self) -> usize {
        self.matches.values().map(Vec::len).sum()
    }

    fn insert_value(&mut self, v: &str) {
        if v.is_empty() || self.matches.contains_key(v) || self.values.iter().any(|x| x == v) {
            return;
        }
        let id = u32::try_from(self.values.len()).expect("at most 2^32 values");
        self.values.push(v.to_string());
        for bg in bigrams(v) {
            self.postings.entry(bg).or_default().push(id);
        }
    }

    /// Candidates sharing at least one bigram with `v`.
    fn candidates(&self, v: &str) -> Vec<u32> {
        let mut ids: Vec<u32> = bigrams(v)
            .iter()
            .filter_map(|bg| self.postings.get(bg))
            .flatten()
            .copied()
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    fn compute_matches(&self, v: &str) -> Matches {
        let mut out: Matches = self
            .candidates(v)
            .into_iter()
            .map(|id| &self.values[id as usize])
            .filter(|cand| cand.as_str() != v)
            .filter_map(|cand| {
                let s = jaro_winkler(v, cand);
                (s >= self.s_t).then(|| (cand.clone(), s))
            })
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// The pre-computed matches of an indexed value, if present.
    #[must_use]
    pub fn lookup(&self, v: &str) -> Option<&Matches> {
        self.matches.get(v)
    }

    /// Matches for any value: cached when known, computed against the
    /// bigram-sharing candidates and cached otherwise (the §7 online
    /// extension — the unseen value itself is *not* added to the postings,
    /// it is a query string, not data).
    pub fn lookup_or_compute(&mut self, v: &str) -> &Matches {
        if !self.matches.contains_key(v) {
            let m = self.compute_matches(v);
            self.matches.insert(v.to_string(), m);
        }
        &self.matches[v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> SimilarityIndex {
        SimilarityIndex::build(
            ["macdonald", "mcdonald", "macdougall", "martin", "tweedie"],
            0.5,
        )
    }

    #[test]
    fn exact_values_indexed() {
        let i = idx();
        assert_eq!(i.len(), 5);
        assert!(i.lookup("macdonald").is_some());
        assert!(i.lookup("nosuch").is_none());
    }

    #[test]
    fn similar_values_found_sorted() {
        let i = idx();
        let m = i.lookup("macdonald").unwrap();
        assert!(!m.is_empty());
        assert_eq!(m[0].0, "mcdonald", "most similar first: {m:?}");
        for w in m.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // Self is never among the matches.
        assert!(m.iter().all(|(v, _)| v != "macdonald"));
    }

    #[test]
    fn threshold_respected() {
        let i = idx();
        for v in ["macdonald", "martin", "tweedie"] {
            for (_, s) in i.lookup(v).unwrap() {
                assert!(*s >= 0.5);
            }
        }
    }

    #[test]
    fn dissimilar_not_matched() {
        let i = idx();
        let m = i.lookup("tweedie").unwrap();
        assert!(m.iter().all(|(v, _)| v != "martin"), "{m:?}");
    }

    #[test]
    fn unseen_query_value_cached() {
        let mut i = idx();
        assert!(i.lookup("macdonalds").is_none());
        let m = i.lookup_or_compute("macdonalds").clone();
        assert!(m.iter().any(|(v, _)| v == "macdonald"));
        // Second lookup hits the cache.
        assert!(i.lookup("macdonalds").is_some());
        assert_eq!(i.lookup("macdonalds").unwrap(), &m);
        // The query string was not added as an indexed value.
        assert_eq!(i.len(), 5);
        let others = i.lookup("macdonald").unwrap();
        assert!(others.iter().all(|(v, _)| v != "macdonalds"));
    }

    #[test]
    fn duplicates_and_empties_ignored() {
        let i = SimilarityIndex::build(["ann", "ann", ""], 0.5);
        assert_eq!(i.len(), 1);
    }

    #[test]
    #[should_panic(expected = "s_t must be in (0,1)")]
    fn invalid_threshold_panics() {
        let _ = SimilarityIndex::build(["a"], 1.0);
    }

    #[test]
    fn stored_pairs_counts() {
        let i = idx();
        assert!(i.stored_pairs() >= 2, "mac* family yields pairs");
        let higher = SimilarityIndex::build(
            ["macdonald", "mcdonald", "macdougall", "martin", "tweedie"],
            0.9,
        );
        assert!(higher.stored_pairs() < i.stored_pairs(), "higher s_t stores less");
    }
}
