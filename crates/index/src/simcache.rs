//! Sharded, bounded memoisation cache for unseen query values.
//!
//! The §7 online extension caches the approximate matches of query values
//! that were never indexed ("we … add them to S to speed-up future queries
//! of the same value"). Unbounded, that cache grows by one entry per novel
//! query string — an open-ended memory leak under real traffic. This cache
//! bounds it: entries hash to one of a fixed number of shards, each shard
//! holds at most `capacity / shards` entries, and a full shard evicts its
//! oldest entry (FIFO) before inserting. Sharding keeps lock contention low
//! when many threads query one shared [`SimilarityIndex`].

// The cache is a bounded memo whose iteration order is never observed:
// lookups are by key, eviction order comes from the explicit FIFO queue, and
// cached results are identical to recomputation. O(1) hashed access matters
// on this hot path, so HashMap is deliberate.
use std::collections::hash_map::DefaultHasher; // snaps-lint: allow(hash-iter) -- order never observed; see above
use std::collections::{HashMap, VecDeque}; // snaps-lint: allow(hash-iter) -- order never observed; see above
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use parking_lot::Mutex;
use snaps_obs::{Counter, Obs};

use crate::simindex::Matches;

/// Number of independently locked shards (power of two).
const SHARDS: usize = 16;

/// Default total entry capacity across all shards.
pub const DEFAULT_CACHE_CAPACITY: usize = 8192;

/// One shard: its entries plus the insertion order used for FIFO eviction.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<String, Arc<Matches>>, // snaps-lint: allow(hash-iter) -- keyed access only, order never observed
    order: VecDeque<String>,
}

/// The sharded bounded cache. Cheap to share behind `&self`; all mutation
/// happens under per-shard locks.
pub struct SimCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl std::fmt::Debug for SimCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCache")
            .field("capacity", &(self.per_shard_capacity * SHARDS))
            .field("len", &self.len())
            .finish()
    }
}

impl SimCache {
    /// Cache holding at most `capacity` entries in total. A zero capacity is
    /// clamped to one entry per shard — a cache that can hold nothing would
    /// turn every repeated query into a recomputation.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: capacity.div_ceil(SHARDS),
            hits: Counter::default(),
            misses: Counter::default(),
            evictions: Counter::default(),
        }
    }

    /// Install the `index.sim_cache.{hits,misses,evictions}` counter triple
    /// on `obs`. Handles share state, so several indexes instrumented on the
    /// same `obs` aggregate into one triple.
    pub fn instrument(&mut self, obs: &Obs) {
        self.hits = obs.counter("index.sim_cache.hits");
        self.misses = obs.counter("index.sim_cache.misses");
        self.evictions = obs.counter("index.sim_cache.evictions");
    }

    /// Total cached entries across shards.
    #[must_use]
    pub fn len(&self) -> usize {
        // One short-lived lock per shard; no shard lock is ever held across
        // a call into another crate.
        let mut total = 0;
        for s in &self.shards {
            total += s.lock().map.len();
        }
        total
    }

    /// Whether no entry is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entry capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * SHARDS
    }

    /// The shard `key` hashes to. `None` is unreachable (the modulus keeps
    /// the index under `SHARDS`) but callers degrade gracefully anyway.
    fn shard(&self, key: &str) -> Option<&Mutex<Shard>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        self.shards.get((h.finish() as usize) % SHARDS)
    }

    /// Cached matches for `key`, bumping the hit/miss counters.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<Arc<Matches>> {
        let found = self.shard(key).and_then(|s| s.lock().map.get(key).cloned());
        if found.is_some() {
            self.hits.incr();
        } else {
            self.misses.incr();
        }
        found
    }

    /// Insert `matches` under `key`, evicting the shard's oldest entry when
    /// it is full. A racing duplicate insert (two threads computing the same
    /// novel value) overwrites idempotently and does not grow the shard.
    pub fn insert(&self, key: &str, matches: Arc<Matches>) {
        let Some(mutex) = self.shard(key) else { return };
        let mut evicted = 0u64;
        {
            let mut shard = mutex.lock();
            if shard.map.contains_key(key) {
                shard.map.insert(key.to_owned(), matches);
                return;
            }
            while shard.map.len() >= self.per_shard_capacity {
                let Some(oldest) = shard.order.pop_front() else { break };
                shard.map.remove(&oldest);
                evicted += 1;
            }
            shard.map.insert(key.to_owned(), matches);
            shard.order.push_back(key.to_owned());
        }
        // Counter bumps call into snaps-obs; they happen after the shard
        // guard is dropped so no lock is held across a cross-crate call.
        if evicted > 0 {
            self.evictions.add(evicted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaps_obs::ObsConfig;

    fn arc(v: &[(&str, f64)]) -> Arc<Matches> {
        Arc::new(v.iter().map(|(s, x)| ((*s).to_owned(), *x)).collect())
    }

    #[test]
    fn get_after_insert_hits() {
        let c = SimCache::new(64);
        assert!(c.get("a").is_none());
        c.insert("a", arc(&[("b", 0.9)]));
        let m = c.get("a").expect("cached");
        assert_eq!(m[0].0, "b");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_bounds_every_shard() {
        let c = SimCache::new(SHARDS); // one entry per shard
        for i in 0..1000 {
            c.insert(&format!("key{i}"), arc(&[]));
        }
        assert!(c.len() <= SHARDS, "len {} exceeds capacity", c.len());
    }

    #[test]
    fn eviction_is_fifo_per_shard() {
        let c = SimCache::new(1); // per-shard capacity 1
                                  // Find two keys in the same shard.
        let keys: Vec<String> = (0..100).map(|i| format!("k{i}")).collect();
        let (a, b) = {
            let first = &keys[0];
            let shard0 = c.shard(first).expect("shard") as *const _;
            let other = keys[1..]
                .iter()
                .find(|k| std::ptr::eq(c.shard(k).expect("shard"), shard0))
                .expect("two keys share a shard");
            (first.clone(), other.clone())
        };
        c.insert(&a, arc(&[]));
        c.insert(&b, arc(&[]));
        assert!(c.get(&a).is_none(), "oldest entry evicted");
        assert!(c.get(&b).is_some(), "newest entry kept");
    }

    #[test]
    fn counters_record_hits_misses_evictions() {
        let obs = Obs::new(&ObsConfig::full());
        let mut c = SimCache::new(1);
        c.instrument(&obs);
        let _ = c.get("x"); // miss
        c.insert("x", arc(&[]));
        let _ = c.get("x"); // hit
        for i in 0..100 {
            c.insert(&format!("y{i}"), arc(&[])); // forces evictions somewhere
        }
        let report = obs.report().expect("enabled");
        assert_eq!(report.counter("index.sim_cache.misses"), Some(1));
        assert_eq!(report.counter("index.sim_cache.hits"), Some(1));
        assert!(report.counter("index.sim_cache.evictions").unwrap_or(0) > 0);
    }

    #[test]
    fn duplicate_insert_overwrites_without_growth() {
        let c = SimCache::new(64);
        c.insert("a", arc(&[("old", 0.1)]));
        c.insert("a", arc(&[("new", 0.2)]));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("a").unwrap()[0].0, "new");
    }

    #[test]
    fn zero_capacity_clamps_to_minimum() {
        let c = SimCache::new(0);
        assert!(c.capacity() >= 1);
        c.insert("a", arc(&[]));
        assert!(c.get("a").is_some(), "a clamped cache still caches");
    }

    #[test]
    fn concurrent_use_is_safe() {
        let c = std::sync::Arc::new(SimCache::new(128));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        let k = format!("k{}", (t * 13 + i) % 200);
                        if c.get(&k).is_none() {
                            c.insert(&k, Arc::new(Vec::new()));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= c.capacity());
    }
}
